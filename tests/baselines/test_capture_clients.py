"""Tests for the ProvLake/DfAnalyzer baseline capture clients."""

import json

import pytest

from repro.baselines import DfAnalyzerCaptureClient, NullCaptureClient, ProvLakeClient
from repro.core import Data, Task, Workflow
from repro.device import A8M3, Device
from repro.http import HttpResponse, HttpServer
from repro.net import Network
from repro.simkernel import Environment


def make_world(latency=0.023, bandwidth=1e9):
    env = Environment()
    net = Network(env, seed=4)
    edge_dev = Device(env, A8M3, name="edge-dev")
    net.add_host("edge", device=edge_dev)
    net.add_host("cloud")
    net.connect("edge", "cloud", bandwidth_bps=bandwidth, latency_s=latency)
    received = []

    def handler(request):
        received.append(json.loads(request.body.decode()))
        return HttpResponse(status=201, reason="Created")

    server = HttpServer(net.hosts["cloud"], 5000, handler)
    return env, net, edge_dev, server, received


def run_instrumented(env, client, n_tasks=2, attrs=10, task_duration=0.05):
    result = {}

    def proc(env):
        yield from client.setup()
        workflow = Workflow(1, client)
        yield from workflow.begin()
        t0 = env.now
        for i in range(n_tasks):
            task = Task(i, workflow, transformation_id=0)
            yield from task.begin([Data(f"in{i}", 1, {"in": [1] * attrs})])
            yield env.timeout(task_duration)
            yield from task.end([Data(f"out{i}", 1, {"out": [2] * attrs},
                                      derivations=[f"in{i}"])])
        result["elapsed"] = env.now - t0
        yield from workflow.end()

    env.process(proc(env))
    return result


def test_provlake_posts_every_record():
    env, net, dev, server, received = make_world()
    client = ProvLakeClient(dev, ("cloud", 5000))
    run_instrumented(env, client, n_tasks=3)
    env.run()
    # 2 workflow events + 6 task events, one POST each (no grouping)
    assert len(received) == 8
    assert client.requests_sent.count == 8


def test_provlake_message_format():
    env, net, dev, server, received = make_world()
    client = ProvLakeClient(dev, ("cloud", 5000))
    run_instrumented(env, client, n_tasks=1, attrs=3)
    env.run()
    task_msgs = [m for m in received if m["messages"][0]["prov_obj"] == "task"]
    begin = task_msgs[0]["messages"][0]
    assert begin["act_type"] == "task_begin"
    assert begin["used"]["in0"]["attributes"]["in"] == [1, 1, 1]
    assert "@context" in task_msgs[0]


def test_provlake_capture_blocks_for_network_roundtrip():
    env, net, dev, server, received = make_world(latency=0.023)
    client = ProvLakeClient(dev, ("cloud", 5000))
    timing = {}

    def proc(env):
        yield from client.setup()
        workflow = Workflow(1, client)
        yield from workflow.begin()  # pays TCP handshake
        task = Task(0, workflow)
        t0 = env.now
        yield from task.begin([Data("in0", 1, {"in": [1] * 10})])
        timing["call"] = env.now - t0
        yield from task.end()
        yield from workflow.end()

    env.process(proc(env))
    env.run()
    # paper Table II: ~142 ms per ProvLake capture call on the edge
    assert 0.120 < timing["call"] < 0.165


def test_dfanalyzer_capture_call_duration():
    env, net, dev, server, received = make_world(latency=0.023)
    client = DfAnalyzerCaptureClient(dev, ("cloud", 5000))
    timing = {}

    def proc(env):
        yield from client.setup()
        workflow = Workflow(1, client)
        yield from workflow.begin()
        task = Task(0, workflow)
        t0 = env.now
        yield from task.begin([Data("in0", 1, {"in": [1] * 10})])
        timing["call"] = env.now - t0
        yield from task.end()
        yield from workflow.end()

    env.process(proc(env))
    env.run()
    # paper Table II: ~100 ms per DfAnalyzer capture call on the edge
    assert 0.085 < timing["call"] < 0.115


def test_provlake_grouping_reduces_requests():
    env, net, dev, server, received = make_world()
    client = ProvLakeClient(dev, ("cloud", 5000), group_size=10)
    run_instrumented(env, client, n_tasks=10)
    env.run()
    # ProvLake groups *all* messages: 22 records -> 2 full groups + flush
    assert client.requests_sent.count == 3


def test_provlake_grouped_envelope_shared():
    env, net, dev, server, received = make_world()
    client = ProvLakeClient(dev, ("cloud", 5000), group_size=5)
    run_instrumented(env, client, n_tasks=5, attrs=100)
    env.run()
    # 12 records (2 wf + 10 task) -> two full groups of 5 + a final flush
    grouped = [m for m in received if len(m["messages"]) == 5]
    assert len(grouped) == 2
    assert sum(len(m["messages"]) for m in received) == 12


def test_dfanalyzer_rejects_grouping():
    env, net, dev, server, received = make_world()
    client = DfAnalyzerCaptureClient(dev, ("cloud", 5000))
    assert not client.supports_grouping()
    with pytest.raises(ValueError):
        ProvLakeClientNoGrouping = DfAnalyzerCaptureClient
        # constructing a grouped DfAnalyzer client must fail
        from repro.baselines.common import BlockingHttpCaptureClient

        class Grouped(DfAnalyzerCaptureClient):
            def __init__(self, device, server):
                self.costs = client.costs
                BlockingHttpCaptureClient.__init__(
                    self, device, server, "/pde/task", lib_bytes=1, group_size=5
                )

        Grouped(dev, ("cloud", 5000))


def test_dfanalyzer_message_format():
    env, net, dev, server, received = make_world()
    client = DfAnalyzerCaptureClient(dev, ("cloud", 5000))
    run_instrumented(env, client, n_tasks=1, attrs=2)
    env.run()
    task_msgs = [m for m in received if m["messages"][0]["object"] == "task"]
    begin = task_msgs[0]["messages"][0]
    assert begin["status"] == "RUNNING"
    assert begin["sets"][0]["tag"] == "in0"
    assert begin["sets"][0]["elements"] == [{"in": [1, 1]}]


def test_capture_survives_missing_server():
    env = Environment()
    net = Network(env, seed=1)
    dev = Device(env, A8M3)
    net.add_host("edge", device=dev)
    net.add_host("void")
    net.connect("edge", "void", bandwidth_bps=1e9, latency_s=0.001)
    client = ProvLakeClient(dev, ("void", 5000))
    finished = {}

    def proc(env):
        yield from client.setup()
        workflow = Workflow(1, client)
        yield from workflow.begin()  # server missing: error swallowed
        finished["ok"] = True

    env.process(proc(env))
    env.run()
    assert finished["ok"]
    assert client.capture_errors.count == 1


def test_memory_static_footprints_differ():
    env, net, dev, server, received = make_world()
    pl = ProvLakeClient(dev, ("cloud", 5000))
    assert dev.memory.used("capture-static") > 15_000_000  # heavier than ProvLight
    pl.close()
    assert dev.memory.used("capture-static") == 0


def test_provlake_json_bigger_than_provlight_binary():
    from repro.core import encode_payload

    env, net, dev, server, received = make_world()
    client = ProvLakeClient(dev, ("cloud", 5000))
    record = {
        "kind": "task_end", "workflow_id": 1, "task_id": 3,
        "transformation_id": 0, "dependencies": [2], "time": 1.5,
        "status": "finished",
        "data": [{"id": "out3", "workflow_id": 1, "derivations": ["in3"],
                  "attributes": {"out": [2] * 100}}],
    }
    json_body = client.render_body([record])
    binary = encode_payload(record)
    assert len(json_body) > 2 * len(binary)


def test_null_capture_client_is_free():
    env = Environment()
    dev = Device(env, A8M3)
    client = NullCaptureClient(dev)
    timing = {}

    def proc(env):
        workflow = Workflow(1, client)
        yield from workflow.begin()
        task = Task(0, workflow)
        yield from task.begin([Data("in0", 1, {"in": [1] * 100})])
        yield from task.end()
        yield from workflow.end()
        timing["elapsed"] = env.now

    env.process(proc(env))
    env.run()
    assert timing["elapsed"] == 0.0
    assert client.records_captured.count == 4
