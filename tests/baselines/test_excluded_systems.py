"""Executable version of paper Table IV: why PROV-IO and Komadu were
excluded from the performance analysis."""

import numpy as np
import pytest

from repro.baselines.excluded import FlashStorage, KomaduClient, ProvIOClient
from repro.device import A8M3, Device
from repro.simkernel import Environment
from repro.workloads import SyntheticWorkloadConfig, synthetic_workload

CONFIG = SyntheticWorkloadConfig(number_of_tasks=20, task_duration_s=0.1,
                                 attributes_per_task=100)


def run_with(client_factory):
    env = Environment()
    dev = Device(env, A8M3)
    client = client_factory(dev)
    result = {}
    env.process(synthetic_workload(env, client, CONFIG,
                                   rng=np.random.default_rng(1), result=result))
    env.run()
    return result, dev, client


# -- FlashStorage ---------------------------------------------------------


def test_flash_write_blocks_proportionally():
    env = Environment()
    flash = FlashStorage(env, write_bandwidth_bps=8e6, sync_latency_s=0.01)

    def proc(env):
        yield from flash.write(100_000)  # 0.1s transfer + 0.01 sync

    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(0.11)
    assert flash.bytes_written.total == 100_000


# -- PROV-IO ---------------------------------------------------------------


def test_provio_graph_grows_in_memory_between_dumps():
    """Table IV: periodic in-memory graph dumps, unsuitable for 256MB devices."""
    result, dev, client = run_with(lambda d: ProvIOClient(d, dump_every_records=1000))
    # nothing was ever released: the whole run is resident
    assert client.resident_graph_bytes > 0
    assert dev.memory.used("capture-buffers") == client.resident_graph_bytes
    assert client.dumps.count == 0  # never reached the dump threshold
    client.close()
    assert dev.memory.used("capture-buffers") == 0


def test_provio_dump_stalls_workflow():
    frequent, _, client_f = run_with(lambda d: ProvIOClient(d, dump_every_records=5))
    rare, _, client_r = run_with(lambda d: ProvIOClient(d, dump_every_records=1000))
    assert client_f.dumps.count > 0
    # every dump writes the whole (growing) graph: frequent dumps stall more
    assert frequent["elapsed"] > rare["elapsed"] + 0.1


def test_provio_no_network_transmission():
    """The defining limitation: captured data never leaves the device."""
    result, dev, client = run_with(lambda d: ProvIOClient(d, dump_every_records=10))
    assert dev.radio.tx.total == 0


def test_provio_rejects_bad_dump_interval():
    env = Environment()
    with pytest.raises(ValueError):
        ProvIOClient(Device(env, A8M3), dump_every_records=0)


def test_provio_drain_flushes_partial_graph():
    env = Environment()
    dev = Device(env, A8M3)
    client = ProvIOClient(dev, dump_every_records=1000)

    def proc(env):
        yield from client.capture({"kind": "task_end", "workflow_id": 1,
                                   "task_id": 0, "data": []})
        yield from client.drain()

    env.process(proc(env))
    env.run()
    assert client.dumps.count == 1


# -- Komadu ---------------------------------------------------------------


def test_komadu_pays_server_costs_on_device():
    """Table IV: capture and processing share the machine, so the edge CPU
    absorbs server-grade work for every record."""
    result, dev, client = run_with(KomaduClient)
    server_time = dev.cpu.busy_time("capture-server")
    client_time = dev.cpu.busy_time("capture")
    assert server_time > 10 * client_time  # the pipeline dwarfs capture itself
    # overhead is far beyond the paper's 3% bar
    overhead = result["elapsed"] / CONFIG.nominal_duration_s() - 1
    assert overhead > 0.03


def test_komadu_overhead_worse_than_blocking_http_baselines():
    """On this short-task workload Komadu's local pipeline costs more CPU
    time than even ProvLake's blocking HTTP capture."""
    komadu, dev_k, _ = run_with(KomaduClient)
    from repro.harness import ExperimentSetup, measure_overhead

    provlake = measure_overhead(ExperimentSetup(system="provlake"), CONFIG,
                                repetitions=1, keep_outcomes=False)
    komadu_overhead = komadu["elapsed"] / CONFIG.nominal_duration_s() - 1
    # Komadu burns comparable-or-more *CPU-busy* time with no server at all
    assert dev_k.cpu.busy_time() / CONFIG.nominal_duration_s() > 0.2
    assert komadu_overhead > 0.03


def test_komadu_backend_receives_records():
    sink = []
    env = Environment()
    dev = Device(env, A8M3)
    client = KomaduClient(dev, backend=sink.append)

    def proc(env):
        yield from client.capture({"kind": "task_begin", "workflow_id": 1,
                                   "task_id": 0, "data": []})

    env.process(proc(env))
    env.run()
    assert len(sink) == 1
