"""Tests for the ProvLight ablation variants."""

import json

import numpy as np
import pytest

from repro.baselines.ablations import SyncHttpProvLightClient, VerboseModelProvLightClient
from repro.core import CallableBackend, ProvLightClient, ProvLightServer, decode_payload
from repro.device import A8M3, Device
from repro.http import HttpResponse, HttpServer
from repro.net import Network
from repro.simkernel import Environment
from repro.workloads import SyntheticWorkloadConfig, synthetic_workload

CONFIG = SyntheticWorkloadConfig(number_of_tasks=10, task_duration_s=0.1,
                                 attributes_per_task=100)


def run_sync_http(compress=True):
    env = Environment()
    net = Network(env, seed=6)
    dev = Device(env, A8M3)
    net.add_host("edge", device=dev)
    net.add_host("cloud")
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.023)
    bodies = []

    def handler(request):
        bodies.append(request.body)
        return HttpResponse(status=201)

    HttpServer(net.hosts["cloud"], 5000, handler)
    client = SyncHttpProvLightClient(dev, ("cloud", 5000), compress=compress)
    result = {}
    env.process(synthetic_workload(env, client, CONFIG,
                                   rng=np.random.default_rng(1), result=result))
    env.run()
    return result, bodies, dev


def run_real(group_size=0, verbose=False):
    env = Environment()
    net = Network(env, seed=6)
    dev = Device(env, A8M3)
    net.add_host("edge", device=dev)
    net.add_host("cloud")
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.023)
    sink = []
    server = ProvLightServer(net.hosts["cloud"], CallableBackend(sink.extend))
    cls = VerboseModelProvLightClient if verbose else ProvLightClient
    client = cls(dev, server.endpoint, "abl/edge", group_size=group_size)
    result = {}

    def scenario(env):
        yield from server.add_translator("abl/#")
        yield from synthetic_workload(env, client, CONFIG,
                                      rng=np.random.default_rng(1), result=result)
        yield env.timeout(30)

    env.process(scenario(env))
    env.run()
    return result, sink, dev, client


def test_sync_http_bodies_are_provlight_binary():
    result, bodies, dev = run_sync_http()
    record = decode_payload(bodies[1])  # first task_begin
    assert record["kind"] == "task_begin"


def test_sync_transport_is_the_dominant_cost():
    """Removing only the async transport must reproduce baseline-like
    blocking overhead — the paper's 'major impact' claim."""
    sync_result, _, _ = run_sync_http()
    real_result, _, _, _ = run_real()
    nominal = CONFIG.nominal_duration_s()
    sync_overhead = sync_result["elapsed"] / nominal - 1
    real_overhead = real_result["elapsed"] / nominal - 1
    # blocking transport costs at least 5x the async design
    assert sync_overhead > 5 * real_overhead
    # and the RTT (46ms) per call dominates its cost
    assert sync_overhead > 0.5


def test_verbose_model_costs_memory_and_cpu():
    real_result, _, dev_real, client_real = run_real()
    verbose_result, sink, dev_verbose, client_verbose = run_real(verbose=True)
    # the simplified model's memory advantage (paper: 'major impact')
    assert (dev_verbose.memory.peak("capture-static")
            > 1.5 * dev_real.memory.peak("capture-static"))
    # verbose payloads are bigger on the wire
    assert client_verbose.payload_bytes.total > client_real.payload_bytes.total
    # and capture time grows measurably
    assert verbose_result["elapsed"] > real_result["elapsed"]


def test_verbose_records_still_translate():
    _, sink, _, _ = run_real(verbose=True)
    finished = [r for r in sink if r.get("status") == "FINISHED"]
    assert len(finished) == 10  # lineage survives the verbose envelope


def test_compression_flag_matters_for_sync_variant():
    _, bodies_c, _ = run_sync_http(compress=True)
    _, bodies_u, _ = run_sync_http(compress=False)
    assert sum(map(len, bodies_c)) < sum(map(len, bodies_u))


def test_sync_variant_rejects_grouping():
    env = Environment()
    net = Network(env, seed=1)
    dev = Device(env, A8M3)
    net.add_host("edge", device=dev)
    client = SyncHttpProvLightClient(dev, ("cloud", 5000))
    assert not client.supports_grouping()
