"""Unit tests for HTTP message encoding/parsing."""

import pytest

from repro.http import HttpRequest, HttpResponse
from repro.http.messages import _parse_headers, HttpError


def test_request_encoding_includes_content_length():
    req = HttpRequest(method="POST", path="/prov", body=b"{}",
                      headers={"Host": "cloud:80"})
    wire = req.encode()
    assert wire.startswith(b"POST /prov HTTP/1.1\r\n")
    assert b"Content-Length: 2" in wire
    assert wire.endswith(b"\r\n\r\n{}")


def test_request_without_body_has_no_content_length():
    wire = HttpRequest(method="GET", path="/x").encode()
    assert b"Content-Length" not in wire


def test_response_encoding():
    resp = HttpResponse(status=201, reason="Created", body=b"ok")
    wire = resp.encode()
    assert wire.startswith(b"HTTP/1.1 201 Created\r\n")
    assert b"Content-Length: 2" in wire
    assert wire.endswith(b"ok")


def test_response_ok_property():
    assert HttpResponse(status=200).ok
    assert HttpResponse(status=204).ok
    assert not HttpResponse(status=404).ok
    assert not HttpResponse(status=500).ok


def test_keep_alive_defaults_and_close():
    assert HttpRequest().keep_alive()
    assert not HttpRequest(headers={"Connection": "close"}).keep_alive()
    assert HttpResponse().keep_alive()
    assert not HttpResponse(headers={"Connection": "Close"}).keep_alive()


def test_wire_size_matches():
    req = HttpRequest(method="POST", path="/p", body=b"abc")
    assert req.wire_size == len(req.encode())


def test_parse_headers():
    block = b"Host: cloud:80\r\nContent-Type: application/json"
    headers = _parse_headers(block)
    assert headers == {"Host": "cloud:80", "Content-Type": "application/json"}


def test_parse_headers_rejects_garbage():
    with pytest.raises(HttpError):
        _parse_headers(b"not-a-header-line")
