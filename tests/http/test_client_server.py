"""End-to-end HTTP tests over the simulated network."""

import pytest

from repro.http import HttpRequestError, HttpResponse, HttpServer, HttpSession
from repro.net import Network
from repro.simkernel import Environment


def make_world(latency=0.023, bandwidth=1e9, handler=None, workers=8,
               service_time=0.002):
    env = Environment()
    net = Network(env, seed=5)
    net.add_host("client")
    net.add_host("server")
    net.connect("client", "server", bandwidth_bps=bandwidth, latency_s=latency)
    if handler is None:
        def handler(request):
            return HttpResponse(status=200, body=b"pong")
    server = HttpServer(net.hosts["server"], 80, handler, workers=workers,
                        service_time_s=service_time)
    session = HttpSession(net.hosts["client"])
    return env, net, server, session


def test_get_roundtrip():
    env, net, server, session = make_world()
    out = {}

    def client(env):
        resp = yield from session.get(("server", 80), "/ping")
        out["resp"] = resp

    env.process(client(env))
    env.run()
    assert out["resp"].status == 200
    assert out["resp"].body == b"pong"
    assert server.requests.count == 1


def test_post_body_reaches_handler():
    seen = []

    def handler(request):
        seen.append((request.method, request.path, request.body))
        return HttpResponse(status=201, reason="Created")

    env, net, server, session = make_world(handler=handler)

    def client(env):
        resp = yield from session.post(("server", 80), "/prov", b'{"x": 1}')
        assert resp.status == 201

    env.process(client(env))
    env.run()
    assert seen == [("POST", "/prov", b'{"x": 1}')]


def test_request_latency_includes_rtt_and_service():
    env, net, server, session = make_world(latency=0.023, service_time=0.002)
    out = {}

    def client(env):
        # First request pays the TCP handshake; measure the second.
        yield from session.get(("server", 80), "/a")
        t0 = env.now
        yield from session.get(("server", 80), "/b")
        out["latency"] = env.now - t0

    env.process(client(env))
    env.run()
    # one RTT (0.046) + service (0.002) plus transmission epsilon
    assert out["latency"] == pytest.approx(0.048, rel=0.05)


def test_keep_alive_reuses_connection():
    env, net, server, session = make_world()

    def client(env):
        for _ in range(5):
            yield from session.get(("server", 80), "/r")

    env.process(client(env))
    env.run()
    assert session.request_count == 5
    assert len(session._conns) == 1


def test_connection_close_header_tears_down():
    def handler(request):
        return HttpResponse(status=200, headers={"Connection": "close"})

    env, net, server, session = make_world(handler=handler)

    def client(env):
        yield from session.get(("server", 80), "/once")
        assert len(session._conns) == 0
        yield from session.get(("server", 80), "/twice")  # redials

    env.process(client(env))
    env.run()
    assert session.request_count == 2


def test_handler_exception_returns_500():
    def handler(request):
        raise RuntimeError("boom")

    env, net, server, session = make_world(handler=handler)
    out = {}

    def client(env):
        resp = yield from session.get(("server", 80), "/crash")
        out["status"] = resp.status

    env.process(client(env))
    env.run()
    assert out["status"] == 500
    assert server.errors.count == 1


def test_generator_handler_waits_on_events():
    def handler(request):
        def gen():
            yield request  # noop to prove generator protocol; replaced below
        # a real generator handler yields sim events:
        return _slow_handler(request)

    def _slow_handler(request):
        yield env_holder["env"].timeout(0.5)
        return HttpResponse(status=200, body=b"slow")

    env_holder = {}
    env, net, server, session = make_world(handler=handler, service_time=0.0)
    env_holder["env"] = env
    out = {}

    def client(env):
        yield from session.get(("server", 80), "/warm")  # pays handshake
        t0 = env.now
        resp = yield from session.get(("server", 80), "/slow")
        out["latency"] = env.now - t0
        out["body"] = resp.body

    env.process(client(env))
    env.run()
    assert out["body"] == b"slow"
    assert out["latency"] > 0.5


def test_worker_pool_limits_concurrency():
    def handler(request):
        def gen():
            yield env_holder["env"].timeout(1.0)
            return HttpResponse(status=200)
        return gen()

    env_holder = {}
    env, net, server, session = make_world(handler=handler, workers=1,
                                           service_time=0.0)
    env_holder["env"] = env
    finish_times = []

    def one_client(env, i):
        own = HttpSession(net.hosts["client"])
        yield from own.get(("server", 80), f"/{i}")
        finish_times.append(env.now)

    net = net  # noqa: F841  (closure capture)
    for i in range(3):
        env.process(one_client(env, i))
    env.run()
    finish_times.sort()
    # with one worker the 1s handlers serialize: spaced ~1s apart
    assert finish_times[1] - finish_times[0] == pytest.approx(1.0, abs=0.1)
    assert finish_times[2] - finish_times[1] == pytest.approx(1.0, abs=0.1)


def test_request_to_missing_server_fails():
    env = Environment()
    net = Network(env, seed=1)
    net.add_host("client")
    net.add_host("void")
    net.connect("client", "void", bandwidth_bps=1e9, latency_s=0.001)
    session = HttpSession(net.hosts["client"])
    failures = []

    def client(env):
        try:
            yield from session.get(("void", 80), "/nope")
        except HttpRequestError as exc:
            failures.append(str(exc))

    env.process(client(env))
    env.run()
    assert len(failures) == 1


def test_slow_link_bounds_post_throughput():
    env, net, server, session = make_world(latency=0.023, bandwidth=25e3)
    out = {}

    def client(env):
        body = b"j" * 2000  # ~2KB at 25Kbit/s -> ~0.7s upstream
        t0 = env.now
        yield from session.post(("server", 80), "/prov", body)
        out["latency"] = env.now - t0

    env.process(client(env))
    env.run()
    assert out["latency"] > 0.6


def test_many_sequential_requests_count():
    env, net, server, session = make_world()

    def client(env):
        for _ in range(50):
            yield from session.get(("server", 80), "/seq")

    env.process(client(env))
    env.run()
    assert server.requests.count == 50
