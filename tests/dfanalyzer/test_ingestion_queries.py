"""Tests for DfAnalyzer ingestion, dataflow specs and the paper queries."""

import pytest

from repro.core import to_dfanalyzer
from repro.dfanalyzer import (
    DataflowSpec,
    DfAnalyzerService,
    IngestError,
    latest_epoch_metrics,
    lineage_of,
    task_durations,
    top_k_by_metric,
)


def provlight_records(wf=1, n_tasks=3):
    records = [{"kind": "workflow_begin", "workflow_id": wf, "time": 0.0}]
    for i in range(n_tasks):
        records.append({
            "kind": "task_begin", "workflow_id": wf, "task_id": i,
            "transformation_id": "train", "dependencies": [i - 1] if i else [],
            "time": float(i), "status": "running",
            "data": [{"id": f"in{i}", "workflow_id": wf, "derivations": [],
                      "attributes": {"epoch": i, "lr": 0.1}}],
        })
        records.append({
            "kind": "task_end", "workflow_id": wf, "task_id": i,
            "transformation_id": "train", "dependencies": [i - 1] if i else [],
            "time": float(i) + 0.5, "status": "finished",
            "data": [{"id": f"out{i}", "workflow_id": wf,
                      "derivations": [f"out{i-1}"] if i else [],
                      "attributes": {"epoch": i, "lr": 0.1,
                                     "loss": 1.0 / (i + 1),
                                     "accuracy": 0.6 + 0.1 * i,
                                     "elapsed_time": 0.5}}],
        })
    records.append({"kind": "workflow_end", "workflow_id": wf, "time": n_tasks + 1.0})
    return records


def seeded_service(n_tasks=3):
    service = DfAnalyzerService()
    service.ingest(to_dfanalyzer(provlight_records(n_tasks=n_tasks)))
    return service


def test_ingest_translator_batch_counts():
    service = seeded_service()
    # 2 dataflow events + 6 task records
    assert service.records_ingested.count == 8


def test_task_upsert_running_to_finished():
    service = seeded_service()
    tasks = service.query("tasks").rows()
    assert len(tasks) == 3  # begin+end merged into one row each
    assert all(t["status"] == "FINISHED" for t in tasks)
    assert tasks[0]["time_begin"] == 0.0
    assert tasks[0]["time_end"] == 0.5


def test_end_before_begin_still_recorded():
    service = DfAnalyzerService()
    records = provlight_records(n_tasks=1)
    end_first = [records[2], records[1]]  # swap begin/end order
    service.ingest(to_dfanalyzer(end_first))
    tasks = service.query("tasks").rows()
    assert len(tasks) == 2  # end inserted its own row, then begin row
    statuses = {t["status"] for t in tasks}
    assert statuses == {"FINISHED", "running".upper() if False else "RUNNING"}


def test_dataset_attributes_become_columns():
    service = seeded_service()
    rows = service.query("datasets").where("dataset_tag", "==", "out1").rows()
    assert rows[0]["accuracy"] == pytest.approx(0.7)
    assert rows[0]["direction"] == "output"


def test_ingest_capture_library_format():
    service = DfAnalyzerService()
    message = {
        "dfa_version": "1.0.4",
        "messages": [
            {
                "object": "task", "dataflow_tag": "df_1",
                "transformation_tag": "tr_0", "id": 7, "status": "RUNNING",
                "dependency": {"tags": ["6"]},
                "performance": {"time": "2023-01-17T00:00:01.000Z"},
                "sets": [{"tag": "in7", "dependency": [],
                          "elements": [{"x": 1.0}]}],
            }
        ],
    }
    assert service.ingest(message) == 1
    rows = service.query("tasks").rows()
    assert rows[0]["task_id"] == 7
    assert rows[0]["dependencies"] == "6"


def test_ingest_rejects_garbage():
    service = DfAnalyzerService()
    with pytest.raises(IngestError):
        service.ingest("not a record")
    with pytest.raises(IngestError):
        service.ingest([{"neither": 1}])
    with pytest.raises(IngestError):
        service.ingest({"messages": [{"object": "alien"}]})


def test_dataflow_summary():
    service = seeded_service()
    summary = service.dataflow_summary("1")
    assert summary["tasks"] == 3
    assert summary["by_status"] == {"FINISHED": 3}


def test_spec_validation_warnings():
    spec = DataflowSpec("1")
    spec.add_dataset("out0", [("epoch", "numeric"), ("lr", "numeric"),
                              ("loss", "numeric"), ("accuracy", "numeric")])
    service = DfAnalyzerService()
    service.register_dataflow(spec)
    service.ingest(to_dfanalyzer(provlight_records(n_tasks=1)))
    # out0 has an undeclared column: elapsed_time
    assert any("elapsed_time" in w for w in service.validation_warnings)


def test_spec_construction_validation():
    spec = DataflowSpec("df")
    spec.add_dataset("a", [("x", "numeric")])
    with pytest.raises(ValueError):
        spec.add_dataset("a")
    spec.add_transformation("t", inputs=["a"])
    with pytest.raises(ValueError):
        spec.add_transformation("t")
    with pytest.raises(ValueError):
        spec.add_transformation("u", inputs=["ghost"])
    assert spec.transformation("t").inputs == ["a"]
    with pytest.raises(KeyError):
        spec.transformation("nope")
    describe = spec.describe()
    assert describe["dataflow"] == "df"


def test_attribute_spec_type_checks():
    from repro.dfanalyzer import AttributeSpec

    assert AttributeSpec("x", "numeric").validates(1.5)
    assert not AttributeSpec("x", "numeric").validates("s")
    assert not AttributeSpec("x", "numeric").validates(True)
    assert AttributeSpec("x", "text").validates("s")
    assert AttributeSpec("x", "list").validates([1])
    assert AttributeSpec("x", "numeric").validates(None)


# -- paper queries ---------------------------------------------------------


def test_top_k_by_metric():
    service = seeded_service(n_tasks=5)
    best = top_k_by_metric(service, "1", "accuracy", ["lr"], k=3)
    assert len(best) == 3
    assert best[0]["accuracy"] == pytest.approx(1.0)
    assert best[0]["lr"] == 0.1
    assert best[0]["accuracy"] >= best[1]["accuracy"] >= best[2]["accuracy"]


def test_latest_epoch_metrics():
    service = seeded_service(n_tasks=4)
    rows = latest_epoch_metrics(service, "1", ["lr"], metrics=("elapsed_time", "loss"))
    assert len(rows) == 1  # single lr combination
    assert rows[0]["epoch"] == 3
    assert rows[0]["loss"] == pytest.approx(0.25)
    assert rows[0]["elapsed_time"] == pytest.approx(0.5)


def test_task_durations():
    service = seeded_service()
    durations = task_durations(service, "1")
    assert len(durations) == 3
    assert all(d["duration"] == pytest.approx(0.5) for d in durations)


def test_lineage_walk():
    service = seeded_service(n_tasks=4)
    chain = lineage_of(service, "1", "out3")
    assert chain == ["out2", "out1", "out0"]


def test_lineage_of_unknown_dataset():
    service = seeded_service()
    assert lineage_of(service, "1", "ghost") == []
