"""Tests for the column store and query engine."""

import pytest

from repro.dfanalyzer import ColumnStore, Query, QueryError, StoreError, Table


def seeded_store():
    store = ColumnStore()
    tasks = store.create_table("tasks", ["task_id", "status", "duration"])
    for i in range(6):
        tasks.insert({"task_id": i, "status": "FINISHED" if i % 2 else "RUNNING",
                      "duration": float(i)})
    metrics = store.create_table("metrics", ["task_id", "accuracy", "lr"])
    for i in range(6):
        metrics.insert({"task_id": i, "accuracy": 0.5 + 0.08 * i, "lr": 0.1 if i < 3 else 0.01})
    return store


# -- Table ---------------------------------------------------------------


def test_insert_and_row_roundtrip():
    t = Table("t", ["a", "b"])
    rid = t.insert({"a": 1, "b": 2})
    assert rid == 0
    assert t.row(0) == {"a": 1, "b": 2}
    assert len(t) == 1


def test_dynamic_schema_backfills_nulls():
    t = Table("t")
    t.insert({"a": 1})
    t.insert({"a": 2, "b": 20})
    assert t.row(0) == {"a": 1, "b": None}
    assert t.row(1) == {"a": 2, "b": 20}


def test_missing_columns_are_null():
    t = Table("t", ["a", "b"])
    t.insert({"a": 5})
    assert t.row(0)["b"] is None


def test_column_access_and_errors():
    t = Table("t", ["a"])
    t.insert({"a": 3})
    assert t.column("a") == [3]
    with pytest.raises(StoreError):
        t.column("zzz")
    with pytest.raises(IndexError):
        t.row(5)


def test_column_array_is_numpy():
    import numpy as np

    t = Table("t", ["x"])
    t.insert_many({"x": float(i)} for i in range(4))
    arr = t.column_array("x")
    assert isinstance(arr, np.ndarray)
    assert arr.sum() == 6.0


def test_update_where():
    t = Table("t", ["id", "status"])
    t.insert({"id": 1, "status": "RUNNING"})
    t.insert({"id": 2, "status": "RUNNING"})
    updated = t.update_where(lambda r: r["id"] == 2, {"status": "DONE"})
    assert updated == 1
    assert t.row(1)["status"] == "DONE"
    assert t.row(0)["status"] == "RUNNING"


def test_store_table_management():
    store = ColumnStore()
    store.create_table("x")
    assert "x" in store
    assert store.table_names == ["x"]
    with pytest.raises(ValueError):
        store.create_table("x")
    store.drop_table("x")
    assert "x" not in store
    with pytest.raises(StoreError):
        store.table("x")
    with pytest.raises(StoreError):
        store.drop_table("x")


def test_ensure_table_idempotent():
    store = ColumnStore()
    a = store.ensure_table("t")
    b = store.ensure_table("t")
    assert a is b


# -- Query ---------------------------------------------------------------


def test_where_filters():
    store = seeded_store()
    rows = Query(store, "tasks").where("status", "==", "FINISHED").rows()
    assert [r["task_id"] for r in rows] == [1, 3, 5]


def test_where_comparison_ops():
    store = seeded_store()
    q = Query(store, "tasks")
    assert Query(store, "tasks").where("duration", ">", 3.0).count() == 2
    assert Query(store, "tasks").where("duration", "<=", 1.0).count() == 2
    assert Query(store, "tasks").where("task_id", "in", [0, 5]).count() == 2


def test_where_unknown_operator():
    store = seeded_store()
    with pytest.raises(QueryError):
        Query(store, "tasks").where("a", "~=", 1)


def test_where_skips_nulls_and_incomparables():
    store = ColumnStore()
    t = store.create_table("t", ["v"])
    t.insert({"v": 1})
    t.insert({"v": None})
    t.insert({"v": "string"})
    rows = Query(store, "t").where("v", ">", 0).rows()
    assert len(rows) == 1


def test_select_projects():
    store = seeded_store()
    rows = Query(store, "tasks").select("task_id").limit(2).rows()
    assert rows == [{"task_id": 0}, {"task_id": 1}]


def test_order_by_and_limit():
    store = seeded_store()
    rows = Query(store, "tasks").order_by("duration", desc=True).limit(3).rows()
    assert [r["duration"] for r in rows] == [5.0, 4.0, 3.0]


def test_order_by_sorts_nulls_last():
    store = ColumnStore()
    t = store.create_table("t", ["v"])
    t.insert({"v": 2})
    t.insert({"v": None})
    t.insert({"v": 1})
    rows = Query(store, "t").order_by("v").rows()
    assert [r["v"] for r in rows] == [1, 2, None]


def test_join_merges_matching_rows():
    store = seeded_store()
    rows = (
        Query(store, "tasks")
        .where("status", "==", "FINISHED")
        .join("metrics", on=("task_id", "task_id"), prefix="m_")
        .rows()
    )
    assert len(rows) == 3
    assert all("m_accuracy" in r for r in rows)


def test_join_inner_semantics():
    store = seeded_store()
    store.table("metrics").insert({"task_id": 99, "accuracy": 1.0, "lr": 0.5})
    rows = Query(store, "tasks").join("metrics", on=("task_id", "task_id")).rows()
    assert all(r["task_id"] != 99 for r in rows)


def test_group_by_aggregates():
    store = seeded_store()
    rows = (
        Query(store, "metrics")
        .group_by("lr", aggregate={"best": ("max", "accuracy"), "n": ("count", "accuracy")})
        .rows()
    )
    by_lr = {r["lr"]: r for r in rows}
    assert by_lr[0.1]["n"] == 3
    assert by_lr[0.1]["best"] == pytest.approx(0.66)
    assert by_lr[0.01]["best"] == pytest.approx(0.9)


def test_group_by_unknown_aggregate():
    store = seeded_store()
    with pytest.raises(QueryError):
        Query(store, "metrics").group_by("lr", aggregate={"x": ("median", "accuracy")})


def test_scalars_shortcut():
    store = seeded_store()
    values = Query(store, "tasks").where("task_id", "<", 2).scalars("duration")
    assert values == [0.0, 1.0]


def test_limit_validation_and_empty_select():
    store = seeded_store()
    with pytest.raises(QueryError):
        Query(store, "tasks").limit(-1)
    with pytest.raises(QueryError):
        Query(store, "tasks").select()


def test_query_pipeline_is_reusable_lazily():
    store = seeded_store()
    q = Query(store, "tasks").where("status", "==", "RUNNING")
    n_before = q.count()
    store.table("tasks").insert({"task_id": 10, "status": "RUNNING", "duration": 0.0})
    assert q.count() == n_before + 1  # evaluated against live data
