"""Tests for AllOf / AnyOf conditions and operator composition."""

import pytest

from repro.simkernel import Environment


def test_all_of_waits_for_all():
    env = Environment()
    times = []

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(5, value="b")
        result = yield env.all_of([t1, t2])
        times.append(env.now)
        return result.values()

    p = env.process(proc(env))
    env.run()
    assert times == [5.0]
    assert p.value == ["a", "b"]


def test_any_of_returns_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(5, value="slow")
        result = yield env.any_of([t1, t2])
        return (env.now, result.values())

    p = env.process(proc(env))
    env.run()
    assert p.value == (1.0, ["fast"])


def test_and_operator():
    env = Environment()

    def proc(env):
        result = yield env.timeout(1, value=1) & env.timeout(2, value=2)
        return (env.now, sorted(result.values()))

    p = env.process(proc(env))
    env.run()
    assert p.value == (2.0, [1, 2])


def test_or_operator():
    env = Environment()

    def proc(env):
        result = yield env.timeout(1, value=1) | env.timeout(2, value=2)
        return (env.now, result.values())

    p = env.process(proc(env))
    env.run()
    assert p.value == (1.0, [1])


def test_empty_all_of_triggers_immediately():
    env = Environment()

    def proc(env):
        yield env.all_of([])
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0.0


def test_empty_any_of_triggers_immediately():
    env = Environment()

    def proc(env):
        yield env.any_of([])
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0.0


def test_condition_value_mapping_interface():
    env = Environment()
    holder = {}

    def proc(env):
        t1 = env.timeout(1, value="x")
        t2 = env.timeout(2, value="y")
        result = yield env.all_of([t1, t2])
        holder["result"] = result
        holder["t1"] = t1
        holder["t2"] = t2

    env.process(proc(env))
    env.run()
    result = holder["result"]
    assert result[holder["t1"]] == "x"
    assert holder["t2"] in result
    assert len(result) == 2
    assert result.todict() == {holder["t1"]: "x", holder["t2"]: "y"}


def test_nested_conditions_flatten_values():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value=1)
        t2 = env.timeout(2, value=2)
        t3 = env.timeout(3, value=3)
        result = yield (t1 & t2) & t3
        return sorted(result.values())

    p = env.process(proc(env))
    env.run()
    assert p.value == [1, 2, 3]


def test_condition_propagates_failure():
    env = Environment()

    def failing(env):
        yield env.timeout(1)
        raise ValueError("inner")

    def waiter(env):
        with pytest.raises(ValueError, match="inner"):
            yield env.all_of([env.process(failing(env)), env.timeout(10)])
        return env.now

    p = env.process(waiter(env))
    env.run()
    assert p.value == 1.0


def test_condition_rejects_foreign_events():
    env1 = Environment()
    env2 = Environment()
    with pytest.raises(ValueError):
        env1.all_of([env1.timeout(1), env2.timeout(1)])


def test_condition_with_already_processed_event():
    env = Environment()
    marker = []

    def first(env):
        yield env.timeout(1)

    def second(env, done):
        yield env.timeout(2)
        result = yield env.all_of([done, env.timeout(1, value="late")])
        marker.append((env.now, len(result)))

    done = env.process(first(env))
    env.process(second(env, done))
    env.run()
    assert marker == [(3.0, 2)]
