"""Tests for the DES environment and event loop."""

import pytest

from repro.simkernel import EmptySchedule, Environment, Event, Interrupt


def test_initial_time_defaults_to_zero():
    env = Environment()
    assert env.now == 0.0


def test_initial_time_can_be_set():
    env = Environment(initial_time=42.5)
    assert env.now == 42.5


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)

    env.process(proc(env))
    env.run()
    assert env.now == 3.0


def test_timeout_value_is_returned():
    env = Environment()
    results = []

    def proc(env):
        value = yield env.timeout(1.0, value="hello")
        results.append(value)

    env.process(proc(env))
    env.run()
    assert results == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)  # lint: disable=dropped-event(the call must raise before any event exists)


def test_run_until_time_stops_exactly():
    env = Environment()

    def ticker(env):
        while True:
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_time_in_past_rejected():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env, ev):
        yield env.timeout(2.0)
        ev.succeed("payload")

    ev = env.event()
    env.process(proc(env, ev))
    assert env.run(until=ev) == "payload"
    assert env.now == 2.0


def test_run_until_never_triggered_event_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        env.run(until=ev)


def test_run_with_no_events_returns_immediately():
    env = Environment()
    env.run()
    assert env.now == 0.0


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    timer = env.timeout(7.0)
    assert env.peek() == timer.delay == 7.0


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 99

    p = env.process(proc(env))
    env.run()
    assert p.value == 99


def test_events_at_same_time_fire_in_fifo_order():
    env = Environment()
    order = []

    def proc(env, label):
        yield env.timeout(1.0)
        order.append(label)

    for label in "abc":
        env.process(proc(env, label))
    env.run()
    assert order == ["a", "b", "c"]


def test_nested_process_waiting():
    env = Environment()

    def child(env):
        yield env.timeout(2.0)
        return "child-done"

    def parent(env):
        result = yield env.process(child(env))
        return result

    p = env.process(parent(env))
    env.run()
    assert p.value == "child-done"
    assert env.now == 2.0


def test_process_crash_propagates_from_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("boom")

    env.process(bad(env))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_waiting_process_handles_child_failure():
    env = Environment()
    caught = []

    def bad(env):
        yield env.timeout(1)
        raise ValueError("boom")

    def parent(env):
        try:
            yield env.process(bad(env))
        except ValueError as exc:
            caught.append(str(exc))

    env.process(parent(env))
    env.run()
    assert caught == ["boom"]


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_event_succeed_twice_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_interrupt_raises_inside_process():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(10)
        except Interrupt as exc:
            log.append(("interrupted", exc.cause, env.now))

    def attacker(env, proc):
        yield env.timeout(3)
        proc.interrupt("stop now")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == [("interrupted", "stop now", 3.0)]


def test_interrupt_terminated_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_self_interrupt_rejected():
    env = Environment()
    errors = []

    def selfish(env):
        try:
            # active process is this one; interrupting self is an error
            env.active_process.interrupt()
        except RuntimeError as exc:
            errors.append(str(exc))
        yield env.timeout(0)

    env.process(selfish(env))
    env.run()
    assert len(errors) == 1


def test_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(5)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_unhandled_failed_event_crashes_simulation():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        env.run()


def test_defused_failed_event_does_not_crash():
    env = Environment()
    ev = env.event()
    ev.defused = True
    ev.fail(RuntimeError("silent"))
    env.run()  # should not raise


def test_event_trigger_copies_state():
    env = Environment()
    src = env.event()
    dst = env.event()
    src.succeed("val")
    dst.trigger(src)
    env.run()
    assert dst.value == "val"


def test_timeout_fast_path_matches_direct_construction():
    # Environment.timeout builds Timeouts without Timeout.__init__ (hot
    # path); the two construction paths must produce identical state
    from repro.simkernel.events import Timeout

    env = Environment()
    fast = env.timeout(1.5, value="v")
    direct = Timeout(env, 1.5, value="v")
    assert type(fast) is Timeout
    slots = ["env", "callbacks", "_value", "_ok", "_defused", "delay"]
    for name in slots:
        assert getattr(fast, name) == getattr(direct, name), name
    # both are scheduled for the same instant and both fire
    env.run()
    assert env.now == 1.5
    assert fast.processed and direct.processed


def test_timeout_fast_path_rejects_negative_delay():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-0.1)  # lint: disable=dropped-event(the call must raise before any event exists)
    assert len(env._queue) == 0
