"""Tests for measurement helpers."""

from repro.simkernel import Counter, Environment, RateMeter, Series, TimeWeighted


def test_time_weighted_mean_utilization():
    env = Environment()
    busy = TimeWeighted(env, 0)

    def proc(env):
        yield env.timeout(2)   # idle 0..2
        busy.value = 1
        yield env.timeout(6)   # busy 2..8
        busy.value = 0
        yield env.timeout(2)   # idle 8..10

    env.process(proc(env))
    env.run()
    assert busy.mean() == 0.6
    assert busy.integral() == 6.0


def test_time_weighted_add():
    env = Environment()
    queue_len = TimeWeighted(env, 0)

    def proc(env):
        queue_len.add(2)
        yield env.timeout(5)
        queue_len.add(-1)
        yield env.timeout(5)

    env.process(proc(env))
    env.run()
    # 2 for 5s then 1 for 5s = integral 15 over 10s
    assert queue_len.mean() == 1.5


def test_time_weighted_reset():
    env = Environment()
    v = TimeWeighted(env, 1)

    def proc(env):
        yield env.timeout(4)
        v.reset()
        yield env.timeout(4)

    env.process(proc(env))
    env.run()
    assert v.mean() == 1.0
    assert v.integral() == 4.0  # only since reset


def test_time_weighted_no_elapsed_time():
    env = Environment()
    v = TimeWeighted(env, 7)
    assert v.mean() == 7


def test_counter_records():
    c = Counter("bytes")
    c.record(100)
    c.record(50)
    assert c.count == 2
    assert c.total == 150
    c.reset()
    assert c.count == 0 and c.total == 0


def test_series_records_time_value_pairs():
    env = Environment()
    s = Series(env, "loss")

    def proc(env):
        s.record(0.9)
        yield env.timeout(2)
        s.record(0.5)

    env.process(proc(env))
    env.run()
    assert s.times == [0.0, 2.0]
    assert s.values == [0.9, 0.5]
    assert s.last() == 0.5
    assert len(s) == 2


def test_series_empty_last_is_none():
    env = Environment()
    assert Series(env).last() is None


def test_rate_meter_average_rate():
    env = Environment()
    meter = RateMeter(env)

    def proc(env):
        meter.start()
        yield env.timeout(1)
        meter.record(1000)
        yield env.timeout(1)
        meter.record(1000)
        meter.stop()

    env.process(proc(env))
    env.run()
    assert meter.total == 2000
    assert meter.rate() == 1000.0


def test_rate_meter_auto_start_on_record():
    env = Environment()
    meter = RateMeter(env)

    def proc(env):
        yield env.timeout(5)
        meter.record(10)
        yield env.timeout(1)

    env.process(proc(env))
    env.run()
    assert meter.rate() == 10.0


def test_rate_meter_zero_time():
    env = Environment()
    meter = RateMeter(env)
    assert meter.rate() == 0.0
