"""Tests for Resource, Container, Store and variants."""

import pytest

from repro.simkernel import (
    Container,
    Environment,
    FilterStore,
    PriorityItem,
    PriorityResource,
    PriorityStore,
    Resource,
    Store,
)


# -- Resource ---------------------------------------------------------------


def test_resource_grants_within_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    granted = []

    def user(env, res, label):
        with res.request() as req:
            yield req
            granted.append((label, env.now))
            yield env.timeout(5)

    env.process(user(env, res, "a"))
    env.process(user(env, res, "b"))
    env.run()
    assert granted == [("a", 0.0), ("b", 0.0)]


def test_resource_queues_beyond_capacity():
    env = Environment()
    res = Resource(env, capacity=1)
    granted = []

    def user(env, res, label, hold):
        with res.request() as req:
            yield req
            granted.append((label, env.now))
            yield env.timeout(hold)

    env.process(user(env, res, "a", 3))
    env.process(user(env, res, "b", 1))
    env.run()
    assert granted == [("a", 0.0), ("b", 3.0)]


def test_resource_count_and_capacity():
    env = Environment()
    res = Resource(env, capacity=2)

    def user(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(1)

    env.process(user(env, res))
    env.process(user(env, res))
    env.process(user(env, res))
    env.run(until=0.5)
    assert res.capacity == 2
    assert res.count == 2
    assert len(res.queue) == 1


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_explicit_release():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env, res):
        req = res.request()
        yield req
        order.append(("hold", env.now))
        yield env.timeout(2)
        yield res.release(req)

    def waiter(env, res):
        with res.request() as req:
            yield req
            order.append(("wait-granted", env.now))

    env.process(holder(env, res))
    env.process(waiter(env, res))
    env.run()
    assert order == [("hold", 0.0), ("wait-granted", 2.0)]


def test_cancel_queued_request_leaves_queue():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def impatient(env, res):
        req = res.request()
        # give up without ever acquiring
        yield env.timeout(1)
        req.cancel()

    env.process(holder(env, res))
    env.process(impatient(env, res))
    env.run(until=2)
    assert len(res.queue) == 0


def test_priority_resource_orders_waiters():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(5)

    def user(env, label, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(label)

    env.process(holder(env))
    env.process(user(env, "low", 5, 1))
    env.process(user(env, "high", 1, 2))
    env.run()
    assert order == ["high", "low"]


# -- Container ---------------------------------------------------------------


def test_container_put_get():
    env = Environment()
    tank = Container(env, capacity=100, init=10)
    levels = []

    def producer(env):
        yield tank.put(50)
        levels.append(("after-put", tank.level))

    def consumer(env):
        yield tank.get(40)
        levels.append(("after-get", tank.level))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    # Both operations complete; net level is 10 + 50 - 40.
    assert len(levels) == 2
    assert tank.level == 20


def test_container_get_blocks_until_available():
    env = Environment()
    tank = Container(env, capacity=10, init=0)
    times = []

    def consumer(env):
        yield tank.get(5)
        times.append(env.now)

    def producer(env):
        yield env.timeout(3)
        yield tank.put(5)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [3.0]


def test_container_put_blocks_when_full():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    times = []

    def producer(env):
        yield tank.put(5)
        times.append(env.now)

    def consumer(env):
        yield env.timeout(2)
        yield tank.get(6)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [2.0]


def test_container_rejects_bad_amounts():
    env = Environment()
    tank = Container(env, capacity=10, init=0)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-1)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=20)


# -- Store ---------------------------------------------------------------


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for item in ["x", "y", "z"]:
            yield store.put(item)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == ["x", "y", "z"]


def test_store_drain_pending_batches_without_blocking():
    env = Environment()
    store = Store(env)
    for item in ["a", "b", "c", "d"]:
        store.put(item)
    assert store.drain_pending(2) == ["a", "b"]
    assert store.drain_pending() == ["c", "d"]
    assert store.drain_pending() == []  # empty: returns, never blocks


def test_store_drain_pending_wakes_blocked_putters():
    env = Environment()
    store = Store(env, capacity=2)
    done = []

    def producer(env):
        for item in range(4):
            yield store.put(item)
        done.append(True)

    env.process(producer(env))
    env.run()
    assert not done  # producer stuck: store full at capacity 2
    assert store.drain_pending() == [0, 1]
    env.run()  # freed capacity lets the remaining puts complete
    assert done and store.items == [2, 3]


def test_filter_store_drain_pending_honours_filter():
    env = Environment()
    store = FilterStore(env)
    for item in [1, 2, 3, 4, 5]:
        store.put(item)
    assert store.drain_pending(filter=lambda item: item % 2) == [1, 3, 5]
    assert store.items == [2, 4]  # rejected items stay queued


def test_priority_store_drain_pending_in_priority_order():
    env = Environment()
    store = PriorityStore(env)
    for item in [5, 1, 3]:
        store.put(item)
    assert store.drain_pending(2) == [1, 3]
    assert store.drain_pending() == [5]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((item, env.now))

    def producer(env):
        yield env.timeout(4)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [("late", 4.0)]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env):
        yield store.put("a")
        yield store.put("b")
        times.append(env.now)

    def consumer(env):
        yield env.timeout(5)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [5.0]


def test_filter_store_selects_matching():
    env = Environment()
    store = FilterStore(env)
    got = []

    def producer(env):
        for item in [1, 2, 3, 4]:
            yield store.put(item)

    def consumer(env):
        item = yield store.get(lambda x: x % 2 == 0)
        got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [2]
    assert store.items == [1, 3, 4]


def test_filter_store_waits_for_match():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer(env):
        item = yield store.get(lambda x: x == "wanted")
        got.append((item, env.now))

    def producer(env):
        yield store.put("other")
        yield env.timeout(2)
        yield store.put("wanted")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [("wanted", 2.0)]


def test_priority_store_yields_smallest():
    env = Environment()
    store = PriorityStore(env)
    got = []

    def producer(env):
        yield store.put(PriorityItem(3, "low"))
        yield store.put(PriorityItem(1, "high"))
        yield store.put(PriorityItem(2, "mid"))

    def consumer(env):
        yield env.timeout(1)
        for _ in range(3):
            item = yield store.get()
            got.append(item.item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == ["high", "mid", "low"]


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)
