"""DebugEnvironment: one test per runtime hazard kind, plus install hooks.

The static lint (:mod:`repro.analysis`) catches source-visible hazards;
these tests pin the *runtime* half of the tentpole: every kernel-misuse
class the debug environment detects, the install/uninstall construction
redirect behind ``pytest --sim-debug``, behavioral equivalence for
correct programs, and a regression drive of the backend timeout-race
defuse path (the one pre-existing spot where a failed event is
intentionally abandoned).
"""

import pytest

from repro.core import HttpBackend, RetryPolicy
from repro.http import HttpResponse, HttpServer
from repro.net import Network
from repro.simkernel import (
    DebugEnvironment,
    Environment,
    SimHazardError,
    debug_environment_installed,
    default_environment_class,
    install_debug_environment,
    set_default_environment_class,
    uninstall_debug_environment,
)


@pytest.fixture
def restore_default_env():
    """Save/restore the construction override around install tests, so
    running the whole suite under ``--sim-debug`` is unaffected."""
    previous = default_environment_class()
    yield
    set_default_environment_class(previous)


# ------------------------------------------------------------ hazard kinds
def test_cross_env_yield_is_detected():
    env_a = DebugEnvironment()
    env_b = DebugEnvironment()

    def confused(env):
        yield env_b.timeout(1.0)  # wrong environment: waiter never resumes

    env_a.process(confused(env_a), name="confused")
    with pytest.raises(SimHazardError, match="cross-env-yield"):
        env_a.run()
    assert [h.kind for h in env_a.hazards] == ["cross-env-yield"]


def test_cross_env_schedule_is_detected():
    env_a = DebugEnvironment()
    env_b = DebugEnvironment()
    stray = env_a.event()
    with pytest.raises(SimHazardError, match="cross-env-schedule"):
        env_b.schedule(stray)
    assert [h.kind for h in env_b.hazards] == ["cross-env-schedule"]


def test_cross_env_run_until_is_detected():
    env_a = DebugEnvironment()
    env_b = DebugEnvironment()
    with pytest.raises(SimHazardError, match="cross-env-run"):
        env_b.run(until=env_a.timeout(1.0))
    assert [h.kind for h in env_b.hazards] == ["cross-env-run"]


def test_double_schedule_is_detected():
    env = DebugEnvironment()
    event = env.event()
    env.schedule(event)
    with pytest.raises(SimHazardError, match="double-schedule"):
        env.schedule(event)
    assert [h.kind for h in env.hazards] == ["double-schedule"]


def test_schedule_after_processed_is_detected():
    env = DebugEnvironment()
    event = env.event()
    event.succeed("done")
    env.run()  # callbacks run; the event is spent
    with pytest.raises(SimHazardError, match="schedule-after-processed"):
        env.schedule(event)


def test_non_monotonic_schedule_is_detected():
    env = DebugEnvironment()
    env.run(until=1.0)
    with pytest.raises(SimHazardError, match="non-monotonic"):
        env.schedule(env.event(), delay=-0.5)
    # the established API error for a negative timeout is preserved
    with pytest.raises(ValueError):
        env.timeout(-1)  # lint: disable=dropped-event(the call must raise before any event exists)


def test_unretrieved_failure_is_recorded_and_reraises_the_original():
    env = DebugEnvironment()
    event = env.event()
    event.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me") as excinfo:
        env.run()
    assert [h.kind for h in env.hazards] == ["unretrieved-failure"]
    # attributable: the original exception carries the hazard as a note
    assert any("sim-debug" in note for note in excinfo.value.__notes__)


def test_defused_failure_is_not_a_hazard():
    env = DebugEnvironment()
    event = env.event()
    event.fail(RuntimeError("intentional"))
    event.defused = True
    env.run()
    assert env.hazards == []


def test_double_trigger_raises_in_the_base_kernel():
    """The Event.trigger guard holds even without the debug environment."""
    env = DebugEnvironment()
    source = env.event()
    source.succeed(5)
    target = env.event()
    target.trigger(source)
    with pytest.raises(RuntimeError, match="already been triggered"):
        target.trigger(source)


# ------------------------------------------------------- install/uninstall
def test_install_redirects_bare_environment_construction(restore_default_env):
    install_debug_environment()
    assert debug_environment_installed()
    env = Environment()
    assert type(env) is DebugEnvironment
    assert env.hazards == []  # subclass __init__ ran
    uninstall_debug_environment()
    assert not debug_environment_installed()
    assert type(Environment()) is Environment


def test_explicit_subclass_construction_is_untouched(restore_default_env):
    install_debug_environment()

    class CustomEnv(Environment):
        pass

    assert type(CustomEnv()) is CustomEnv  # redirect only hits the base class


def test_set_default_rejects_non_environment(restore_default_env):
    with pytest.raises(TypeError):
        set_default_environment_class(int)


# ------------------------------------------------- behavioral equivalence
def simulate(env):
    """A small multi-process program touching timeouts, events, any_of."""
    trace = []

    def producer(env, gate):
        yield env.timeout(1.0)
        gate.succeed("payload")
        trace.append(("produced", env.now))

    def consumer(env, gate):
        result = yield env.any_of((gate, env.timeout(5.0)))
        trace.append(("consumed", env.now, list(result.values())))

    gate = env.event()
    env.process(producer(env, gate), name="producer")
    env.process(consumer(env, gate), name="consumer")
    env.run()
    return trace, env.now


def test_debug_environment_is_behaviorally_equivalent(restore_default_env):
    uninstall_debug_environment()  # force a true base environment
    base_trace, base_now = simulate(Environment())
    debug_env = DebugEnvironment()
    debug_trace, debug_now = simulate(debug_env)
    assert debug_trace == base_trace
    assert debug_now == base_now
    assert debug_env.hazards == []


# ------------------------------------------- regression: timeout-race path
def test_backend_timeout_race_defuse_is_hazard_free():
    """HttpBackend._post abandons a timed-out request process: it defuses
    the still-parked process, interrupts it, and poisons the connection.
    Under DebugEnvironment this whole dance must produce zero hazards —
    the interrupt failure is defused *before* it completes."""
    env = DebugEnvironment()
    net = Network(env, seed=5)
    net.add_host("cloud")
    net.add_host("api")
    net.connect("cloud", "api", bandwidth_bps=1e9, latency_s=0.002)

    def slow_handler(request):
        yield env.timeout(5.0)
        return HttpResponse(status=201, reason="finally")

    HttpServer(net.hosts["api"], 5000, slow_handler, workers=2)
    backend = HttpBackend(
        net.hosts["cloud"], ("api", 5000), timeout_s=0.5,
        retry=RetryPolicy(max_attempts=1),
    )

    def scenario(env):
        yield from backend.ingest({"x": 1})

    env.process(scenario(env), name="scenario")
    env.run(until=60)
    assert backend.spilled.count >= 1  # the timeout fired and was handled
    assert env.hazards == []
