"""Tests for the CoAP codec, endpoints and ProvLight-over-CoAP transport."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coap import (
    CODE_CHANGED,
    CODE_NOT_FOUND,
    CODE_POST,
    TYPE_ACK,
    TYPE_CON,
    TYPE_NON,
    CoapClient,
    CoapError,
    CoapMessage,
    CoapServer,
    CoapTimeout,
    ProvLightCoapClient,
    ProvLightCoapServer,
    code_str,
)
from repro.core import CallableBackend
from repro.device import A8M3, Device
from repro.net import Network
from repro.simkernel import Environment


# -- codec ---------------------------------------------------------------


ROUNDTRIP = [
    CoapMessage(mtype=TYPE_CON, code=CODE_POST, message_id=1,
                uri_path=["prov"], content_format=42, payload=b"data"),
    CoapMessage(mtype=TYPE_NON, code=CODE_POST, message_id=65535,
                uri_path=["a", "b", "c"], payload=b"\x00\xff"),
    CoapMessage(mtype=TYPE_ACK, code=CODE_CHANGED, message_id=7, token=b"tok"),
    CoapMessage(mtype=TYPE_CON, code=CODE_POST, message_id=2,
                uri_path=["x" * 20], payload=b"p" * 300),
    CoapMessage(),  # empty CON
]


@pytest.mark.parametrize("message", ROUNDTRIP, ids=lambda m: repr(m)[:30])
def test_roundtrip(message):
    assert CoapMessage.decode(message.encode()) == message


def test_code_notation():
    assert code_str(CODE_POST) == "0.02"
    assert code_str(CODE_CHANGED) == "2.04"
    assert code_str(CODE_NOT_FOUND) == "4.04"


def test_header_is_four_bytes_minimum():
    assert CoapMessage().wire_size == 4


def test_decode_rejects_garbage():
    with pytest.raises(CoapError):
        CoapMessage.decode(b"\x01")
    with pytest.raises(CoapError):
        CoapMessage.decode(b"\xc0\x00\x00\x01")  # version 3
    with pytest.raises(CoapError):
        CoapMessage.decode(bytes([0x49, 0, 0, 1]))  # token length 9
    good = ROUNDTRIP[0].encode()
    with pytest.raises(CoapError):
        CoapMessage.decode(good[:-5] + b"\xff")  # marker, empty payload


def test_encode_validation():
    with pytest.raises(CoapError):
        CoapMessage(token=b"x" * 9).encode()
    with pytest.raises(CoapError):
        CoapMessage(mtype=7).encode()


@given(st.binary(min_size=0, max_size=60))
@settings(max_examples=150, deadline=None)
def test_property_decode_never_crashes(data):
    try:
        CoapMessage.decode(data)
    except CoapError:
        pass


@given(st.lists(st.text(alphabet="abc", min_size=1, max_size=30), max_size=4),
       st.binary(max_size=100))
@settings(max_examples=100, deadline=None)
def test_property_roundtrip_paths_payloads(path, payload):
    message = CoapMessage(mtype=TYPE_CON, code=CODE_POST, message_id=3,
                          uri_path=path, payload=payload)
    assert CoapMessage.decode(message.encode()) == message


# -- endpoints ---------------------------------------------------------------


def make_world(loss=0.0, seed=2):
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("edge")
    net.add_host("cloud")
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.02, loss=loss)
    server = CoapServer(net.hosts["cloud"])
    client = CoapClient(net.hosts["edge"], ("cloud", 5683), ack_timeout_s=0.3)
    return env, net, server, client


def test_confirmable_post_roundtrip():
    env, net, server, client = make_world()
    seen = []
    server.route("/prov", lambda path, payload: (seen.append(payload) or CODE_CHANGED, b"ok")[0:2] if False else (CODE_CHANGED, b"ok"))
    server.route("/sink", lambda path, payload: (CODE_CHANGED, b""))
    out = {}

    def run(env):
        t0 = env.now
        response = yield from client.post("/prov", b"hello coap")
        out["rtt"] = env.now - t0
        out["code"] = response.code

    env.process(run(env))
    env.run()
    assert out["code"] == CODE_CHANGED
    assert out["rtt"] == pytest.approx(0.0405, rel=0.1)  # RTT + service


def test_unknown_path_returns_404():
    env, net, server, client = make_world()
    out = {}

    def run(env):
        response = yield from client.post("/nowhere", b"x")
        out["code"] = response.code

    env.process(run(env))
    env.run()
    assert out["code"] == CODE_NOT_FOUND


def test_non_confirmable_is_fire_and_forget():
    env, net, server, client = make_world()
    got = []
    server.route("/prov", lambda path, payload: (got.append(payload), (CODE_CHANGED, b""))[1])

    def run(env):
        result = yield from client.post("/prov", b"non", confirmable=False)
        assert result is None
        yield env.timeout(1.0)

    env.process(run(env))
    env.run()
    assert got == [b"non"]


def test_retransmission_recovers_from_loss():
    env, net, server, client = make_world(loss=0.4, seed=9)
    got = []
    server.route("/prov", lambda path, payload: (got.append(payload), (CODE_CHANGED, b""))[1])
    completed = []

    def run(env):
        for i in range(5):
            yield from client.post("/prov", b"m%d" % i)
            completed.append(i)

    env.process(run(env))
    env.run()
    assert completed == list(range(5))
    # dedup: each payload delivered to the handler exactly once
    assert sorted(got) == [b"m%d" % i for i in range(5)]


def test_duplicate_con_is_deduplicated():
    env, net, server, client = make_world()
    calls = []
    server.route("/prov", lambda path, payload: (calls.append(1), (CODE_CHANGED, b""))[1])

    def run(env):
        # send the same message id twice, by hand
        message = CoapMessage(mtype=TYPE_CON, code=CODE_POST, message_id=77,
                              uri_path=["prov"], payload=b"dup")
        client.sock.sendto(message.encode(), client.server)
        client.sock.sendto(message.encode(), client.server)
        yield env.timeout(1.0)

    env.process(run(env))
    env.run()
    assert len(calls) == 1
    assert server.duplicates.count == 1


def test_timeout_after_max_retransmit():
    env = Environment()
    net = Network(env, seed=1)
    net.add_host("edge")
    net.add_host("void")
    net.connect("edge", "void", bandwidth_bps=1e9, latency_s=0.01)
    client = CoapClient(net.hosts["edge"], ("void", 5683),
                        ack_timeout_s=0.05, max_retransmit=2)
    failures = []

    def run(env):
        try:
            yield from client.post("/prov", b"x")
        except CoapTimeout as exc:
            failures.append(str(exc))

    env.process(run(env))
    env.run()
    assert len(failures) == 1


# -- ProvLight over CoAP ------------------------------------------------------


def make_capture_world(group_size=0):
    env = Environment()
    net = Network(env, seed=3)
    dev = Device(env, A8M3)
    net.add_host("edge", device=dev)
    net.add_host("cloud")
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.023)
    sink = []
    server = ProvLightCoapServer(net.hosts["cloud"], CallableBackend(sink.extend))
    client = ProvLightCoapClient(dev, server.endpoint, group_size=group_size)
    return env, net, dev, server, client, sink


def test_capture_over_coap_end_to_end():
    from repro.workloads import SyntheticWorkloadConfig, synthetic_workload

    env, net, dev, server, client, sink = make_capture_world()
    config = SyntheticWorkloadConfig(number_of_tasks=5, task_duration_s=0.1)
    result = {}

    def scenario(env):
        yield from synthetic_workload(env, client, config,
                                      rng=np.random.default_rng(1), result=result)
        yield from client.drain()
        yield env.timeout(10)

    env.process(scenario(env))
    env.run()
    finished = [r for r in sink if r.get("status") == "FINISHED"]
    assert len(finished) == 5
    # capture stayed asynchronous: ~4ms per call against 0.1s tasks
    overhead = result["elapsed"] / config.nominal_duration_s() - 1
    assert overhead < 0.12


def test_coap_transport_uses_fewer_packets_than_qos2():
    """CON/ACK is a 2-packet exchange; MQTT-SN QoS 2 needs 4."""
    from repro.core import ProvLightClient, ProvLightServer
    from repro.workloads import SyntheticWorkloadConfig, synthetic_workload

    config = SyntheticWorkloadConfig(number_of_tasks=10, task_duration_s=0.05)

    def run(transport):
        env = Environment()
        net = Network(env, seed=4)
        dev = Device(env, A8M3)
        net.add_host("edge", device=dev)
        net.add_host("cloud")
        net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.01)
        sink = []
        if transport == "coap":
            server = ProvLightCoapServer(net.hosts["cloud"], CallableBackend(sink.extend))
            client = ProvLightCoapClient(dev, server.endpoint)
        else:
            server = ProvLightServer(net.hosts["cloud"], CallableBackend(sink.extend))
            client = ProvLightClient(dev, server.endpoint, "p/edge")

        def scenario(env):
            if transport == "mqttsn":
                yield from server.add_translator("p/#")
            yield from synthetic_workload(env, client, config,
                                          rng=np.random.default_rng(2))
            yield from client.drain()
            yield env.timeout(10)

        env.process(scenario(env))
        env.run()
        return dev.radio.tx.total + dev.radio.rx.total, len(sink)

    coap_bytes, coap_records = run("coap")
    mqtt_bytes, mqtt_records = run("mqttsn")
    assert coap_records == mqtt_records == 22
    assert coap_bytes < mqtt_bytes  # fewer control packets on the wire


def test_grouped_coap_capture():
    from repro.workloads import SyntheticWorkloadConfig, synthetic_workload

    env, net, dev, server, client, sink = make_capture_world(group_size=5)
    config = SyntheticWorkloadConfig(number_of_tasks=10, task_duration_s=0.05)

    def scenario(env):
        yield from synthetic_workload(env, client, config,
                                      rng=np.random.default_rng(1))
        yield from client.drain()
        yield env.timeout(10)

    env.process(scenario(env))
    env.run()
    finished = [r for r in sink if r.get("status") == "FINISHED"]
    assert len(finished) == 10
    assert client.messages_sent.count == 14  # 2 wf + 10 begins + 2 groups
