"""Property tests for the fault-tolerant server plane.

Two invariants the failover machinery silently depends on:

* removing an arbitrary ring node (shard failover) only reassigns keys
  the dead node owned — survivors never swap keys among themselves;
* a translator worker crashing at arbitrary times — including backend
  ingest failures — never reorders or duplicates a client's seq stream:
  the requeue is prepended, the dedup marks only land after the backend
  accepts, so ingestion stays exactly-once *and* in order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capture.envelope import wrap_payload
from repro.core import ProvLightServer, encode_payload
from repro.hashring import ConsistentHashRing
from repro.net import Network
from repro.simkernel import Environment

ring_keys = [f"client-{i}" for i in range(200)]


@given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=9))
@settings(max_examples=40, deadline=None)
def test_remove_node_only_reassigns_the_dead_nodes_keys(k, dead):
    dead = dead % k
    before = ConsistentHashRing(k, salt="shard")
    after = ConsistentHashRing(k, salt="shard")
    after.remove_node(dead)
    assert dead not in after.live_nodes()
    for key in ring_keys:
        old = before.node_for(key)
        new = after.node_for(key)
        if old != dead:
            assert new == old  # survivors keep their keys
        else:
            assert new != dead  # orphans land on some survivor


@given(st.integers(min_value=2, max_value=6))
@settings(max_examples=20, deadline=None)
def test_remove_node_refuses_to_empty_the_ring(k):
    import pytest

    ring = ConsistentHashRing(k, salt="shard")
    for node in range(k - 1):
        ring.remove_node(node)
    assert ring.live_nodes() == [k - 1]
    with pytest.raises(ValueError):
        ring.remove_node(k - 1)


def record(client, seq):
    return {
        "kind": "task_end", "workflow_id": 1, "task_id": seq,
        "transformation_id": 0, "dependencies": [], "time": float(seq),
        "status": "finished",
        "data": [{"id": f"{client}-{seq}", "workflow_id": 1,
                  "derivations": [], "attributes": {"v": seq}}],
    }


@given(
    n_records=st.integers(min_value=4, max_value=24),
    crash_times=st.lists(
        st.floats(min_value=0.001, max_value=2.0, allow_nan=False),
        max_size=4, unique=True,
    ),
    fail_calls=st.sets(st.integers(min_value=0, max_value=30), max_size=4),
    feed_gap_ms=st.integers(min_value=0, max_value=80),
)
@settings(max_examples=60, deadline=None)
def test_worker_crashes_never_reorder_a_clients_seq_stream(
    n_records, crash_times, fail_calls, feed_gap_ms
):
    """Feed a worker seqs 1..N for two clients while crashing its work
    loop at arbitrary times and failing arbitrary backend calls: every
    record must be ingested exactly once, per client in seq order."""
    env = Environment()
    net = Network(env, seed=1)
    net.add_host("cloud")
    ingested = []

    # a backend that fails whole calls *before* any delivery: the worker
    # re-processes the batch, so a mid-batch partial delivery can't occur
    class FlakyBackend:
        def __init__(self):
            self.calls = 0

        def ingest_batch(self, batch):
            index = self.calls
            self.calls += 1
            if index in fail_calls:
                raise RuntimeError(f"backend rejected call {index}")
            for translated in batch:
                ingested.append(translated)
            return ()

    server = ProvLightServer(net.hosts["cloud"], FlakyBackend())
    worker = server.pool.workers[0]
    worker.restart_base_s = 0.005
    worker.restart_max_s = 0.02

    def feeder(env):
        for seq in range(1, n_records + 1):
            for client in ("edge-a", "edge-b"):
                wire = wrap_payload(client, seq, encode_payload(record(client, seq)))
                worker._inbox.put((f"conf/{client}/data", wire))
            if feed_gap_ms:
                yield env.timeout(feed_gap_ms / 1000.0)
        if not feed_gap_ms:
            yield env.timeout(0)

    def chaos(env):
        for t in sorted(crash_times):
            delay = t - env.now
            if delay > 0:
                yield env.timeout(delay)
            worker.crash()

    env.process(feeder(env))
    env.process(chaos(env))
    env.run(until=120)

    # extract each client's ingested seq stream from the translated output
    streams = {"edge-a": [], "edge-b": []}
    for translated in ingested:
        for task in translated:
            tag = task["datasets"][0]["tag"]  # "<client>-<seq>"
            client, _, seq = tag.rpartition("-")
            streams[client].append(int(seq))
    for client, seqs in streams.items():
        assert seqs == list(range(1, n_records + 1)), (
            f"{client}: got {seqs} (crashes={sorted(crash_times)}, "
            f"failed_calls={sorted(fail_calls)})"
        )
    assert server.records_ingested.total == 2 * n_records
