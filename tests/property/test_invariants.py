"""Property-based tests on core invariants (hypothesis).

These target the data structures and protocols whose correctness the
evaluation numbers silently depend on: the simulation kernel's clock and
stores, TCP stream integrity under arbitrary chunking, topic matching,
the grouping buffer's no-loss invariant, and the query engine against a
reference implementation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import Environment, Store


# -- kernel: time never goes backwards; timeouts fire in order -------------


@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), max_size=30))
@settings(max_examples=100, deadline=None)
def test_kernel_fires_timeouts_in_nondecreasing_order(delays):
    env = Environment()
    fired = []

    def waiter(env, d):
        yield env.timeout(d)
        fired.append(env.now)

    for d in delays:
        env.process(waiter(env, d))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=40))
@settings(max_examples=100, deadline=None)
def test_store_is_fifo_for_any_interleaving(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)
            yield env.timeout(0.01)

    def consumer(env):
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items


# -- TCP: stream integrity under arbitrary chunking -------------------------


@given(
    st.lists(st.binary(min_size=1, max_size=4000), min_size=1, max_size=8),
    st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
)
@settings(max_examples=30, deadline=None)
def test_tcp_delivers_any_chunk_sequence_in_order(chunks, loss):
    from repro.net import Network

    env = Environment()
    net = Network(env, seed=4)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", bandwidth_bps=1e8, latency_s=0.002, loss=loss)
    listener = net.hosts["b"].tcp_listen(80)
    total = sum(len(c) for c in chunks)
    received = bytearray()

    def server(env):
        conn = yield listener.accept()
        while len(received) < total:
            data = yield conn.recv()
            if not data:
                break
            received.extend(data)

    def client(env):
        conn = yield from net.hosts["a"].tcp_connect(("b", 80))
        for chunk in chunks:
            conn.send(chunk)
            yield env.timeout(0.001)

    env.process(server(env))
    env.process(client(env))
    env.run()
    assert bytes(received) == b"".join(chunks)


# -- topic matching: algebraic properties ------------------------------------


topic_level = st.text(alphabet="abcz09", min_size=1, max_size=4)
topics = st.lists(topic_level, min_size=1, max_size=5).map("/".join)


@given(topics)
@settings(max_examples=100, deadline=None)
def test_topic_matches_itself(topic):
    from repro.mqttsn import topic_matches

    assert topic_matches(topic, topic)


@given(topics)
@settings(max_examples=100, deadline=None)
def test_hash_wildcard_matches_everything(topic):
    from repro.mqttsn import topic_matches

    assert topic_matches("#", topic)


@given(topics, st.integers(min_value=0, max_value=4))
@settings(max_examples=100, deadline=None)
def test_plus_wildcard_matches_any_single_level(topic, position):
    from repro.mqttsn import topic_matches

    levels = topic.split("/")
    position = min(position, len(levels) - 1)
    pattern_levels = list(levels)
    pattern_levels[position] = "+"
    assert topic_matches("/".join(pattern_levels), topic)


# -- consistent hashing: resizing by one node remaps only ~1/K of keys --------


ring_keys = [f"provlight/dev-{i}/data" for i in range(600)]


@given(st.integers(min_value=1, max_value=12))
@settings(max_examples=24, deadline=None)
def test_hash_ring_grow_only_moves_keys_to_the_new_node(k):
    """Adding node K to a K-node ring never reshuffles between the old
    nodes: a key either keeps its owner or moves to the new node (the
    property that makes pool/shard resizing cheap)."""
    from repro.hashring import ConsistentHashRing

    before = ConsistentHashRing(k, salt="worker")
    after = ConsistentHashRing(k + 1, salt="worker")
    moved = 0
    for key in ring_keys:
        old, new = before.node_for(key), after.node_for(key)
        if old != new:
            moved += 1
            assert new == k  # only the new node gains keys
    # ~1/(K+1) of keys move (crc32 + 32 virtual points wobbles, so allow
    # a generous factor; the seed-style full reshuffle would move ~K/(K+1))
    assert moved <= len(ring_keys) * 2.5 / (k + 1)
    assert moved > 0  # the new node did take over some arcs


@given(st.integers(min_value=1, max_value=12))
@settings(max_examples=24, deadline=None)
def test_hash_ring_shrink_only_reassigns_the_removed_nodes_keys(k):
    from repro.hashring import ConsistentHashRing

    big = ConsistentHashRing(k + 1, salt="shard")
    small = ConsistentHashRing(k, salt="shard")
    for key in ring_keys:
        if big.node_for(key) != k:  # not on the removed node
            assert small.node_for(key) == big.node_for(key)


@given(st.sampled_from(ring_keys))
@settings(max_examples=50, deadline=None)
def test_translator_pool_and_broker_cluster_share_the_ring_scheme(key):
    """The pool's topic sharding and the cluster's client-id sharding are
    the same pure ring function — so both planes inherit the stability
    properties proven above."""
    from repro.core import CallableBackend, ProvLightServer
    from repro.hashring import ConsistentHashRing
    from repro.mqttsn import BrokerCluster
    from repro.net import Network

    env = Environment()
    net = Network(env, seed=1)
    net.add_host("cloud")
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(lambda r: None),
        workers=4, broker_shards=4, port=2000,
    )
    assert (
        server.pool.worker_for(key)
        is server.pool.workers[ConsistentHashRing(4, salt="worker").node_for(key)]
    )
    cluster = server.broker
    assert isinstance(cluster, BrokerCluster)
    assert cluster.shard_of(key) == ConsistentHashRing(4, salt="shard").node_for(key)


# -- weighted ring + p2c placement + autoscaler ------------------------------


@given(
    st.lists(st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0]),
             min_size=2, max_size=8),
)
@settings(max_examples=30, deadline=None)
def test_weighted_ring_key_share_tracks_weights(weights):
    """A node's share of keys grows with its weight: the heaviest-weight
    node never ends up owning fewer keys than a node at a quarter of its
    weight would predict, and every node gets the deterministic point
    count ``max(1, round(replicas * weight))``."""
    from repro.hashring import ConsistentHashRing

    ring = ConsistentHashRing(len(weights), salt="shard", weights=weights)
    for node, weight in enumerate(weights):
        assert ring.weight_of(node) == weight
    counts = {node: 0 for node in range(len(weights))}
    for key in ring_keys:
        counts[ring.node_for(key)] += 1
    expected_points = [max(1, round(ring.replicas * w)) for w in weights]
    point_counts = {node: 0 for node in range(len(weights))}
    for node in ring._nodes:
        point_counts[node] += 1
    assert [point_counts[n] for n in range(len(weights))] == expected_points
    # distribution check, deliberately loose (crc32 arcs wobble): a node
    # with 16x the weight of another must own at least as many keys
    for heavy in range(len(weights)):
        for light in range(len(weights)):
            if weights[heavy] >= 16 * weights[light]:
                assert counts[heavy] >= counts[light]


@given(st.integers(min_value=2, max_value=8))
@settings(max_examples=20, deadline=None)
def test_weight_one_ring_reproduces_unweighted_ownership(k):
    from repro.hashring import ConsistentHashRing

    plain = ConsistentHashRing(k, salt="shard")
    weighted = ConsistentHashRing(k, salt="shard", weights=[1.0] * k)
    for key in ring_keys:
        assert plain.node_for(key) == weighted.node_for(key)


@given(
    st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=8,
             unique=True),
    st.lists(st.integers(min_value=0, max_value=200), min_size=16, max_size=16),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=200, deadline=None)
def test_p2c_always_picks_a_live_candidate_preferring_lower_load(
    candidates, loads, seed
):
    """``pick_two_choices`` returns a member of ``candidates`` (never a
    dead shard: the cluster only passes live indices) and never prefers
    the strictly more-loaded of its two samples."""
    import random

    from repro.mqttsn.cluster import pick_two_choices

    rng = random.Random(seed)
    sampled = {}

    def load(i):
        sampled[i] = loads[i]
        return loads[i]

    chosen = pick_two_choices(candidates, load, rng)
    assert chosen in candidates
    if sampled:  # two distinct candidates were compared
        assert loads[chosen] == min(sampled.values())


@given(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=4, max_value=12),
)
@settings(max_examples=100, deadline=None)
def test_autoscaler_never_flaps_under_constant_load(queued, workers, ticks):
    """Under a constant offered load the autoscaler moves in one
    direction only and settles: after each resize the pool's per-worker
    load halves (grow) or at most doubles (shrink), so the hysteresis
    band (low <= high/2) guarantees the next decision is never the
    opposite one."""
    from repro.core.server import PoolAutoscaler

    scaler = PoolAutoscaler(1, 8, high_water=8.0, low_water=2.0, sustain=3)
    deltas = []
    for _ in range(ticks):
        delta = scaler.observe(queued, workers)
        deltas.append(delta)
        workers = max(1, min(8, workers + delta))
    nonzero = [d for d in deltas if d]
    assert len(set(nonzero)) <= 1  # never both grow and shrink
    # and it settles: once the per-worker load is in band, no more moves
    per_worker = queued / workers
    if 2.0 <= per_worker <= 8.0:
        tail = []
        for _ in range(8):
            tail.append(scaler.observe(queued, workers))
        assert tail == [0] * 8


# -- grouping: no record lost or duplicated for any group size ----------------


@given(st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=60))
@settings(max_examples=200, deadline=None)
def test_group_buffer_conserves_records(group_size, n_records):
    from repro.core import GroupBuffer

    buf = GroupBuffer(group_size)
    out = []
    for i in range(n_records):
        group = buf.add({"i": i})
        if group:
            out.extend(group)
    final = buf.flush()
    if final:
        out.extend(final)
    assert [r["i"] for r in out] == list(range(n_records))


# -- query engine vs reference implementation ----------------------------------


rows_strategy = st.lists(
    st.fixed_dictionaries(
        {
            "id": st.integers(min_value=0, max_value=50),
            "value": st.floats(min_value=-100, max_value=100, allow_nan=False),
            "group": st.sampled_from(["a", "b", "c"]),
        }
    ),
    max_size=40,
)


@given(rows_strategy, st.floats(min_value=-100, max_value=100, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_query_where_matches_reference_filter(rows, threshold):
    from repro.dfanalyzer import ColumnStore, Query

    store = ColumnStore()
    table = store.create_table("t")
    table.insert_many(rows)
    measured = Query(store, "t").where("value", ">", threshold).rows()
    expected = [r for r in rows if r["value"] > threshold]
    assert [m["id"] for m in measured] == [e["id"] for e in expected]


@given(rows_strategy)
@settings(max_examples=100, deadline=None)
def test_query_group_by_matches_reference_aggregation(rows):
    from repro.dfanalyzer import ColumnStore, Query

    store = ColumnStore()
    table = store.create_table("t")
    table.insert_many(rows)
    measured = {
        r["group"]: (r["n"], r["best"])
        for r in Query(store, "t")
        .group_by("group", aggregate={"n": ("count", "value"), "best": ("max", "value")})
        .rows()
    }
    expected = {}
    for row in rows:
        n, best = expected.get(row["group"], (0, None))
        expected[row["group"]] = (
            n + 1,
            row["value"] if best is None else max(best, row["value"]),
        )
    assert measured == expected


@given(rows_strategy, st.integers(min_value=0, max_value=10))
@settings(max_examples=100, deadline=None)
def test_query_order_limit_matches_reference(rows, k):
    from repro.dfanalyzer import ColumnStore, Query

    store = ColumnStore()
    table = store.create_table("t")
    table.insert_many(rows)
    measured = (
        Query(store, "t").order_by("value", desc=True).limit(k).scalars("value")
    )
    expected = sorted((r["value"] for r in rows), reverse=True)[:k]
    assert measured == expected


# -- statistics: CI contains the mean; overhead sign ----------------------------


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_mean_ci_brackets_the_mean(values):
    from repro.metrics import mean_ci

    ci = mean_ci(values)
    assert ci.low <= ci.mean <= ci.high
    assert ci.halfwidth >= 0


@given(st.floats(min_value=0.01, max_value=1e5, allow_nan=False),
       st.floats(min_value=0.01, max_value=1e5, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_relative_overhead_sign(with_capture, without):
    from repro.metrics import relative_overhead

    overhead = relative_overhead(with_capture, without)
    if with_capture > without:
        assert overhead > 0
    elif with_capture < without:
        assert overhead < 0
    else:
        assert overhead == 0


# -- energy: monotonicity ---------------------------------------------------------


@given(st.lists(st.integers(min_value=1, max_value=10_000), max_size=20))
@settings(max_examples=50, deadline=None)
def test_energy_monotonic_in_transmitted_bytes(sizes):
    from repro.calibration import A8M3_ENERGY
    from repro.device import A8M3, Cpu, EnergyMeter

    env = Environment()
    meter = EnergyMeter(env, A8M3_ENERGY, Cpu(env, A8M3))
    last = meter.energy_joules()
    for size in sizes:
        meter.on_transmit(size)
        current = meter.energy_joules()
        assert current >= last
        last = current
