"""Property tests for the continuum chaos plane.

Two invariants the acceptance suite spot-checks and these tests sweep:

* healing a tier partition always restores routability — whatever
  topology shape and whatever interleaving of partition/heal calls
  preceded it, after the last heal every inter-tier link is up and a
  probe datagram crosses from any leaf to the root;
* device churn never reorders a client's ``(client_id, seq)`` stream at
  the backend — whenever the crash lands and however long the device
  stays down, the dedup index sees each client's seqs strictly
  increasing, each exactly once.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capture import CaptureConfig, create_client
from repro.capture.envelope import ReplayDeduper
from repro.core import CallableBackend, ProvLightServer
from repro.device import A8M3, XEON_GOLD_5220, Device
from repro.net import ContinuumTopology, FleetFaultInjector, Network
from repro.simkernel import Environment

# -- partition/heal restores routability ---------------------------------

tier_counts = st.lists(st.integers(min_value=1, max_value=4),
                       min_size=2, max_size=4)


@given(
    counts=tier_counts,
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=2),  # adjacent pair
                  st.booleans()),                         # partition/heal
        max_size=8,
    ),
    probe_leaf=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_healing_every_partition_restores_routability(counts, ops, probe_leaf):
    counts[-1] = 1  # single root so the probe target is unambiguous
    spec = ",".join(f"t{i}:{count}" for i, count in enumerate(counts))
    env = Environment()
    net = Network(env, seed=3)
    topo = ContinuumTopology(net, spec)
    names = [f"t{i}" for i in range(len(counts))]
    pairs = list(zip(names, names[1:]))
    # arbitrary interleaving of partitions and heals (both idempotent)
    for which, partition in ops:
        a, b = pairs[which % len(pairs)]
        if partition:
            topo.partition_tiers(a, b)
        else:
            topo.heal_tiers(a, b)
    for a, b in pairs:
        topo.heal_tiers(a, b)

    # every inter-tier link is administratively up again
    for a, b in pairs:
        assert not topo.tier_partitioned(a, b)
        for injector in topo.injectors(a, b):
            assert all(link.up for link in injector._links)
    # and packets actually flow end to end: leaf -> root probe
    leaf = topo.edge_hosts[probe_leaf % len(topo.edge_hosts)]
    rx = net.hosts[topo.root].udp_socket(port=7000)
    tx = net.hosts[leaf].udp_socket(port=7001)
    tx.sendto(b"probe", (topo.root, 7000))
    env.run(until=5.0)
    assert rx.pending == 1


# -- churn never reorders a client's seq stream --------------------------

class OrderSpyDeduper(ReplayDeduper):
    def __init__(self):
        super().__init__()
        self.mark_order = {}

    def mark(self, client_id, seq):
        self.mark_order.setdefault(client_id, []).append(seq)
        super().mark(client_id, seq)


@given(
    crash_at=st.floats(min_value=0.05, max_value=3.0),
    down_s=st.floats(min_value=0.3, max_value=2.0),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=10, deadline=None)
def test_churn_never_reorders_a_clients_seq_stream(tmp_path_factory,
                                                   crash_at, down_s, seed):
    tmp_path = tmp_path_factory.mktemp("churn-journals")
    env = Environment()
    net = Network(env, seed=seed % 97)
    net.add_host("cloud", device=Device(env, XEON_GOLD_5220, name="cloud-dev"))
    received = []
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(received.extend), workers=2,
    )
    spy = OrderSpyDeduper()
    server.deduper = spy
    fleet = FleetFaultInjector(env, seed=seed)
    dev = Device(env, A8M3, name="edge-0")
    net.add_host("host-edge-0", device=dev)
    net.connect("host-edge-0", "cloud", bandwidth_bps=1e9, latency_s=0.01)
    config = CaptureConfig(
        transport="mqttsn", durable=True, journal_dir=str(tmp_path),
        client_id="edge-0", qos=1,
        reconnect_base_s=0.2, reconnect_factor=1.5, reconnect_max_s=1.0,
    )

    def build():
        return create_client(dev, server.endpoint, "conf/edge-0/data", config)

    fleet.register("edge-0", build(), build)
    proxy = fleet.proxy("edge-0")
    fleet.crash_restart_at(crash_at, down_s)

    done = []

    def workload(env):
        yield from server.add_translator("conf/edge-0/data")
        yield from proxy.setup()
        for i in range(12):
            yield from proxy.capture({
                "kind": "task_begin", "workflow_id": 1,
                "transformation_id": 1, "task_id": i, "time": proxy.now,
            })
            yield env.timeout(0.25)
        yield from proxy.drain()
        done.append(env.now)

    env.process(workload(env))
    env.run(until=600)

    assert done, "the workload never finished"
    assert proxy.records_completed == 12
    assert len(received) == 12  # zero loss, exactly once
    seqs = spy.mark_order.get("edge-0", [])
    assert seqs == sorted(seqs), "backend saw seqs out of order"
    assert len(seqs) == len(set(seqs)), "backend double-ingested a seq"
