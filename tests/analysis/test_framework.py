"""Framework behavior: suppressions, reporters, path walking, self-lint."""

import json
import os
import textwrap

import pytest

from repro.analysis import (
    BAD_SUPPRESSION,
    PARSE_ERROR,
    UNUSED_SUPPRESSION,
    Violation,
    all_rules,
    get_rules,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

DIRTY = textwrap.dedent(
    """
    try:
        work()
    except Exception:
        pass
    """
)


def test_line_suppression_with_reason_silences_the_violation():
    source = DIRTY.replace(
        "except Exception:",
        "except Exception:  # lint: disable=bare-swallow(fixture says so)",
    )
    assert lint_source(source, "src/repro/m.py") == []


def test_file_level_suppression_covers_every_line():
    source = "# lint: disable-file=bare-swallow(whole fixture is a swallow test)\n" + (
        DIRTY + DIRTY.replace("work()", "other()")
    )
    assert lint_source(source, "src/repro/m.py") == []


def test_suppression_without_reason_is_itself_reported():
    source = DIRTY.replace(
        "except Exception:",
        "except Exception:  # lint: disable=bare-swallow",
    )
    out = lint_source(source, "src/repro/m.py")
    assert {v.rule for v in out} == {BAD_SUPPRESSION, "bare-swallow"}


def test_suppression_of_unknown_rule_is_reported():
    out = lint_source(
        "x = 1  # lint: disable=no-such-rule(because)\n", "src/repro/m.py"
    )
    assert [v.rule for v in out] == [BAD_SUPPRESSION]
    assert "unknown rule" in out[0].message


def test_stale_suppression_is_reported():
    out = lint_source(
        "x = 1  # lint: disable=bare-swallow(nothing to swallow here)\n",
        "src/repro/m.py",
    )
    assert [v.rule for v in out] == [UNUSED_SUPPRESSION]


def test_suppression_comment_inside_string_is_ignored():
    # tokenize-based parsing: a string literal is not a comment
    out = lint_source(
        's = "# lint: disable=bare-swallow(fake)"\n', "src/repro/m.py"
    )
    assert out == []


def test_syntax_error_becomes_parse_error_violation():
    out = lint_source("def broken(:\n", "src/repro/m.py")
    assert [v.rule for v in out] == [PARSE_ERROR]


def test_violation_format_and_ordering():
    v = Violation("a.py", 3, 7, "wall-clock", "msg")
    assert v.format() == "a.py:3:7: wall-clock: msg"
    assert sorted([Violation("b.py", 1, 0, "r", "m"), v])[0] is v


def test_get_rules_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown rule"):
        get_rules(["wall-clock", "nope"])


def test_registry_has_the_documented_rules():
    assert set(all_rules()) == {
        "wall-clock",
        "unseeded-random",
        "dropped-event",
        "bare-swallow",
        "all-export-sync",
    }


def test_render_text_summary_line():
    out = render_text([Violation("a.py", 1, 0, "r", "m")], files_checked=4)
    lines = out.splitlines()
    assert lines[0] == "a.py:1:0: r: m"
    assert lines[-1] == "1 violation(s) in 1 file(s) (4 checked)"


def test_render_json_shape():
    payload = json.loads(render_json([Violation("a.py", 1, 0, "r", "m")], 4))
    assert payload["ok"] is False
    assert payload["files_checked"] == 4
    assert payload["violations"][0]["rule"] == "r"
    assert json.loads(render_json([], 4))["ok"] is True


def test_lint_paths_walks_and_counts(tmp_path):
    pkg = tmp_path / "src" / "repro" / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text("x = 1\n")
    (pkg / "dirty.py").write_text("import time\ntime.time()\n")
    cache = pkg / "__pycache__"
    cache.mkdir()
    (cache / "ignored.py").write_text("import time\ntime.time()\n")
    violations, count = lint_paths([str(tmp_path)])
    assert count == 2  # __pycache__ skipped
    assert [v.rule for v in violations] == ["wall-clock"]


def test_repository_tree_lints_clean():
    """The acceptance gate itself: src and tests carry zero violations."""
    violations, count = lint_paths(
        [os.path.join(REPO_ROOT, "src"), os.path.join(REPO_ROOT, "tests")]
    )
    assert count > 100
    assert violations == [], render_text(violations, count)
