"""scripts/lint.py end-to-end: exit codes and report formats."""

import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
LINT = os.path.join(REPO_ROOT, "scripts", "lint.py")


def run_cli(*args):
    return subprocess.run(
        [sys.executable, LINT, *args],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )


def test_clean_file_exits_zero(tmp_path):
    clean = tmp_path / "src" / "repro" / "clean.py"
    clean.parent.mkdir(parents=True)
    clean.write_text("x = 1\n")
    proc = run_cli(str(clean))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 violation(s)" in proc.stdout


def test_violations_exit_one_with_text_report(tmp_path):
    dirty = tmp_path / "src" / "repro" / "dirty.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text("import time\ntime.time()\n")
    proc = run_cli(str(dirty))
    assert proc.returncode == 1
    assert "wall-clock" in proc.stdout


def test_json_format_is_machine_readable(tmp_path):
    dirty = tmp_path / "src" / "repro" / "dirty.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text("import random\nrandom.random()\n")
    proc = run_cli(str(dirty), "--format=json")
    payload = json.loads(proc.stdout)
    assert payload["ok"] is False
    assert payload["violations"][0]["rule"] == "unseeded-random"


def test_rules_subset_limits_the_run(tmp_path):
    dirty = tmp_path / "src" / "repro" / "dirty.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text("import time\ntime.time()\n")
    proc = run_cli(str(dirty), "--rules", "bare-swallow")
    assert proc.returncode == 0  # wall-clock not selected


def test_list_rules_names_every_check():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for name in ("wall-clock", "unseeded-random", "dropped-event",
                 "bare-swallow", "all-export-sync"):
        assert name in proc.stdout


def test_unknown_rule_is_a_usage_error():
    proc = run_cli("--rules", "no-such-rule", "src")
    assert proc.returncode == 2
    assert "unknown rule" in proc.stderr


def test_missing_path_is_a_usage_error():
    proc = run_cli("definitely/not/a/path")
    assert proc.returncode == 2
