"""Per-rule fixtures: one clean and one dirty program per check.

Each rule is exercised through :func:`repro.analysis.lint_source` with a
path chosen to land on the right side of the src/tests scoping, so these
tests pin both the detection logic and the rule's blast radius.
"""

import textwrap

from repro.analysis import get_rules, lint_source

SRC_PATH = "src/repro/somemod.py"
TEST_PATH = "tests/somemod/test_x.py"


def run(source, rule, path=SRC_PATH):
    return lint_source(textwrap.dedent(source), path, get_rules([rule]))


def rules_hit(violations):
    return sorted({v.rule for v in violations})


# -- wall-clock ------------------------------------------------------------
def test_wall_clock_flags_time_time():
    out = run("import time\nstart = time.time()\n", "wall-clock")
    assert rules_hit(out) == ["wall-clock"]
    assert "host clock" in out[0].message


def test_wall_clock_flags_aliased_from_import():
    out = run("from time import sleep as zzz\nzzz(1)\n", "wall-clock")
    assert rules_hit(out) == ["wall-clock"]
    assert "time.sleep" in out[0].message


def test_wall_clock_flags_datetime_now():
    out = run("import datetime\nts = datetime.datetime.now()\n", "wall-clock")
    assert rules_hit(out) == ["wall-clock"]


def test_wall_clock_clean_simulated_time():
    out = run(
        """
        def proc(env):
            start = env.now
            yield env.timeout(1.0)
            return env.now - start
        """,
        "wall-clock",
    )
    assert out == []


def test_wall_clock_allowlists_the_timing_shim():
    source = "import time\n\n\ndef wall_clock():\n    return time.perf_counter()\n"
    assert run(source, "wall-clock", path="src/repro/harness/timing.py") == []
    # the same source anywhere else is a violation
    assert rules_hit(run(source, "wall-clock")) == ["wall-clock"]


def test_wall_clock_is_src_only():
    assert run("import time\ntime.time()\n", "wall-clock", path=TEST_PATH) == []


# -- unseeded-random -------------------------------------------------------
def test_unseeded_random_flags_stdlib_global():
    out = run("import random\nx = random.random()\n", "unseeded-random")
    assert rules_hit(out) == ["unseeded-random"]
    assert "random.Random(seed)" in out[0].message


def test_unseeded_random_flags_numpy_global():
    out = run("import numpy as np\nx = np.random.rand(3)\n", "unseeded-random")
    assert rules_hit(out) == ["unseeded-random"]
    assert "default_rng" in out[0].message


def test_unseeded_random_clean_seeded_instances():
    out = run(
        """
        import random
        import numpy as np

        rng = random.Random(42)
        x = rng.random()
        gen = np.random.default_rng(7)
        y = gen.normal()
        """,
        "unseeded-random",
    )
    assert out == []


def test_unseeded_random_applies_to_tests_too():
    out = run("import random\nrandom.shuffle([1])\n", "unseeded-random",
              path=TEST_PATH)
    assert rules_hit(out) == ["unseeded-random"]


# -- dropped-event ---------------------------------------------------------
def test_dropped_event_flags_bare_timeout():
    out = run(
        """
        def proc(env):
            env.timeout(1.0)
            yield env.timeout(2.0)
        """,
        "dropped-event",
    )
    assert len(out) == 1 and out[0].rule == "dropped-event"
    assert out[0].line == 3


def test_dropped_event_flags_bare_event():
    out = run("def proc(env):\n    env.event()\n", "dropped-event")
    assert rules_hit(out) == ["dropped-event"]


def test_dropped_event_flags_triggered_fresh_event():
    out = run("def proc(env):\n    env.event().succeed()\n", "dropped-event")
    assert rules_hit(out) == ["dropped-event"]
    assert "bind the event" in out[0].message


def test_dropped_event_allows_triggering_a_stored_event():
    out = run(
        """
        def proc(env, gate):
            gate.succeed()
            yield env.timeout(0)
        """,
        "dropped-event",
    )
    assert out == []


def test_dropped_event_requires_process_name_in_src():
    source = """
        def boot(self):
            self.env.process(self._daemon())
    """
    out = run(source, "dropped-event")
    assert rules_hit(out) == ["dropped-event"]
    assert "name=" in out[0].message
    # tests spawn short-lived processes; no naming requirement there
    assert run(source, "dropped-event", path=TEST_PATH) == []


def test_dropped_event_clean_named_process():
    out = run(
        """
        def boot(self):
            self.env.process(self._daemon(), name="daemon")
    """,
        "dropped-event",
    )
    assert out == []


def test_dropped_event_clean_bound_handles():
    out = run(
        """
        def proc(env):
            t = env.timeout(1.0)
            yield t
            done = env.event()
            return done
        """,
        "dropped-event",
    )
    assert out == []


# -- bare-swallow ----------------------------------------------------------
def test_bare_swallow_flags_except_exception_pass():
    out = run(
        """
        try:
            work()
        except Exception:
            pass
        """,
        "bare-swallow",
    )
    assert rules_hit(out) == ["bare-swallow"]


def test_bare_swallow_flags_bare_except_and_tuple():
    out = run(
        """
        try:
            work()
        except:
            pass

        try:
            work()
        except (ValueError, Exception):
            pass
        """,
        "bare-swallow",
    )
    assert len(out) == 2


def test_bare_swallow_clean_narrow_or_handled():
    out = run(
        """
        try:
            work()
        except ValueError:
            pass

        try:
            work()
        except Exception:
            errors.append(1)
        """,
        "bare-swallow",
    )
    assert out == []


def test_bare_swallow_suppressible_with_reason():
    out = run(
        """
        try:
            work()
        except Exception:  # lint: disable=bare-swallow(listener must not kill the pipeline)
            pass
        """,
        "bare-swallow",
    )
    assert out == []


# -- all-export-sync -------------------------------------------------------
def test_all_export_flags_unbound_name():
    out = run('__all__ = ["ghost"]\n', "all-export-sync")
    assert rules_hit(out) == ["all-export-sync"]
    assert "never binds" in out[0].message


def test_all_export_flags_duplicate():
    out = run('__all__ = ["f", "f"]\n\n\ndef f():\n    pass\n', "all-export-sync")
    assert any("twice" in v.message for v in out)


def test_all_export_flags_missing_public_def():
    out = run(
        '__all__ = ["f"]\n\n\ndef f():\n    pass\n\n\ndef g():\n    pass\n',
        "all-export-sync",
    )
    assert len(out) == 1
    assert "'g'" in out[0].message


def test_all_export_clean_in_sync():
    out = run(
        """
        __all__ = ["f", "CONST", "Klass"]

        CONST = 1


        def f():
            pass


        def _private():
            pass


        class Klass:
            pass
        """,
        "all-export-sync",
    )
    assert out == []


def test_all_export_sees_through_version_guards():
    out = run(
        """
        __all__ = ["fast_path"]

        try:
            from _speedups import fast_path
        except ImportError:
            def fast_path():
                pass
        """,
        "all-export-sync",
    )
    assert out == []


def test_all_export_skips_dynamic_and_absent_all():
    assert run("def f():\n    pass\n", "all-export-sync") == []
    out = run(
        '__all__ = [n for n in ("a", "b")]\n\n\ndef f():\n    pass\n',
        "all-export-sync",
    )
    assert out == []


def test_all_export_is_src_only():
    assert run('__all__ = ["ghost"]\n', "all-export-sync", path=TEST_PATH) == []
