"""Tests for the FL / sensor / imaging application workloads."""

import numpy as np
import pytest

from repro.baselines import NullCaptureClient
from repro.core import CallableBackend, ProvLightClient, ProvLightServer
from repro.device import A8M3, Device
from repro.net import Network
from repro.simkernel import Environment
from repro.workloads import (
    FederatedConfig,
    ImagingConfig,
    LogisticModel,
    SensorConfig,
    federated_training,
    imaging_pipeline,
    make_client_datasets,
    sensor_pipeline,
)


# -- logistic model ----------------------------------------------------------


def test_logistic_model_learns_separable_data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 4))
    w = np.array([1.0, -2.0, 0.5, 3.0])
    y = (X @ w > 0).astype(float)
    model = LogisticModel(4)
    initial_loss = model.loss(X, y)
    for _ in range(50):
        model.gradient_step(X, y, lr=0.8)
    assert model.loss(X, y) < initial_loss / 2
    assert model.accuracy(X, y) > 0.9


def test_logistic_model_clone_is_independent():
    model = LogisticModel(3)
    clone = model.clone()
    clone.weights += 1.0
    assert not np.allclose(model.weights, clone.weights)


def test_client_datasets_shapes():
    config = FederatedConfig(n_clients=3, samples_per_client=40, n_features=5)
    datasets = make_client_datasets(config)
    assert len(datasets) == 3
    for X, y in datasets:
        assert X.shape == (40, 5)
        assert set(np.unique(y)) <= {0.0, 1.0}


# -- federated training --------------------------------------------------------


def fl_world(config):
    env = Environment()
    net = Network(env, seed=9)
    net.add_host("cloud")
    sink = []
    server = ProvLightServer(net.hosts["cloud"], CallableBackend(sink.extend))
    captures = []
    for i in range(config.n_clients):
        dev = Device(env, A8M3, name=f"fl-dev-{i}")
        net.add_host(f"edge-{i}", device=dev)
        net.connect(f"edge-{i}", "cloud", bandwidth_bps=1e9, latency_s=0.023)
        captures.append(
            ProvLightClient(dev, server.endpoint, f"provlight/fl/{i}")
        )
    return env, net, server, captures, sink


def test_federated_training_improves_accuracy_and_captures():
    config = FederatedConfig(n_clients=2, rounds=3, local_epochs=2,
                             epoch_duration_s=0.05)
    env, net, server, captures, sink = fl_world(config)
    history = {}

    def scenario(env):
        yield from server.add_translator("provlight/#")
        yield from federated_training(env, captures, config, history)
        yield env.timeout(60)

    env.process(scenario(env))
    env.run()
    assert history["final_accuracy"] > 0.7
    # records: per client per round per epoch: begin+end tasks
    task_records = [r for r in sink if r.get("type") == "task"]
    assert len(task_records) == 2 * 2 * 3 * 2  # begin+end * clients * rounds * epochs


def test_federated_capture_answers_paper_queries():
    from repro.dfanalyzer import DfAnalyzerService, latest_epoch_metrics, top_k_by_metric

    config = FederatedConfig(n_clients=2, rounds=2, local_epochs=3,
                             epoch_duration_s=0.02)
    env, net, server, captures, sink = fl_world(config)
    service = DfAnalyzerService()
    server.backend = CallableBackend(service.ingest)
    history = {}

    def scenario(env):
        yield from server.add_translator("provlight/#")
        yield from federated_training(env, captures, config, history)
        yield env.timeout(60)

    env.process(scenario(env))
    env.run()
    best = top_k_by_metric(service, "fl-client-0", "accuracy", ["lr", "epoch"], k=3)
    assert len(best) == 3
    assert all(b["lr"] == config.learning_rate for b in best)
    latest = latest_epoch_metrics(service, "fl-client-0", ["lr"],
                                  metrics=("elapsed_time", "loss"))
    assert latest[0]["epoch"] == config.local_epochs - 1
    assert latest[0]["loss"] is not None


def test_federated_requires_matching_client_count():
    config = FederatedConfig(n_clients=3)
    env = Environment()
    dev = Device(env, A8M3)
    with pytest.raises(ValueError):
        list(federated_training(env, [NullCaptureClient(dev)], config))


def test_fedavg_weighted_mean():
    from repro.workloads.federated import _fedavg

    updates = [np.array([1.0, 1.0]), np.array([3.0, 3.0])]
    merged = _fedavg(updates, [1, 3])
    assert np.allclose(merged, [2.5, 2.5])


# -- sensors ---------------------------------------------------------------


def test_sensor_pipeline_runs_and_reports():
    env = Environment()
    dev = Device(env, A8M3)
    client = NullCaptureClient(dev)
    result = {}
    env.process(sensor_pipeline(env, client, SensorConfig(windows=5), result))
    env.run()
    assert result["windows"] == 5
    assert len(result["reports"]) == 5
    # 5 transformations x 2 records per window + workflow begin/end
    assert client.records_captured.count == 5 * 5 * 2 + 2


def test_sensor_pipeline_detects_injected_anomaly():
    env = Environment()
    dev = Device(env, A8M3)
    client = NullCaptureClient(dev)
    result = {}
    # enough windows that glitches occur with the seeded rng
    env.process(sensor_pipeline(env, client, SensorConfig(windows=20, seed=13), result))
    env.run()
    assert isinstance(result["anomalous_windows"], list)


def test_sensor_lineage_chain_through_backend():
    from repro.dfanalyzer import DfAnalyzerService, lineage_of

    env = Environment()
    net = Network(env, seed=3)
    dev = Device(env, A8M3)
    net.add_host("edge", device=dev)
    net.add_host("cloud")
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.01)
    service = DfAnalyzerService()
    server = ProvLightServer(net.hosts["cloud"], CallableBackend(service.ingest))
    client = ProvLightClient(dev, server.endpoint, "provlight/sensors")

    def scenario(env):
        yield from server.add_translator("provlight/#")
        yield from sensor_pipeline(env, client, SensorConfig(windows=2))
        yield env.timeout(60)

    env.process(scenario(env))
    env.run()
    chain = lineage_of(service, "sensors", "rep-1")
    assert chain == ["det-1", "agg-1", "clean-1", "raw-1"]


# -- imaging ---------------------------------------------------------------


def test_mean_filter_smooths():
    rng = np.random.default_rng(1)
    noisy = rng.normal(size=(16, 16))
    smoothed = np.std(
        __import__("repro.workloads.imaging", fromlist=["mean_filter"]).mean_filter(noisy)
    )
    assert smoothed < np.std(noisy)


def test_mean_filter_preserves_constant_images():
    image = np.full((8, 8), 3.25)
    from repro.workloads import mean_filter

    assert np.allclose(mean_filter(image), image)


def test_imaging_pipeline_scores_blobs():
    env = Environment()
    dev = Device(env, A8M3)
    client = NullCaptureClient(dev)
    result = {}
    env.process(imaging_pipeline(env, client, ImagingConfig(n_images=4), result))
    env.run()
    assert len(result["scores"]) == 4
    assert all(0.0 <= s <= 1.0 for s in result["scores"])
    # 5 transformations x 2 + workflow begin/end
    assert client.records_captured.count == 4 * 5 * 2 + 2
