"""Tests for the Table I synthetic workload."""

import pytest

from repro.baselines import NullCaptureClient
from repro.device import A8M3, Device
from repro.simkernel import Environment
from repro.workloads import (
    PAPER_ATTRIBUTE_COUNTS,
    PAPER_TASK_DURATIONS,
    SyntheticWorkloadConfig,
    paper_workload_grid,
    synthetic_workload,
)


def run_null(config, seed=0):
    env = Environment()
    dev = Device(env, A8M3)
    client = NullCaptureClient(dev)
    result = {}
    import numpy as np

    env.process(synthetic_workload(env, client, config,
                                   rng=np.random.default_rng(seed), result=result))
    env.run()
    return env, client, result


def test_paper_grid_has_eight_configs():
    grid = paper_workload_grid()
    assert len(grid) == 8
    assert {c.attributes_per_task for c in grid} == set(PAPER_ATTRIBUTE_COUNTS)
    assert {c.task_duration_s for c in grid} == set(PAPER_TASK_DURATIONS)


def test_task_and_record_counts():
    config = SyntheticWorkloadConfig(number_of_tasks=20, task_duration_s=0.01,
                                     duration_jitter=0.0)
    env, client, result = run_null(config)
    assert result["tasks"] == 20
    # 2 per task + workflow begin/end
    assert result["records"] == 42
    assert client.records_captured.count == 42


def test_elapsed_matches_nominal_without_jitter():
    config = SyntheticWorkloadConfig(number_of_tasks=10, task_duration_s=0.5,
                                     duration_jitter=0.0)
    env, client, result = run_null(config)
    assert result["elapsed"] == pytest.approx(5.0)
    assert config.nominal_duration_s() == 5.0


def test_jitter_produces_run_to_run_variance():
    config = SyntheticWorkloadConfig(number_of_tasks=10, task_duration_s=0.5,
                                     duration_jitter=0.01)
    elapsed = {run_null(config, seed=s)[2]["elapsed"] for s in range(3)}
    assert len(elapsed) == 3  # three distinct durations
    for e in elapsed:
        assert e == pytest.approx(5.0, rel=0.05)


def test_tasks_split_across_transformations():
    config = SyntheticWorkloadConfig(number_of_tasks=100, chained_transformations=5)
    assert config.tasks_per_transformation == 20


def test_attribute_kinds():
    import numpy as np

    from repro.core import CallableBackend, ProvLightClient, ProvLightServer
    from repro.net import Network

    for kind, check in [("int", lambda v: v == [1] * 5), ("float", lambda v: all(isinstance(x, float) for x in v))]:
        env = Environment()
        net = Network(env, seed=1)
        dev = Device(env, A8M3)
        net.add_host("edge", device=dev)
        net.add_host("cloud")
        net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.001)
        sink = []
        server = ProvLightServer(net.hosts["cloud"], CallableBackend(sink.extend))
        client = ProvLightClient(dev, server.endpoint, "t")
        config = SyntheticWorkloadConfig(number_of_tasks=5, task_duration_s=0.01,
                                         attributes_per_task=5, attribute_kind=kind)

        def scenario(env, client=client, server=server, config=config):
            yield from server.add_translator("#")
            yield from synthetic_workload(env, client, config)
            yield env.timeout(30)

        env.process(scenario(env))
        env.run()
        inputs = [r for r in sink if r.get("type") == "task" and r["status"] == "RUNNING"]
        assert check(inputs[0]["datasets"][0]["elements"]["in"])


def test_dependency_chain_links_consecutive_tasks():
    from repro.core import CallableBackend, ProvLightClient, ProvLightServer
    from repro.net import Network

    env = Environment()
    net = Network(env, seed=1)
    dev = Device(env, A8M3)
    net.add_host("edge", device=dev)
    net.add_host("cloud")
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.001)
    sink = []
    server = ProvLightServer(net.hosts["cloud"], CallableBackend(sink.extend))
    client = ProvLightClient(dev, server.endpoint, "t")
    config = SyntheticWorkloadConfig(number_of_tasks=4, chained_transformations=2,
                                     task_duration_s=0.01)

    def scenario(env):
        yield from server.add_translator("#")
        yield from synthetic_workload(env, client, config)
        yield env.timeout(30)

    env.process(scenario(env))
    env.run()
    begins = [r for r in sink if r.get("type") == "task" and r["status"] == "RUNNING"]
    assert begins[0]["dependencies"] == []
    for prev, cur in zip(begins, begins[1:]):
        assert cur["dependencies"] == [prev["task_id"]]


def test_with_helper_creates_modified_copy():
    base = SyntheticWorkloadConfig()
    changed = base.with_(task_duration_s=3.5)
    assert changed.task_duration_s == 3.5
    assert base.task_duration_s == 0.5
