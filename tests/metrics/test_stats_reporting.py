"""Tests for statistics, collectors and table rendering."""

import pytest

from repro.metrics import (
    MeanCI,
    fmt_bytes,
    fmt_ci_pct,
    fmt_pct,
    mean_ci,
    relative_overhead,
    render_table,
    snapshot_device,
    speedup,
)


def test_mean_ci_known_values():
    ci = mean_ci([10.0, 12.0, 11.0, 13.0, 9.0])
    assert ci.mean == pytest.approx(11.0)
    assert ci.n == 5
    assert ci.halfwidth > 0
    assert ci.low < 11.0 < ci.high


def test_mean_ci_single_value_has_zero_width():
    ci = mean_ci([5.0])
    assert ci.mean == 5.0
    assert ci.halfwidth == 0.0


def test_mean_ci_constant_values():
    ci = mean_ci([2.0] * 10)
    assert ci.halfwidth == 0.0


def test_mean_ci_empty_rejected():
    with pytest.raises(ValueError):
        mean_ci([])


def test_mean_ci_width_shrinks_with_samples():
    import numpy as np

    rng = np.random.default_rng(0)
    small = mean_ci(rng.normal(size=5))
    large = mean_ci(rng.normal(size=100))
    assert large.halfwidth < small.halfwidth


def test_mean_ci_formatting():
    ci = MeanCI(mean=0.0154, halfwidth=0.0001, n=10)
    assert ci.as_percent() == "1.54% ±0.01"
    assert "±" in str(ci)


def test_relative_overhead():
    assert relative_overhead(57.0, 50.0) == pytest.approx(0.14)
    assert relative_overhead(50.0, 50.0) == 0.0
    with pytest.raises(ValueError):
        relative_overhead(1.0, 0.0)


def test_speedup():
    assert speedup(142.0, 3.85) == pytest.approx(36.9, rel=0.01)
    with pytest.raises(ValueError):
        speedup(1.0, 0.0)


def test_fmt_helpers():
    assert fmt_pct(0.0154) == "1.54%"
    assert fmt_ci_pct(0.569, 0.0008) == "56.90% ±0.08"
    assert fmt_bytes(512) == "512B"
    assert fmt_bytes(2048) == "2.0KB"
    assert fmt_bytes(3 * 1024 * 1024) == "3.0MB"


def test_render_table_alignment():
    out = render_table(
        "Table X", ["col", "value"], [["a", 1], ["longer", 22]], note="note line"
    )
    assert "=== Table X ===" in out
    assert "| a      | 1     |" in out
    assert out.strip().endswith("note line")


def test_render_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        render_table("t", ["a", "b"], [["only-one"]])


def test_snapshot_device_reads_accounting():
    from repro.device import A8M3, Device
    from repro.simkernel import Environment

    env = Environment()
    dev = Device(env, A8M3)

    def proc(env):
        yield from dev.run(compute_s=0.2, tag="capture")
        dev.radio.on_transmit(1024)
        dev.radio.on_receive(512)
        yield env.timeout(0.8)

    env.process(proc(env))
    env.run()
    m = snapshot_device(dev, elapsed_s=1.0)
    assert m.capture_cpu_utilization == pytest.approx(0.2)
    assert m.tx_bytes == 1024
    assert m.rx_bytes == 512
    assert m.network_rate_bps == pytest.approx(1536 * 8)
    assert m.network_kb_per_s == pytest.approx(1.5)
    assert m.average_power_w is not None


def test_snapshot_zero_elapsed():
    from repro.device import A8M3, Device
    from repro.simkernel import Environment

    env = Environment()
    dev = Device(env, A8M3)
    m = snapshot_device(dev, elapsed_s=0.0)
    assert m.network_rate_bps == 0.0
