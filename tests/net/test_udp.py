"""Tests for UDP sockets."""

import pytest

from repro.net import Network, PortInUse
from repro.simkernel import Environment


def make_net(latency=0.01, **kw):
    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", bandwidth_bps=1e9, latency_s=latency, **kw)
    return env, net


def test_send_receive_roundtrip():
    env, net = make_net()
    server = net.hosts["b"].udp_socket(port=100)
    client = net.hosts["a"].udp_socket()
    log = []

    def rx(env):
        payload, src = yield server.recv()
        log.append((payload, src))

    def tx(env):
        client.sendto(b"ping", ("b", 100))
        yield env.timeout(0)

    env.process(rx(env))
    env.process(tx(env))
    env.run()
    assert log == [(b"ping", ("a", client.port))]


def test_sendto_does_not_block_caller():
    env, net = make_net(latency=5.0)
    net.hosts["b"].udp_socket(port=100)
    client = net.hosts["a"].udp_socket()
    times = []

    def tx(env):
        client.sendto(b"x" * 1000, ("b", 100))
        times.append(env.now)
        yield env.timeout(0)

    env.process(tx(env))
    env.run()
    assert times == [0.0]  # fire-and-forget


def test_datagram_to_unbound_port_is_dropped():
    env, net = make_net()
    client = net.hosts["a"].udp_socket()

    def tx(env):
        client.sendto(b"void", ("b", 12345))
        yield env.timeout(0)

    env.process(tx(env))
    env.run()  # nothing raised, packet vanished


def test_lossy_link_loses_datagrams():
    env, net = make_net(latency=0.0, loss=0.5)
    server = net.hosts["b"].udp_socket(port=100)
    client = net.hosts["a"].udp_socket()

    def tx(env):
        for _ in range(100):
            client.sendto(b"d", ("b", 100))
        yield env.timeout(0)

    env.process(tx(env))
    env.run()
    assert 20 < server.pending < 80


def test_multiple_sockets_dispatch_by_port():
    env, net = make_net()
    s1 = net.hosts["b"].udp_socket(port=1)
    s2 = net.hosts["b"].udp_socket(port=2)
    client = net.hosts["a"].udp_socket()

    def tx(env):
        client.sendto(b"one", ("b", 1))
        client.sendto(b"two", ("b", 2))
        yield env.timeout(0)

    env.process(tx(env))
    env.run()
    assert s1.items_snapshot() if hasattr(s1, "items_snapshot") else True
    assert s1.pending == 1
    assert s2.pending == 1


def test_port_conflict_rejected():
    env, net = make_net()
    net.hosts["b"].udp_socket(port=9)
    with pytest.raises(PortInUse):
        net.hosts["b"].udp_socket(port=9)


def test_closed_socket_rejects_operations():
    env, net = make_net()
    sock = net.hosts["a"].udp_socket()
    sock.close()
    with pytest.raises(RuntimeError):
        sock.sendto(b"x", ("b", 1))
    with pytest.raises(RuntimeError):
        sock.recv()


def test_close_releases_port_for_rebinding():
    env, net = make_net()
    sock = net.hosts["b"].udp_socket(port=44)
    sock.close()
    sock2 = net.hosts["b"].udp_socket(port=44)
    assert sock2.port == 44


def test_payload_type_checked():
    env, net = make_net()
    sock = net.hosts["a"].udp_socket()
    with pytest.raises(TypeError):
        sock.sendto("not-bytes", ("b", 1))


def test_ephemeral_ports_are_unique():
    env, net = make_net()
    ports = {net.hosts["a"].udp_socket().port for _ in range(10)}
    assert len(ports) == 10
