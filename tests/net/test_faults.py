"""Burst loss (Gilbert-Elliott) and partition/flap fault injection."""

import pytest

from repro.net import LinkFaultInjector, Network
from repro.simkernel import Environment


def make_net(seed=0):
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", bandwidth_bps=1e6, latency_s=0.001)
    return env, net


def blast(env, net, n=400, size=100, spacing_s=0.01, port=9):
    """Send ``n`` UDP datagrams a->b; returns the list of arrivals."""
    sock_b = net.hosts["b"].udp_socket(port=port)
    got = []

    def rx(env):
        while True:
            data, src = yield sock_b.recv()
            got.append(data)

    def tx(env):
        sock_a = net.hosts["a"].udp_socket()
        for i in range(n):
            sock_a.sendto(b"x" * size, ("b", port))
            yield env.timeout(spacing_s)

    env.process(rx(env))
    env.process(tx(env))
    return got


# -- burst loss ---------------------------------------------------------------

def test_burst_loss_disabled_by_default():
    env, net = make_net()
    got = blast(env, net, n=200)
    env.run(until=60)
    assert len(got) == 200


def test_burst_loss_drops_in_bursts():
    env, net = make_net(seed=3)
    net.configure_link("a", "b", burst_loss=1.0, p_enter_burst=0.05,
                       p_exit_burst=0.25)
    got = blast(env, net, n=400)
    env.run(until=60)
    # bursts bite: substantial loss, but the good state still delivers
    assert 0 < len(got) < 400
    link = net.link("a", "b")
    assert link.dropped.count > 0
    # mean burst length 1/p_exit = 4 packets: drops must cluster, so the
    # drop count is well above what uniform loss=0 would produce and the
    # deliveries come in runs rather than alternating singles
    assert link.dropped.count >= 20


def test_burst_loss_is_deterministic_per_seed():
    def run(seed):
        env, net = make_net(seed=seed)
        net.configure_link("a", "b", burst_loss=0.9, p_enter_burst=0.1,
                           p_exit_burst=0.3)
        got = blast(env, net, n=300)
        env.run(until=60)
        return len(got)

    assert run(11) == run(11)
    assert run(11) != run(12) or run(11) != run(13)  # seeds matter


def test_burst_loss_validation():
    env, net = make_net()
    link = net.link("a", "b")
    with pytest.raises(ValueError):
        link.configure(burst_loss=1.5)
    with pytest.raises(ValueError):
        link.configure(p_enter_burst=-0.1)
    with pytest.raises(ValueError):
        link.configure(p_exit_burst=0.0)  # would trap the chain in bursts


# -- partition / heal ---------------------------------------------------------

def test_partition_drops_everything_until_heal():
    env, net = make_net()
    faults = LinkFaultInjector(net, "a", "b")
    got = blast(env, net, n=300, spacing_s=0.01)
    faults.partition_at(0.5, 1.0)
    env.run(until=60)
    # 3s of traffic, 1s outage: roughly a third of the stream is gone
    assert 150 < len(got) < 250
    assert net.link("a", "b").dropped.count > 50
    assert faults.outages == [(0.5, 1.5)]
    assert not faults.partitioned


def test_partition_now_and_heal_now():
    env, net = make_net()
    faults = LinkFaultInjector(net, "a", "b")
    assert not faults.partitioned
    faults.partition_now()
    assert faults.partitioned
    assert not net.link("a", "b").up
    assert not net.link("b", "a").up
    faults.partition_now()  # idempotent
    faults.heal_now()
    assert not faults.partitioned
    assert net.link("a", "b").up
    assert len(faults.outages) == 1


def test_flap_schedules_repeated_outages():
    env, net = make_net()
    faults = LinkFaultInjector(net, "a", "b")
    faults.flap(period_s=1.0, down_s=0.25, cycles=4)
    env.run(until=10)
    assert len(faults.outages) == 4
    for start, end in faults.outages:
        assert end - start == pytest.approx(0.25)
    assert not faults.partitioned


def test_fault_injector_validation():
    env, net = make_net()
    faults = LinkFaultInjector(net, "a", "b")
    with pytest.raises(ValueError):
        faults.partition_at(-1.0, 1.0)
    with pytest.raises(ValueError):
        faults.partition_at(0.0, 0.0)
    with pytest.raises(ValueError):
        faults.flap(period_s=1.0, down_s=1.0, cycles=2)
    with pytest.raises(ValueError):
        faults.flap(period_s=1.0, down_s=0.5, cycles=0)
    with pytest.raises(KeyError):
        LinkFaultInjector(net, "a", "nope")


def test_set_and_clear_burst_loss_via_injector():
    env, net = make_net(seed=5)
    faults = LinkFaultInjector(net, "a", "b")
    faults.set_burst_loss(1.0, p_enter_burst=0.2, p_exit_burst=0.2)
    got = blast(env, net, n=200)
    env.run(until=30)
    lossy = len(got)
    assert lossy < 200
    faults.clear_burst_loss()
    got2 = blast(env, net, n=200, port=10)
    env.run(until=60)
    assert len(got2) == 200  # back to a clean link
