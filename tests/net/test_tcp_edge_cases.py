"""Additional TCP behaviours: windows, reordering, RST, jitter."""

import pytest

from repro.net import ConnectionRefused, Network
from repro.net.tcp import DEFAULT_WINDOW, MSS, TcpConnection
from repro.simkernel import Environment


def make_net(latency=0.01, bandwidth=1e9, jitter=0.0, seed=7):
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("client")
    net.add_host("server")
    net.connect("client", "server", bandwidth_bps=bandwidth, latency_s=latency,
                jitter_s=jitter)
    return env, net


def test_window_limits_inflight_bytes():
    env, net = make_net(latency=0.5)  # long RTT so the window binds
    listener = net.hosts["server"].tcp_listen(80)
    received = bytearray()
    payload = b"w" * (DEFAULT_WINDOW * 3)

    def server(env):
        conn = yield listener.accept()
        while len(received) < len(payload):
            data = yield conn.recv()
            received.extend(data)

    inflight_snapshot = {}

    def client(env):
        conn = yield from net.hosts["client"].tcp_connect(("server", 80))
        conn.send(payload)
        yield env.timeout(0.6)  # first RTT not yet acked everything
        inflight_snapshot["bytes"] = conn._next_seq - conn._last_acked

    env.process(server(env))
    env.process(client(env))
    env.run()
    assert bytes(received) == payload
    assert inflight_snapshot["bytes"] <= DEFAULT_WINDOW


def test_rst_to_closed_connection_resets_peer():
    env, net = make_net()
    listener = net.hosts["server"].tcp_listen(80)
    state = {}

    def server(env):
        conn = yield listener.accept()
        yield conn.recv()
        conn.abort()  # hard close
        state["server_conn"] = conn

    def client(env):
        conn = yield from net.hosts["client"].tcp_connect(("server", 80))
        conn.send(b"first")
        yield env.timeout(0.5)
        conn.send(b"second")  # hits a CLOSED peer -> RST back
        yield env.timeout(1.0)
        state["client_state"] = conn.state

    env.process(server(env))
    env.process(client(env))
    env.run()
    assert state["client_state"] == "CLOSED"


def test_connect_refused_is_fast_with_rst():
    env, net = make_net(latency=0.01)
    timing = {}

    def client(env):
        t0 = env.now
        try:
            yield from net.hosts["client"].tcp_connect(("server", 9))
        except ConnectionRefused:
            timing["elapsed"] = env.now - t0

    env.process(client(env))
    env.run()
    # one RTT for SYN + RST, not the multi-second handshake timeout
    assert timing["elapsed"] < 0.1


def test_jitter_reorders_but_stream_stays_in_order():
    env, net = make_net(latency=0.02, jitter=0.015, seed=12)
    listener = net.hosts["server"].tcp_listen(80)
    received = bytearray()
    payload = bytes(range(256)) * 30  # several segments

    def server(env):
        conn = yield listener.accept()
        while len(received) < len(payload):
            data = yield conn.recv()
            received.extend(data)

    def client(env):
        conn = yield from net.hosts["client"].tcp_connect(("server", 80))
        conn.send(payload)

    env.process(server(env))
    env.process(client(env))
    env.run()
    assert bytes(received) == payload


def test_segments_use_mss():
    env, net = make_net()
    listener = net.hosts["server"].tcp_listen(80)
    sizes = []
    original_send = net.send

    def spy(packet):
        if packet.protocol == "tcp" and packet.payload:
            sizes.append(len(packet.payload))
        original_send(packet)

    net.send = spy

    def server(env):
        conn = yield listener.accept()
        got = 0
        while got < 4000:
            data = yield conn.recv()
            got += len(data)

    def client(env):
        conn = yield from net.hosts["client"].tcp_connect(("server", 80))
        conn.send(b"s" * 4000)

    env.process(server(env))
    env.process(client(env))
    env.run()
    assert max(sizes) == MSS
    assert sum(sizes) >= 4000


def test_both_sides_can_close():
    env, net = make_net()
    listener = net.hosts["server"].tcp_listen(80)
    states = {}

    def server(env):
        conn = yield listener.accept()
        data = yield conn.recv()
        conn.send(b"reply:" + data)
        conn.close()
        yield env.timeout(2.0)
        states["server"] = conn.state

    def client(env):
        conn = yield from net.hosts["client"].tcp_connect(("server", 80))
        conn.send(b"req")
        reply = yield conn.recv()
        assert reply == b"reply:req"
        conn.close()
        eof = yield conn.recv()
        yield env.timeout(2.0)
        states["client"] = conn.state

    env.process(server(env))
    env.process(client(env))
    env.run()
    assert states["server"] == "CLOSED"
    assert states["client"] == "CLOSED"


def test_abort_wakes_blocked_receiver():
    env, net = make_net()
    listener = net.hosts["server"].tcp_listen(80)
    got = {}

    def server(env):
        conn = yield listener.accept()
        data = yield conn.recv()  # blocked until abort
        got["data"] = data

    def client(env):
        conn = yield from net.hosts["client"].tcp_connect(("server", 80))
        yield env.timeout(0.2)
        conn.abort()
        # server side learns via its own abort below

    def chaos(env):
        yield env.timeout(0.5)
        for conn in list(net.hosts["server"]._tcp_conns.values()):
            conn.abort()

    env.process(server(env))
    env.process(client(env))
    env.process(chaos(env))
    env.run()
    assert got["data"] == b""  # recv returned EOF instead of hanging
