"""Tests for rate/delay parsing and constraint application."""

import pytest

from repro.net import Network, NetworkConstraint, apply_constraints, parse_delay, parse_rate
from repro.simkernel import Environment


def test_parse_rate_units():
    assert parse_rate("1Gbit") == 1e9
    assert parse_rate("25Kbit") == 25e3
    assert parse_rate("10Mbit") == 10e6
    assert parse_rate("100bit") == 100.0
    assert parse_rate("1KBps") == 8e3
    assert parse_rate(5000) == 5000.0


def test_parse_rate_rejects_garbage():
    with pytest.raises(ValueError):
        parse_rate("fast")
    with pytest.raises(ValueError):
        parse_rate("10parsecs")


def test_parse_delay_units():
    assert parse_delay("23ms") == pytest.approx(0.023)
    assert parse_delay("2s") == 2.0
    assert parse_delay("500us") == pytest.approx(500e-6)
    assert parse_delay(0.5) == 0.5


def test_parse_delay_rejects_garbage():
    with pytest.raises(ValueError):
        parse_delay("soon")


def test_constraint_accessors():
    c = NetworkConstraint(src=["edge"], dst=["cloud"], rate="25Kbit", delay="23ms")
    assert c.bandwidth_bps() == 25e3
    assert c.delay_s() == pytest.approx(0.023)
    assert c.jitter_s() == 0.0


def test_apply_constraints_creates_links():
    env = Environment()
    net = Network(env)
    net.add_host("edge-1")
    net.add_host("cloud")
    configured = apply_constraints(
        net,
        [NetworkConstraint(src=["edge-1"], dst=["cloud"], rate="1Gbit", delay="23ms")],
    )
    assert ("edge-1", "cloud") in configured
    assert net.link("edge-1", "cloud").latency_s == pytest.approx(0.023)
    assert net.link("cloud", "edge-1").latency_s == pytest.approx(0.023)


def test_apply_constraints_reconfigures_existing_links():
    env = Environment()
    net = Network(env)
    net.add_host("edge-1")
    net.add_host("cloud")
    net.connect("edge-1", "cloud", bandwidth_bps=1e9, latency_s=0.001)
    apply_constraints(
        net,
        [NetworkConstraint(src=["edge-1"], dst=["cloud"], rate="25Kbit", delay="23ms")],
    )
    assert net.link("edge-1", "cloud").bandwidth_bps == 25e3


def test_apply_constraints_strict_mode():
    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_host("b")
    with pytest.raises(KeyError):
        apply_constraints(
            net,
            [NetworkConstraint(src=["a"], dst=["b"])],
            create_missing=False,
        )


def test_apply_constraints_skips_self_pairs():
    env = Environment()
    net = Network(env)
    net.add_host("a")
    configured = apply_constraints(
        net, [NetworkConstraint(src=["a"], dst=["a"])]
    )
    assert configured == []


def test_fanout_constraint_many_devices():
    env = Environment()
    net = Network(env)
    names = [f"edge-{i}" for i in range(8)]
    for n in names:
        net.add_host(n)
    net.add_host("cloud")
    configured = apply_constraints(
        net,
        [NetworkConstraint(src=names, dst=["cloud"], rate="1Gbit", delay="23ms")],
    )
    assert len(configured) == 8


def test_parse_rate_bit_vs_byte_families():
    # tc's trap: *bit is bits/s, *bps is BYTES/s (x8)
    assert parse_rate("1kbit") == 1e3
    assert parse_rate("1kbps") == 8e3
    assert parse_rate("2Mbps") == 16e6
    assert parse_rate("1Gbps") == 8e9
    # case-insensitive, like tc
    assert parse_rate("25KBIT") == parse_rate("25kbit") == 25e3
    # fractional quantities
    assert parse_rate("0.5Mbit") == 5e5
    assert parse_rate(".5Mbit") == 5e5


def test_parse_delay_case_and_whitespace():
    assert parse_delay("23MS") == pytest.approx(0.023)
    assert parse_delay(" 23 ms ") == pytest.approx(0.023)
    assert parse_delay("1.5s") == 1.5


@pytest.mark.parametrize("bad", [
    "1.2.3Mbit",       # malformed number
    "Mbit",            # no number
    "10",              # string number without a unit
    "10 ",             # ditto
    "-5Mbit",          # negative rates make no sense
    "1e3bit",          # exponents are not tc grammar
])
def test_parse_rate_rejects_malformed_quantities(bad):
    with pytest.raises(ValueError):
        parse_rate(bad)


def test_parse_errors_name_the_offending_token():
    with pytest.raises(ValueError, match=r"'10parsecs'"):
        parse_rate("10parsecs")
    with pytest.raises(ValueError, match=r"'parsecs'"):
        parse_rate("10parsecs")
    with pytest.raises(ValueError, match="case-insensitive"):
        parse_rate("10parsecs")
    with pytest.raises(ValueError, match=r"'1\.2\.3Mbit'"):
        parse_rate("1.2.3Mbit")
    with pytest.raises(ValueError, match=r"'fortnight'"):
        parse_delay("1fortnight")
    # a rate unit is not a delay unit and vice versa
    with pytest.raises(ValueError, match="delay"):
        parse_delay("10Mbit")
    with pytest.raises(ValueError, match="rate"):
        parse_rate("23ms")
