"""Tests for links, routing and the Network facade."""

import pytest

from repro.net import Link, Network, Packet, UnroutableError
from repro.simkernel import Environment


def make_pair(bandwidth=1e9, latency=0.01, **kw):
    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", bandwidth_bps=bandwidth, latency_s=latency, **kw)
    return env, net


def test_link_delivery_time_is_serialization_plus_latency():
    env = Environment()
    delivered = []
    link = Link(env, "a", "b", bandwidth_bps=8000.0, latency_s=0.5)
    pkt = Packet(src=("a", 1), dst=("b", 2), protocol="udp", payload=b"x" * 972)
    # size = 972 + 28 = 1000 bytes = 8000 bits -> serialization 1.0s
    link.send(pkt, lambda p: delivered.append((p, env.now)))
    env.run()
    assert delivered[0][1] == pytest.approx(1.5)


def test_link_fifo_queueing_serializes_transmissions():
    env = Environment()
    delivered = []
    link = Link(env, "a", "b", bandwidth_bps=8000.0, latency_s=0.0)
    for i in range(3):
        pkt = Packet(src=("a", 1), dst=("b", 2), protocol="udp", payload=b"x" * 972)
        link.send(pkt, lambda p, i=i: delivered.append((i, env.now)))
    env.run()
    assert [t for _, t in delivered] == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


def test_link_propagation_is_pipelined():
    # with a long latency, back-to-back packets overlap in flight
    env = Environment()
    delivered = []
    link = Link(env, "a", "b", bandwidth_bps=8e6, latency_s=1.0)
    for i in range(2):
        pkt = Packet(src=("a", 1), dst=("b", 2), protocol="udp", payload=b"x" * 972)
        link.send(pkt, lambda p, i=i: delivered.append(env.now))
    env.run()
    # serialization 1ms each; arrivals at ~1.001 and ~1.002, not 2.x
    assert delivered[0] == pytest.approx(1.001)
    assert delivered[1] == pytest.approx(1.002)


def test_link_loss_drops_packets_deterministically():
    env = Environment()
    import numpy as np

    delivered = []
    link = Link(env, "a", "b", bandwidth_bps=1e9, latency_s=0.0, loss=0.5,
                rng=np.random.default_rng(42))
    for _ in range(200):
        pkt = Packet(src=("a", 1), dst=("b", 2), protocol="udp", payload=b"x")
        link.send(pkt, lambda p: delivered.append(p))
    env.run()
    assert 60 < len(delivered) < 140  # ~100 expected
    assert link.dropped.count == 200 - len(delivered)


def test_link_parameter_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Link(env, "a", "b", bandwidth_bps=0, latency_s=0)
    with pytest.raises(ValueError):
        Link(env, "a", "b", bandwidth_bps=1, latency_s=-1)
    with pytest.raises(ValueError):
        Link(env, "a", "b", bandwidth_bps=1, latency_s=0, loss=1.0)


def test_link_reconfigure_at_runtime():
    env, net = make_pair(bandwidth=8000.0, latency=0.0)
    link = net.link("a", "b")
    link.configure(bandwidth_bps=16000.0)
    assert link.bandwidth_bps == 16000.0
    with pytest.raises(ValueError):
        link.configure(loss=2.0)


def test_network_duplicate_host_rejected():
    env = Environment()
    net = Network(env)
    net.add_host("a")
    with pytest.raises(ValueError):
        net.add_host("a")


def test_network_duplicate_link_rejected():
    env, net = make_pair()
    with pytest.raises(ValueError):
        net.connect("a", "b", bandwidth_bps=1e9, latency_s=0)


def test_network_link_lookup():
    env, net = make_pair()
    assert net.link("a", "b").src == "a"
    assert net.link("b", "a").src == "b"
    with pytest.raises(KeyError):
        net.link("a", "zzz")


def test_route_multi_hop():
    env = Environment()
    net = Network(env)
    for name in "abc":
        net.add_host(name)
    net.connect("a", "b", bandwidth_bps=1e9, latency_s=0.01)
    net.connect("b", "c", bandwidth_bps=1e9, latency_s=0.01)
    assert net.route("a", "c") == ["a", "b", "c"]


def test_unroutable_raises():
    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_host("island")
    pkt = Packet(src=("a", 1), dst=("island", 2), protocol="udp", payload=b"")
    with pytest.raises(UnroutableError):
        net.send(pkt)


def test_multi_hop_forwarding_delivers_end_to_end():
    env = Environment()
    net = Network(env)
    for name in "abc":
        net.add_host(name)
    net.connect("a", "b", bandwidth_bps=1e9, latency_s=0.1)
    net.connect("b", "c", bandwidth_bps=1e9, latency_s=0.1)
    sock_c = net.hosts["c"].udp_socket(port=9)
    sock_a = net.hosts["a"].udp_socket()
    received = []

    def receiver(env):
        payload, src = yield sock_c.recv()
        received.append((payload, env.now))

    def sender(env):
        sock_a.sendto(b"hop", ("c", 9))
        yield env.timeout(0)

    env.process(receiver(env))
    env.process(sender(env))
    env.run()
    assert received[0][0] == b"hop"
    assert received[0][1] == pytest.approx(0.2, abs=0.01)


def test_loopback_delivery():
    env = Environment()
    net = Network(env)
    net.add_host("solo")
    sock_in = net.hosts["solo"].udp_socket(port=5)
    sock_out = net.hosts["solo"].udp_socket()
    got = []

    def receiver(env):
        payload, src = yield sock_in.recv()
        got.append((payload, env.now))

    def sender(env):
        sock_out.sendto(b"self", ("solo", 5))
        yield env.timeout(0)

    env.process(receiver(env))
    env.process(sender(env))
    env.run()
    assert got[0][0] == b"self"
    assert got[0][1] < 0.001


def test_total_link_bytes_counted():
    env, net = make_pair()
    sock_b = net.hosts["b"].udp_socket(port=7)
    sock_a = net.hosts["a"].udp_socket()

    def sender(env):
        sock_a.sendto(b"x" * 100, ("b", 7))
        yield env.timeout(0)

    env.process(sender(env))
    env.run()
    assert net.total_link_bytes() == 128  # 100 + 28 header


def test_device_radio_accounting_via_network():
    from repro.device import A8M3, Device

    env = Environment()
    net = Network(env)
    dev_a = Device(env, A8M3, name="edge")
    net.add_host("a", device=dev_a)
    net.add_host("b")
    net.connect("a", "b", bandwidth_bps=1e9, latency_s=0.001)
    net.hosts["b"].udp_socket(port=7)
    sock_a = net.hosts["a"].udp_socket()

    def sender(env):
        sock_a.sendto(b"y" * 72, ("b", 7))
        yield env.timeout(0)

    env.process(sender(env))
    env.run()
    assert dev_a.radio.tx.total == 100
    assert dev_a.host is net.hosts["a"]
