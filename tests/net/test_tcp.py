"""Tests for the TCP model: handshake, streaming, loss recovery, close."""

import pytest

from repro.net import ConnectionRefused, Network
from repro.simkernel import Environment


def make_net(latency=0.01, bandwidth=1e9, **kw):
    env = Environment()
    net = Network(env, seed=7)
    net.add_host("client")
    net.add_host("server")
    net.connect("client", "server", bandwidth_bps=bandwidth, latency_s=latency, **kw)
    return env, net


def echo_server(env, net, port=80, chunks=1):
    """Accept one connection and echo everything it receives."""
    listener = net.hosts["server"].tcp_listen(port)

    def run(env):
        conn = yield listener.accept()
        while True:
            data = yield conn.recv()
            if not data:
                break
            conn.send(data)

    env.process(run(env))
    return listener


def test_connect_completes_after_handshake():
    env, net = make_net(latency=0.05)
    net.hosts["server"].tcp_listen(80)
    result = {}

    def client(env):
        conn = yield from net.hosts["client"].tcp_connect(("server", 80))
        result["time"] = env.now
        result["established"] = conn.established

    env.process(client(env))
    env.run()
    # SYN (0.05) + SYN-ACK (0.05) -> established at client after 1 RTT
    assert result["time"] == pytest.approx(0.1, rel=0.01)
    assert result["established"]


def test_connect_to_missing_listener_refused():
    env, net = make_net()
    failures = []

    def client(env):
        try:
            yield from net.hosts["client"].tcp_connect(("server", 81))
        except ConnectionRefused as exc:
            failures.append(str(exc))

    env.process(client(env))
    env.run()
    assert len(failures) == 1


def test_send_recv_roundtrip():
    env, net = make_net()
    echo_server(env, net)
    got = []

    def client(env):
        conn = yield from net.hosts["client"].tcp_connect(("server", 80))
        conn.send(b"hello tcp")
        data = yield conn.recv()
        got.append(data)

    env.process(client(env))
    env.run()
    assert got == [b"hello tcp"]


def test_large_transfer_is_segmented_and_reassembled():
    env, net = make_net()
    listener = net.hosts["server"].tcp_listen(80)
    received = bytearray()
    payload = bytes(range(256)) * 40  # 10240 bytes > 7 segments

    def server(env):
        conn = yield listener.accept()
        while len(received) < len(payload):
            data = yield conn.recv()
            received.extend(data)

    def client(env):
        conn = yield from net.hosts["client"].tcp_connect(("server", 80))
        conn.send(payload)

    env.process(server(env))
    env.process(client(env))
    env.run()
    assert bytes(received) == payload


def test_transfer_time_respects_bandwidth():
    # 25 Kbit/s link: 10 KB of payload + headers takes seconds, not ms
    env, net = make_net(latency=0.023, bandwidth=25e3)
    listener = net.hosts["server"].tcp_listen(80)
    done = {}
    payload = b"z" * 10_000

    def server(env):
        conn = yield listener.accept()
        got = 0
        while got < len(payload):
            data = yield conn.recv()
            got += len(data)
        done["t"] = env.now

    def client(env):
        conn = yield from net.hosts["client"].tcp_connect(("server", 80))
        conn.send(payload)

    env.process(server(env))
    env.process(client(env))
    env.run()
    # >= payload bits / bandwidth = 3.2s; plus headers/acks/handshake
    assert done["t"] > 3.2
    assert done["t"] < 6.0


def test_loss_recovery_delivers_reliably():
    env, net = make_net(latency=0.005, loss=0.15)
    listener = net.hosts["server"].tcp_listen(80)
    received = bytearray()
    payload = b"R" * 20_000

    def server(env):
        conn = yield listener.accept()
        while len(received) < len(payload):
            data = yield conn.recv()
            received.extend(data)

    def client(env):
        conn = yield from net.hosts["client"].tcp_connect(("server", 80))
        conn.send(payload)

    env.process(server(env))
    env.process(client(env))
    env.run()
    assert bytes(received) == payload


def test_close_signals_eof_to_peer():
    env, net = make_net()
    listener = net.hosts["server"].tcp_listen(80)
    log = []

    def server(env):
        conn = yield listener.accept()
        while True:
            data = yield conn.recv()
            if data == b"":
                log.append("eof")
                break
            log.append(data)

    def client(env):
        conn = yield from net.hosts["client"].tcp_connect(("server", 80))
        conn.send(b"bye")
        conn.close()

    env.process(server(env))
    env.process(client(env))
    env.run()
    assert log == [b"bye", "eof"]


def test_send_after_close_rejected():
    env, net = make_net()
    net.hosts["server"].tcp_listen(80)
    errors = []

    def client(env):
        conn = yield from net.hosts["client"].tcp_connect(("server", 80))
        conn.close()
        try:
            conn.send(b"late")
        except RuntimeError as exc:
            errors.append(str(exc))

    env.process(client(env))
    env.run()
    assert len(errors) == 1


def test_bidirectional_streams_are_independent():
    env, net = make_net()
    listener = net.hosts["server"].tcp_listen(80)
    got = {"server": b"", "client": b""}

    def server(env):
        conn = yield listener.accept()
        conn.send(b"from-server")
        data = yield conn.recv()
        got["server"] = data

    def client(env):
        conn = yield from net.hosts["client"].tcp_connect(("server", 80))
        conn.send(b"from-client")
        data = yield conn.recv()
        got["client"] = data

    env.process(server(env))
    env.process(client(env))
    env.run()
    assert got == {"server": b"from-client", "client": b"from-server"}


def test_recv_max_bytes_partial_read():
    env, net = make_net()
    listener = net.hosts["server"].tcp_listen(80)
    reads = []

    def server(env):
        conn = yield listener.accept()
        first = yield conn.recv(4)
        reads.append(first)
        rest = yield conn.recv()
        reads.append(rest)

    def client(env):
        conn = yield from net.hosts["client"].tcp_connect(("server", 80))
        conn.send(b"abcdefgh")

    env.process(server(env))
    env.process(client(env))
    env.run()
    assert reads == [b"abcd", b"efgh"]


def test_two_connections_to_same_listener():
    env, net = make_net()
    listener = net.hosts["server"].tcp_listen(80)
    seen = []

    def server(env):
        for _ in range(2):
            conn = yield listener.accept()
            env.process(handle(env, conn))

    def handle(env, conn):
        data = yield conn.recv()
        seen.append(data)

    def client(env, tag):
        conn = yield from net.hosts["client"].tcp_connect(("server", 80))
        conn.send(tag)

    env.process(server(env))
    env.process(client(env, b"c1"))
    env.process(client(env, b"c2"))
    env.run()
    assert sorted(seen) == [b"c1", b"c2"]


def test_acks_consume_reverse_bandwidth():
    env, net = make_net(latency=0.0, bandwidth=1e6)
    listener = net.hosts["server"].tcp_listen(80)

    def server(env):
        conn = yield listener.accept()
        total = 0
        while total < 5000:
            data = yield conn.recv()
            total += len(data)

    def client(env):
        conn = yield from net.hosts["client"].tcp_connect(("server", 80))
        conn.send(b"q" * 5000)

    env.process(server(env))
    env.process(client(env))
    env.run()
    reverse = net.link("server", "client")
    assert reverse.tx_bytes.total > 0  # SYN-ACK + data ACKs
