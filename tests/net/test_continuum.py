"""ContinuumTopology + TopologySpec: tiered edge/fog/cloud emulation."""

import pytest

from repro.net import (
    LINK_PROFILES,
    TOPOLOGY_PRESETS,
    ContinuumTopology,
    LinkProfile,
    Network,
    TopologySpec,
)
from repro.simkernel import Environment


# ------------------------------------------------------------- the grammar

def test_parse_full_spec():
    spec = TopologySpec.parse("edge:8:lossy-wireless,fog:2:wan-fog,cloud:1")
    assert [t.name for t in spec.tiers] == ["edge", "fog", "cloud"]
    assert spec.leaf.count == 8
    assert spec.leaf.profile == "lossy-wireless"
    assert spec.root.profile is None
    assert spec.tier("fog").count == 2
    assert spec.describe() == "edge:8:lossy-wireless,fog:2:wan-fog,cloud:1"


def test_parse_resolves_presets_and_roundtrips():
    for name, text in TOPOLOGY_PRESETS.items():
        spec = TopologySpec.parse(name)
        assert spec.describe() == text
        # every preset profile must exist
        for tier in spec.tiers:
            assert tier.profile is None or tier.profile in LINK_PROFILES


def test_scaled_resizes_only_the_leaf_tier():
    spec = TopologySpec.parse("lossy-wireless").scaled(6)
    assert spec.leaf.count == 6
    assert spec.leaf.profile == "lossy-wireless"
    assert spec.tier("fog").count == 4
    with pytest.raises(ValueError):
        spec.scaled(0)


@pytest.mark.parametrize("bad", [
    "",                                  # no tiers at all
    "edge:8",                            # a single tier is not a continuum
    "edge",                              # missing count
    "edge:8:ideal:extra,cloud:1",        # too many fields
    "Edge:8,cloud:1",                    # uppercase tier name
    "my-tier:8,cloud:1",                 # dash in tier name (qualifier clash)
    "edge:x,cloud:1",                    # non-integer count
    "edge:0,cloud:1",                    # count < 1
    "edge:8,edge:1",                     # duplicate tier name
    "edge:8:warp-drive,cloud:1",         # unknown profile
    "edge:8,cloud:1:ideal",              # root tier takes no profile
])
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        TopologySpec.parse(bad)


def test_rejections_name_the_offending_token():
    with pytest.raises(ValueError, match="warp-drive"):
        TopologySpec.parse("edge:8:warp-drive,cloud:1")
    with pytest.raises(ValueError, match="'x'"):
        TopologySpec.parse("edge:x,cloud:1")
    with pytest.raises(ValueError, match="my-tier"):
        TopologySpec.parse("my-tier:8,cloud:1")


def test_link_profile_validates_eagerly():
    with pytest.raises(ValueError):
        LinkProfile("bad", rate="1.2.3Gbit")
    with pytest.raises(ValueError):
        LinkProfile("bad", delay="23parsecs")
    with pytest.raises(ValueError):
        LinkProfile("bad", loss=1.0)


# ------------------------------------------------------------ construction

def make_topology(spec="edge:6:constrained-edge,fog:2,cloud:1", **kwargs):
    env = Environment()
    net = Network(env, seed=7)
    topo = ContinuumTopology(net, spec, **kwargs)
    return env, net, topo


def test_build_creates_tiered_hosts_and_balanced_uplinks():
    env, net, topo = make_topology()
    assert topo.edge_hosts == [f"edge-{i}" for i in range(6)]
    assert topo.hosts_in("fog") == ["fog-0", "fog-1"]
    assert topo.root == "cloud-0"
    # balanced fan-in: edge-i parents onto fog-(i % 2)
    assert net.route("edge-3", "cloud-0") == ["edge-3", "fog-1", "cloud-0"]
    # the edge uplink carries the constrained-edge profile
    link = net.link("edge-0", "fog-0")
    assert link.bandwidth_bps == pytest.approx(25e3)
    assert link.latency_s == pytest.approx(0.023)


def test_build_applies_burst_loss_profiles():
    env, net, topo = make_topology("edge:2:lossy-wireless,cloud:1")
    link = net.link("edge-0", "cloud-0")
    profile = LINK_PROFILES["lossy-wireless"]
    assert link.loss == pytest.approx(profile.loss)
    assert link.burst_loss == pytest.approx(profile.burst_loss)
    assert link.p_enter_burst == pytest.approx(profile.p_enter_burst)


def test_root_host_reuses_an_existing_host():
    env = Environment()
    net = Network(env, seed=7)
    net.add_host("mgr")
    topo = ContinuumTopology(net, "edge:2,cloud:1", root_host="mgr")
    assert topo.root == "mgr"
    assert net.route("edge-1", "mgr") == ["edge-1", "mgr"]
    with pytest.raises(KeyError):
        ContinuumTopology(Network(Environment()), "edge:2,cloud:1",
                          root_host="ghost")
    with pytest.raises(ValueError):
        ContinuumTopology(Network(Environment()), "edge:2,cloud:2",
                          root_host="mgr")


def test_device_factory_attaches_leaf_devices():
    placed = []

    def factory(tier, index):
        placed.append((tier, index))
        return None

    make_topology("edge:3,cloud:1", device_factory=factory)
    assert ("edge", 0) in placed and ("cloud", 0) in placed


# ------------------------------------------------------- tier-level faults

def test_partition_and_heal_tiers_cuts_and_restores_routing():
    env, net, topo = make_topology()
    assert not topo.tier_partitioned("edge", "fog")
    topo.partition_tiers("edge", "fog")
    assert topo.tier_partitioned("fog", "edge")  # order-insensitive
    for injector in topo.injectors("edge", "fog"):
        assert not injector._links[0].up
    topo.partition_tiers("edge", "fog")  # idempotent
    env.run(until=2.0)
    topo.heal_tiers("edge", "fog")
    assert not topo.tier_partitioned("edge", "fog")
    for injector in topo.injectors("edge", "fog"):
        assert injector._links[0].up
    assert topo.tier_outages == [("edge", "fog", 0.0, pytest.approx(2.0))]


def test_partition_rejects_non_adjacent_tiers():
    env, net, topo = make_topology()
    with pytest.raises(ValueError, match="not adjacent"):
        topo.partition_tiers("edge", "cloud")
    with pytest.raises(KeyError):
        topo.partition_tiers("edge", "mist")


def test_partition_tiers_at_runs_on_the_sim_clock():
    env, net, topo = make_topology()
    topo.partition_tiers_at("edge", "fog", after_s=1.0, duration_s=0.5)
    env.run(until=1.2)
    assert topo.tier_partitioned("edge", "fog")
    env.run(until=2.0)
    assert not topo.tier_partitioned("edge", "fog")
    assert len(topo.tier_outages) == 1
    with pytest.raises(ValueError):
        topo.partition_tiers_at("edge", "fog", after_s=-1.0, duration_s=0.5)
    with pytest.raises(ValueError):
        topo.partition_tiers_at("edge", "fog", after_s=1.0, duration_s=0.0)


def test_degrade_and_clear_restores_the_original_loss():
    env, net, topo = make_topology("edge:2:lossy-wireless,cloud:1")
    original = net.link("edge-0", "cloud-0").loss
    topo.degrade_tiers("edge", "cloud", loss=0.5)
    assert net.link("edge-0", "cloud-0").loss == pytest.approx(0.5)
    topo.degrade_tiers("edge", "cloud", loss=0.7)  # storm over storm
    env.run(until=1.0)
    topo.clear_degradation("edge", "cloud")
    assert net.link("edge-0", "cloud-0").loss == pytest.approx(original)
    topo.clear_degradation("edge", "cloud")  # idempotent
    assert topo.degradations == [("edge", "cloud", 0.0, pytest.approx(1.0))]
    with pytest.raises(ValueError):
        topo.degrade_tiers("edge", "cloud", loss=0.0)
    with pytest.raises(ValueError):
        topo.degrade_tiers("edge", "cloud", loss=1.0)


def test_packets_stop_during_partition_and_flow_after_heal():
    env, net, topo = make_topology("edge:1,cloud:1")
    rx = net.hosts["cloud-0"].udp_socket(port=9000)
    tx = net.hosts["edge-0"].udp_socket(port=9001)
    topo.partition_tiers("edge", "cloud")
    tx.sendto(b"during", ("cloud-0", 9000))
    env.run(until=1.0)
    assert rx.pending == 0
    topo.heal_tiers("edge", "cloud")
    tx.sendto(b"after", ("cloud-0", 9000))
    env.run(until=2.0)
    assert rx.pending == 1


# ---------------------------------------------------------- observability

def test_stats_snapshot():
    env, net, topo = make_topology()
    topo.partition_tiers("fog", "cloud")
    stats = topo.stats()
    assert stats["spec"] == "edge:6:constrained-edge,fog:2,cloud:1"
    assert stats["tiers"] == {"edge": 6, "fog": 2, "cloud": 1}
    assert stats["hosts"] == 9
    assert stats["partitioned_pairs"] == ["fog-cloud"]
    assert stats["tier_outages"] == 0
    assert stats["degradations"] == 0
