"""ServerFaultInjector + ChaosProfile: the server-plane chaos harness."""

import pytest

from repro.core import CallableBackend, ProvLightServer
from repro.device import XEON_GOLD_5220, Device
from repro.net import ChaosEvent, ChaosProfile, Network, ServerFaultInjector
from repro.simkernel import Environment


def make_server(shards=4, workers=4, seed=3):
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("cloud", device=Device(env, XEON_GOLD_5220, name="cloud-dev"))
    sink = []
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(sink.extend),
        workers=workers, broker_shards=shards,
    )
    return env, net, server, sink


# ------------------------------------------------------------- the injector

def test_kill_shard_defaults_to_busiest_and_logs():
    env, net, server, _ = make_server()
    inj = ServerFaultInjector(server)
    killed = inj.kill_shard()
    assert killed in range(4)
    assert not server.broker.shards[killed].alive
    assert inj.events == [(0.0, f"kill-shard:{killed}")]
    env.run()
    assert server.broker.failovers.count == 1


def test_kill_shard_at_fires_on_the_sim_clock():
    env, net, server, _ = make_server()
    inj = ServerFaultInjector(server)
    inj.kill_shard_at(1.5, index=2)
    env.run(until=1.0)
    assert server.broker.shards[2].alive
    env.run(until=5.0)
    assert not server.broker.shards[2].alive
    assert inj.events[0][0] == pytest.approx(1.5)
    with pytest.raises(ValueError):
        inj.kill_shard_at(-1.0)


def test_crash_worker_targets_deepest_inbox():
    env, net, server, _ = make_server()
    server.pool.workers[2]._inbox.put(("t", b"x"))
    inj = ServerFaultInjector(server)
    assert inj.crash_worker() == 2
    env.run(until=5.0)
    assert server.pool.workers[2].crashes.count == 1
    assert server.pool.workers[2].restarts.count == 1


def test_backend_faults_require_network_wiring():
    env, net, server, _ = make_server()
    inj = ServerFaultInjector(server)  # no backend link configured
    with pytest.raises(ValueError):
        inj.backend_outage(0.5, 1.0)
    assert inj.backend_outages == []


# -------------------------------------------------------------- the grammar

def test_parse_full_grammar():
    profile = ChaosProfile.parse(
        "kill-shard@2.0, kill-shard:1@3, crash-worker@0.5,"
        "crash-worker:0@1, backend-outage@1:0.5, flap-backend@1:0.25:3"
    )
    assert profile.events == (
        ChaosEvent("kill-shard", None, (2.0,)),
        ChaosEvent("kill-shard", 1, (3.0,)),
        ChaosEvent("crash-worker", None, (0.5,)),
        ChaosEvent("crash-worker", 0, (1.0,)),
        ChaosEvent("backend-outage", None, (1.0, 0.5)),
        ChaosEvent("flap-backend", None, (1.0, 0.25, 3.0)),
    )
    assert profile.requires_backend_link()
    assert not ChaosProfile.parse("kill-shard@1").requires_backend_link()


@pytest.mark.parametrize("bad", [
    "",                          # empty spec
    "kill-shard",                # missing @args
    "explode@1.0",               # unknown kind
    "backend-outage:2@1:0.5",    # index on a non-indexable kind
    "kill-shard:x@1",            # non-integer index
    "kill-shard@one",            # non-numeric argument
    "kill-shard@1:2",            # wrong arity
    "flap-backend@1:0.5",        # wrong arity
])
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        ChaosProfile.parse(bad)


def test_profile_apply_schedules_events():
    env, net, server, _ = make_server()
    inj = ServerFaultInjector(server)
    procs = ChaosProfile.parse("kill-shard:3@0.5,crash-worker:0@0.25").apply(inj)
    assert len(procs) == 2
    env.run(until=5.0)
    kinds = [what.split("@")[0] for _, what in inj.events]
    assert sorted(kinds) == ["crash-worker:0", "kill-shard:3"]
    assert not server.broker.shards[3].alive
    assert server.pool.workers[0].crashes.count == 1


# ----------------------------------------------------- harness/e2clab wiring

def test_experiment_setup_validates_chaos(monkeypatch):
    from repro.harness.experiments import ExperimentSetup

    assert ExperimentSetup().chaos is None
    assert ExperimentSetup(chaos="kill-shard@1").chaos_profile() is not None
    monkeypatch.setenv("REPRO_CHAOS", "kill-shard@2.5")
    assert ExperimentSetup().chaos == "kill-shard@2.5"
    monkeypatch.setenv("REPRO_CHAOS", "nonsense")
    with pytest.raises(ValueError):
        ExperimentSetup()


def test_provenance_manager_threads_chaos():
    from repro.e2clab import ProvenanceManager

    env = Environment()
    net = Network(env, seed=2)
    manager = ProvenanceManager(net, broker_shards=3, chaos="kill-shard@0.5")
    env.run(until=5.0)
    assert manager.server.broker.failovers.count == 1
    assert len(manager.fault_injector.events) == 1


def test_provenance_manager_rejects_impossible_chaos():
    from repro.e2clab import ProvenanceManager

    env = Environment()
    net = Network(env, seed=2)
    with pytest.raises(ValueError):
        ProvenanceManager(net, chaos="kill-shard@1")  # one shard only
    with pytest.raises(ValueError):
        ProvenanceManager(net, broker_shards=2, chaos="backend-outage@1:0.5")
