"""ServerFaultInjector + ChaosProfile: the server-plane chaos harness."""

import pytest

from repro.core import CallableBackend, ProvLightServer
from repro.device import XEON_GOLD_5220, Device
from repro.net import ChaosEvent, ChaosProfile, Network, ServerFaultInjector
from repro.simkernel import Environment


def make_server(shards=4, workers=4, seed=3):
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("cloud", device=Device(env, XEON_GOLD_5220, name="cloud-dev"))
    sink = []
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(sink.extend),
        workers=workers, broker_shards=shards,
    )
    return env, net, server, sink


# ------------------------------------------------------------- the injector

def test_kill_shard_defaults_to_busiest_and_logs():
    env, net, server, _ = make_server()
    inj = ServerFaultInjector(server)
    killed = inj.kill_shard()
    assert killed in range(4)
    assert not server.broker.shards[killed].alive
    assert inj.events == [(0.0, f"kill-shard:{killed}")]
    env.run()
    assert server.broker.failovers.count == 1


def test_kill_shard_at_fires_on_the_sim_clock():
    env, net, server, _ = make_server()
    inj = ServerFaultInjector(server)
    inj.kill_shard_at(1.5, index=2)
    env.run(until=1.0)
    assert server.broker.shards[2].alive
    env.run(until=5.0)
    assert not server.broker.shards[2].alive
    assert inj.events[0][0] == pytest.approx(1.5)
    with pytest.raises(ValueError):
        inj.kill_shard_at(-1.0)


def test_crash_worker_targets_deepest_inbox():
    env, net, server, _ = make_server()
    server.pool.workers[2]._inbox.put(("t", b"x"))
    inj = ServerFaultInjector(server)
    assert inj.crash_worker() == 2
    env.run(until=5.0)
    assert server.pool.workers[2].crashes.count == 1
    assert server.pool.workers[2].restarts.count == 1


def test_backend_faults_require_network_wiring():
    env, net, server, _ = make_server()
    inj = ServerFaultInjector(server)  # no backend link configured
    with pytest.raises(ValueError):
        inj.backend_outage(0.5, 1.0)
    assert inj.backend_outages == []


# -------------------------------------------------------------- the grammar

def test_parse_full_grammar():
    profile = ChaosProfile.parse(
        "kill-shard@2.0, kill-shard:1@3, crash-worker@0.5,"
        "crash-worker:0@1, backend-outage@1:0.5, flap-backend@1:0.25:3"
    )
    assert profile.events == (
        ChaosEvent("kill-shard", None, (2.0,)),
        ChaosEvent("kill-shard", 1, (3.0,)),
        ChaosEvent("crash-worker", None, (0.5,)),
        ChaosEvent("crash-worker", 0, (1.0,)),
        ChaosEvent("backend-outage", None, (1.0, 0.5)),
        ChaosEvent("flap-backend", None, (1.0, 0.25, 3.0)),
    )
    assert profile.requires_backend_link()
    assert not ChaosProfile.parse("kill-shard@1").requires_backend_link()


@pytest.mark.parametrize("bad", [
    "",                          # empty spec
    "kill-shard",                # missing @args
    "explode@1.0",               # unknown kind
    "backend-outage:2@1:0.5",    # index on a non-indexable kind
    "kill-shard:x@1",            # non-integer index
    "kill-shard@one",            # non-numeric argument
    "kill-shard@1:2",            # wrong arity
    "flap-backend@1:0.5",        # wrong arity
])
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        ChaosProfile.parse(bad)


def test_profile_apply_schedules_events():
    env, net, server, _ = make_server()
    inj = ServerFaultInjector(server)
    procs = ChaosProfile.parse("kill-shard:3@0.5,crash-worker:0@0.25").apply(inj)
    assert len(procs) == 2
    env.run(until=5.0)
    kinds = [what.split("@")[0] for _, what in inj.events]
    assert sorted(kinds) == ["crash-worker:0", "kill-shard:3"]
    assert not server.broker.shards[3].alive
    assert server.pool.workers[0].crashes.count == 1


# ----------------------------------------------------- harness/e2clab wiring

def test_experiment_setup_validates_chaos(monkeypatch):
    from repro.harness.experiments import ExperimentSetup

    assert ExperimentSetup().chaos is None
    assert ExperimentSetup(chaos="kill-shard@1").chaos_profile() is not None
    monkeypatch.setenv("REPRO_CHAOS", "kill-shard@2.5")
    assert ExperimentSetup().chaos == "kill-shard@2.5"
    monkeypatch.setenv("REPRO_CHAOS", "nonsense")
    with pytest.raises(ValueError):
        ExperimentSetup()


def test_provenance_manager_threads_chaos():
    from repro.e2clab import ProvenanceManager

    env = Environment()
    net = Network(env, seed=2)
    manager = ProvenanceManager(net, broker_shards=3, chaos="kill-shard@0.5")
    env.run(until=5.0)
    assert manager.server.broker.failovers.count == 1
    assert len(manager.fault_injector.events) == 1


def test_provenance_manager_rejects_impossible_chaos():
    from repro.e2clab import ProvenanceManager

    env = Environment()
    net = Network(env, seed=2)
    with pytest.raises(ValueError):
        ProvenanceManager(net, chaos="kill-shard@1")  # one shard only
    with pytest.raises(ValueError):
        ProvenanceManager(net, broker_shards=2, chaos="backend-outage@1:0.5")


# --------------------------------------------- client-plane grammar (fleet)

def test_parse_client_plane_grammar():
    profile = ChaosProfile.parse(
        "crash-device@1:2, crash-device:edge-3@1:2, churn@5:0.2:2,"
        "partition-tier:edge-fog@8:3, degrade-tier:fog-cloud@1:2:0.5"
    )
    assert profile.events == (
        ChaosEvent("crash-device", None, (1.0, 2.0)),
        ChaosEvent("crash-device", None, (1.0, 2.0), qualifier="edge-3"),
        ChaosEvent("churn", None, (5.0, 0.2, 2.0)),
        ChaosEvent("partition-tier", None, (8.0, 3.0), qualifier="edge-fog"),
        ChaosEvent("degrade-tier", None, (1.0, 2.0, 0.5),
                   qualifier="fog-cloud"),
    )
    assert profile.requires_fleet()
    assert profile.requires_topology()
    assert not profile.requires_backend_link()
    assert [e.kind for e in profile.fleet_events()] == [
        "crash-device", "crash-device", "churn",
    ]
    assert [e.kind for e in profile.tier_events()] == [
        "partition-tier", "degrade-tier",
    ]
    server_only = ChaosProfile.parse("kill-shard@1")
    assert not server_only.requires_fleet()
    assert not server_only.requires_topology()


@pytest.mark.parametrize("bad", [
    "churn@5:0.2",                     # wrong arity
    "churn@5:0:2",                     # FRACTION must be > 0
    "churn@5:1.5:2",                   # FRACTION must be <= 1
    "churn@-1:0.5:2",                  # negative AFTER
    "churn@5:0.5:0",                   # DOWN must be > 0
    "crash-device@1:0",                # DOWN must be > 0
    "crash-device@-0.5:1",             # negative AFTER
    "partition-tier@8:3",              # missing tier-pair selector
    "partition-tier:edgefog@8:3",      # not a dash-joined pair
    "partition-tier:Edge-Fog@8:3",     # uppercase tier names
    "partition-tier:edge-fog@8:0",     # DUR must be > 0
    "degrade-tier:edge-fog@1:2:0",     # LOSS must be in (0, 1)
    "degrade-tier:edge-fog@1:2:1.0",   # LOSS must be in (0, 1)
    "churn:3@5:0.2:2",                 # churn takes no selector
    "kill-shard:-1@1",                 # negative index
])
def test_parse_rejects_malformed_client_plane_specs(bad):
    with pytest.raises(ValueError):
        ChaosProfile.parse(bad)


def test_rejections_name_the_offending_token():
    with pytest.raises(ValueError, match="churn@5:1.5:2"):
        ChaosProfile.parse("kill-shard@1,churn@5:1.5:2")
    with pytest.raises(ValueError, match="edgefog"):
        ChaosProfile.parse("partition-tier:edgefog@8:3")


def test_apply_requires_the_planes_the_profile_uses():
    env, net, server, _ = make_server()
    inj = ServerFaultInjector(server)
    with pytest.raises(ValueError, match="FleetFaultInjector"):
        ChaosProfile.parse("churn@5:0.2:2").apply(inj)
    with pytest.raises(ValueError, match="ContinuumTopology"):
        ChaosProfile.parse("partition-tier:edge-fog@8:3").apply(inj)
    with pytest.raises(ValueError, match="ServerFaultInjector"):
        ChaosProfile.parse("kill-shard@1").apply()


def test_apply_schedules_tier_events_on_the_topology():
    from repro.net import ContinuumTopology

    env = Environment()
    net = Network(env, seed=2)
    topo = ContinuumTopology(net, "edge:2,fog:1,cloud:1")
    procs = ChaosProfile.parse(
        "partition-tier:edge-fog@1:0.5,degrade-tier:fog-cloud@1:0.5:0.3"
    ).apply(topology=topo)
    assert len(procs) == 2
    env.run(until=1.2)
    assert topo.tier_partitioned("edge", "fog")
    env.run(until=5.0)
    assert not topo.tier_partitioned("edge", "fog")
    assert len(topo.tier_outages) == 1
    assert len(topo.degradations) == 1
