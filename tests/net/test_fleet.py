"""FleetFaultInjector + FleetClientProxy: device-plane churn."""

import pytest

from repro.capture import CaptureConfig, create_client
from repro.core import CallableBackend, ProvLightServer
from repro.device import A8M3, XEON_GOLD_5220, Device
from repro.net import ContinuumTopology, FleetFaultInjector, Network
from repro.simkernel import Environment


def rec(i, wf=1):
    """A minimal well-formed provenance record (translators reject
    arbitrary dicts)."""
    return {"kind": "task_begin", "workflow_id": wf,
            "transformation_id": 1, "task_id": i, "time": float(i)}


def make_fleet(tmp_path, n=3, seed=5, topology=None):
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("cloud", device=Device(env, XEON_GOLD_5220, name="cloud-dev"))
    received = []
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(received.extend), workers=2,
    )
    topo = None
    if topology:
        topo = ContinuumTopology(net, topology, root_host="cloud")
    fleet = FleetFaultInjector(env, topology=topo, seed=seed)
    for i in range(n):
        cid = f"edge-{i}"
        dev = Device(env, A8M3, name=cid)
        if topo is not None:
            host = net.hosts[f"edge-{i}"]
            host.device = dev
            dev.host = host
        else:
            net.add_host(f"host-{cid}", device=dev)
            net.connect(f"host-{cid}", "cloud", bandwidth_bps=1e9,
                        latency_s=0.01)
        config = CaptureConfig(
            transport="mqttsn", durable=True, journal_dir=str(tmp_path),
            client_id=cid, qos=1,
            reconnect_base_s=0.2, reconnect_factor=1.5, reconnect_max_s=1.0,
        )

        def build(dev=dev, cid=cid, config=config):
            return create_client(dev, server.endpoint,
                                 f"conf/{cid}/data", config)

        client = build()
        fleet.register(cid, client, build)
    return env, net, server, received, fleet, topo


# ---------------------------------------------------------- registration

def test_register_and_proxy_validation(tmp_path):
    env, net, server, _, fleet, _ = make_fleet(tmp_path)
    assert fleet.devices == ["edge-0", "edge-1", "edge-2"]
    with pytest.raises(ValueError, match="already registered"):
        fleet.register("edge-0", object(), lambda: None)
    with pytest.raises(KeyError, match="ghost"):
        fleet.proxy("ghost")
    proxy = fleet.proxy("edge-1")
    assert proxy.name == "edge-1"
    assert proxy.client is fleet.client_of("edge-1")


# ------------------------------------------------------- crash and restart

def test_crash_closes_the_client_and_restart_recovers(tmp_path):
    env, net, server, received, fleet, _ = make_fleet(tmp_path, n=1)
    client = fleet.client_of("edge-0")

    def run(env):
        yield from server.add_translator("conf/edge-0/data")
        yield from client.setup()
        yield from client.capture(rec(0))
        yield from client.drain()

    env.process(run(env))
    env.run(until=5.0)
    assert len(received) == 1

    victim = fleet.crash_device()
    assert victim == "edge-0"
    assert client.closed
    assert fleet.devices_down == ["edge-0"]
    assert fleet.events[-1][1] == "crash-device:edge-0"
    with pytest.raises(ValueError, match="already down"):
        fleet.crash_device("edge-0")
    with pytest.raises(ValueError, match="no device is up"):
        fleet.crash_device()

    fleet.restart_device("edge-0")
    env.run(until=10.0)
    assert fleet.devices_down == []
    assert fleet.client_of("edge-0") is not client
    assert not fleet.client_of("edge-0").closed
    assert fleet.devices_restarted == 1
    assert len(fleet.recoveries) == 1
    assert fleet.recovery_times_s()[0] > 0


def test_restart_requires_a_crash_first(tmp_path):
    env, net, server, _, fleet, _ = make_fleet(tmp_path, n=1)
    with pytest.raises(ValueError, match="not down"):
        fleet.restart_device("edge-0")


def test_restart_replays_the_journal_exactly_once(tmp_path):
    """A crash between journal append and delivery leaves unacked
    entries; the next incarnation replays them and the backend sees each
    record exactly once."""
    env, net, server, received, fleet, _ = make_fleet(tmp_path, n=1)
    client = fleet.client_of("edge-0")

    def run(env):
        yield from server.add_translator("conf/edge-0/data")
        yield from client.setup()
        # journal without delivering: stage the entry, then crash before
        # the network round-trip completes
        client.journal.append(b'{"k": 99}', ts=env.now)
        fleet.crash_device("edge-0")
        yield env.timeout(0.5)
        fleet.restart_device("edge-0")

    env.process(run(env))
    env.run(until=30.0)
    assert fleet.journal_recoveries == 1
    assert fleet.client_of("edge-0").replayed.count == 1


def test_restart_under_partition_retries_until_heal(tmp_path):
    env, net, server, received, fleet, topo = make_fleet(
        tmp_path, n=2, topology="edge:2,cloud:1",
    )
    client = fleet.client_of("edge-0")

    def run(env):
        yield from server.add_translator("conf/edge-0/data")
        yield from client.setup()
        fleet.crash_device("edge-0")
        topo.partition_tiers("edge", "cloud")
        fleet.restart_device("edge-0")
        yield env.timeout(8.0)
        # still down: setup cannot complete across the partition
        assert fleet.devices_down == ["edge-0"]
        topo.heal_tiers("edge", "cloud")

    env.process(run(env))
    env.run(until=60.0)
    assert fleet.devices_down == []
    assert fleet.devices_restarted == 1


# ------------------------------------------------------------- the proxy

def test_proxy_retries_a_capture_interrupted_by_crash(tmp_path):
    env, net, server, received, fleet, _ = make_fleet(tmp_path, n=1)
    proxy = fleet.proxy("edge-0")

    def workload(env):
        yield from server.add_translator("conf/edge-0/data")
        yield from proxy.setup()
        for i in range(20):
            yield from proxy.capture(rec(i))
            yield env.timeout(0.1)
        yield from proxy.drain()

    def chaos(env):
        yield env.timeout(0.3)
        fleet.crash_device("edge-0")
        yield env.timeout(1.0)
        fleet.restart_device("edge-0")

    env.process(workload(env))
    env.process(chaos(env))
    env.run(until=120.0)
    assert fleet.devices_restarted == 1
    assert proxy.records_completed == 20
    # zero loss, exactly once: the ledger balances the backend
    assert len(received) == 20
    # counters read through to the current incarnation
    assert proxy.records_captured.count >= 1


def test_proxy_propagates_real_errors(tmp_path):
    env, net, server, _, fleet, _ = make_fleet(tmp_path, n=1)
    proxy = fleet.proxy("edge-0")

    def bad(env):
        # capture before setup is a real usage error, not a crash
        yield from proxy.capture(rec(0))

    proc = env.process(bad(env))
    with pytest.raises(Exception):
        env.run(until=5.0)


# ------------------------------------------------------- scheduled chaos

def test_crash_restart_at_and_churn_validation(tmp_path):
    env, net, server, _, fleet, _ = make_fleet(tmp_path)
    with pytest.raises(ValueError):
        fleet.crash_restart_at(-1.0, 1.0)
    with pytest.raises(ValueError):
        fleet.crash_restart_at(1.0, 0.0)
    with pytest.raises(ValueError):
        fleet.churn_at(1.0, 0.0, 1.0)
    with pytest.raises(ValueError):
        fleet.churn_at(1.0, 1.5, 1.0)
    with pytest.raises(ValueError):
        fleet.churn_at(-1.0, 0.5, 1.0)


def test_churn_crashes_a_deterministic_fraction(tmp_path):
    env, net, server, received, fleet, _ = make_fleet(tmp_path, n=5)
    clients = {name: fleet.client_of(name) for name in fleet.devices}

    def run(env, name):
        client = clients[name]
        yield from server.add_translator(f"conf/{name}/data")
        yield from client.setup()

    for name in fleet.devices:
        env.process(run(env, name))
    fleet.churn_at(1.0, 0.4, 2.0)
    env.run(until=1.5)
    assert len(fleet.devices_down) == 2  # round(0.4 * 5)
    env.run(until=60.0)
    assert fleet.devices_down == []
    assert fleet.devices_crashed == 2
    assert fleet.devices_restarted == 2
    assert len(fleet.recoveries) == 2

    # same seed, same world -> same victims
    env2, _, server2, _, fleet2, _ = make_fleet(tmp_path / "replay", n=5)
    fleet2.churn_at(1.0, 0.4, 2.0)
    env2.run(until=1.5)
    assert fleet2.devices_down == sorted(
        name for name, _, _ in fleet.recoveries
    )


# ---------------------------------------------------------- observability

def test_stats_snapshot_merges_topology(tmp_path):
    env, net, server, _, fleet, topo = make_fleet(
        tmp_path, n=2, topology="edge:2,cloud:1",
    )
    stats = fleet.stats()
    assert stats["devices"] == 2
    assert stats["devices_down"] == 0
    assert stats["devices_crashed"] == 0
    assert "max_recovery_s" not in stats
    assert stats["topology"]["tiers"] == {"edge": 2, "cloud": 1}
