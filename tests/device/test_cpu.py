"""Tests for the CPU model."""

import pytest

from repro.device import A8M3, XEON_GOLD_5220, Cpu, DeviceSpec
from repro.simkernel import Environment


def make_cpu(spec=A8M3):
    env = Environment()
    return env, Cpu(env, spec)


def test_compute_work_takes_scaled_time():
    env, cpu = make_cpu()

    def proc(env):
        yield from cpu.run(compute_s=0.1)

    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(0.1)


def test_xeon_scales_compute_down():
    env = Environment()
    cpu = Cpu(env, XEON_GOLD_5220)

    def proc(env):
        yield from cpu.run(compute_s=0.25)

    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(0.25 / XEON_GOLD_5220.compute_speedup)


def test_io_floor_applies_on_fast_devices():
    env = Environment()
    cpu = Cpu(env, XEON_GOLD_5220)

    def proc(env):
        yield from cpu.run(io_busy_s=1e-6)  # would scale below the floor

    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(XEON_GOLD_5220.io_floor_s)


def test_io_wait_delays_without_busy_time():
    env, cpu = make_cpu()

    def proc(env):
        yield from cpu.run(io_wait_s=0.2)

    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(0.2)
    assert cpu.busy_time() == 0.0


def test_busy_time_accounted_per_tag():
    env, cpu = make_cpu()

    def proc(env):
        yield from cpu.run(compute_s=0.1, tag="capture")
        yield from cpu.run(compute_s=0.3, tag="workload")

    env.process(proc(env))
    env.run()
    assert cpu.busy_time("capture") == pytest.approx(0.1)
    assert cpu.busy_time("workload") == pytest.approx(0.3)
    assert cpu.busy_time() == pytest.approx(0.4)
    assert cpu.busy_tags() == pytest.approx({"capture": 0.1, "workload": 0.3})


def test_utilization_overall_and_tagged():
    env, cpu = make_cpu()

    def proc(env):
        yield from cpu.run(compute_s=0.2, tag="capture")
        yield env.timeout(0.8)

    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(1.0)
    assert cpu.utilization() == pytest.approx(0.2)
    assert cpu.utilization("capture") == pytest.approx(0.2)
    assert cpu.utilization("other") == 0.0


def test_single_core_serializes_contending_work():
    env, cpu = make_cpu()  # A8M3 is single core
    done = []

    def proc(env, label):
        yield from cpu.run(compute_s=0.5, tag=label)
        done.append((label, env.now))

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    assert done == [("a", pytest.approx(0.5)), ("b", pytest.approx(1.0))]


def test_multi_core_runs_in_parallel():
    env = Environment()
    spec = DeviceSpec(
        name="dual", cpu_freq_hz=1e9, cores=2, compute_speedup=1.0,
        io_speedup=1.0, io_floor_s=0.0, ram_bytes=1 << 30,
    )
    cpu = Cpu(env, spec)
    done = []

    def proc(env, label):
        yield from cpu.run(compute_s=0.5)
        done.append((label, env.now))

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    assert done == [("a", pytest.approx(0.5)), ("b", pytest.approx(0.5))]


def test_run_async_does_not_block_caller():
    env, cpu = make_cpu()
    marks = []

    def proc(env):
        cpu.run_async(compute_s=0.5, tag="bg")
        marks.append(env.now)
        yield env.timeout(0.01)
        marks.append(env.now)

    env.process(proc(env))
    env.run()
    assert marks == [0.0, pytest.approx(0.01)]
    assert cpu.busy_time("bg") == pytest.approx(0.5)


def test_async_work_contends_with_foreground():
    env, cpu = make_cpu()  # 1 core
    times = {}

    def fg(env):
        yield env.timeout(0.1)  # let background start first
        yield from cpu.run(compute_s=0.1, tag="fg")
        times["fg_done"] = env.now

    cpu.run_async(compute_s=0.5, tag="bg")
    env.process(fg(env))
    env.run()
    # foreground had to wait for the background slot to free at 0.5
    assert times["fg_done"] == pytest.approx(0.6)


def test_zero_work_is_free():
    env, cpu = make_cpu()

    def proc(env):
        yield from cpu.run()
        yield env.timeout(0)

    env.process(proc(env))
    env.run()
    assert env.now == 0.0
    assert cpu.busy_time() == 0.0


def test_reset_accounting():
    env, cpu = make_cpu()

    def proc(env):
        yield from cpu.run(compute_s=0.2, tag="capture")
        cpu.reset_accounting()
        yield env.timeout(0.2)

    env.process(proc(env))
    env.run()
    assert cpu.busy_time("capture") == 0.0
    assert cpu.utilization() == 0.0
