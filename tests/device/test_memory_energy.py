"""Tests for the memory ledger, energy meter, radio and Device facade."""

import pytest

from repro.calibration import EnergyCoefficients
from repro.device import A8M3, Cpu, Device, EnergyMeter, Memory, MemoryExceeded
from repro.simkernel import Environment


# -- Memory -----------------------------------------------------------------


def test_memory_allocate_free_roundtrip():
    mem = Memory(A8M3)
    mem.allocate(1000, tag="capture")
    mem.allocate(500, tag="workload")
    assert mem.used() == 1500
    assert mem.used("capture") == 1000
    mem.free(400, tag="capture")
    assert mem.used("capture") == 600


def test_memory_peak_tracking():
    mem = Memory(A8M3)
    mem.allocate(1000, tag="buf")
    mem.free(900, tag="buf")
    mem.allocate(200, tag="buf")
    assert mem.peak("buf") == 1000
    assert mem.used("buf") == 300
    assert mem.peak() == 1000


def test_memory_fraction_of_ram():
    mem = Memory(A8M3)
    mem.allocate(A8M3.ram_bytes // 4, tag="x")
    assert mem.fraction_of_ram("x") == pytest.approx(0.25)


def test_memory_over_free_rejected():
    mem = Memory(A8M3)
    mem.allocate(10, tag="t")
    with pytest.raises(ValueError):
        mem.free(20, tag="t")


def test_memory_negative_amounts_rejected():
    mem = Memory(A8M3)
    with pytest.raises(ValueError):
        mem.allocate(-1)
    with pytest.raises(ValueError):
        mem.free(-1)


def test_memory_strict_mode_raises_on_overflow():
    mem = Memory(A8M3, strict=True)
    with pytest.raises(MemoryExceeded):
        mem.allocate(A8M3.ram_bytes + 1)


def test_memory_tags_snapshot_hides_empty():
    mem = Memory(A8M3)
    mem.allocate(10, "a")
    mem.allocate(5, "b")
    mem.free(5, "b")
    assert mem.tags() == {"a": 10}


# -- EnergyMeter ---------------------------------------------------------------


def coeffs(**overrides):
    base = dict(
        base_w=1.0, cpu_busy_w=0.5, tx_j_per_kb=0.001,
        rx_listen_w=0.2, wake_window_w=0.1, wake_window_s=0.05,
    )
    base.update(overrides)
    return EnergyCoefficients(**base)


def test_idle_device_consumes_base_power():
    env = Environment()
    cpu = Cpu(env, A8M3)
    meter = EnergyMeter(env, coeffs(), cpu)

    def proc(env):
        yield env.timeout(10)

    env.process(proc(env))
    env.run()
    assert meter.energy_joules() == pytest.approx(10.0)
    assert meter.average_power_w() == pytest.approx(1.0)


def test_cpu_busy_power_added():
    env = Environment()
    cpu = Cpu(env, A8M3)
    meter = EnergyMeter(env, coeffs(), cpu)

    def proc(env):
        yield from cpu.run(compute_s=4.0)
        yield env.timeout(6.0)

    env.process(proc(env))
    env.run()
    # 10s base + 4s busy * 0.5W
    assert meter.energy_joules() == pytest.approx(10.0 + 2.0)


def test_transmit_energy_and_wake_window():
    env = Environment()
    cpu = Cpu(env, A8M3)
    meter = EnergyMeter(env, coeffs(), cpu)

    def proc(env):
        meter.on_transmit(2048)  # 2 KB -> 0.002 J + wake window 0.05s*0.1W
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    expected = 1.0 + 0.002 + 0.05 * 0.1
    assert meter.energy_joules() == pytest.approx(expected)
    assert meter.tx_bytes == 2048


def test_overlapping_wake_windows_merge():
    env = Environment()
    cpu = Cpu(env, A8M3)
    meter = EnergyMeter(env, coeffs(wake_window_s=0.1), cpu)

    def proc(env):
        meter.touch_wake_window()      # awake 0..0.1
        yield env.timeout(0.05)
        meter.touch_wake_window()      # extends to 0.15, merged
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    awake = meter._awake_time_so_far()
    assert awake == pytest.approx(0.15)


def test_open_wake_window_clipped_at_now():
    env = Environment()
    cpu = Cpu(env, A8M3)
    meter = EnergyMeter(env, coeffs(wake_window_s=10.0), cpu)

    def proc(env):
        meter.touch_wake_window()
        yield env.timeout(1.0)  # window still open at end

    env.process(proc(env))
    env.run()
    assert meter._awake_time_so_far() == pytest.approx(1.0)


def test_rx_listen_power():
    env = Environment()
    cpu = Cpu(env, A8M3)
    meter = EnergyMeter(env, coeffs(), cpu)

    def proc(env):
        meter.rx_listen_start()
        yield env.timeout(2.0)
        meter.rx_listen_stop()
        yield env.timeout(3.0)

    env.process(proc(env))
    env.run()
    assert meter.energy_joules() == pytest.approx(5.0 + 0.2 * 2.0)


def test_negative_tx_bytes_rejected():
    env = Environment()
    meter = EnergyMeter(env, coeffs(), Cpu(env, A8M3))
    with pytest.raises(ValueError):
        meter.on_transmit(-1)


# -- Device facade -------------------------------------------------------------


def test_device_composes_models():
    env = Environment()
    dev = Device(env, A8M3, name="edge-1")
    assert dev.cpu is not None
    assert dev.energy is not None  # A8M3 has energy coefficients
    assert dev.name == "edge-1"


def test_cloud_device_has_no_energy_meter():
    from repro.device import XEON_GOLD_5220

    env = Environment()
    dev = Device(env, XEON_GOLD_5220)
    assert dev.energy is None


def test_device_radio_feeds_energy():
    env = Environment()
    dev = Device(env, A8M3)

    def proc(env):
        dev.radio.on_transmit(1024)
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert dev.radio.tx.total == 1024
    assert dev.energy.tx_bytes == 1024


def test_blocking_network_wait_charges_rx_listen():
    env = Environment()
    dev = Device(env, A8M3)

    def proc(env):
        yield from dev.blocking_network_wait(env.timeout(2.0))
        yield env.timeout(2.0)

    env.process(proc(env))
    env.run()
    # 4s base + 2s of rx listen
    expected = dev.spec.energy.base_w * 4.0 + dev.spec.energy.rx_listen_w * 2.0
    assert dev.energy.energy_joules() == pytest.approx(expected)


def test_device_reset_accounting():
    env = Environment()
    dev = Device(env, A8M3)

    def proc(env):
        yield from dev.run(compute_s=0.1, tag="capture")
        dev.radio.on_transmit(100)
        dev.reset_accounting()
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert dev.cpu.busy_time() == 0.0
    assert dev.radio.tx.total == 0
    assert dev.energy.average_power_w() == pytest.approx(dev.spec.energy.base_w)


def test_spec_lookup():
    from repro.device import spec_by_name

    assert spec_by_name("iotlab-a8-m3") is A8M3
    with pytest.raises(KeyError):
        spec_by_name("nonexistent")
