"""Device-spec scaling rules and radio accounting details."""

import pytest

from repro.device import A8M3, XEON_GOLD_5220, Device, DeviceSpec
from repro.simkernel import Environment


def test_a8m3_is_the_reference_device():
    assert A8M3.compute_speedup == 1.0
    assert A8M3.io_speedup == 1.0
    assert A8M3.io_floor_s == 0.0
    assert A8M3.scale_compute(0.05) == 0.05
    assert A8M3.scale_io(0.05) == 0.05


def test_xeon_scaling_rules():
    assert XEON_GOLD_5220.scale_compute(0.3) == pytest.approx(0.3 / 30.0)
    # io has a floor: tiny io work cannot vanish on fast hardware
    assert XEON_GOLD_5220.scale_io(1e-6) == XEON_GOLD_5220.io_floor_s
    assert XEON_GOLD_5220.scale_io(0.3) == pytest.approx(0.01)


def test_zero_work_scales_to_zero():
    assert XEON_GOLD_5220.scale_compute(0.0) == 0.0
    assert XEON_GOLD_5220.scale_io(0.0) == 0.0
    assert XEON_GOLD_5220.scale_io(-1.0) == 0.0


def test_spec_hardware_facts():
    assert A8M3.cpu_freq_hz == 600e6
    assert A8M3.cores == 1
    assert A8M3.ram_bytes == 256 * 1024 * 1024
    assert A8M3.energy is not None
    assert XEON_GOLD_5220.cores == 18
    assert XEON_GOLD_5220.energy is None


def test_radio_rates_and_reset():
    env = Environment()
    dev = Device(env, A8M3)

    def proc(env):
        dev.radio.on_transmit(1000)
        yield env.timeout(1.0)
        dev.radio.on_receive(500)
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert dev.radio.total_bytes == 1500
    assert dev.radio.tx_rate.rate() == pytest.approx(500.0)  # 1000B over 2s
    dev.radio.reset()
    assert dev.radio.total_bytes == 0
    assert dev.radio.tx_rate.rate() == 0.0


def test_custom_spec_device():
    spec = DeviceSpec(
        name="tiny", cpu_freq_hz=80e6, cores=1, compute_speedup=0.2,
        io_speedup=0.5, io_floor_s=0.0, ram_bytes=1 << 20,
    )
    env = Environment()
    dev = Device(env, spec, name="esp-like")

    def proc(env):
        yield from dev.run(compute_s=0.1)  # 5x slower than reference

    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(0.5)
    assert dev.energy is None  # no coefficients given
