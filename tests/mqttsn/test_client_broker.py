"""End-to-end MQTT-SN tests: client <-> broker over the simulated network."""

import pytest

from repro.mqttsn import DEFAULT_BROKER_PORT, MqttSnBroker, MqttSnClient, MqttSnTimeout
from repro.net import Network
from repro.simkernel import Environment


def make_world(n_clients=1, latency=0.023, bandwidth=1e9, loss=0.0, seed=3):
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("cloud")
    broker = MqttSnBroker(net.hosts["cloud"])
    clients = []
    for i in range(n_clients):
        name = f"edge-{i}"
        net.add_host(name)
        net.connect(name, "cloud", bandwidth_bps=bandwidth, latency_s=latency, loss=loss)
        clients.append(
            MqttSnClient(net.hosts[name], f"client-{i}", ("cloud", DEFAULT_BROKER_PORT),
                         retry_interval_s=0.5)
        )
    return env, net, broker, clients


def test_connect_handshake():
    env, net, broker, (client,) = make_world()
    done = {}

    def run(env):
        yield from client.connect()
        done["connected"] = client.connected
        done["time"] = env.now

    env.process(run(env))
    env.run()
    assert done["connected"]
    assert done["time"] == pytest.approx(0.046, rel=0.05)  # one RTT
    assert len(broker.sessions) == 1


def test_register_assigns_topic_id():
    env, net, broker, (client,) = make_world()
    out = {}

    def run(env):
        yield from client.connect()
        out["tid"] = yield from client.register("prov/edge-0")
        out["tid2"] = yield from client.register("prov/edge-0")

    env.process(run(env))
    env.run()
    assert out["tid"] >= 1
    assert out["tid"] == out["tid2"]  # stable


def test_publish_qos0_is_fire_and_forget():
    env, net, broker, clients = make_world(n_clients=2)
    pub, sub = clients
    got = []

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("data", lambda t, p: got.append((t, p)), qos=0)

    def publisher(env):
        yield from pub.connect()
        tid = yield from pub.register("data")
        yield env.timeout(0.5)  # let the subscription settle
        yield from pub.publish(tid, b"hello", qos=0)

    env.process(subscriber(env))
    env.process(publisher(env))
    env.run()
    assert got == [("data", b"hello")]


def test_publish_qos2_end_to_end():
    env, net, broker, clients = make_world(n_clients=2)
    pub, sub = clients
    got = []
    timing = {}

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("prov/#", lambda t, p: got.append((t, p, env.now)))

    def publisher(env):
        yield from pub.connect()
        tid = yield from pub.register("prov/e0/data")
        yield env.timeout(0.5)
        start = env.now
        yield from pub.publish(tid, b"record-1", qos=2)
        timing["publish_latency"] = env.now - start

    env.process(subscriber(env))
    env.process(publisher(env))
    env.run()
    assert [(t, p) for t, p, _ in got] == [("prov/e0/data", b"record-1")]
    # QoS2 completion takes 2 RTTs (PUBLISH/PUBREC then PUBREL/PUBCOMP)
    assert timing["publish_latency"] == pytest.approx(0.092, rel=0.1)


def test_publish_nowait_does_not_block():
    env, net, broker, clients = make_world(n_clients=1)
    (pub,) = clients
    marks = {}

    def publisher(env):
        yield from pub.connect()
        tid = yield from pub.register("t")
        t0 = env.now
        done = pub.publish_nowait(tid, b"x", qos=2)
        marks["inline"] = env.now - t0
        yield done
        marks["completed"] = env.now - t0

    env.process(publisher(env))
    env.run()
    assert marks["inline"] == 0.0
    assert marks["completed"] > 0.09  # 2 RTT for the QoS2 handshake


def test_qos2_exactly_once_under_loss():
    env, net, broker, clients = make_world(n_clients=2, loss=0.25, seed=11)
    pub, sub = clients
    got = []

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("d", lambda t, p: got.append(p))

    def publisher(env):
        yield from pub.connect()
        tid = yield from pub.register("d")
        yield env.timeout(0.5)
        for i in range(10):
            yield from pub.publish(tid, b"m%d" % i, qos=2)

    env.process(subscriber(env))
    env.process(publisher(env))
    env.run()
    # every message delivered exactly once despite 25% datagram loss
    assert sorted(got) == [b"m%d" % i for i in range(10)]


def test_publish_before_connect_rejected():
    env, net, broker, (client,) = make_world()
    from repro.mqttsn import MqttSnError

    with pytest.raises(MqttSnError):
        client.publish_nowait(1, b"x")


def test_unknown_topic_id_dropped_by_broker():
    env, net, broker, (client,) = make_world()

    def run(env):
        yield from client.connect()
        yield from client.publish(999, b"void", qos=0)

    env.process(run(env))
    env.run()
    assert broker.forwarded.count == 0


def test_multiple_publishers_fan_in_to_one_subscriber():
    env, net, broker, clients = make_world(n_clients=4)
    *pubs, sub = clients
    got = []

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("prov/+/data", lambda t, p: got.append((t, p)))

    def publisher(env, client, idx):
        yield from client.connect()
        tid = yield from client.register(f"prov/{idx}/data")
        yield env.timeout(0.5)
        yield from client.publish(tid, b"payload-%d" % idx, qos=2)

    env.process(subscriber(env))
    for i, p in enumerate(pubs):
        env.process(publisher(env, p, i))
    env.run()
    assert sorted(got) == [(f"prov/{i}/data", b"payload-%d" % i) for i in range(3)]


def test_subscriber_qos_downgrades_delivery():
    env, net, broker, clients = make_world(n_clients=2)
    pub, sub = clients
    got = []

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("t", lambda t, p: got.append(p), qos=0)

    def publisher(env):
        yield from pub.connect()
        tid = yield from pub.register("t")
        yield env.timeout(0.5)
        yield from pub.publish(tid, b"x", qos=2)

    env.process(subscriber(env))
    env.process(publisher(env))
    env.run()
    assert got == [b"x"]


def test_ping_roundtrip():
    env, net, broker, (client,) = make_world()
    done = {}

    def run(env):
        yield from client.connect()
        t0 = env.now
        yield from client.ping()
        done["rtt"] = env.now - t0

    env.process(run(env))
    env.run()
    assert done["rtt"] == pytest.approx(0.046, rel=0.05)


def test_disconnect_removes_session():
    env, net, broker, (client,) = make_world()

    def run(env):
        yield from client.connect()
        client.disconnect()
        yield env.timeout(1.0)

    env.process(run(env))
    env.run()
    assert len(broker.sessions) == 0
    assert not client.connected


def test_messages_from_unconnected_peer_dropped():
    env, net, broker, (client,) = make_world()
    from repro.mqttsn import packets as pkt

    def run(env):
        # skip CONNECT entirely
        client._send(pkt.Publish(topic_id=1, msg_id=1, payload=b"x", qos=0))
        yield env.timeout(1.0)

    env.process(run(env))
    env.run()
    assert broker.dropped_no_session.count == 1


def test_connect_times_out_without_broker():
    env = Environment()
    net = Network(env)
    net.add_host("edge")
    net.add_host("nowhere")
    net.connect("edge", "nowhere", bandwidth_bps=1e9, latency_s=0.01)
    client = MqttSnClient(net.hosts["edge"], "c", ("nowhere", 1883),
                          retry_interval_s=0.1, max_retries=2)
    failures = []

    def run(env):
        try:
            yield from client.connect()
        except MqttSnTimeout as exc:
            failures.append(str(exc))

    env.process(run(env))
    env.run()
    assert len(failures) == 1


def test_sixty_four_publishers_all_delivered():
    env, net, broker, clients = make_world(n_clients=65)
    *pubs, sub = clients
    got = []

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("prov/#", lambda t, p: got.append(p))

    def publisher(env, client, idx):
        yield from client.connect()
        tid = yield from client.register(f"prov/{idx}")
        yield env.timeout(0.5)
        yield from client.publish(tid, b"%d" % idx, qos=2)

    env.process(subscriber(env))
    for i, p in enumerate(pubs):
        env.process(publisher(env, p, i))
    env.run()
    assert len(got) == 64
