"""Broker QoS edge cases: msg-id wraparound, retry exhaustion with the
delivery-failure counter, and wildcard REGISTER/REGACK interleavings
under the subscription routing index — against a standalone broker and
against a two-shard :class:`BrokerCluster` (the retry/`delivery_failures`
semantics must hold when the delivery crosses shards)."""

import pytest

from repro.mqttsn import BrokerCluster, DEFAULT_BROKER_PORT, MqttSnBroker, MqttSnClient
from repro.mqttsn import packets as pkt
from repro.net import Network
from repro.simkernel import Environment


def make_world(n_clients=2, loss=0.0, seed=7, retry_interval_s=0.3, max_retries=5):
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("cloud")
    broker = MqttSnBroker(
        net.hosts["cloud"], retry_interval_s=retry_interval_s, max_retries=max_retries
    )
    clients = []
    for i in range(n_clients):
        net.add_host(f"edge-{i}")
        net.connect(f"edge-{i}", "cloud", bandwidth_bps=1e9, latency_s=0.01,
                    loss=loss)
        clients.append(
            MqttSnClient(net.hosts[f"edge-{i}"], f"c{i}",
                         ("cloud", DEFAULT_BROKER_PORT), retry_interval_s=0.3)
        )
    return env, net, broker, clients


def _session_of(broker, client_id):
    return next(s for s in broker.sessions.values() if s.client_id == client_id)


def test_outbound_msg_id_wraparound_on_0x10000_cycle():
    """Broker-assigned msg ids cycle 1..0xFFFF; delivery must survive the
    wrap back to 1 without stuck or colliding QoS state."""
    env, net, broker, (pub, sub) = make_world()
    got = []

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("wrap", lambda t, p: got.append(p))
        # spin the broker-side id generator to 3 ids before the wrap, so
        # the publishes below cross 0xFFFF -> 1
        session = _session_of(broker, "c1")
        for _ in range(0xFFFF - 4):
            next(session.msg_ids)

    def publisher(env):
        yield from pub.connect()
        tid = yield from pub.register("wrap")
        yield env.timeout(0.5)
        for i in range(8):
            yield from pub.publish(tid, b"m%d" % i, qos=2)

    env.process(subscriber(env))
    env.process(publisher(env))
    env.run()
    assert got == [b"m%d" % i for i in range(8)]  # exactly once, in order
    assert not broker._outbound  # every QoS 2 exchange completed
    assert broker.delivery_failures.count == 0


def test_qos2_retry_exhaustion_records_delivery_failure():
    """An unreachable subscriber exhausts the retry budget; the broker
    gives up and the give-up is observable on ``delivery_failures``."""
    env, net, broker, (pub, sub) = make_world(retry_interval_s=0.2, max_retries=3)

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("t", lambda t, p: None)
        yield env.timeout(0.2)
        sub.sock.close()  # subscriber vanishes: PUBLISH is never PUBRECed

    def publisher(env):
        yield from pub.connect()
        tid = yield from pub.register("t")
        yield env.timeout(0.5)
        yield from pub.publish(tid, b"x", qos=2)

    env.process(subscriber(env))
    env.process(publisher(env))
    env.run()
    assert broker.delivery_failures.count == 1
    assert not broker._outbound  # abandoned state was cleaned up


def test_qos2_redelivery_is_duplicate_suppressed_when_pubrec_lost():
    """Subscriber receives the PUBLISH but its PUBREC never reaches the
    broker: the broker retransmits with DUP until exhaustion, yet the
    handler fires exactly once (QoS 2 duplicate suppression)."""
    env, net, broker, (pub, sub) = make_world(retry_interval_s=0.2, max_retries=3)
    got = []
    real_send = sub._send

    def mute_qos2_acks(message):
        if isinstance(message, (pkt.Pubrec, pkt.Pubcomp)):
            return  # swallowed on the way back to the broker
        real_send(message)

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("t", lambda t, p: got.append(p))
        sub._send = mute_qos2_acks

    def publisher(env):
        yield from pub.connect()
        tid = yield from pub.register("t")
        yield env.timeout(0.5)
        yield from pub.publish(tid, b"only-once", qos=2)

    env.process(subscriber(env))
    env.process(publisher(env))
    env.run()
    assert got == [b"only-once"]  # retransmissions were suppressed
    assert broker.delivery_failures.count == 1  # broker eventually gave up


def test_wildcard_register_precedes_coalesced_publishes():
    """Two back-to-back publishes to a topic the wildcard subscriber has
    never seen arrive in one broker batch: the broker-initiated REGISTER
    must come first so both PUBLISHes resolve to the topic name."""
    env, net, broker, (pub, sub) = make_world()
    got = []

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("prov/#", lambda t, p: got.append((t, p)))

    def publisher(env):
        yield from pub.connect()
        tid = yield from pub.register("prov/dev/fresh")
        yield env.timeout(0.5)
        # nowait back-to-back: both PUBLISHes land in one broker wakeup
        first = pub.publish_nowait(tid, b"a", qos=2)
        second = pub.publish_nowait(tid, b"b", qos=2)
        yield first
        yield second

    env.process(subscriber(env))
    env.process(publisher(env))
    env.run()
    assert got == [("prov/dev/fresh", b"a"), ("prov/dev/fresh", b"b")]
    assert not broker._outbound


def test_wildcard_subscriber_exactly_once_under_loss():
    """REGISTER/REGACK and the QoS 2 handshake race with 25% datagram
    loss; every payload still arrives exactly once."""
    from repro.mqttsn import MqttSnTimeout

    env, net, broker, (pub, sub) = make_world(loss=0.25, seed=19)
    got = []
    confirmed = []

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("prov/#", lambda t, p: got.append(p))

    def publisher(env):
        yield from pub.connect()
        yield env.timeout(1.0)
        for i in range(6):
            payload = b"m%d" % i
            try:
                tid = yield from pub.register(f"prov/dev/{i}")
                yield from pub.publish(tid, payload, qos=2)
            except MqttSnTimeout:
                continue  # publisher gave up; broker may still have it
            confirmed.append(payload)

    env.process(subscriber(env))
    env.process(publisher(env))
    env.run()
    # no duplicates despite retransmitted PUBLISHes and REGISTERs...
    assert len(got) == len(set(got))
    # ...and everything the publisher confirmed reached the subscriber
    assert set(confirmed) <= set(got)
    assert len(confirmed) >= 3  # the lossy link still made progress


def test_reconnect_within_batch_delivers_with_the_old_session_state():
    """PUBLISH, DISCONNECT and re-CONNECT of the subscriber landing in
    one service batch: the delivery was staged while the subscription
    was live, so it still goes out (the seed delivered at dispatch
    time) — using the *old* session's state, so no broker-initiated
    REGISTER is wasted on the fresh replacement session."""
    env, net, broker, (pub, sub) = make_world()
    got = []

    def scenario(env):
        yield from sub.connect()
        yield from sub.subscribe("t", lambda t, p: got.append(p))
        yield from pub.connect()
        tid = yield from pub.register("t")
        yield env.timeout(0.5)
        pub_ep = next(ep for ep, s in broker.sessions.items() if s.client_id == "c0")
        sub_ep = next(ep for ep, s in broker.sessions.items() if s.client_id == "c1")
        # hand-dispatch one batch against the live broker state
        broker._dispatch(
            pkt.Publish(topic_id=tid, msg_id=77, payload=b"in-flight", qos=0), pub_ep
        )
        broker._dispatch(pkt.Disconnect(), sub_ep)
        broker._dispatch(pkt.Connect(client_id="c1"), sub_ep)
        broker._flush_deliveries()
        # the replacement session holds no subscriptions going forward
        assert broker.subscriptions.match("t") == []

    env.process(scenario(env))
    env.run()
    assert got == [b"in-flight"]  # staged while the subscription was live
    assert broker.forwarded.count == 1
    assert not broker._outbound
    assert broker.delivery_failures.count == 0


def test_disconnect_within_batch_still_delivers_like_the_seed():
    """A plain DISCONNECT arriving after the PUBLISH in the same batch
    must not swallow the delivery: the subscription was live when the
    PUBLISH was dispatched (the seed delivered at dispatch time)."""
    env, net, broker, (pub, sub) = make_world()
    got = []

    def scenario(env):
        yield from sub.connect()
        yield from sub.subscribe("t", lambda t, p: got.append(p))
        yield from pub.connect()
        tid = yield from pub.register("t")
        yield env.timeout(0.5)
        pub_ep = next(ep for ep, s in broker.sessions.items() if s.client_id == "c0")
        sub_ep = next(ep for ep, s in broker.sessions.items() if s.client_id == "c1")
        broker._dispatch(
            pkt.Publish(topic_id=tid, msg_id=78, payload=b"last-words", qos=0), pub_ep
        )
        broker._dispatch(pkt.Disconnect(), sub_ep)
        broker._flush_deliveries()

    env.process(scenario(env))
    env.run()
    assert got == [b"last-words"]
    assert broker.forwarded.count == 1


def make_two_shard_world(retry_interval_s=0.3, max_retries=5, seed=7):
    """A 2-shard cluster with a publisher and a subscriber homed on
    *different* shards (client ids picked off the cluster's own ring)."""
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("cloud")
    cluster = BrokerCluster(
        net.hosts["cloud"], shards=2,
        retry_interval_s=retry_interval_s, max_retries=max_retries,
    )
    pub_id = "pub0"
    sub_id = next(
        f"sub{i}" for i in range(100)
        if cluster.shard_of(f"sub{i}") != cluster.shard_of(pub_id)
    )
    clients = []
    for i, client_id in enumerate((pub_id, sub_id)):
        net.add_host(f"edge-{i}")
        net.connect(f"edge-{i}", "cloud", bandwidth_bps=1e9, latency_s=0.01)
        clients.append(
            MqttSnClient(net.hosts[f"edge-{i}"], client_id,
                         cluster.endpoint, retry_interval_s=0.3)
        )
    return env, net, cluster, clients


def test_cross_shard_qos2_retry_exhaustion_records_delivery_failure():
    """The single-broker give-up semantics survive sharding: an
    unreachable subscriber homed on the *other* shard exhausts the retry
    budget there, and the give-up shows on the cluster counter."""
    env, net, cluster, (pub, sub) = make_two_shard_world(
        retry_interval_s=0.2, max_retries=3,
    )

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("t", lambda t, p: None)
        yield env.timeout(0.2)
        sub.sock.close()  # subscriber vanishes: PUBLISH is never PUBRECed

    def publisher(env):
        yield from pub.connect()
        tid = yield from pub.register("t")
        yield env.timeout(0.5)
        yield from pub.publish(tid, b"x", qos=2)

    env.process(subscriber(env))
    env.process(publisher(env))
    env.run()
    assert cluster.delivery_failures.count == 1
    # ...and specifically on the subscriber's home shard
    sub_home = cluster.shards[cluster.shard_of(sub.client_id)]
    assert sub_home.delivery_failures.count == 1
    assert all(not shard._outbound for shard in cluster.shards)


def test_cross_shard_coalesced_publishes_share_one_register():
    """Two QoS-1 publishes dispatched in one origin-shard service batch
    and relayed to a wildcard subscriber on the other shard arrive as one
    coalesced flush group there: exactly one broker-initiated REGISTER
    precedes the pair (the per-group REGISTER dedup is only reachable
    when the relay batched both under a single flush/retry timer)."""
    env, net, cluster, (pub, sub) = make_two_shard_world()
    got = []
    registers = []
    real_deliver = sub.sock._deliver

    def spy_deliver(packet):
        message = pkt.decode(packet.payload)
        if isinstance(message, pkt.Register):
            registers.append(message)
        real_deliver(packet)

    sub.sock._deliver = spy_deliver

    def scenario(env):
        yield from sub.connect()
        yield from sub.subscribe("prov/#", lambda t, p: got.append((t, p)))
        yield from pub.connect()
        tid = yield from pub.register("prov/dev/fresh")
        yield env.timeout(0.5)
        origin = cluster.shards[cluster.shard_of(pub.client_id)]
        pub_ep = next(
            ep for ep, s in origin.sessions.items()
            if s.client_id == pub.client_id
        )
        # hand-dispatch one service batch against the live origin shard
        # (the wire analog — two nowait publishes — may split across
        # wakeups depending on link serialization timing)
        origin._dispatch(
            pkt.Publish(topic_id=tid, msg_id=101, payload=b"a", qos=1), pub_ep
        )
        origin._dispatch(
            pkt.Publish(topic_id=tid, msg_id=102, payload=b"b", qos=1), pub_ep
        )
        if origin._batch_deliveries:
            origin._flush_deliveries()
        origin.relay.flush(origin)

    env.process(scenario(env))
    env.run()
    assert got == [("prov/dev/fresh", b"a"), ("prov/dev/fresh", b"b")]
    assert len(registers) == 1  # coalesced: one REGISTER for the pair
    # one relay event carried both cross-shard deliveries
    assert cluster.relayed.count == 1
    assert cluster.relayed.total == 2
    assert all(not shard._outbound for shard in cluster.shards)
    assert cluster.delivery_failures.count == 0


def test_fan_in_is_serviced_in_batches():
    """Concurrent publishers queue datagrams while the broker services the
    previous batch; the receive loop drains them in grouped wakeups."""
    env, net, broker, clients = make_world(n_clients=17)
    *pubs, sub = clients
    got = []

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("prov/#", lambda t, p: got.append(p))

    def publisher(env, client, idx):
        yield from client.connect()
        tid = yield from client.register(f"prov/{idx}")
        yield env.timeout(0.5)
        yield from client.publish(tid, b"%d" % idx, qos=2)

    env.process(subscriber(env))
    for i, p in enumerate(pubs):
        env.process(publisher(env, p, i))
    env.run()
    assert len(got) == 16
    # total datagrams serviced across fewer wakeups than datagrams
    assert broker.serviced_batches.total > broker.serviced_batches.count
