"""Shard failover: the cluster survives a broker shard dying.

The failover contract: killing a shard removes it from the hash ring,
invalidates its dispatcher pins, migrates subscriber sessions (with
their filters) onto survivors and drops publisher sessions so the
clients' retry exhaustion trips their reconnect machinery.  A fresh
CONNECT classifies onto the shrunk ring, and in-flight relay traffic to
the dead shard is redirected rather than lost.
"""

import pytest

from repro.mqttsn import BrokerCluster, MqttSnClient
from repro.net import Network
from repro.simkernel import Environment

from .test_cluster import ids_on_distinct_shards, make_cluster_world


def run_failover(env, cluster, index):
    """Kill shard ``index`` and run the sim until its failover completes."""
    cluster.kill_shard(index)
    env.run(until=env.now + 10 * cluster.failover_detect_s)


# -------------------------------------------------------------- mechanics

def test_kill_shard_removes_it_from_ring_and_pins():
    env, net, cluster, clients = make_cluster_world(n_clients=0, shards=4)
    victim = 2
    cluster.kill_shard(victim)
    assert not cluster.shards[victim].alive
    env.run(until=1.0)
    assert cluster.failovers.count == 1
    assert victim not in cluster._ring.live_nodes()
    assert cluster.alive_shards == [0, 1, 3]
    # the dead shard keeps its slot: indices of survivors never shift
    assert len(cluster.shards) == 4
    # no session ever homes on the dead shard again
    for cid in (f"probe-{i}" for i in range(64)):
        assert cluster.shard_of(cid) != victim


def test_kill_shard_on_single_shard_cluster_is_rejected():
    env = Environment()
    net = Network(env, seed=1)
    net.add_host("cloud")
    cluster = BrokerCluster(net.hosts["cloud"])
    with pytest.raises(ValueError):
        cluster.kill_shard(0)


def test_check_shards_detects_an_externally_crashed_shard():
    """A shard crashed by something other than the kill hook is still
    picked up: check_shards() arms the same watchdog."""
    env, net, cluster, _ = make_cluster_world(n_clients=0, shards=3)
    cluster.shards[1].crash()
    assert cluster.check_shards() == [1]
    env.run(until=1.0)
    assert cluster.failovers.count == 1
    assert 1 not in cluster._ring.live_nodes()
    # idempotent: the handled shard is not reported again
    assert cluster.check_shards() == []


def test_watchdog_terminates_after_failover():
    """The liveness probe must not keep the event heap alive forever —
    env.run() with no deadline returns once failover completes."""
    env, net, cluster, _ = make_cluster_world(n_clients=0, shards=2)
    cluster.kill_shard(0)
    env.run()  # would hang (or spin to the horizon) with a pinned probe
    assert cluster.failovers.count == 1


def test_last_shard_death_drops_all_sessions_and_terminates():
    env, net, cluster, (pub, sub) = make_cluster_world(shards=2)

    def scenario(env):
        yield from pub.connect()
        yield from sub.connect()
        yield from sub.subscribe("t/#", lambda t, p: None)
        yield env.timeout(0.1)
        cluster.kill_shard(0)
        cluster.kill_shard(1)

    env.process(scenario(env))
    env.run(until=30)
    assert cluster.failovers.count == 2
    assert cluster.alive_shards == []
    assert all(not shard.sessions for shard in cluster.shards)
    # nothing survived to migrate onto
    assert cluster.sessions_migrated.count == 0
    assert cluster.sessions_dropped.count == 2


# --------------------------------------------------- session re-homing

def test_subscriber_session_migrates_and_keeps_receiving():
    """A subscriber homed on the dying shard keeps its subscription: the
    session object moves to the ring's new owner, filters re-home, and a
    publish after failover still reaches it (topic ids re-REGISTERed)."""
    env = Environment()
    net = Network(env, seed=7)
    net.add_host("cloud")
    cluster = BrokerCluster(net.hosts["cloud"], shards=4,
                            retry_interval_s=0.3, max_retries=5)
    sub_id, pub_id = ids_on_distinct_shards(cluster, count=2)
    victim = cluster.shard_of(sub_id)
    for i, cid in enumerate((sub_id, pub_id)):
        net.add_host(f"edge-{i}")
        net.connect(f"edge-{i}", "cloud", bandwidth_bps=1e9, latency_s=0.01)
    sub = MqttSnClient(net.hosts["edge-0"], sub_id, cluster.endpoint,
                       retry_interval_s=0.3)
    pub = MqttSnClient(net.hosts["edge-1"], pub_id, cluster.endpoint,
                       retry_interval_s=0.3)
    got = []

    def scenario(env):
        yield from sub.connect()
        yield from sub.subscribe("t/+", lambda t, p: got.append((t, p)))
        yield from pub.connect()
        tid = yield from pub.register("t/a")
        yield from pub.publish(tid, b"before", qos=1)
        yield env.timeout(0.5)
        cluster.kill_shard(victim)
        yield env.timeout(0.5)  # watchdog fails the shard over
        yield from pub.publish(tid, b"after", qos=1)

    env.process(scenario(env))
    env.run(until=30)
    assert cluster.sessions_migrated.count == 1
    new_home = cluster.shard_of(sub_id)
    assert new_home != victim
    assert [p for _, p in got] == [b"before", b"after"]


def test_publisher_session_drops_and_reconnect_lands_on_survivor():
    env = Environment()
    net = Network(env, seed=7)
    net.add_host("cloud")
    cluster = BrokerCluster(net.hosts["cloud"], shards=4,
                            retry_interval_s=0.2, max_retries=3)
    (pub_id,) = ids_on_distinct_shards(cluster, count=1)
    victim = cluster.shard_of(pub_id)
    net.add_host("edge-0")
    net.connect("edge-0", "cloud", bandwidth_bps=1e9, latency_s=0.01)
    pub = MqttSnClient(net.hosts["edge-0"], pub_id, cluster.endpoint,
                       retry_interval_s=0.2)

    def scenario(env):
        yield from pub.connect()
        yield env.timeout(0.1)
        cluster.kill_shard(victim)
        yield env.timeout(0.5)
        # the dropped publisher reconnects: CONNECT classifies on the
        # shrunk ring, so the fresh session lives on a survivor
        yield from pub.connect()

    env.process(scenario(env))
    env.run(until=30)
    assert cluster.sessions_dropped.count == 1
    new_home = cluster.shard_of(pub_id)
    assert new_home != victim
    assert cluster.shards[new_home].sessions, "reconnect created no session"
    assert not cluster.shards[victim].sessions
