"""QoS 1 paths and broker robustness details not covered elsewhere."""

import pytest

from repro.mqttsn import DEFAULT_BROKER_PORT, MqttSnBroker, MqttSnClient
from repro.mqttsn import packets as pkt
from repro.net import Network
from repro.simkernel import Environment


def make_world(n_clients=2, loss=0.0, seed=5):
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("cloud")
    broker = MqttSnBroker(net.hosts["cloud"])
    clients = []
    for i in range(n_clients):
        net.add_host(f"edge-{i}")
        net.connect(f"edge-{i}", "cloud", bandwidth_bps=1e9, latency_s=0.01,
                    loss=loss)
        clients.append(MqttSnClient(net.hosts[f"edge-{i}"], f"c{i}",
                                    ("cloud", DEFAULT_BROKER_PORT),
                                    retry_interval_s=0.3))
    return env, net, broker, clients


def test_qos1_publish_completes_on_puback():
    env, net, broker, (pub, sub) = make_world()
    got = []
    timing = {}

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("q1", lambda t, p: got.append(p), qos=1)

    def publisher(env):
        yield from pub.connect()
        tid = yield from pub.register("q1")
        yield env.timeout(0.3)
        t0 = env.now
        yield from pub.publish(tid, b"once", qos=1)
        timing["latency"] = env.now - t0

    env.process(subscriber(env))
    env.process(publisher(env))
    env.run()
    assert got == [b"once"]
    # QoS1: one RTT (PUBLISH/PUBACK), half of QoS2's two
    assert timing["latency"] == pytest.approx(0.02, rel=0.15)


def test_qos1_retransmission_may_duplicate():
    """At-least-once: under loss, the subscriber may see duplicates —
    exactly the contract difference that motivates QoS 2."""
    env, net, broker, (pub, sub) = make_world(loss=0.3, seed=23)
    got = []

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("q1", lambda t, p: got.append(p), qos=1)

    def publisher(env):
        yield from pub.connect()
        tid = yield from pub.register("q1")
        yield env.timeout(1.0)
        for i in range(8):
            try:
                yield from pub.publish(tid, b"m%d" % i, qos=1)
            except pkt.MqttSnError:
                pass  # 30% loss may exhaust QoS retries; that is the point

    env.process(subscriber(env))
    env.process(publisher(env))
    env.run()
    # everything that completed arrived at least once
    assert len(set(got)) >= len(got) - len(got) // 2
    assert len(got) >= 1


def test_register_invalid_topic_gets_error_regack():
    env, net, broker, (client,) = make_world(n_clients=1)
    failures = []

    def run(env):
        yield from client.connect()
        # wildcard registration is invalid
        msg_id = 999
        client._send(pkt.Register(topic_id=0, msg_id=msg_id, topic_name="a/+/b"))
        yield env.timeout(1.0)

    env.process(run(env))
    env.run()
    # broker answered with RC_INVALID_TOPIC (client ignores unsolicited
    # regacks; we just assert no crash and no topic registered)
    assert "a/+/b" not in broker.topics


def test_subscribe_invalid_filter_rejected_by_broker():
    env, net, broker, (client,) = make_world(n_clients=1)
    results = {}

    def run(env):
        yield from client.connect()
        # craft an invalid filter ('#' not last)
        msg_id = 5
        done = env.event()
        client._pending[("subscribe", msg_id)] = type(
            "P", (), {"kind": "subscribe", "event": done, "message": None,
                      "state": "sent"}
        )()
        client._send(pkt.Subscribe(msg_id=msg_id, topic_name="a/#/b", qos=1))
        suback = yield done
        results["rc"] = suback.return_code

    env.process(run(env))
    env.run()
    assert results["rc"] == pkt.RC_INVALID_TOPIC


def test_broker_counts_forwarded_bytes():
    env, net, broker, (pub, sub) = make_world()

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("t", lambda t, p: None)

    def publisher(env):
        yield from pub.connect()
        tid = yield from pub.register("t")
        yield env.timeout(0.3)
        yield from pub.publish(tid, b"x" * 100, qos=2)

    env.process(subscriber(env))
    env.process(publisher(env))
    env.run()
    assert broker.forwarded.count == 1
    assert broker.forwarded.total == 100


def test_publisher_without_subscribers_is_fine():
    env, net, broker, (pub,) = make_world(n_clients=1)

    def run(env):
        yield from pub.connect()
        tid = yield from pub.register("lonely")
        yield from pub.publish(tid, b"void", qos=2)

    env.process(run(env))
    env.run()
    assert broker.forwarded.count == 0  # nothing to forward, no error
