"""Round-trip and framing tests for the MQTT-SN codec."""

import pytest

from repro.mqttsn import packets as pkt


ROUNDTRIP_CASES = [
    pkt.Connect(client_id="edge-1", duration=120, clean_session=True),
    pkt.Connect(client_id="x", duration=0, clean_session=False),
    pkt.Connack(return_code=pkt.RC_ACCEPTED),
    pkt.Connack(return_code=pkt.RC_CONGESTION),
    pkt.Register(topic_id=0, msg_id=17, topic_name="prov/device/1"),
    pkt.Regack(topic_id=42, msg_id=17, return_code=pkt.RC_ACCEPTED),
    pkt.Publish(topic_id=42, msg_id=1, payload=b"\x00\x01data", qos=2),
    pkt.Publish(topic_id=1, msg_id=0, payload=b"", qos=0),
    pkt.Publish(topic_id=9, msg_id=5, payload=b"x", qos=1, dup=True, retain=True),
    pkt.Puback(topic_id=42, msg_id=3),
    pkt.Pubrec(msg_id=77),
    pkt.Pubrel(msg_id=77),
    pkt.Pubcomp(msg_id=77),
    pkt.Subscribe(msg_id=5, topic_name="prov/+/data", qos=2),
    pkt.Suback(topic_id=11, msg_id=5, qos=2),
    pkt.Pingreq(),
    pkt.Pingresp(),
    pkt.Disconnect(),
    pkt.Disconnect(duration=30),
]


@pytest.mark.parametrize("message", ROUNDTRIP_CASES, ids=lambda m: type(m).__name__)
def test_roundtrip(message):
    encoded = message.encode()
    decoded = pkt.decode(encoded)
    assert decoded == message


def test_small_frame_length_prefix():
    encoded = pkt.Pingreq().encode()
    assert encoded[0] == len(encoded) == 2


def test_long_frame_uses_three_byte_length():
    payload = b"a" * 300
    message = pkt.Publish(topic_id=1, msg_id=1, payload=payload, qos=2)
    encoded = message.encode()
    assert encoded[0] == 0x01
    assert pkt.decode(encoded) == message


def test_wire_size_matches_encoding():
    message = pkt.Publish(topic_id=1, msg_id=1, payload=b"abc", qos=1)
    assert message.wire_size == len(message.encode())


def test_publish_header_overhead_is_seven_bytes():
    # length(1) + type(1) + flags(1) + topic_id(2) + msg_id(2)
    message = pkt.Publish(topic_id=1, msg_id=1, payload=b"", qos=2)
    assert message.wire_size == 7


def test_decode_rejects_truncated():
    with pytest.raises(pkt.MalformedPacket):
        pkt.decode(b"\x05")
    with pytest.raises(pkt.MalformedPacket):
        pkt.decode(b"")


def test_decode_rejects_bad_length_field():
    good = pkt.Pubrec(msg_id=1).encode()
    with pytest.raises(pkt.MalformedPacket):
        pkt.decode(good[:-1])  # truncated body


def test_decode_rejects_unknown_type():
    with pytest.raises(pkt.MalformedPacket):
        pkt.decode(bytes([2, 0x7F]))


def test_connect_client_id_length_validation():
    with pytest.raises(ValueError):
        pkt.Connect(client_id="").encode()
    with pytest.raises(ValueError):
        pkt.Connect(client_id="x" * 24).encode()


def test_invalid_qos_rejected():
    with pytest.raises(ValueError):
        pkt.Publish(topic_id=1, msg_id=1, payload=b"", qos=3).encode()


def test_flags_preserved_through_roundtrip():
    message = pkt.Publish(topic_id=1, msg_id=2, payload=b"p", qos=2, dup=True)
    decoded = pkt.decode(message.encode())
    assert decoded.dup and decoded.qos == 2 and not decoded.retain
