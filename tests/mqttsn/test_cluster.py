"""BrokerCluster: sharded broker plane behind one endpoint.

Covers the cluster acceptance contract: a cluster of one is the
standalone broker (wire-identical, same attributes), larger clusters pin
sessions to shards by client-id hash, and a PUBLISH arriving on one
shard reaches subscribers homed on any other shard — exact and wildcard
filters alike — with the single broker's QoS and accounting semantics.
"""

import pytest

from repro.mqttsn import (
    DEFAULT_BROKER_PORT,
    BrokerCluster,
    MqttSnClient,
)
from repro.mqttsn.cluster import _peek_connect_client_id
from repro.mqttsn import packets as pkt
from repro.net import Network, UdpSocket
from repro.simkernel import Environment


def make_cluster_world(n_clients=2, shards=4, loss=0.0, seed=7,
                       retry_interval_s=0.3, max_retries=5, client_ids=None,
                       **cluster_kwargs):
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("cloud")
    cluster = BrokerCluster(
        net.hosts["cloud"], shards=shards,
        retry_interval_s=retry_interval_s, max_retries=max_retries,
        **cluster_kwargs,
    )
    if client_ids is None:
        client_ids = [f"c{i}" for i in range(n_clients)]
    clients = []
    for i, client_id in enumerate(client_ids):
        net.add_host(f"edge-{i}")
        net.connect(f"edge-{i}", "cloud", bandwidth_bps=1e9, latency_s=0.01,
                    loss=loss)
        clients.append(
            MqttSnClient(net.hosts[f"edge-{i}"], client_id,
                         cluster.endpoint, retry_interval_s=0.3)
        )
    return env, net, cluster, clients


def ids_on_distinct_shards(cluster, count=2, prefix="c"):
    """Deterministically pick client ids homed on pairwise-distinct shards."""
    chosen, shards_used = [], set()
    i = 0
    while len(chosen) < count:
        candidate = f"{prefix}{i}"
        shard = cluster.shard_of(candidate)
        if shard not in shards_used:
            shards_used.add(shard)
            chosen.append(candidate)
        i += 1
    return chosen


def ids_on_same_shard(cluster, count=2, prefix="s"):
    by_shard = {}
    i = 0
    while True:
        candidate = f"{prefix}{i}"
        bucket = by_shard.setdefault(cluster.shard_of(candidate), [])
        bucket.append(candidate)
        if len(bucket) == count:
            return bucket
        i += 1


# ---------------------------------------------------------------- shards=1


def test_cluster_of_one_is_the_standalone_broker():
    """No dispatcher, no routing view, no relay: the single shard binds
    the public port itself — byte-for-byte the pre-cluster server."""
    env = Environment()
    net = Network(env, seed=1)
    net.add_host("cloud")
    cluster = BrokerCluster(net.hosts["cloud"])
    assert len(cluster) == 1
    assert cluster.dispatcher is None
    assert cluster.routing_view is None
    shard = cluster.shards[0]
    assert shard.relay is None
    assert isinstance(shard.sock, UdpSocket)
    assert shard.sock.port == DEFAULT_BROKER_PORT
    assert cluster.shard_of("anything") == 0
    # delegated views are the shard's own objects, not copies
    assert cluster.sessions is shard.sessions
    assert cluster.subscriptions is shard.subscriptions
    assert cluster.topics is shard.topics
    assert cluster.delivery_failures is shard.delivery_failures


def test_cluster_of_one_full_qos2_roundtrip():
    env, net, cluster, (pub, sub) = make_cluster_world(shards=1)
    got = []

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("t", lambda t, p: got.append(p))

    def publisher(env):
        yield from pub.connect()
        tid = yield from pub.register("t")
        yield env.timeout(0.5)
        yield from pub.publish(tid, b"x", qos=2)

    env.process(subscriber(env))
    env.process(publisher(env))
    env.run()
    assert got == [b"x"]
    assert cluster.delivery_failures.count == 0


def test_retry_knob_setter_reaches_every_shard():
    env, net, cluster, _ = make_cluster_world(n_clients=0, shards=3)
    cluster.retry_interval_s = 0.05
    cluster.max_retries = 2
    assert all(s.retry_interval_s == 0.05 for s in cluster.shards)
    assert all(s.max_retries == 2 for s in cluster.shards)


def test_cluster_rejects_zero_shards():
    env = Environment()
    net = Network(env, seed=1)
    net.add_host("cloud")
    with pytest.raises(ValueError):
        BrokerCluster(net.hosts["cloud"], shards=0)


# ----------------------------------------------------------- connect peek


def test_connect_peek_extracts_client_id():
    frame = pkt.Connect(client_id="edge-device-7").encode()
    assert _peek_connect_client_id(frame) == "edge-device-7"
    assert _peek_connect_client_id(pkt.Pingreq().encode()) is None
    assert _peek_connect_client_id(b"") is None
    assert _peek_connect_client_id(b"\x01\x00") is None
    tid_frame = pkt.Publish(topic_id=3, msg_id=9, payload=b"zz").encode()
    assert _peek_connect_client_id(tid_frame) is None


def test_sessions_pin_to_the_client_id_shard():
    env, net, cluster, clients = make_cluster_world(
        n_clients=3, shards=4, client_ids=None,
    )

    def scenario(env):
        for client in clients:
            yield from client.connect()

    env.process(scenario(env))
    env.run()
    assert len(cluster.sessions) == 3
    for client in clients:
        expected = cluster.shard_of(client.client_id)
        endpoint = (client.host.name, client.sock.port)
        assert cluster.dispatcher.pins[endpoint] == expected
        assert endpoint in cluster.shards[expected].sessions


# ------------------------------------------------------ cross-shard routing


def test_cross_shard_qos1_publish_reaches_exact_subscriber():
    """Acceptance: a subscriber homed on shard B receives a QoS-1 PUBLISH
    sent to shard A (exact filter)."""
    env, net, cluster, _ = make_cluster_world(n_clients=0, shards=4)
    pub_id, sub_id = ids_on_distinct_shards(cluster, 2)
    env, net, cluster, (pub, sub) = make_cluster_world(
        shards=4, client_ids=[pub_id, sub_id],
    )
    got = []

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("prov/dev/1", lambda t, p: got.append((t, p)),
                                 qos=1)

    def publisher(env):
        yield from pub.connect()
        tid = yield from pub.register("prov/dev/1")
        yield env.timeout(0.5)
        yield from pub.publish(tid, b"cross", qos=1)

    env.process(subscriber(env))
    env.process(publisher(env))
    env.run()
    assert got == [("prov/dev/1", b"cross")]
    assert cluster.relayed.count == 1
    assert cluster.delivery_failures.count == 0
    assert all(not s._outbound for s in cluster.shards)
    # the delivery was made by the subscriber's home shard, not the origin
    sub_home = cluster.shards[cluster.shard_of(sub_id)]
    pub_home = cluster.shards[cluster.shard_of(pub_id)]
    assert sub_home.forwarded.count == 1
    assert pub_home.forwarded.count == 0


def test_cross_shard_wildcard_subscriber_receives_qos2():
    """Acceptance: wildcard filters replicate into the shared routing
    view, so `prov/#` homed on shard B matches a PUBLISH on shard A."""
    env, net, cluster, _ = make_cluster_world(n_clients=0, shards=4)
    pub_id, sub_id = ids_on_distinct_shards(cluster, 2)
    env, net, cluster, (pub, sub) = make_cluster_world(
        shards=4, client_ids=[pub_id, sub_id],
    )
    got = []

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("prov/#", lambda t, p: got.append((t, p)))

    def publisher(env):
        yield from pub.connect()
        tid = yield from pub.register("prov/dev/fresh")
        yield env.timeout(0.5)
        yield from pub.publish(tid, b"w", qos=2)

    env.process(subscriber(env))
    env.process(publisher(env))
    env.run()
    # topic resolution crossed shards: the subscriber's home shard had
    # never seen the topic and must broker-REGISTER it before delivering
    assert got == [("prov/dev/fresh", b"w")]
    assert cluster.delivery_failures.count == 0
    assert all(not s._outbound for s in cluster.shards)


def test_same_shard_delivery_does_not_relay():
    env, net, cluster, _ = make_cluster_world(n_clients=0, shards=4)
    a, b = ids_on_same_shard(cluster, 2)
    env, net, cluster, (pub, sub) = make_cluster_world(
        shards=4, client_ids=[a, b],
    )
    got = []

    def subscriber(env):
        yield from sub.connect()
        yield from sub.subscribe("local/t", lambda t, p: got.append(p))

    def publisher(env):
        yield from pub.connect()
        tid = yield from pub.register("local/t")
        yield env.timeout(0.5)
        yield from pub.publish(tid, b"stay", qos=1)

    env.process(subscriber(env))
    env.process(publisher(env))
    env.run()
    assert got == [b"stay"]
    assert cluster.relayed.count == 0


def test_subscriber_on_every_shard_receives_one_publish():
    """One PUBLISH fans out to subscribers on all four shards exactly once."""
    env, net, cluster, _ = make_cluster_world(n_clients=0, shards=4)
    sub_ids = ids_on_distinct_shards(cluster, 4, prefix="sub")
    pub_id = "thepub"
    env, net, cluster, clients = make_cluster_world(
        shards=4, client_ids=[pub_id, *sub_ids],
    )
    pub, subs = clients[0], clients[1:]
    got = {cid: [] for cid in sub_ids}

    def subscriber(env, client):
        yield from client.connect()
        yield from client.subscribe(
            "fan/+/out", lambda t, p, cid=client.client_id: got[cid].append(p)
        )

    def publisher(env):
        yield from pub.connect()
        tid = yield from pub.register("fan/1/out")
        yield env.timeout(0.5)
        yield from pub.publish(tid, b"all", qos=1)

    for client in subs:
        env.process(subscriber(env, client))
    env.process(publisher(env))
    env.run()
    assert all(messages == [b"all"] for messages in got.values())
    # three of the four subscribers are homed off the publisher's shard
    assert cluster.relayed.count == 3


def test_disconnect_drops_out_of_the_shared_routing_view():
    env, net, cluster, _ = make_cluster_world(n_clients=0, shards=4)
    pub_id, sub_id = ids_on_distinct_shards(cluster, 2)
    env, net, cluster, (pub, sub) = make_cluster_world(
        shards=4, client_ids=[pub_id, sub_id],
    )
    got = []

    def scenario(env):
        yield from sub.connect()
        yield from sub.subscribe("gone/t", lambda t, p: got.append(p))
        yield from pub.connect()
        tid = yield from pub.register("gone/t")
        yield env.timeout(0.5)
        assert len(cluster.subscriptions) == 1
        sub.disconnect()
        yield env.timeout(0.5)
        assert len(cluster.subscriptions) == 0
        yield from pub.publish(tid, b"nobody", qos=1)

    env.process(scenario(env))
    env.run()
    assert got == []
    assert cluster.relayed.count == 0


def test_reconnect_with_new_client_id_purges_the_old_shard():
    """An endpoint re-identifying onto a different shard must not leave a
    ghost session (or routing-view entries) on its old home."""
    env, net, cluster, _ = make_cluster_world(n_clients=0, shards=4)
    first = "a0"
    second = next(
        f"b{i}" for i in range(100)
        if cluster.shard_of(f"b{i}") != cluster.shard_of(first)
    )
    env, net, cluster, (client,) = make_cluster_world(
        shards=4, client_ids=[first],
    )

    def scenario(env):
        yield from client.connect()
        yield from client.subscribe("ghost/t", lambda t, p: None)
        old_home = cluster.shards[cluster.shard_of(first)]
        endpoint = (client.host.name, client.sock.port)
        assert endpoint in old_home.sessions
        assert len(cluster.subscriptions) == 1
        # same socket, new identity hashing onto a different shard
        client.client_id = second
        client.connected = False
        yield from client.connect()

    env.process(scenario(env))
    env.run()
    old_home = cluster.shards[cluster.shard_of(first)]
    new_home = cluster.shards[cluster.shard_of(second)]
    endpoint = next(iter(cluster.sessions))
    assert endpoint not in old_home.sessions
    assert endpoint in new_home.sessions
    # the fresh CONNECT reset subscriptions, exactly like a single broker
    assert len(cluster.subscriptions) == 0


def test_disconnect_releases_the_dispatcher_pin():
    """Churning endpoints must not accrete dispatcher state: the sticky
    pin is dropped once the DISCONNECT has been forwarded to its shard
    (and a later re-CONNECT simply pins afresh)."""
    env, net, cluster, (client,) = make_cluster_world(
        n_clients=1, shards=4, client_ids=["churner"],
    )
    marks = {}

    def scenario(env):
        yield from client.connect()
        endpoint = (client.host.name, client.sock.port)
        marks["pinned"] = endpoint in cluster.dispatcher.pins
        client.disconnect()
        yield env.timeout(0.5)
        marks["after_disconnect"] = endpoint in cluster.dispatcher.pins
        yield from client.connect()
        marks["after_reconnect"] = endpoint in cluster.dispatcher.pins

    env.process(scenario(env))
    env.run()
    assert marks == {
        "pinned": True, "after_disconnect": False, "after_reconnect": True,
    }
    assert len(cluster.sessions) == 1


def test_repin_purges_in_flight_qos_state_on_the_old_shard():
    """A subscriber with an unacked delivery re-identifies onto another
    shard: the old shard must drop its outbound QoS state instead of
    retransmitting to exhaustion and recording a spurious delivery
    failure for a client that is alive and acking (its acks follow the
    new pin)."""
    env, net, cluster, _ = make_cluster_world(n_clients=0, shards=4)
    pub_id, sub_id = ids_on_distinct_shards(cluster, 2)
    new_id = next(
        f"n{i}" for i in range(100)
        if cluster.shard_of(f"n{i}")
        not in (cluster.shard_of(pub_id), cluster.shard_of(sub_id))
    )
    env, net, cluster, (pub, sub) = make_cluster_world(
        shards=4, client_ids=[pub_id, sub_id], retry_interval_s=0.3,
        max_retries=3,
    )
    got = []
    real_send = sub._send

    def mute_acks(message):
        if isinstance(message, (pkt.Puback, pkt.Pubrec)):
            return  # delivery stays in flight on the subscriber's shard
        real_send(message)

    def scenario(env):
        yield from sub.connect()
        yield from sub.subscribe("t", lambda t, p: got.append(p), qos=1)
        yield from pub.connect()
        tid = yield from pub.register("t")
        yield env.timeout(0.5)
        sub._send = mute_acks
        yield from pub.publish(tid, b"inflight", qos=1)
        yield env.timeout(0.1)
        old_home = cluster.shards[cluster.shard_of(sub_id)]
        assert old_home._outbound  # the unacked delivery is tracked
        sub._send = real_send
        sub.client_id = new_id  # re-identify onto a third shard
        sub.connected = False
        yield from sub.connect()

    env.process(scenario(env))
    env.run()
    assert got == [b"inflight"]  # the delivery itself went out
    assert cluster.delivery_failures.count == 0  # no spurious give-up
    assert all(not shard._outbound for shard in cluster.shards)


def test_relayed_delivery_survives_session_replacement_in_flight():
    """A re-CONNECT racing the relay hop must not unsend the delivery:
    it was matched while the subscription was live (the single broker's
    dispatch-time rule, applied cross-shard)."""
    env, net, cluster, _ = make_cluster_world(n_clients=0, shards=4)
    pub_id, sub_id = ids_on_distinct_shards(cluster, 2)
    env, net, cluster, (pub, sub) = make_cluster_world(
        shards=4, client_ids=[pub_id, sub_id],
    )
    got = []

    def scenario(env):
        yield from sub.connect()
        yield from sub.subscribe("race/t", lambda t, p: got.append(p))
        yield from pub.connect()
        tid = yield from pub.register("race/t")
        yield env.timeout(0.5)
        origin = cluster.shards[cluster.shard_of(pub_id)]
        remote = cluster.shards[cluster.shard_of(sub_id)]
        pub_ep = next(
            ep for ep, s in origin.sessions.items() if s.client_id == pub_id
        )
        sub_ep = next(
            ep for ep, s in remote.sessions.items() if s.client_id == sub_id
        )
        # one origin service batch stages the relay...
        origin._dispatch(
            pkt.Publish(topic_id=tid, msg_id=0, payload=b"kept", qos=0), pub_ep
        )
        origin.relay.flush(origin)
        # ...and the subscriber's session is replaced before the relay
        # event fires (a same-instant re-CONNECT on its home shard)
        remote._dispatch(pkt.Connect(client_id=sub_id), sub_ep)

    env.process(scenario(env))
    env.run()
    assert got == [b"kept"]  # delivered with the session live at match time
    assert cluster.delivery_failures.count == 0


# ------------------------------------------------- p2c session placement


def skewed_ids(count, shard=0, shards=4, prefix="skew"):
    """Client ids that all hash onto ``shard`` on the shard ring (the
    adversarial workload for pure hash placement)."""
    from repro.hashring import ConsistentHashRing

    ring = ConsistentHashRing(shards, salt="shard")
    out, i = [], 0
    while len(out) < count:
        candidate = f"{prefix}{i}"
        if ring.node_for(candidate) == shard:
            out.append(candidate)
        i += 1
    return out


def test_p2c_balances_a_hash_clumped_connect_burst():
    """16 client ids that pure hashing would all home on shard 0 spread
    across the cluster under p2c placement, within the acceptance bound
    on max/mean session ratio."""
    ids = skewed_ids(16)
    env, net, cluster, clients = make_cluster_world(
        shards=4, client_ids=ids, placement="p2c",
    )

    def scenario(env):
        for client in clients:
            yield from client.connect()
            yield env.timeout(0.05)

    env.process(scenario(env))
    env.run()
    assert len(cluster.sessions) == 16
    assert cluster.p2c_placements.count == 16
    stats = cluster.stats()
    assert stats["placement"] == "p2c"
    assert stats["max_mean_session_ratio"] <= 1.75
    occupied = [s for s in stats["shards"] if s["sessions"]]
    assert len(occupied) >= 3  # hash placement would use exactly one


def test_p2c_placement_is_sticky_across_reconnects():
    ids = skewed_ids(6)
    env, net, cluster, clients = make_cluster_world(
        shards=4, client_ids=ids, placement="p2c",
    )
    homes = {}

    def scenario(env):
        for client in clients:
            yield from client.connect()
            yield env.timeout(0.05)
        for client in clients:
            endpoint = (client.host.name, client.sock.port)
            homes[client.client_id] = cluster.dispatcher.pins[endpoint]
        # retransmitted / repeated CONNECTs must not migrate the session
        for client in clients:
            client.connected = False
            yield from client.connect()

    env.process(scenario(env))
    env.run()
    for client in clients:
        endpoint = (client.host.name, client.sock.port)
        assert cluster.dispatcher.pins[endpoint] == homes[client.client_id]
    assert len(cluster.sessions) == 6


def test_p2c_never_places_on_a_dead_shard_and_failover_unsticks():
    """After a shard dies, no CONNECT — new or returning — may land on
    it: the sticky placement table invalidates every entry pointing at
    the corpse and p2c only samples live shards."""
    ids = skewed_ids(8)
    late_ids = skewed_ids(4, prefix="late")
    env, net, cluster, clients = make_cluster_world(
        shards=4, client_ids=ids + late_ids, placement="p2c",
    )
    early, late = clients[:8], clients[8:]
    victim = {}

    def scenario(env):
        for client in early:
            yield from client.connect()
            # subscribers (they hold filters) are *migrated* on failover;
            # bare publisher sessions would be dropped by design
            yield from client.subscribe(
                f"p2c/{client.client_id}", lambda t, p: None
            )
            yield env.timeout(0.05)
        # kill the shard currently holding the most sessions
        by_load = max(
            range(4), key=lambda i: len(cluster.shards[i].sessions)
        )
        victim["index"] = by_load
        cluster.kill_shard(by_load)
        yield env.timeout(1.0)  # let failover migrate the survivors
        for client in late:
            yield from client.connect()
            yield env.timeout(0.05)

    env.process(scenario(env))
    env.run()
    dead = victim["index"]
    assert not cluster.shards[dead].alive
    assert len(cluster.shards[dead].sessions) == 0
    # sticky entries never point at the corpse
    assert all(home != dead for home in cluster._placement.values())
    assert all(pin != dead for pin in cluster.dispatcher.pins.values())
    assert len(cluster.sessions) == 12  # everyone is somewhere alive


# --------------------------------------------- control-plane observability


def test_cluster_stats_snapshot():
    env, net, cluster, (a, b) = make_cluster_world(
        shards=4, client_ids=["statA", "statB"],
    )

    def scenario(env):
        yield from a.connect()
        yield from a.subscribe("stats/t", lambda t, p: None)
        yield from b.connect()

    env.process(scenario(env))
    env.run()
    stats = cluster.stats()
    assert stats["placement"] == "hash"
    assert stats["sessions"] == 2
    assert len(stats["shards"]) == 4
    assert sum(s["sessions"] for s in stats["shards"]) == 2
    for shard_stats in stats["shards"]:
        assert shard_stats["alive"]
        assert shard_stats["inbox_depth"] == 0
    assert stats["max_mean_session_ratio"] >= 1.0
    assert stats["failovers"] == 0
    assert stats["rehomed"] == 0


# ------------------------------------------- subscription handover (move)


def test_move_subscription_flips_routing_in_one_instant():
    """The pool's elastic handover primitive: discard on the old key and
    re-add under the new key atomically, so the next PUBLISH routes to
    the new subscriber and the old one never sees it."""
    env, net, cluster, (pub, s1, s2) = make_cluster_world(
        shards=4, client_ids=["mover", "oldsub", "newsub"],
    )
    got_old, got_new = [], []

    def scenario(env):
        yield from s1.connect()
        yield from s1.subscribe("mv/t", lambda t, p: got_old.append(p), qos=1)
        yield from s2.connect()
        s2.bind_filter("mv/t", lambda t, p: got_new.append(p))
        yield from pub.connect()
        tid = yield from pub.register("mv/t")
        yield env.timeout(0.5)
        yield from pub.publish(tid, b"before", qos=1)
        yield env.timeout(0.5)
        cluster.move_subscription(
            (s1.host.name, s1.sock.port), (s2.host.name, s2.sock.port),
            "mv/t", qos=1,
        )
        yield from pub.publish(tid, b"after", qos=1)
        yield env.timeout(0.5)

    env.process(scenario(env))
    env.run()
    assert got_old == [b"before"]
    assert got_new == [b"after"]
    assert cluster.delivery_failures.count == 0


def test_move_subscription_requires_the_old_holder():
    env, net, cluster, (a, b) = make_cluster_world(
        shards=4, client_ids=["holderless", "target"],
    )
    outcome = {}

    def scenario(env):
        yield from a.connect()
        yield from b.connect()
        try:
            cluster.move_subscription(
                (a.host.name, a.sock.port), (b.host.name, b.sock.port),
                "never/subscribed",
            )
        except KeyError:
            outcome["raised"] = True

    env.process(scenario(env))
    env.run()
    assert outcome == {"raised": True}


# -------------------------------------------------- shard-affinity rehoming


def test_sustained_cross_shard_traffic_rehomes_the_subscriber():
    """A subscriber whose deliveries keep originating on a remote shard
    migrates onto that shard (with its session, filters and pin), after
    which delivery is local — no relay hop, no loss, no duplicates."""
    env, net, cluster, _ = make_cluster_world(n_clients=0, shards=4)
    pub_id, sub_id = ids_on_distinct_shards(cluster, 2)
    env, net, cluster, (pub, sub) = make_cluster_world(
        shards=4, client_ids=[pub_id, sub_id], rehome_min_deliveries=16,
    )
    got = []
    relayed_at_rehome = {}

    def scenario(env):
        yield from sub.connect()
        yield from sub.subscribe("aff/t", lambda t, p: got.append(p), qos=1)
        yield from pub.connect()
        tid = yield from pub.register("aff/t")
        yield env.timeout(0.5)
        for i in range(32):
            yield from pub.publish(tid, b"m%d" % i, qos=1)
            yield env.timeout(0.02)
            if cluster.rehomed.count and "relayed" not in relayed_at_rehome:
                relayed_at_rehome["relayed"] = cluster.relayed.count

    env.process(scenario(env))
    env.run()
    assert cluster.rehomed.count == 1
    assert len(got) == 32  # zero loss, zero duplication across the move
    sub_endpoint = (sub.host.name, sub.sock.port)
    pub_home = cluster.shard_of(pub_id)
    assert sub_endpoint in cluster.shards[pub_home].sessions
    assert cluster.dispatcher.pins[sub_endpoint] == pub_home
    # deliveries after the move are local: the relay counter stopped
    assert cluster.relayed.count == relayed_at_rehome["relayed"]
    assert cluster.delivery_failures.count == 0


def test_rehome_subscriber_direct_call_and_edge_cases():
    env, net, cluster, _ = make_cluster_world(n_clients=0, shards=4)
    (sub_id,) = ids_on_distinct_shards(cluster, 1)
    env, net, cluster, (sub,) = make_cluster_world(
        shards=4, client_ids=[sub_id],
    )
    outcome = {}

    def scenario(env):
        yield from sub.connect()
        yield from sub.subscribe("direct/t", lambda t, p: None, qos=1)
        endpoint = (sub.host.name, sub.sock.port)
        home = cluster.shard_of(sub_id)
        target = (home + 1) % 4
        outcome["moved"] = cluster.rehome_subscriber(endpoint, target)
        outcome["same"] = cluster.rehome_subscriber(endpoint, target)
        outcome["unknown"] = cluster.rehome_subscriber(("ghost", 9), target)
        outcome["on_target"] = endpoint in cluster.shards[target].sessions
        outcome["filters"] = cluster.subscriptions.subscriptions_of(endpoint)

    env.process(scenario(env))
    env.run()
    assert outcome["moved"] is True
    assert outcome["same"] is False  # already there
    assert outcome["unknown"] is False
    assert outcome["on_target"] is True
    assert outcome["filters"] == [("direct/t", 1)]


def test_rehome_subscriber_rejected_on_single_shard():
    env, net, cluster, (solo,) = make_cluster_world(
        shards=1, client_ids=["solo"],
    )

    def scenario(env):
        yield from solo.connect()
        with pytest.raises(ValueError):
            cluster.rehome_subscriber((solo.host.name, solo.sock.port), 0)

    env.process(scenario(env))
    env.run()


def test_unknown_peer_traffic_is_dropped_with_accounting():
    """Non-CONNECT datagrams from unknown endpoints land on a
    deterministic shard and are counted as dropped, like a single broker."""
    env, net, cluster, (stranger,) = make_cluster_world(
        n_clients=1, shards=4, client_ids=["stranger"],
    )

    def scenario(env):
        # a PUBLISH without ever connecting
        stranger.sock.sendto(
            pkt.Publish(topic_id=1, msg_id=1, payload=b"?", qos=0).encode(),
            cluster.endpoint,
        )
        yield env.timeout(0.5)

    env.process(scenario(env))
    env.run()
    assert cluster.dropped_no_session.count == 1
    assert cluster.dispatcher.dispatched.count == 1
