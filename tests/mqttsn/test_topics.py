"""Tests for topic matching and the registry."""

import pytest

from repro.mqttsn import TopicRegistry, topic_matches, validate_filter


@pytest.mark.parametrize(
    "pattern,topic,expected",
    [
        ("a/b/c", "a/b/c", True),
        ("a/b/c", "a/b/d", False),
        ("a/+/c", "a/b/c", True),
        ("a/+/c", "a/x/c", True),
        ("a/+/c", "a/b/c/d", False),
        ("a/#", "a/b/c/d", True),
        # per the MQTT spec, "a/#" also matches the parent level "a"
        ("a/#", "a", True),
        ("#", "anything/at/all", True),
        ("+", "one", True),
        ("+", "one/two", False),
        ("a/b", "a/b/c", False),
        ("a/b/c", "a/b", False),
        ("prov/device-1/data", "prov/device-1/data", True),
        ("prov/+/data", "prov/device-7/data", True),
    ],
)
def test_topic_matches(pattern, topic, expected):
    assert topic_matches(pattern, topic) is expected


def test_validate_filter_accepts_good_patterns():
    for pattern in ["a/b", "+/b", "a/#", "#", "+", "a/+/c"]:
        validate_filter(pattern)


@pytest.mark.parametrize("bad", ["", "a/#/b", "a#", "a+/b", "a/b+"])
def test_validate_filter_rejects_bad_patterns(bad):
    with pytest.raises(ValueError):
        validate_filter(bad)


def test_registry_assigns_stable_ids():
    reg = TopicRegistry()
    tid = reg.register("prov/1")
    assert reg.register("prov/1") == tid
    assert reg.id_of("prov/1") == tid
    assert reg.name_of(tid) == "prov/1"


def test_registry_ids_are_unique():
    reg = TopicRegistry()
    ids = {reg.register(f"t/{i}") for i in range(100)}
    assert len(ids) == 100
    assert len(reg) == 100


def test_registry_rejects_wildcards_and_empty():
    reg = TopicRegistry()
    with pytest.raises(ValueError):
        reg.register("a/+/b")
    with pytest.raises(ValueError):
        reg.register("a/#")
    with pytest.raises(ValueError):
        reg.register("")


def test_registry_contains():
    reg = TopicRegistry()
    reg.register("x")
    assert "x" in reg
    assert "y" not in reg
    assert reg.name_of(999) is None
    assert reg.id_of("y") is None
