"""Tests for topic matching, the registry and the subscription index."""

import pytest

from repro.mqttsn import (
    SubscriptionIndex,
    TopicRegistry,
    topic_matches,
    validate_filter,
)


@pytest.mark.parametrize(
    "pattern,topic,expected",
    [
        ("a/b/c", "a/b/c", True),
        ("a/b/c", "a/b/d", False),
        ("a/+/c", "a/b/c", True),
        ("a/+/c", "a/x/c", True),
        ("a/+/c", "a/b/c/d", False),
        ("a/#", "a/b/c/d", True),
        # per the MQTT spec, "a/#" also matches the parent level "a"
        ("a/#", "a", True),
        ("#", "anything/at/all", True),
        ("+", "one", True),
        ("+", "one/two", False),
        ("a/b", "a/b/c", False),
        ("a/b/c", "a/b", False),
        ("prov/device-1/data", "prov/device-1/data", True),
        ("prov/+/data", "prov/device-7/data", True),
    ],
)
def test_topic_matches(pattern, topic, expected):
    assert topic_matches(pattern, topic) is expected


def test_validate_filter_accepts_good_patterns():
    for pattern in ["a/b", "+/b", "a/#", "#", "+", "a/+/c"]:
        validate_filter(pattern)


@pytest.mark.parametrize("bad", ["", "a/#/b", "a#", "a+/b", "a/b+"])
def test_validate_filter_rejects_bad_patterns(bad):
    with pytest.raises(ValueError):
        validate_filter(bad)


def test_registry_assigns_stable_ids():
    reg = TopicRegistry()
    tid = reg.register("prov/1")
    assert reg.register("prov/1") == tid
    assert reg.id_of("prov/1") == tid
    assert reg.name_of(tid) == "prov/1"


def test_registry_ids_are_unique():
    reg = TopicRegistry()
    ids = {reg.register(f"t/{i}") for i in range(100)}
    assert len(ids) == 100
    assert len(reg) == 100


def test_registry_rejects_wildcards_and_empty():
    reg = TopicRegistry()
    with pytest.raises(ValueError):
        reg.register("a/+/b")
    with pytest.raises(ValueError):
        reg.register("a/#")
    with pytest.raises(ValueError):
        reg.register("")


def test_registry_contains():
    reg = TopicRegistry()
    reg.register("x")
    assert "x" in reg
    assert "y" not in reg
    assert reg.name_of(999) is None
    assert reg.id_of("y") is None


# --------------------------------------------------------------- index


def test_index_exact_and_wildcard_match():
    index = SubscriptionIndex()
    index.add("s1", "prov/dev-1/data", 2)
    index.add("s2", "prov/+/data", 1)
    index.add("s3", "prov/#", 0)
    index.add("s4", "other/topic", 2)
    assert dict(index.match("prov/dev-1/data")) == {"s1": 2, "s2": 1, "s3": 0}
    assert dict(index.match("prov/dev-2/data")) == {"s2": 1, "s3": 0}
    assert dict(index.match("other/topic")) == {"s4": 2}
    assert index.match("unrelated") == []


def test_index_hash_matches_parent_level():
    # per the MQTT spec, "a/#" also matches the parent topic "a"
    index = SubscriptionIndex()
    index.add("s", "a/#", 1)
    assert index.match("a") == [("s", 1)]
    assert index.match("a/b/c") == [("s", 1)]
    assert index.match("b") == []


def test_index_first_matching_subscription_wins_qos():
    # mirrors the broker: one delivery per client, the earliest matching
    # subscription decides the QoS
    index = SubscriptionIndex()
    index.add("s", "prov/#", 0)
    index.add("s", "prov/dev/data", 2)
    assert index.match("prov/dev/data") == [("s", 0)]

    other = SubscriptionIndex()
    other.add("s", "prov/dev/data", 2)
    other.add("s", "prov/#", 0)
    assert other.match("prov/dev/data") == [("s", 2)]


def test_index_match_order_is_subscription_age():
    index = SubscriptionIndex()
    index.add("late", "t", 1)
    index.add("early", "#", 1)
    index.remove("late")
    index.add("relate", "t", 1)
    assert [key for key, _ in index.match("t")] == ["early", "relate"]


def test_index_resubscribe_is_idempotent():
    index = SubscriptionIndex()
    index.add("s", "t", 2)
    index.add("s", "prov/#", 1)
    for _ in range(5):  # periodic re-subscribe must not grow state
        index.add("s", "t", 0)
        index.add("s", "prov/#", 0)
    assert len(index) == 2
    assert index.match("t") == [("s", 2)]  # original QoS kept
    index.remove("s")
    assert len(index) == 0
    assert index.match("t") == []
    assert index.match("prov/x") == []


def test_index_remove_clears_all_filters_of_a_key():
    index = SubscriptionIndex()
    index.add("s", "a/b", 1)
    index.add("s", "a/+", 2)
    index.add("other", "a/b", 1)
    assert len(index) == 3
    index.remove("s")
    assert len(index) == 1
    assert dict(index.match("a/b")) == {"other": 1}
    # removing an unknown key is a no-op
    index.remove("ghost")


def test_index_prunes_emptied_trie_branches():
    index = SubscriptionIndex()
    index.add("s", "deep/+/nested/#", 1)
    assert index._root.children
    index.remove("s")
    assert not index._root.children  # branch fully pruned
    assert index.match("deep/x/nested/y") == []


def test_index_rejects_invalid_filters():
    index = SubscriptionIndex()
    with pytest.raises(ValueError):
        index.add("s", "a/#/b", 0)
    with pytest.raises(ValueError):
        index.add("s", "", 0)


def test_index_agrees_with_linear_matching():
    filters = ["a/b/c", "a/+/c", "a/#", "+/b/c", "#", "x/y", "a/b/+", "+"]
    topics = ["a/b/c", "a/x/c", "a", "a/b", "x/y", "q", "a/b/c/d", "x"]
    index = SubscriptionIndex()
    for i, pattern in enumerate(filters):
        index.add(f"k{i}", pattern, qos=i % 3)
    for topic in topics:
        expected = {
            f"k{i}": i % 3
            for i, pattern in enumerate(filters)
            if topic_matches(pattern, topic)
        }
        assert dict(index.match(topic)) == expected, topic
