"""Smoke tests: every example script must run end to end.

The examples are the library's public face; these tests execute each one
in-process (same interpreter, captured stdout) and sanity-check the
narrative output.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "records in the backend" in out
    assert "FINISHED" in out
    assert "out6 derived from: in6" in out


def test_federated_learning(capsys):
    out = run_example("federated_learning.py", capsys)
    assert "final global accuracy" in out
    assert "query (i)" in out and "query (ii)" in out
    assert "accuracy=" in out
    assert "epochs=None" not in out


def test_sensor_aggregation(capsys):
    out = run_example("sensor_aggregation.py", capsys)
    assert "with ProvLight" in out and "with ProvLake" in out
    assert "rep-3 <- det-3 <- agg-3 <- clean-3 <- raw-3" in out
    # ProvLake's overhead line must show a much larger percentage
    light_line = next(l for l in out.splitlines() if "ProvLight" in l and "overhead" in l)
    lake_line = next(l for l in out.splitlines() if "ProvLake" in l and "overhead" in l)
    light = float(light_line.split("overhead")[1].strip(" %)"))
    lake = float(lake_line.split("overhead")[1].strip(" %)"))
    assert lake > 10 * light


def test_e2clab_experiment(capsys):
    out = run_example("e2clab_experiment.py", capsys)
    assert "provenance records ingested" in out
    assert "edge-client-0" in out
    assert "finished tasks across all devices: 160" in out


def test_system_comparison(capsys):
    out = run_example("system_comparison.py", capsys)
    assert "provlight" in out and "provlake" in out and "dfanalyzer" in out
    assert "KB/s" in out


def test_secure_capture(capsys):
    out = run_example("secure_capture.py", capsys)
    assert "records accepted from trusted   : 4" in out
    assert "payloads rejected (bad key)     : 4" in out
    assert "['trusted']" in out
