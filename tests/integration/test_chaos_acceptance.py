"""Chaos acceptance: a shard dies mid fan-in and nothing is lost.

The ISSUE's acceptance bar for the fault-tolerant server plane: four
broker shards, durable capture clients fanning in, one shard killed in
the middle of the stream.  The cluster fails the shard over, the
dropped publishers ride their QoS-retry exhaustion into the reconnect
machine, a fresh CONNECT lands on a survivor, the journal replays — and
the backend ingests every record exactly once.
"""

import pytest

from repro.capture import CaptureConfig, create_client
from repro.core import CallableBackend, Data, ProvLightServer, Task, Workflow
from repro.device import A8M3, XEON_GOLD_5220, Device
from repro.net import Network, ServerFaultInjector
from repro.simkernel import Environment


N_DEVICES = 4
N_TASKS = 8
RECORDS_PER_DEVICE = 2 + 2 * N_TASKS  # wf begin/end + task begins/ends


def make_chaos_world(tmp_path, shards=4, seed=11):
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("cloud", device=Device(env, XEON_GOLD_5220, name="cloud-dev"))
    received = []
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(received.extend),
        workers=4, broker_shards=shards,
    )
    cluster = server.broker
    # choose client ids so at least one homes on the shard we will kill
    # (and, with this seed, the others spread over survivors)
    victim = None
    client_ids = []
    i = 0
    while len(client_ids) < N_DEVICES:
        candidate = f"edge-{i}"
        home = cluster.shard_of(candidate)
        if victim is None:
            victim = home
            client_ids.append(candidate)
        elif home == victim and sum(
            1 for c in client_ids if cluster.shard_of(c) == victim
        ) < 2:
            client_ids.append(candidate)  # a second victim-homed client
        elif home != victim:
            client_ids.append(candidate)
        i += 1
    clients = []
    for j, cid in enumerate(client_ids):
        dev = Device(env, A8M3, name=cid)
        net.add_host(f"host-{cid}", device=dev)
        net.connect(f"host-{cid}", "cloud", bandwidth_bps=1e9, latency_s=0.01)
        config = CaptureConfig(
            transport="mqttsn", durable=True, journal_dir=str(tmp_path),
            client_id=cid, qos=1,
            reconnect_base_s=0.2, reconnect_factor=1.5, reconnect_max_s=1.0,
        )
        client = create_client(dev, server.endpoint, f"conf/{cid}/data", config)
        client.transport.mqtt.retry_interval_s = 0.2
        client.transport.mqtt.max_retries = 3
        clients.append(client)
    return env, net, server, received, clients, client_ids, victim


def drive(env, server, client, topic, done):
    def proc(env):
        yield from server.add_translator(topic)
        yield from client.setup()
        wf = Workflow(1, client)
        yield from wf.begin()
        for i in range(N_TASKS):
            task = Task(i, wf)
            yield from task.begin([Data(f"in{i}", 1, {"x": [1.0] * 4})])
            yield env.timeout(0.2)
            yield from task.end([Data(f"out{i}", 1, {"y": [2.0] * 4})])
        yield from wf.end(drain=True)
        done.append(env.now)

    return env.process(proc(env))


def test_shard_kill_mid_fanin_loses_zero_records_exactly_once(tmp_path):
    env, net, server, received, clients, client_ids, victim = (
        make_chaos_world(tmp_path)
    )
    cluster = server.broker
    assert any(cluster.shard_of(cid) == victim for cid in client_ids)
    injector = ServerFaultInjector(server)
    # mid fan-in: each device streams for ~1.6 simulated seconds
    injector.kill_shard_at(0.8, victim)
    done = []
    for cid, client in zip(client_ids, clients):
        drive(env, server, client, f"conf/{cid}/data", done)
    env.run(until=600)

    assert len(done) == N_DEVICES, "some client never finished its drain"
    assert cluster.failovers.count == 1
    assert victim not in cluster._ring.live_nodes()
    # the victim-homed publishers were dropped and reconnected; their
    # replays are why the totals below still balance
    assert cluster.sessions_dropped.count >= 1
    reconnected = [c for c in clients if c.reconnects.count > 0]
    assert reconnected, "no client exercised the reconnect path"

    expected = N_DEVICES * RECORDS_PER_DEVICE
    captured = sum(c.records_captured.count for c in clients)
    assert captured == expected
    # zero loss AND exactly-once: the backend saw each record precisely once
    assert server.records_ingested.total == expected
    assert len(received) == expected
    # replays happened, and the dedup index swallowed every duplicate
    assert sum(c.replayed.count for c in clients) >= 1


def test_shard_kill_with_p2c_and_elastic_pool_is_still_exactly_once(tmp_path):
    """The chaos bar holds with the perf features switched on: p2c
    session placement and an elastic translator pool.  A shard dies mid
    fan-in — chosen *after* connect, since p2c placement is load-driven
    rather than id-driven — and the backend still ingests every record
    exactly once."""
    env = Environment()
    net = Network(env, seed=11)
    net.add_host("cloud", device=Device(env, XEON_GOLD_5220, name="cloud-dev"))
    received = []
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(received.extend),
        workers=2, broker_shards=4,
        broker_placement="p2c", pool_min=2, pool_max=4,
    )
    cluster = server.broker
    client_ids = [f"edge-{i}" for i in range(N_DEVICES)]
    clients = []
    for cid in client_ids:
        dev = Device(env, A8M3, name=cid)
        net.add_host(f"host-{cid}", device=dev)
        net.connect(f"host-{cid}", "cloud", bandwidth_bps=1e9, latency_s=0.01)
        config = CaptureConfig(
            transport="mqttsn", durable=True, journal_dir=str(tmp_path),
            client_id=cid, qos=1,
            reconnect_base_s=0.2, reconnect_factor=1.5, reconnect_max_s=1.0,
        )
        client = create_client(dev, server.endpoint, f"conf/{cid}/data", config)
        client.transport.mqtt.retry_interval_s = 0.2
        client.transport.mqtt.max_retries = 3
        clients.append(client)

    def chaos(env):
        # with load-driven placement the victim cannot be precomputed
        # from client ids; kill whichever live shard carries the most
        # sessions once the fan-in is underway
        yield env.timeout(0.8)
        by_load = max(
            range(4),
            key=lambda i: (
                len(cluster.shards[i].sessions)
                if cluster.shards[i].alive else -1
            ),
        )
        cluster.kill_shard(by_load)

    env.process(chaos(env))
    done = []
    for cid, client in zip(client_ids, clients):
        drive(env, server, client, f"conf/{cid}/data", done)
    env.run(until=600)

    assert len(done) == N_DEVICES, "some client never finished its drain"
    assert cluster.failovers.count == 1
    assert cluster.p2c_placements.count >= N_DEVICES
    expected = N_DEVICES * RECORDS_PER_DEVICE
    captured = sum(c.records_captured.count for c in clients)
    assert captured == expected
    assert server.records_ingested.total == expected
    assert len(received) == expected
    # the elastic pool is intact and drained; under this light load it
    # must have settled back at (or never left) its minimum
    assert len(server.pool) == 2
    assert server.pool.queued == 0


def test_degraded_cluster_keeps_ingesting_after_failover(tmp_path):
    """After failover the 3-shard plane keeps serving: a second workload
    wave (same clients, fresh records) completes with exactly-once
    ingestion and no further failovers."""
    env, net, server, received, clients, client_ids, victim = (
        make_chaos_world(tmp_path, seed=13)
    )
    cluster = server.broker
    injector = ServerFaultInjector(server)
    injector.kill_shard_at(0.8, victim)
    done = []
    for cid, client in zip(client_ids, clients):
        drive(env, server, client, f"conf/{cid}/data", done)
    env.run(until=600)
    assert len(done) == N_DEVICES
    first_total = server.records_ingested.total
    assert first_total == N_DEVICES * RECORDS_PER_DEVICE

    # second wave on the degraded plane
    done2 = []
    for cid, client in zip(client_ids, clients):
        def wave(env, client=client):
            wf = Workflow(2, client)
            yield from wf.begin()
            for i in range(4):
                task = Task(100 + i, wf)
                yield from task.begin([Data(f"b{i}", 2, {"x": [1.0] * 4})])
                yield env.timeout(0.1)
                yield from task.end([Data(f"c{i}", 2, {"y": [2.0] * 4})])
            yield from wf.end(drain=True)
            done2.append(env.now)

        env.process(wave(env))
    env.run(until=1200)
    assert len(done2) == N_DEVICES
    assert cluster.failovers.count == 1  # no new failovers
    assert server.records_ingested.total == first_total + N_DEVICES * 10
