"""Failure-injection tests: capture must degrade gracefully, never crash
the instrumented workflow, and honour its delivery contracts under loss.
"""

import numpy as np
import pytest

from repro.core import CallableBackend, Data, ProvLightClient, ProvLightServer, Task, Workflow
from repro.device import A8M3, Device
from repro.net import Network
from repro.simkernel import Environment
from repro.workloads import SyntheticWorkloadConfig, synthetic_workload


def lossy_world(loss, seed=5):
    env = Environment()
    net = Network(env, seed=seed)
    dev = Device(env, A8M3)
    net.add_host("edge", device=dev)
    net.add_host("cloud")
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.01, loss=loss)
    sink = []
    server = ProvLightServer(net.hosts["cloud"], CallableBackend(sink.extend))
    client = ProvLightClient(dev, server.endpoint, "provlight/edge",
                             client_id="lossy-edge")
    return env, net, dev, server, client, sink


def test_qos2_delivers_exactly_once_under_heavy_loss():
    env, net, dev, server, client, sink = lossy_world(loss=0.30)
    # faster retries so the run converges quickly
    client.mqtt.retry_interval_s = 0.3
    server.broker.retry_interval_s = 0.3

    def scenario(env):
        yield from server.add_translator("provlight/#")
        yield from client.setup()
        wf = Workflow(1, client)
        yield from wf.begin()
        for i in range(10):
            task = Task(i, wf)
            yield from task.begin([Data(f"in{i}", 1, {"v": i})])
            yield env.timeout(0.05)
            yield from task.end([Data(f"out{i}", 1, {"v": i + 100})])
        yield from wf.end(drain=True)
        yield env.timeout(30)

    env.process(scenario(env))
    env.run()
    finished = [r for r in sink if r.get("status") == "FINISHED"]
    running = [r for r in sink if r.get("status") == "RUNNING"]
    # exactly-once: all 10 task ends, no duplicates
    assert sorted(r["task_id"] for r in finished) == list(range(10))
    assert sorted(r["task_id"] for r in running) == list(range(10))


def test_workflow_survives_total_broker_outage():
    """No broker at all: capture times out in the background; the
    workflow still completes every task."""
    env = Environment()
    net = Network(env, seed=1)
    dev = Device(env, A8M3)
    net.add_host("edge", device=dev)
    net.add_host("cloud")  # nothing listening
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.01)
    client = ProvLightClient(dev, ("cloud", 1883), "provlight/edge")
    client.mqtt.retry_interval_s = 0.2
    client.mqtt.max_retries = 2
    done = {}

    def scenario(env):
        try:
            yield from client.setup()
        except Exception:
            done["setup_failed"] = True
            return

    env.process(scenario(env))
    env.run()
    assert done.get("setup_failed")  # connect times out, reported cleanly


def test_capture_queue_drains_after_bandwidth_recovery():
    """Bandwidth collapses mid-run and recovers: queued records all arrive."""
    env, net, dev, server, client, sink = lossy_world(loss=0.0)
    config = SyntheticWorkloadConfig(number_of_tasks=10, task_duration_s=0.1,
                                     attributes_per_task=100)

    def chaos(env):
        yield env.timeout(0.3)
        net.configure_link("edge", "cloud", bandwidth_bps=5e3)  # collapse
        yield env.timeout(1.0)
        net.configure_link("edge", "cloud", bandwidth_bps=1e9)  # recover

    def scenario(env):
        yield from server.add_translator("provlight/#")
        result = {}
        yield from synthetic_workload(env, client, config,
                                      rng=np.random.default_rng(1), result=result)
        yield from client.drain()
        yield env.timeout(30)

    env.process(chaos(env))
    env.process(scenario(env))
    env.run()
    finished = [r for r in sink if r.get("status") == "FINISHED"]
    assert len(finished) == 10  # nothing lost across the bandwidth dip


def test_baseline_capture_survives_server_crash_midway():
    """The HTTP server disappears after a few requests: ProvLake logs
    errors but the workflow completes."""
    from repro.baselines import ProvLakeClient
    from repro.http import HttpResponse, HttpServer

    env = Environment()
    net = Network(env, seed=3)
    dev = Device(env, A8M3)
    net.add_host("edge", device=dev)
    net.add_host("cloud")
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.01)
    served = {"n": 0}

    def handler(request):
        served["n"] += 1
        return HttpResponse(status=201)

    server = HttpServer(net.hosts["cloud"], 5000, handler)
    client = ProvLakeClient(dev, ("cloud", 5000))
    done = {}

    def crash(env):
        yield env.timeout(0.35)
        server.listener.close()
        for conn in list(net.hosts["cloud"]._tcp_conns.values()):
            conn.abort()

    def scenario(env):
        yield from client.setup()
        wf = Workflow(1, client)
        yield from wf.begin()
        for i in range(4):
            task = Task(i, wf)
            yield from task.begin([Data(f"in{i}", 1, {"v": i})])
            yield env.timeout(0.1)
            yield from task.end()
        yield from wf.end()
        done["completed"] = True

    env.process(crash(env))
    env.process(scenario(env))
    env.run()
    assert done.get("completed")
    assert served["n"] >= 1
    assert client.capture_errors.count >= 1


def test_mqtt_timeout_does_not_crash_sender_loop():
    """If a QoS2 exchange exhausts retries, the record is dropped but the
    sender keeps processing subsequent records."""
    env, net, dev, server, client, sink = lossy_world(loss=0.0)
    client.mqtt.retry_interval_s = 0.1
    client.mqtt.max_retries = 1

    def blackout(env):
        # drop everything while the first task end is in flight
        yield env.timeout(0.11)
        net.configure_link("edge", "cloud", loss=0.999999 * 0.999)
        yield env.timeout(1.0)
        net.configure_link("edge", "cloud", loss=0.0)

    def scenario(env):
        yield from server.add_translator("provlight/#")
        yield from client.setup()
        wf = Workflow(1, client)
        yield from wf.begin()
        for i in range(5):
            task = Task(i, wf)
            yield from task.begin([])
            yield env.timeout(0.3)
            yield from task.end()
        yield from wf.end(drain=True)
        yield env.timeout(20)

    env.process(blackout(env))
    env.process(scenario(env))
    env.run()
    # later records made it even though earlier ones may have been dropped
    finished_ids = {r["task_id"] for r in sink if r.get("status") == "FINISHED"}
    assert 4 in finished_ids


def test_overhead_unaffected_by_moderate_loss():
    """Packet loss hits the background QoS exchange, not the workflow."""
    config = SyntheticWorkloadConfig(number_of_tasks=20, task_duration_s=0.2)
    results = {}
    for label, loss in [("clean", 0.0), ("lossy", 0.10)]:
        env, net, dev, server, client, sink = lossy_world(loss=loss, seed=9)
        client.mqtt.retry_interval_s = 0.3
        result = {}

        def scenario(env, client=client, server=server, result=result):
            yield from server.add_translator("provlight/#")
            yield from synthetic_workload(env, client, config,
                                          rng=np.random.default_rng(7),
                                          result=result)

        env.process(scenario(env))
        env.run(until=300)
        results[label] = result["elapsed"]
    # loss changes workflow elapsed by well under a millisecond per task
    assert results["lossy"] == pytest.approx(results["clean"], rel=0.01)
