"""Continuum acceptance: a 64-device durable fleet under 20% churn plus
a mid-run edge<->fog partition loses nothing, on every topology preset.

The ISSUE's acceptance bar for the continuum chaos plane: build a tiered
edge/fog/cloud topology from a preset, register every durable capture
client with a :class:`FleetFaultInjector`, then — while all 64 devices
stream — crash 20% of the fleet and cut the whole edge<->fog backhaul
for a window.  Restarted incarnations replay their WAL journals through
the healed network, and the backend must ingest every record exactly
once, in per-client ``(client_id, seq)`` order.
"""

import pytest

from repro.capture import CaptureConfig, create_client
from repro.capture.envelope import ReplayDeduper
from repro.core import CallableBackend, ProvLightServer
from repro.device import A8M3, XEON_GOLD_5220, Device
from repro.mqttsn.client import MqttSnTimeout
from repro.net import ContinuumTopology, FleetFaultInjector, Network, TopologySpec
from repro.simkernel import Environment

N_DEVICES = 64
RECORDS_PER_DEVICE = 6
CHURN_FRACTION = 0.2


class OrderSpyDeduper(ReplayDeduper):
    """Records the order in which unique ``(client_id, seq)`` pairs are
    marked ingested — the backend-side view of each client's stream."""

    def __init__(self):
        super().__init__()
        self.mark_order = {}

    def mark(self, client_id, seq):
        self.mark_order.setdefault(client_id, []).append(seq)
        super().mark(client_id, seq)


def build_world(tmp_path, preset, seed):
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("cloud", device=Device(env, XEON_GOLD_5220, name="cloud-dev"))
    received = []
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(received.extend),
        workers=4, broker_shards=2,
    )
    spy = OrderSpyDeduper()
    server.deduper = spy

    spec = TopologySpec.parse(preset).scaled(N_DEVICES)
    devices = []

    def factory(tier, index):
        if tier != spec.leaf.name:
            return None
        device = Device(env, A8M3, name=f"{tier}-{index}")
        devices.append(device)
        return device

    topo = ContinuumTopology(net, spec, root_host="cloud",
                             device_factory=factory)
    fleet = FleetFaultInjector(env, topology=topo, seed=seed)
    proxies = []
    for device in devices:
        config = CaptureConfig(
            transport="mqttsn", durable=True, journal_dir=str(tmp_path),
            client_id=device.name, qos=1,
            reconnect_base_s=0.2, reconnect_factor=1.5, reconnect_max_s=1.0,
        )

        def build(device=device, config=config):
            return create_client(device, server.endpoint,
                                 f"conf/{device.name}/data", config)

        fleet.register(device.name, build(), build)
        proxies.append(fleet.proxy(device.name))
    return env, net, server, received, spy, topo, fleet, proxies


def drive(env, server, proxy, done):
    def workload(env):
        yield from server.add_translator(f"conf/{proxy.name}/data")
        # burst loss can eat a whole CONNECT/REGISTER exchange; setup is
        # idempotent, so an edge deployment simply tries again
        for attempt in range(20):
            try:
                yield from proxy.setup()
                break
            except MqttSnTimeout:
                yield env.timeout(1.0)
        else:
            raise AssertionError(f"{proxy.name} never completed setup")
        for i in range(RECORDS_PER_DEVICE):
            yield from proxy.capture({
                "kind": "task_begin", "workflow_id": 1,
                "transformation_id": 1, "task_id": i, "time": proxy.now,
            })
            yield env.timeout(0.3)
        yield from proxy.drain()
        done.append(proxy.name)

    return env.process(workload(env))


@pytest.mark.parametrize("preset", ["constrained-edge", "lossy-wireless"])
def test_churn_plus_tier_partition_is_zero_loss_exactly_once(tmp_path, preset):
    env, net, server, received, spy, topo, fleet, proxies = build_world(
        tmp_path / preset, preset, seed=17,
    )
    # 20% of the fleet crashes mid-stream; while some of those restarts
    # are still pending, the whole edge<->fog backhaul goes dark
    fleet.churn_at(0.8, CHURN_FRACTION, 2.0)
    topo.partition_tiers_at("edge", "fog", 1.5, 2.0)

    done = []
    for proxy in proxies:
        drive(env, server, proxy, done)
    env.run(until=3600)

    assert len(done) == N_DEVICES, "some device never finished its drain"
    expected = N_DEVICES * RECORDS_PER_DEVICE
    stats = fleet.stats()
    assert stats["devices_crashed"] == round(CHURN_FRACTION * N_DEVICES)
    assert stats["devices_restarted"] == stats["devices_crashed"]
    assert stats["devices_down"] == 0
    assert stats["topology"]["tier_outages"] == 1
    # the churn window overlaps live traffic: at least one incarnation
    # came back with journaled records to replay
    assert stats["journal_recoveries"] >= 1

    # zero loss: every completed proxy call reached the backend
    completed = sum(proxy.records_completed for proxy in proxies)
    assert completed == expected
    # exactly once: no duplicate survived the dedup index
    assert server.records_ingested.total == expected
    assert len(received) == expected
    # per-client order: each client's (client_id, seq) stream arrived at
    # the backend in strictly increasing seq order, churn or not
    assert len(spy.mark_order) == N_DEVICES
    for client_id, seqs in spy.mark_order.items():
        assert seqs == sorted(seqs), f"{client_id} ingested out of order"
        assert len(seqs) == len(set(seqs)), f"{client_id} double-ingested"


def test_harness_run_matches_the_manual_world(tmp_path):
    """The same acceptance bar through the public harness entrypoint:
    ExperimentSetup(topology=..., chaos=...) auto-provisions the fleet
    and reports a balanced ledger in fleet_stats."""
    from repro.harness.experiments import ExperimentSetup, run_capture_experiment
    from repro.workloads import SyntheticWorkloadConfig

    cfg = SyntheticWorkloadConfig(
        chained_transformations=1, number_of_tasks=2, task_duration_s=0.05,
    )
    setup = ExperimentSetup(
        n_devices=8, topology="constrained-edge", qos=1,
        chaos="churn@0.5:0.2:1.0,partition-tier:edge-fog@1:0.8",
    )
    outcome = run_capture_experiment(setup, cfg, seed=3)
    assert outcome.fleet_stats is not None
    assert outcome.fleet_stats["devices_crashed"] >= 1
    assert outcome.fleet_stats["devices_down"] == 0
    assert outcome.fleet_stats["records_completed"] == outcome.backend_records
    assert outcome.topology_stats["tier_outages"] == 1
