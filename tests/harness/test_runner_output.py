"""Tests for the harness CLI writer and formatting helpers."""

import pytest

from repro.harness import TableResult
from repro.harness.runner import write_experiments_md
from repro.metrics import fmt_si


def test_write_experiments_md_appends_sections(tmp_path):
    path = tmp_path / "EXPERIMENTS.md"
    path.write_text("# preamble\n")
    results = {
        "table7": TableResult("table7", "Table VII", "| cell |", [],
                              checks=[("a", True)]),
        "fig6a": TableResult("fig6a", "Fig. 6a CPU", "| cpu |", [],
                             checks=[("b", True), ("c", False)]),
    }
    write_experiments_md(results, str(path))
    text = path.read_text()
    assert text.startswith("# preamble")
    assert "### Table VII" in text
    assert "| cell |" in text
    assert "### Fig. 6a CPU" in text
    assert "FAILED: c" in text


def test_main_exit_codes(tmp_path, capsys, monkeypatch):
    from repro.harness.runner import main

    monkeypatch.setenv("REPRO_REPETITIONS", "1")
    code = main(["table9", "--reps", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "all shape checks passed" in out


def test_main_unknown_target():
    from repro.harness.runner import main

    with pytest.raises(SystemExit):
        main(["tableQ"])


def test_fmt_si():
    assert fmt_si(1234.5, "W") == "1.23e+03W"
    assert fmt_si(0.5) == "0.5"


def test_miniyaml_fuzz_does_not_crash():
    from hypothesis import given, settings
    from hypothesis import strategies as st

    from repro.e2clab import MiniYamlError, loads

    @given(st.text(alphabet="ab:- #'\n\t[]{},0", max_size=80))
    @settings(max_examples=300, deadline=None)
    def fuzz(doc):
        try:
            loads(doc)
        except MiniYamlError:
            pass

    fuzz()
