"""Tests for the experiment driver and table/figure harness."""

import pytest

from repro.harness import (
    ExperimentSetup,
    TableResult,
    measure_overhead,
    run_capture_experiment,
    run_null_baseline,
)
from repro.workloads import SyntheticWorkloadConfig

FAST = SyntheticWorkloadConfig(number_of_tasks=10, task_duration_s=0.1,
                               attributes_per_task=10)


def test_null_baseline_matches_nominal():
    elapsed = run_null_baseline(FAST, seed=1)
    assert elapsed == pytest.approx(1.0, rel=0.05)


def test_null_baseline_deterministic_per_seed():
    assert run_null_baseline(FAST, seed=3) == run_null_baseline(FAST, seed=3)
    assert run_null_baseline(FAST, seed=3) != run_null_baseline(FAST, seed=4)


def test_run_capture_experiment_provlight():
    outcome = run_capture_experiment(ExperimentSetup(system="provlight"), FAST, seed=1)
    assert len(outcome.elapsed) == 1
    assert outcome.elapsed[0] > 1.0  # capture adds time
    assert outcome.backend_records > 0  # records reached the backend
    assert outcome.metrics[0].capture_cpu_utilization > 0


def test_run_capture_experiment_unknown_system():
    with pytest.raises(ValueError):
        run_capture_experiment(ExperimentSetup(system="zsystem"), FAST, seed=1)


def test_measure_overhead_provlight_is_small():
    # 0.1 s tasks: per-call cost ~3.9 ms => ~8% overhead expected here
    result = measure_overhead(ExperimentSetup(system="provlight"), FAST, repetitions=2)
    assert 0.0 < result.ci.mean < 0.12
    assert len(result.overheads) == 2


def test_measure_overhead_ordering_of_systems():
    means = {}
    for system in ("provlight", "dfanalyzer", "provlake"):
        result = measure_overhead(ExperimentSetup(system=system), FAST,
                                  repetitions=1, keep_outcomes=False)
        means[system] = result.ci.mean
    assert means["provlight"] < means["dfanalyzer"] < means["provlake"]


def test_multi_device_experiment():
    setup = ExperimentSetup(system="provlight", n_devices=3)
    outcome = run_capture_experiment(setup, FAST, seed=2)
    assert len(outcome.elapsed) == 3
    assert len(outcome.metrics) == 3


def test_mean_metric_reader():
    result = measure_overhead(ExperimentSetup(system="provlight"), FAST, repetitions=2)
    util = result.mean_metric(lambda m: m.capture_cpu_utilization)
    assert util > 0


def test_setup_describe():
    setup = ExperimentSetup(system="provlake", bandwidth="25Kbit", group_size=10,
                            n_devices=4)
    described = setup.describe()
    assert "provlake" in described and "25Kbit" in described
    assert "group=10" in described and "devices=4" in described


def test_table_result_checks():
    result = TableResult("t", "T", "text", [], checks=[("a", True), ("b", False)])
    assert not result.ok
    assert result.failed_checks() == ["b"]
    assert "FAILED" in result.summary()
    good = TableResult("t", "T", "text", [], checks=[("a", True)])
    assert good.ok and "OK" in good.summary()


def test_default_repetitions_env(monkeypatch):
    from repro.harness import default_repetitions

    monkeypatch.delenv("REPRO_REPETITIONS", raising=False)
    assert default_repetitions() == 10
    assert default_repetitions(fallback=3) == 3
    monkeypatch.setenv("REPRO_REPETITIONS", "7")
    assert default_repetitions() == 7
    monkeypatch.setenv("REPRO_REPETITIONS", "0")
    assert default_repetitions() == 1


def test_placement_and_pool_env_hooks(monkeypatch):
    monkeypatch.setenv("REPRO_BROKER_PLACEMENT", "p2c")
    monkeypatch.setenv("REPRO_POOL_MIN", "2")
    monkeypatch.setenv("REPRO_POOL_MAX", "4")
    setup = ExperimentSetup(system="provlight")
    assert setup.broker_placement == "p2c"
    assert (setup.pool_min, setup.pool_max) == (2, 4)
    assert "placement=p2c" in setup.describe()
    assert "pool=2..4" in setup.describe()
    monkeypatch.setenv("REPRO_BROKER_PLACEMENT", "round-robin")
    with pytest.raises(ValueError):
        ExperimentSetup(system="provlight")


def test_pool_bounds_clamp_the_static_worker_default(monkeypatch):
    # --pool-min/--pool-max express the elastic envelope: the static
    # default of 8 workers must be clamped into it, not refuse to start
    setup = ExperimentSetup(system="provlight", pool_min=2, pool_max=4)
    assert setup.translator_workers == 8  # the declared default is kept
    assert setup.effective_translator_workers() == 4
    assert ExperimentSetup(
        system="provlight", translator_workers=1, pool_min=2
    ).effective_translator_workers() == 2
    outcome = run_capture_experiment(setup, FAST, seed=1)
    assert outcome.backend_records > 0


def test_runner_rejects_unknown_target():
    from repro.harness import run_targets

    with pytest.raises(SystemExit):
        run_targets(["tableZ"])


def test_runner_runs_single_target(capsys):
    import os

    os.environ["REPRO_REPETITIONS"] = "1"
    try:
        from repro.harness import run_targets

        results = run_targets(["table9"], repetitions=1)
    finally:
        del os.environ["REPRO_REPETITIONS"]
    assert "table9" in results
    out = capsys.readouterr().out
    assert "Table IX" in out


def test_run_capture_experiment_coap_transport():
    """The declarative transport knob deploys the matching CoAP sink."""
    setup = ExperimentSetup(system="provlight", transport="coap")
    outcome = run_capture_experiment(setup, FAST, seed=1)
    assert outcome.elapsed[0] > 1.0
    assert outcome.backend_records > 0
    assert "transport=coap" in setup.describe()


def test_run_capture_experiment_http_transport_is_blocking():
    """ProvLight payloads over the blocking-HTTP collector: records
    still land in the backend, at baseline-like blocking overhead."""
    async_out = run_capture_experiment(
        ExperimentSetup(system="provlight"), FAST, seed=1)
    http_out = run_capture_experiment(
        ExperimentSetup(system="provlight", transport="http"), FAST, seed=1)
    assert http_out.backend_records == async_out.backend_records > 0
    assert http_out.elapsed[0] > async_out.elapsed[0]


def test_run_capture_experiment_capture_config_override():
    from repro.capture import CaptureConfig

    setup = ExperimentSetup(system="provlight")
    outcome = run_capture_experiment(
        setup, FAST, seed=1, capture_config=CaptureConfig(group_size=5))
    assert outcome.backend_records > 0


def test_experiment_setup_capture_config_round_trip():
    setup = ExperimentSetup(system="provlight", group_size=7, compress=False,
                            qos=1, transport="coap")
    config = setup.capture_config()
    assert (config.transport, config.group_size, config.compress, config.qos) == (
        "coap", 7, False, 1)
