"""Tests for the group buffer and the provenance data translator."""

import pytest

from repro.core import (
    GroupBuffer,
    TranslationError,
    Translator,
    encode_payload,
    records_from_payload,
    to_dfanalyzer,
    to_prov_json,
    to_provlake,
)


def rec(i, kind="task_end"):
    return {
        "kind": kind, "workflow_id": 1, "task_id": i, "transformation_id": 0,
        "dependencies": [], "time": float(i), "status": "finished",
        "data": [{"id": f"d{i}", "workflow_id": 1, "derivations": [],
                  "attributes": {"v": i}}],
    }


# -- GroupBuffer ---------------------------------------------------------


def test_disabled_buffer_passes_through():
    buf = GroupBuffer(0)
    assert not buf.enabled
    assert buf.add(rec(1)) == [rec(1)]
    assert buf.flush() is None


def test_buffer_releases_full_groups():
    buf = GroupBuffer(3)
    assert buf.add(rec(1)) is None
    assert buf.add(rec(2)) is None
    group = buf.add(rec(3))
    assert [r["task_id"] for r in group] == [1, 2, 3]
    assert len(buf) == 0
    assert buf.groups_flushed == 1


def test_buffer_flush_partial():
    buf = GroupBuffer(10)
    buf.add(rec(1))
    buf.add(rec(2))
    group = buf.flush()
    assert len(group) == 2
    assert buf.flush() is None


def test_buffer_negative_size_rejected():
    with pytest.raises(ValueError):
        GroupBuffer(-1)


def test_buffer_counts_records():
    buf = GroupBuffer(2)
    for i in range(6):
        buf.add(rec(i))
    assert buf.records_buffered == 6
    assert buf.groups_flushed == 3


# -- payload decoding ---------------------------------------------------------


def test_single_record_payload():
    records = records_from_payload(encode_payload(rec(1)))
    assert len(records) == 1 and records[0]["task_id"] == 1


def test_grouped_payload():
    group = [rec(i) for i in range(5)]
    records = records_from_payload(encode_payload(group))
    assert [r["task_id"] for r in records] == list(range(5))


def test_malformed_payload_structure_rejected():
    with pytest.raises(TranslationError):
        records_from_payload(encode_payload("just a string"))
    with pytest.raises(TranslationError):
        records_from_payload(encode_payload([1, 2, 3]))


# -- target formats ---------------------------------------------------------


def test_to_dfanalyzer_task_shape():
    out = to_dfanalyzer([rec(1, "task_begin"), rec(2, "task_end")])
    assert out[0]["type"] == "task"
    assert out[0]["status"] == "RUNNING"
    assert out[0]["datasets"][0]["direction"] == "input"
    assert out[1]["status"] == "FINISHED"
    assert out[1]["datasets"][0]["direction"] == "output"
    assert out[1]["dataflow_tag"] == "1"


def test_to_dfanalyzer_workflow_events():
    out = to_dfanalyzer([{"kind": "workflow_begin", "workflow_id": 9, "time": 0.0}])
    assert out == [{"type": "dataflow", "dataflow_tag": "9", "event": "begin", "time": 0.0}]


def test_to_dfanalyzer_rejects_unknown_kind():
    with pytest.raises(TranslationError):
        to_dfanalyzer([{"kind": "nope", "workflow_id": 1}])


def test_to_prov_json_via_mapping():
    pj = to_prov_json([rec(1, "task_begin")])
    assert "task:1" in pj["activity"]
    assert "data:d1" in pj["entity"]


def test_to_provlake_shapes():
    out = to_provlake([rec(1, "task_begin"), rec(1, "task_end")])
    assert out[0]["prov_obj"] == "task"
    assert out[0]["used"] == {"d1": {"v": 1}}
    assert out[0]["generated"] == {}
    assert out[1]["generated"] == {"d1": {"v": 1}}


def test_translator_dispatch_and_errors():
    t = Translator("dfanalyzer")
    records, translated = t.translate_payload(encode_payload(rec(3)))
    assert records[0]["task_id"] == 3
    assert translated[0]["type"] == "task"
    with pytest.raises(ValueError):
        Translator("nonexistent-system")


def test_translator_extensible_targets():
    Translator.register_target("upper", lambda records: [r["kind"].upper() for r in records])
    t = Translator("upper")
    _, translated = t.translate_payload(encode_payload(rec(1)))
    assert translated == ["TASK_END"]
    assert "upper" in Translator.known_targets()
