"""Backend resilience: retry policy, circuit breaker, spill, supervision.

Covers the fault-tolerant server plane's backend edge: transient POST
failures retry with backoff and trip the breaker; an open breaker makes
ingest spill into the bounded queue instead of blocking a worker; the
drain empties the spill after recovery (shedding oldest-first at the
bound); request timeouts surface as retryable :class:`BackendTimeout`;
and a crashed translator work loop is restarted by its supervisor with
its unacked batch requeued.
"""

import pytest

from repro.core import (
    BackendError,
    BackendTimeout,
    CallableBackend,
    CircuitBreaker,
    HttpBackend,
    ProvLightServer,
    RetryPolicy,
    RetryableBackendError,
)
from repro.http import HttpRequestError, HttpResponse, HttpServer
from repro.net import LinkFaultInjector, Network
from repro.simkernel import Environment


def make_http_world(seed=5, status=None, handler=None, **backend_kwargs):
    """cloud -> api link with a scriptable HTTP endpoint.

    ``status`` may be an int (every response) or a list consumed one
    response at a time (the last value repeats).
    """
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("cloud")
    net.add_host("api")
    net.connect("cloud", "api", bandwidth_bps=1e9, latency_s=0.002)
    bodies = []
    script = list(status) if isinstance(status, (list, tuple)) else None

    def default_handler(request):
        bodies.append(request.body)
        if script is not None:
            code = script.pop(0) if len(script) > 1 else script[0]
        else:
            code = status if status is not None else 201
        return HttpResponse(status=code, reason="scripted")

    HttpServer(net.hosts["api"], 5000, handler or default_handler, workers=8)
    backend = HttpBackend(net.hosts["cloud"], ("api", 5000), **backend_kwargs)
    return env, net, backend, bodies


# ------------------------------------------------------------ retry policy

def test_retry_policy_classifies_transient_vs_fatal():
    policy = RetryPolicy()
    assert policy.classify(RetryableBackendError("503"))
    assert policy.classify(BackendTimeout("slow"))
    assert policy.classify(HttpRequestError("reset"))  # a ConnectionError
    assert not policy.classify(BackendError("400"))
    assert not policy.classify(ValueError("bug"))


def test_retry_policy_backoff_grows_and_caps():
    policy = RetryPolicy(base_s=0.1, factor=2.0, max_s=0.5, jitter=0.0)
    delays = [policy.delay(a) for a in range(5)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


# --------------------------------------------------------- breaker automaton

def test_breaker_closed_to_open_to_half_open_to_closed():
    env = Environment()
    breaker = CircuitBreaker(env, failure_threshold=3, reset_timeout_s=1.0)
    assert breaker.state == CircuitBreaker.CLOSED
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED  # below threshold
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.opens.count == 1
    assert not breaker.allow()

    env.run(until=1.0)  # advance the clock past reset_timeout_s
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.allow()       # exactly one probe gets through
    assert not breaker.allow()   # concurrent callers stay rejected
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED


def test_breaker_half_open_failure_reopens():
    env = Environment()
    breaker = CircuitBreaker(env, failure_threshold=1, reset_timeout_s=0.5)
    breaker.record_failure()
    env.run(until=0.5)
    assert breaker.allow()
    breaker.record_failure()  # the probe failed
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.opens.count == 2
    assert breaker.time_until_probe() == pytest.approx(0.5)


def test_breaker_success_resets_failure_streak():
    env = Environment()
    breaker = CircuitBreaker(env, failure_threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED


# ------------------------------------------------------- retries and spill

def test_transient_5xx_retries_then_succeeds():
    env, net, backend, bodies = make_http_world(
        status=[503, 503, 201],
        retry=RetryPolicy(max_attempts=4, base_s=0.01, jitter=0.0),
    )

    def scenario(env):
        yield from backend.ingest({"x": 1})

    env.process(scenario(env))
    env.run()
    assert len(bodies) == 3  # two failed attempts + the success
    assert backend.retries.count == 2
    assert backend.delivered.count == 1
    assert backend.spilled.count == 0


def test_fatal_4xx_raises_unretried():
    env, net, backend, bodies = make_http_world(status=400)
    errors = []

    def scenario(env):
        try:
            yield from backend.ingest({"x": 1})
        except BackendError as exc:
            errors.append(exc)

    env.process(scenario(env))
    env.run()
    assert len(bodies) == 1  # a rejection is not worth a second attempt
    assert len(errors) == 1
    assert not isinstance(errors[0], RetryableBackendError)
    assert backend.retries.count == 0


def make_outage_world(until_s, **backend_kwargs):
    """Backend answering 503 until sim time ``until_s``, 201 afterwards."""
    env = Environment()
    net = Network(env, seed=5)
    net.add_host("cloud")
    net.add_host("api")
    net.connect("cloud", "api", bandwidth_bps=1e9, latency_s=0.002)
    ok_bodies = []

    def handler(request):
        if env.now < until_s:
            return HttpResponse(status=503, reason="down")
        ok_bodies.append(request.body)
        return HttpResponse(status=201, reason="Created")

    HttpServer(net.hosts["api"], 5000, handler, workers=8)
    backend = HttpBackend(net.hosts["cloud"], ("api", 5000), **backend_kwargs)
    return env, net, backend, ok_bodies


def test_down_backend_trips_breaker_and_spills_then_drains():
    """Outage: retries exhaust into a spill, the breaker opens so later
    ingests spill without touching the wire, and after the backend heals
    the drain delivers everything."""
    env, net, backend, ok_bodies = make_outage_world(
        until_s=1.0,
        retry=RetryPolicy(max_attempts=2, base_s=0.02, jitter=0.0),
    )
    backend.breaker = CircuitBreaker(env, failure_threshold=2, reset_timeout_s=0.3)

    def scenario(env):
        yield from backend.ingest({"x": 1})   # retries exhaust -> spill
        assert backend.breaker.state != CircuitBreaker.CLOSED
        before = backend.retries.count
        yield from backend.ingest({"x": 2})   # breaker open -> spill fast
        assert backend.retries.count == before  # no wire attempt made
        assert backend.pending_spill == 2

    env.process(scenario(env))
    env.run(until=60)
    assert backend.spilled.count == 2
    assert backend.spill_drained.count == 2
    assert backend.pending_spill == 0
    assert backend.delivered.count == 2
    assert backend.shed.count == 0
    assert len(ok_bodies) == 2  # both records reached the healed backend


def test_spill_bound_sheds_oldest_first():
    env, net, backend, ok_bodies = make_outage_world(
        until_s=1.0,
        retry=RetryPolicy(max_attempts=1, base_s=0.01, jitter=0.0),
        spill_limit=2,
    )
    backend.breaker = CircuitBreaker(env, failure_threshold=1, reset_timeout_s=0.2)

    def scenario(env):
        for i in range(4):
            yield from backend.ingest({"i": i})
            yield env.timeout(0.01)

    env.process(scenario(env))
    env.run(until=60)
    assert backend.shed.count == 2  # the two oldest made room
    assert backend.spill_drained.count == 2
    # the freshest window survived the outage
    import json
    delivered = [json.loads(b.decode())["i"] for b in ok_bodies]
    assert delivered == [2, 3]


def test_drainer_parks_on_a_permanently_dead_backend():
    """The drain loop self-terminates after drain_max_probes misses, so a
    dead backend cannot keep the event heap alive forever."""
    env, net, backend, bodies = make_http_world(
        retry=RetryPolicy(max_attempts=1, base_s=0.01, jitter=0.0),
        drain_max_probes=3,
    )
    backend.breaker = CircuitBreaker(env, failure_threshold=1, reset_timeout_s=0.1)
    faults = LinkFaultInjector(net, "cloud", "api")
    faults.partition_now()

    def scenario(env):
        yield from backend.ingest({"x": 1})

    env.process(scenario(env))
    env.run()  # terminates: the drainer gave up
    assert backend.pending_spill == 1  # still parked, not lost


# ----------------------------------------------------------------- timeout

def test_slow_backend_times_out_as_retryable():
    env = Environment()
    net = Network(env, seed=5)
    net.add_host("cloud")
    net.add_host("api")
    net.connect("cloud", "api", bandwidth_bps=1e9, latency_s=0.002)

    def slow_handler(request):
        yield env.timeout(5.0)
        return HttpResponse(status=201, reason="finally")

    HttpServer(net.hosts["api"], 5000, slow_handler, workers=2)
    backend = HttpBackend(
        net.hosts["cloud"], ("api", 5000), timeout_s=0.5,
        retry=RetryPolicy(max_attempts=1),
    )
    caught = []

    def scenario(env):
        started = env.now
        yield from backend.ingest({"x": 1})
        caught.append(env.now - started)

    env.process(scenario(env))
    env.run(until=60)
    # the timed-out request spilled (retries exhausted) without waiting
    # out the 5s handler
    assert backend.spilled.count >= 1
    assert backend.retries.count >= 1


def test_timeout_validation():
    env = Environment()
    net = Network(env, seed=1)
    net.add_host("cloud")
    with pytest.raises(ValueError):
        HttpBackend(net.hosts["cloud"], ("api", 5000), timeout_s=0.0)
    with pytest.raises(ValueError):
        HttpBackend(net.hosts["cloud"], ("api", 5000), spill_limit=0)


# ------------------------------------------------------ worker supervision

def make_server_world(seed=7, workers=2):
    from repro.device import A8M3, Device

    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("cloud")
    net.add_host("edge", device=Device(env, A8M3, name="edge-dev"))
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.01)
    received = []
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(received.extend), workers=workers
    )
    return env, net, server, received


def test_crashed_worker_restarts_and_requeues():
    from repro.core import Data, ProvLightClient, Task, Workflow

    env, net, server, received = make_server_world()
    worker_holder = {}

    def scenario(env):
        worker = yield from server.add_translator("conf/#")
        worker_holder["w"] = worker
        client = ProvLightClient(
            net.hosts["edge"].device, server.endpoint, "conf/edge/data"
        )
        yield from client.setup()
        wf = Workflow(1, client)
        yield from wf.begin()
        for i in range(3):
            task = Task(i, wf)
            yield from task.begin([Data(f"in{i}", 1, {"x": [1.0] * 4})])
            yield env.timeout(0.05)
            yield from task.end([Data(f"out{i}", 1, {"y": [2.0] * 4})])
        yield from wf.end(drain=True)

    def chaos(env):
        yield env.timeout(0.2)
        worker_holder["w"].crash()

    env.process(scenario(env))
    env.process(chaos(env))
    env.run(until=60)
    worker = worker_holder["w"]
    assert worker.crashes.count == 1
    assert worker.restarts.count == 1
    assert server.pool.crashes == 1
    assert server.pool.restarts == 1
    # nothing lost: 2 workflow events + 3 x (begin + end), exactly once
    assert server.records_ingested.total == 8
    assert worker.queued == 0


def test_repeated_crashes_escalate_then_reset_backoff():
    env, net, server, received = make_server_world(workers=1)
    worker = server.pool.workers[0]
    worker.restart_jitter = 0.0

    def chaos(env):
        for _ in range(3):
            worker.crash()
            yield env.timeout(0.01)

    env.process(chaos(env))
    env.run(until=30)
    assert worker.crashes.count == 3
    # crashes landing during the restart backoff are absorbed: the
    # worker comes back once, not once per overlapping crash
    assert worker.restarts.count == 1
    assert worker.last_failure is not None
