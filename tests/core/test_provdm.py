"""PROV-DM document and Table V mapping tests."""

import pytest

from repro.core import ProvDocument, ProvError, document_from_records


def test_nodes_created_and_counted():
    doc = ProvDocument()
    doc.agent("workflow:1")
    doc.activity("task:1", start_time=0.0)
    doc.entity("data:in1", attributes={"x": 1})
    assert len(doc) == 3


def test_activity_merges_start_and_end():
    doc = ProvDocument()
    doc.activity("t", start_time=1.0)
    doc.activity("t", end_time=2.0)
    assert doc.activities["t"] == {"startTime": 1.0, "endTime": 2.0}


def test_relations_deduplicated():
    doc = ProvDocument()
    doc.agent("w")
    doc.activity("t")
    doc.was_associated_with("t", "w")
    doc.was_associated_with("t", "w")
    assert len(doc.relations) == 1


def test_unknown_relation_rejected():
    doc = ProvDocument()
    with pytest.raises(ProvError):
        doc._relate("wasEatenBy", "a", "b")


def test_validate_passes_well_formed():
    doc = ProvDocument()
    doc.agent("w")
    doc.activity("t")
    doc.entity("d")
    doc.was_associated_with("t", "w")
    doc.used("t", "d")
    doc.was_generated_by("d", "t")
    doc.validate()


def test_validate_catches_dangling_reference():
    doc = ProvDocument()
    doc.activity("t")
    doc.was_associated_with("t", "ghost-agent")
    with pytest.raises(ProvError, match="unknown target"):
        doc.validate()


def test_validate_catches_wrong_domain():
    doc = ProvDocument()
    doc.agent("w")
    doc.entity("d")
    # `used` needs an activity source; "w" is an agent
    doc.relations.append(("used", "w", "d"))
    with pytest.raises(ProvError, match="unknown source"):
        doc.validate()


def make_records():
    """A small captured workflow: two chained tasks."""
    return [
        {"kind": "workflow_begin", "workflow_id": 1, "time": 0.0},
        {
            "kind": "task_begin", "workflow_id": 1, "task_id": "t1",
            "transformation_id": 0, "dependencies": [], "time": 0.0,
            "status": "running",
            "data": [{"id": "in1", "workflow_id": 1, "derivations": [],
                      "attributes": {"x": 1}}],
        },
        {
            "kind": "task_end", "workflow_id": 1, "task_id": "t1",
            "transformation_id": 0, "dependencies": [], "time": 0.5,
            "status": "finished",
            "data": [{"id": "out1", "workflow_id": 1, "derivations": ["in1"],
                      "attributes": {"y": 2}}],
        },
        {
            "kind": "task_begin", "workflow_id": 1, "task_id": "t2",
            "transformation_id": 1, "dependencies": ["t1"], "time": 0.5,
            "status": "running",
            "data": [{"id": "out1", "workflow_id": 1, "derivations": [],
                      "attributes": {}}],
        },
        {
            "kind": "task_end", "workflow_id": 1, "task_id": "t2",
            "transformation_id": 1, "dependencies": ["t1"], "time": 1.0,
            "status": "finished",
            "data": [{"id": "out2", "workflow_id": 1, "derivations": ["out1"],
                      "attributes": {"z": 3}}],
        },
        {"kind": "workflow_end", "workflow_id": 1, "time": 1.0},
    ]


def test_document_from_records_table_v_mapping():
    doc = document_from_records(make_records())
    doc.validate()
    # Workflow -> Agent
    assert "workflow:1" in doc.agents
    # Task -> Activity with wasAssociatedWith
    assert ("task:t1", "workflow:1") in doc.relations_of("wasAssociatedWith")
    assert ("task:t2", "workflow:1") in doc.relations_of("wasAssociatedWith")
    # dependencies -> wasInformedBy
    assert ("task:t2", "task:t1") in doc.relations_of("wasInformedBy")
    # inputs -> used; outputs -> wasGeneratedBy
    assert ("task:t1", "data:in1") in doc.relations_of("used")
    assert ("data:out1", "task:t1") in doc.relations_of("wasGeneratedBy")
    # Data -> Entity with wasAttributedTo and wasDerivedFrom chains
    assert ("data:out1", "workflow:1") in doc.relations_of("wasAttributedTo")
    assert ("data:out1", "data:in1") in doc.relations_of("wasDerivedFrom")
    assert ("data:out2", "data:out1") in doc.relations_of("wasDerivedFrom")


def test_document_from_records_task_times():
    doc = document_from_records(make_records())
    assert doc.activities["task:t1"]["startTime"] == 0.0
    assert doc.activities["task:t1"]["endTime"] == 0.5


def test_document_from_records_rejects_unknown_kind():
    with pytest.raises(ProvError):
        document_from_records([{"kind": "mystery", "workflow_id": 1}])


def test_to_prov_json_shape():
    doc = document_from_records(make_records())
    pj = doc.to_prov_json()
    assert set(pj["agent"]) == {"workflow:1"}
    assert "task:t1" in pj["activity"]
    assert "data:in1" in pj["entity"]
    assert {"src": "task:t2", "dst": "task:t1"} in pj["wasInformedBy"]


def test_to_prov_json_omits_empty_relations():
    doc = ProvDocument()
    doc.agent("w")
    pj = doc.to_prov_json()
    assert "used" not in pj
