"""Tests for the secure-transmission extension (paper future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AuthenticationError,
    CodecError,
    PayloadCipher,
    decode_payload,
    encode_payload,
    derive_key,
)


def make_cipher(secret="shared-secret", seed=0):
    return PayloadCipher(derive_key(secret), rng=np.random.default_rng(seed))


def test_derive_key_deterministic_and_salted():
    assert derive_key("s") == derive_key("s")
    assert derive_key("s") != derive_key("t")
    assert derive_key("s", salt="a") != derive_key("s", salt="b")
    assert len(derive_key("s")) == 32


def test_encrypt_decrypt_roundtrip():
    cipher = make_cipher()
    blob = cipher.encrypt(b"top secret provenance")
    assert cipher.decrypt(blob) == b"top secret provenance"


def test_ciphertext_hides_plaintext():
    cipher = make_cipher()
    blob = cipher.encrypt(b"AAAAAAAAAAAAAAAAAAAAAAAA")
    assert b"AAAA" not in blob


def test_nonce_randomizes_ciphertext():
    cipher = PayloadCipher(derive_key("k"))  # os.urandom nonces
    assert cipher.encrypt(b"same") != cipher.encrypt(b"same")


def test_tampered_payload_rejected():
    cipher = make_cipher()
    blob = bytearray(cipher.encrypt(b"data"))
    blob[-1] ^= 0x01
    with pytest.raises(AuthenticationError):
        cipher.decrypt(bytes(blob))


def test_wrong_key_rejected():
    blob = make_cipher("alice").encrypt(b"data")
    with pytest.raises(AuthenticationError):
        make_cipher("mallory").decrypt(blob)


def test_short_blob_rejected():
    with pytest.raises(AuthenticationError):
        make_cipher().decrypt(b"short")


def test_key_validation():
    with pytest.raises(ValueError):
        PayloadCipher(b"tiny")
    with pytest.raises(TypeError):
        make_cipher().encrypt("not bytes")


def test_overhead_is_fixed():
    cipher = make_cipher()
    assert cipher.overhead_bytes == 32
    assert len(cipher.encrypt(b"")) == 32


def test_encrypted_payload_framing_roundtrip():
    cipher = make_cipher()
    value = {"kind": "task_end", "data": [{"attributes": {"x": [1.5] * 20}}]}
    wire = encode_payload(value, cipher=cipher)
    assert decode_payload(wire, cipher=cipher) == value


def test_encrypted_payload_requires_cipher():
    cipher = make_cipher()
    wire = encode_payload({"a": 1}, cipher=cipher)
    with pytest.raises(CodecError, match="encrypted"):
        decode_payload(wire)


def test_encrypted_payload_wrong_key_fails_cleanly():
    wire = encode_payload({"a": 1}, cipher=make_cipher("alice"))
    with pytest.raises(CodecError, match="decryption failed"):
        decode_payload(wire, cipher=make_cipher("eve"))


def test_plain_payload_ignores_cipher():
    wire = encode_payload({"a": 1})
    assert decode_payload(wire, cipher=make_cipher()) == {"a": 1}


@given(st.binary(max_size=300))
@settings(max_examples=100, deadline=None)
def test_property_encrypt_decrypt_identity(data):
    cipher = make_cipher()
    assert cipher.decrypt(cipher.encrypt(data)) == data


def test_end_to_end_encrypted_capture():
    """Client encrypts; translator with the shared key still delivers."""
    from repro.core import CallableBackend, Data, ProvLightClient, ProvLightServer, Task, Workflow
    from repro.device import A8M3, Device
    from repro.net import Network
    from repro.simkernel import Environment

    key = derive_key("edge-to-cloud")
    env = Environment()
    net = Network(env, seed=2)
    dev = Device(env, A8M3)
    net.add_host("edge", device=dev)
    net.add_host("cloud")
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.01)
    sink = []
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(sink.extend),
        cipher=PayloadCipher(key, rng=np.random.default_rng(1)),
    )
    client = ProvLightClient(
        dev, server.endpoint, "sec/edge",
        cipher=PayloadCipher(key, rng=np.random.default_rng(2)),
    )

    def scenario(env):
        yield from server.add_translator("sec/#")
        yield from client.setup()
        wf = Workflow(1, client)
        yield from wf.begin()
        task = Task(0, wf)
        yield from task.begin([Data("in0", 1, {"v": 42})])
        yield from task.end([Data("out0", 1, {"v": 43})])
        yield from wf.end(drain=True)
        yield env.timeout(5)

    env.process(scenario(env))
    env.run()
    assert len(sink) == 4
    assert any(r.get("type") == "task" for r in sink)


def test_end_to_end_wrong_key_drops_messages():
    from repro.core import CallableBackend, Data, ProvLightClient, ProvLightServer, Task, Workflow
    from repro.device import A8M3, Device
    from repro.net import Network
    from repro.simkernel import Environment

    env = Environment()
    net = Network(env, seed=2)
    dev = Device(env, A8M3)
    net.add_host("edge", device=dev)
    net.add_host("cloud")
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.01)
    sink = []
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(sink.extend),
        cipher=PayloadCipher(derive_key("right"), rng=np.random.default_rng(1)),
    )
    client = ProvLightClient(
        dev, server.endpoint, "sec/edge",
        cipher=PayloadCipher(derive_key("wrong"), rng=np.random.default_rng(2)),
    )

    def scenario(env):
        yield from server.add_translator("sec/#")
        yield from client.setup()
        wf = Workflow(1, client)
        yield from wf.begin()
        yield from wf.end(drain=True)
        yield env.timeout(5)

    env.process(scenario(env))
    env.run()
    assert sink == []
    assert server.translate_errors.count == 2
