"""Codec tests: round-trips, framing, compression, malformed input."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CodecError, decode_payload, decode_value, encode_payload, encode_value


SAMPLES = [
    None,
    True,
    False,
    0,
    1,
    -1,
    127,
    -128,
    2**40,
    -(2**40),
    0.0,
    3.14159,
    -2.5e300,
    "",
    "hello",
    "unicode: héllo wörld ✓",
    b"",
    b"\x00\xff" * 10,
    [],
    [1, 2, 3],
    ["mixed", 1, None, True, 2.5],
    {},
    {"a": 1},
    {"nested": {"list": [1, [2, [3]]], "flag": False}},
    {"kind": "task_begin", "data": [{"id": "in1", "attributes": {"in": [1] * 100}}]},
]


@pytest.mark.parametrize("value", SAMPLES, ids=lambda v: repr(v)[:40])
def test_value_roundtrip(value):
    assert decode_value(encode_value(value)) == value


@pytest.mark.parametrize("value", SAMPLES, ids=lambda v: repr(v)[:40])
def test_payload_roundtrip(value):
    assert decode_payload(encode_payload(value)) == value


def test_payload_roundtrip_uncompressed():
    value = {"x": [1.5] * 50}
    assert decode_payload(encode_payload(value, compress=False)) == value


def test_compression_engages_for_redundant_data():
    value = {"in": [1] * 1000}
    compressed = encode_payload(value, compress=True)
    uncompressed = encode_payload(value, compress=False)
    assert len(compressed) < len(uncompressed) / 5


def test_compression_skipped_when_not_beneficial():
    # tiny payloads: zlib would add bytes, flag must stay clear
    payload = encode_payload({"t": 1})
    assert payload[3] & 0x01 == 0


def test_binary_is_smaller_than_json_for_float_attrs():
    import json

    import numpy as np

    rng = np.random.default_rng(0)
    record = {"attrs": [float(x) for x in rng.random(100)]}
    binary = encode_payload(record)
    as_json = json.dumps(record).encode()
    assert len(binary) < len(as_json)


def test_decode_rejects_bad_magic():
    with pytest.raises(CodecError):
        decode_payload(b"XX\x01\x00abc")


def test_decode_rejects_bad_version():
    with pytest.raises(CodecError):
        decode_payload(b"PL\x09\x00abc")


def test_decode_rejects_short_frames():
    with pytest.raises(CodecError):
        decode_payload(b"PL")


def test_decode_rejects_corrupt_zlib():
    good = encode_payload({"in": [1] * 1000})
    corrupted = good[:4] + b"\x00" + good[5:]
    with pytest.raises(CodecError):
        decode_payload(corrupted)


def test_decode_rejects_trailing_bytes():
    data = encode_value(42) + b"\x00"
    with pytest.raises(CodecError):
        decode_value(data)


def test_decode_rejects_truncation_everywhere():
    data = encode_value({"key": ["value", 1.0, 7]})
    for cut in range(1, len(data)):
        with pytest.raises(CodecError):
            decode_value(data[:cut])


def test_non_string_dict_keys_rejected():
    with pytest.raises(CodecError):
        encode_value({1: "x"})


def test_unsupported_types_rejected():
    with pytest.raises(CodecError):
        encode_value(object())
    with pytest.raises(CodecError):
        encode_value({"x": set()})


def test_int_wire_range_enforced_symmetrically():
    # the wire contract is u64 zigzag; both encoder versions must fail
    # fast on out-of-range ints instead of emitting undecodable bytes,
    # and the boundary values must round-trip in both versions
    for value in (2**63 - 1, -(2**63)):
        for version in (1, 2):
            assert decode_payload(encode_payload(value, version=version)) == value
    for bad in (2**63, -(2**63) - 1):
        with pytest.raises(CodecError):
            encode_payload(bad, version=1)
        with pytest.raises(CodecError):
            encode_payload(bad, version=2)
        with pytest.raises(CodecError):
            encode_payload([bad], version=1)  # nested values too


# -- property-based --------------------------------------------------------

json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**62), max_value=2**62)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=40)
    | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=6)
    | st.dictionaries(st.text(max_size=10), children, max_size=6),
    max_leaves=30,
)


@given(json_like)
@settings(max_examples=200, deadline=None)
def test_property_value_roundtrip(value):
    assert decode_value(encode_value(value)) == value


@given(json_like, st.booleans())
@settings(max_examples=100, deadline=None)
def test_property_payload_roundtrip(value, compress):
    assert decode_payload(encode_payload(value, compress=compress)) == value


@given(st.binary(max_size=64))
@settings(max_examples=200, deadline=None)
def test_property_decoder_never_crashes_uncontrolled(data):
    # arbitrary bytes either decode or raise CodecError -- nothing else
    try:
        decode_payload(data)
    except CodecError:
        pass


@given(st.lists(st.integers(min_value=0, max_value=2**62), max_size=20))
@settings(max_examples=100, deadline=None)
def test_property_encoding_deterministic(values):
    assert encode_value(values) == encode_value(values)
