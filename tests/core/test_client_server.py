"""Integration tests: ProvLight client -> broker -> translator -> backend."""

import pytest

from repro.core import CallableBackend, Data, ProvLightClient, ProvLightServer, Task, Workflow
from repro.device import A8M3, XEON_GOLD_5220, Device
from repro.net import Network
from repro.simkernel import Environment


def make_world(group_size=0, compress=True, bandwidth=1e9, latency=0.023):
    env = Environment()
    net = Network(env, seed=2)
    edge_dev = Device(env, A8M3, name="edge-dev")
    cloud_dev = Device(env, XEON_GOLD_5220, name="cloud-dev")
    net.add_host("edge", device=edge_dev)
    net.add_host("cloud", device=cloud_dev)
    net.connect("edge", "cloud", bandwidth_bps=bandwidth, latency_s=latency)
    sink = []
    server = ProvLightServer(net.hosts["cloud"], CallableBackend(sink.extend))
    client = ProvLightClient(
        edge_dev, server.endpoint, "provlight/edge/data",
        group_size=group_size, compress=compress,
    )
    return env, net, edge_dev, server, client, sink


def run_workflow(env, client, n_tasks=4, attrs=10, task_duration=0.05, drain=True):
    result = {}

    def proc(env):
        yield from client.setup()
        workflow = Workflow(1, client)
        yield from workflow.begin()
        t0 = env.now
        previous = []
        for i in range(n_tasks):
            task = Task(i, workflow, transformation_id=0, dependencies=previous)
            d_in = Data(f"in{i}", workflow.id, {"in": [1.0] * attrs})
            yield from task.begin([d_in])
            yield env.timeout(task_duration)
            d_out = Data(f"out{i}", workflow.id, {"out": [2.0] * attrs},
                         derivations=[f"in{i}"])
            yield from task.end([d_out])
            previous = [task.id]
        result["workflow_elapsed"] = env.now - t0
        yield from workflow.end(drain=drain)

    env.process(proc(env))
    return result


def test_records_flow_end_to_end():
    env, net, dev, server, client, sink = make_world()
    done = {}

    def scenario(env):
        yield from server.add_translator("provlight/#")
        run = run_workflow(env, client, n_tasks=3)
        yield env.timeout(60)
        done.update(run)

    env.process(scenario(env))
    env.run()
    # workflow begin/end + 3 x (task begin + task end) = 8 records
    types = [r["type"] for r in sink]
    assert types.count("dataflow") == 2
    assert types.count("task") == 6
    assert server.records_ingested.total == 8


def test_records_flow_end_to_end_through_sharded_broker_plane():
    """Same capture pipeline, 4 broker shards behind the one endpoint:
    the devices and the translator pool notice nothing, every record
    still lands in the backend (cross-shard relays included — the
    wildcard translator is homed on one shard, devices on others)."""
    env = Environment()
    net = Network(env, seed=2)
    cloud_dev = Device(env, XEON_GOLD_5220, name="cloud-dev")
    net.add_host("cloud", device=cloud_dev)
    sink = []
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(sink.extend), broker_shards=4,
    )
    clients = []
    for i in range(3):
        dev = Device(env, A8M3, name=f"edge-dev-{i}")
        net.add_host(f"edge-{i}", device=dev)
        net.connect(f"edge-{i}", "cloud", bandwidth_bps=1e9, latency_s=0.023)
        clients.append(
            ProvLightClient(dev, server.endpoint, f"provlight/edge-{i}/data")
        )

    def scenario(env):
        yield from server.add_translator("provlight/#")
        for client in clients:
            run_workflow(env, client, n_tasks=3)
        yield env.timeout(60)

    env.process(scenario(env))
    env.run()
    # per device: workflow begin/end + 3 x (task begin + end) = 8 records
    assert server.records_ingested.total == 24
    types = [r["type"] for r in sink]
    assert types.count("dataflow") == 6
    assert types.count("task") == 18
    assert server.broker.delivery_failures.count == 0
    assert len(server.broker.shards) == 4


def test_task_records_carry_attributes_and_lineage():
    env, net, dev, server, client, sink = make_world()

    def scenario(env):
        yield from server.add_translator("provlight/#")
        run_workflow(env, client, n_tasks=2, attrs=5)
        yield env.timeout(60)

    env.process(scenario(env))
    env.run()
    tasks = [r for r in sink if r["type"] == "task"]
    begin0 = next(r for r in tasks if r["task_id"] == 0 and r["status"] == "RUNNING")
    assert begin0["datasets"][0]["elements"]["in"] == [1.0] * 5
    end0 = next(r for r in tasks if r["task_id"] == 0 and r["status"] == "FINISHED")
    assert end0["datasets"][0]["derivations"] == ["in0"]
    begin1 = next(r for r in tasks if r["task_id"] == 1 and r["status"] == "RUNNING")
    assert begin1["dependencies"] == [0]


def test_capture_call_is_fast_on_edge():
    env, net, dev, server, client, sink = make_world()
    timing = {}

    def scenario(env):
        yield from server.add_translator("provlight/#")
        yield from client.setup()
        workflow = Workflow(1, client)
        yield from workflow.begin()
        task = Task(0, workflow)
        t0 = env.now
        yield from task.begin([Data("in0", 1, {"in": [1.0] * 100})])
        timing["begin_call"] = env.now - t0
        yield env.timeout(0.5)
        t0 = env.now
        yield from task.end([Data("out0", 1, {"out": [2.0] * 100})])
        timing["end_call"] = env.now - t0
        yield from workflow.end()

    env.process(scenario(env))
    env.run()
    # paper Table VII: ~3.9 ms per capture call at 100 attributes
    assert 0.002 < timing["begin_call"] < 0.006
    assert 0.002 < timing["end_call"] < 0.006


def test_capture_latency_independent_of_bandwidth():
    results = {}
    for label, bw in [("fast", 1e9), ("slow", 25e3)]:
        env, net, dev, server, client, sink = make_world(bandwidth=bw)
        run = run_workflow(env, client, n_tasks=5, attrs=100, drain=False)
        env.run(until=600)
        results[label] = run["workflow_elapsed"]
    # async publish: workflow time unaffected by a 40000x slower link
    assert results["slow"] == pytest.approx(results["fast"], rel=0.02)


def test_grouping_reduces_messages_sent():
    env1, _, _, server1, client1, _ = make_world(group_size=0)
    run_workflow(env1, client1, n_tasks=10)
    env1.run(until=300)
    ungrouped = client1.messages_sent.count

    env2, _, _, server2, client2, _ = make_world(group_size=5)
    run_workflow(env2, client2, n_tasks=10)
    env2.run(until=300)
    grouped = client2.messages_sent.count

    # 22 messages ungrouped (2 wf + 20 task) vs 2 wf + 10 begin + 2 groups
    assert ungrouped == 22
    assert grouped == 14


def test_grouped_records_all_arrive():
    env, net, dev, server, client, sink = make_world(group_size=4)

    def scenario(env):
        yield from server.add_translator("provlight/#")
        run_workflow(env, client, n_tasks=10)
        yield env.timeout(120)

    env.process(scenario(env))
    env.run()
    finished = [r for r in sink if r.get("status") == "FINISHED"]
    assert len(finished) == 10  # nothing lost, partial group flushed at end


def test_compression_shrinks_payload_bytes():
    env1, _, _, _, c1, _ = make_world(compress=True)
    run_workflow(env1, c1, n_tasks=5, attrs=100)
    env1.run(until=300)

    env2, _, _, _, c2, _ = make_world(compress=False)
    run_workflow(env2, c2, n_tasks=5, attrs=100)
    env2.run(until=300)

    assert c1.payload_bytes.total < c2.payload_bytes.total


def test_memory_accounting_static_and_buffers():
    env, net, dev, server, client, sink = make_world()
    assert dev.memory.used("capture-static") > 0

    def scenario(env):
        run_workflow(env, client, n_tasks=3)
        yield env.timeout(120)

    env.process(scenario(env))
    env.run()
    # all buffers freed after the QoS handshakes completed
    assert dev.memory.used("capture-buffers") == 0
    assert dev.memory.peak("capture-buffers") > 0
    client.close()
    assert dev.memory.used("capture-static") == 0


def test_capture_before_setup_rejected():
    env, net, dev, server, client, sink = make_world()

    def scenario(env):
        workflow = Workflow(1, client)
        with pytest.raises(RuntimeError, match="before setup"):
            yield from workflow.begin()

    env.process(scenario(env))
    env.run()


def test_workflow_task_state_machine_guards():
    env, net, dev, server, client, sink = make_world()

    def scenario(env):
        yield from client.setup()
        workflow = Workflow(1, client)
        yield from workflow.begin()
        with pytest.raises(RuntimeError, match="already begun"):
            yield from workflow.begin()
        task = Task(0, workflow)
        with pytest.raises(RuntimeError, match="end\\(\\) in state"):
            yield from task.end()
        yield from task.begin()
        with pytest.raises(RuntimeError, match="begin\\(\\) in state"):
            yield from task.begin()
        yield from task.end()
        yield from workflow.end()
        with pytest.raises(RuntimeError, match="already ended"):
            yield from workflow.end()

    env.process(scenario(env))
    env.run()


def test_detached_device_rejected():
    env = Environment()
    dev = Device(env, A8M3)
    with pytest.raises(RuntimeError, match="not attached"):
        ProvLightClient(dev, ("cloud", 1883), "t")


def test_drain_waits_for_queue():
    env, net, dev, server, client, sink = make_world(bandwidth=25e3)
    marks = {}

    def scenario(env):
        yield from client.setup()
        workflow = Workflow(1, client)
        yield from workflow.begin()
        task = Task(0, workflow)
        yield from task.begin([Data("in0", 1, {"in": [1.0] * 100})])
        yield from task.end([Data("out0", 1, {"out": [1.5] * 100})])
        marks["before_drain"] = env.now
        yield from workflow.end(drain=True)
        marks["after_drain"] = env.now

    env.process(scenario(env))
    env.run()
    # on a 25 Kbit link the drain takes real time
    assert marks["after_drain"] - marks["before_drain"] > 0.5
    assert client.messages_sent.count == 4
