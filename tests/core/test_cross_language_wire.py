"""Cross-language wire compatibility (paper future work: C/C++ clients).

The ProvLight wire format is deliberately language-agnostic: fixed
little-endian floats, LEB128-style varints, one-octet type tags, explicit
framing.  These tests act as a *foreign* client: they craft payload bytes
and MQTT-SN datagrams by hand — exactly the octets a C client would emit
— and verify the Python broker/translator pipeline accepts them.
"""

import struct
import zlib

import pytest

from repro.core import decode_payload, encode_payload, encode_value, to_dfanalyzer
from repro.core.translator import records_from_payload


def hand_encoded_record() -> bytes:
    """Byte-for-byte construction of a ProvLight record, no Python codec.

    Record: {"kind": "task_end", "workflow_id": 1, "task_id": 7,
             "time": 2.5, "status": "finished", "dependencies": [],
             "data": []}
    """

    def varint(n: int) -> bytes:
        out = bytearray()
        while True:
            b = n & 0x7F
            n >>= 7
            if n:
                out.append(b | 0x80)
            else:
                out.append(b)
                return bytes(out)

    def zigzag(n: int) -> int:
        return (n << 1) ^ (n >> 63) if n >= 0 else ((-n) << 1) - 1

    def enc_str(s: str) -> bytes:
        raw = s.encode()
        return b"\x05" + varint(len(raw)) + raw

    def enc_int(n: int) -> bytes:
        return b"\x03" + varint(zigzag(n))

    def enc_float(x: float) -> bytes:
        return b"\x04" + struct.pack("<d", x)

    def enc_list(items: list) -> bytes:
        return b"\x07" + varint(len(items)) + b"".join(items)

    body = bytearray()
    body += b"\x08" + bytes([7])  # dict with 7 entries
    body += enc_str("kind") + enc_str("task_end")
    body += enc_str("workflow_id") + enc_int(1)
    body += enc_str("task_id") + enc_int(7)
    body += enc_str("time") + enc_float(2.5)
    body += enc_str("status") + enc_str("finished")
    body += enc_str("dependencies") + enc_list([])
    body += enc_str("data") + enc_list([])
    # frame: magic | version | flags(0: uncompressed)
    return b"PL" + bytes([1, 0]) + bytes(body)


EXPECTED = {
    "kind": "task_end", "workflow_id": 1, "task_id": 7, "time": 2.5,
    "status": "finished", "dependencies": [], "data": [],
}


def hand_encoded_record_v2() -> bytes:
    """Byte-for-byte v2 frame for the same record: string table + refs.

    v2 body layout: varint table byte-length | varint count | count x
    (varint len + utf-8) | value, where strings are T_STRREF (0x09)
    varint indexes into the table.
    """

    def varint(n: int) -> bytes:
        out = bytearray()
        while True:
            b = n & 0x7F
            n >>= 7
            if n:
                out.append(b | 0x80)
            else:
                out.append(b)
                return bytes(out)

    strings = ["kind", "task_end", "workflow_id", "task_id", "time",
               "status", "finished", "dependencies", "data"]
    table = bytearray(varint(len(strings)))
    for s in strings:
        raw = s.encode()
        table += varint(len(raw)) + raw

    def ref(s: str) -> bytes:
        return b"\x09" + varint(strings.index(s))

    def enc_int(n: int) -> bytes:
        z = (n << 1) if n >= 0 else ((-n) << 1) - 1
        return b"\x03" + varint(z)

    value = bytearray()
    value += b"\x08" + bytes([7])  # dict with 7 entries
    value += ref("kind") + ref("task_end")
    value += ref("workflow_id") + enc_int(1)
    value += ref("task_id") + enc_int(7)
    value += ref("time") + b"\x04" + struct.pack("<d", 2.5)
    value += ref("status") + ref("finished")
    value += ref("dependencies") + b"\x07\x00"  # empty list
    value += ref("data") + b"\x07\x00"
    body = varint(len(table)) + bytes(table) + bytes(value)
    return b"PL" + bytes([2, 0]) + body


def test_hand_encoded_payload_decodes():
    assert decode_payload(hand_encoded_record()) == EXPECTED


def test_hand_encoded_matches_python_encoder():
    # both encoders are canonical for the same key order (v1 frame)
    assert hand_encoded_record() == encode_payload(EXPECTED, compress=False, version=1)


def test_hand_encoded_v2_payload_decodes():
    assert decode_payload(hand_encoded_record_v2()) == EXPECTED


def test_hand_encoded_v2_matches_python_encoder():
    # the v2 encoder is canonical too: same table order (first use), same refs
    assert hand_encoded_record_v2() == encode_payload(EXPECTED, compress=False)


def test_v1_and_v2_frames_decode_identically():
    assert decode_payload(hand_encoded_record()) == decode_payload(hand_encoded_record_v2())


def test_hand_compressed_frame_decodes():
    raw = encode_value(EXPECTED)
    framed = b"PL" + bytes([1, 1]) + zlib.compress(raw)  # flag 1: compressed
    assert decode_payload(framed) == EXPECTED


def test_hand_encoded_record_translates():
    records = records_from_payload(hand_encoded_record())
    translated = to_dfanalyzer(records)
    assert translated[0]["task_id"] == 7
    assert translated[0]["status"] == "FINISHED"


def test_foreign_client_through_broker_and_translator():
    """A 'C client': raw MQTT-SN datagrams straight onto the UDP socket."""
    from repro.core import CallableBackend, ProvLightServer
    from repro.mqttsn import packets as pkt
    from repro.net import Network
    from repro.simkernel import Environment

    env = Environment()
    net = Network(env, seed=1)
    net.add_host("edge")
    net.add_host("cloud")
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.01)
    sink = []
    server = ProvLightServer(net.hosts["cloud"], CallableBackend(sink.extend))
    sock = net.hosts["edge"].udp_socket()
    broker = ("cloud", 1883)

    def foreign_client(env):
        yield from server.add_translator("c/edge")
        # CONNECT with a hand-built frame: len|0x04|flags|proto|duration|id
        sock.sendto(bytes([12, 0x04, 0x04, 0x01, 0, 60]) + b"c-edge", broker)
        data, _ = yield sock.recv()  # CONNACK
        assert pkt.decode(data) == pkt.Connack(return_code=0)
        # REGISTER topic "c/edge"
        sock.sendto(pkt.Register(topic_id=0, msg_id=1, topic_name="c/edge").encode(), broker)
        data, _ = yield sock.recv()
        regack = pkt.decode(data)
        assert isinstance(regack, pkt.Regack)
        # PUBLISH qos1 with the hand-encoded provenance payload
        publish = pkt.Publish(topic_id=regack.topic_id, msg_id=2,
                              payload=hand_encoded_record(), qos=1)
        sock.sendto(publish.encode(), broker)
        data, _ = yield sock.recv()  # PUBACK
        assert isinstance(pkt.decode(data), pkt.Puback)
        yield env.timeout(5)

    env.process(foreign_client(env))
    env.run()
    assert len(sink) == 1
    assert sink[0]["task_id"] == 7


def test_varint_boundaries_roundtrip():
    for n in (0, 1, 127, 128, 255, 16383, 16384, 2**32, -1, -128, -(2**40)):
        assert decode_payload(encode_payload(n, compress=False)) == n
