"""v2 wire format: interning, typed arrays, cross-version compatibility.

The v1 round-trip/framing suite lives in ``test_serialization.py``; this
file covers what the v2 format adds — the string table, the typed-array
tags, the adaptive compression gate and version negotiation — plus the
edge cases called out in the hot-path issue: varint boundaries, deep
nesting, truncated string-table frames, non-str dict keys.
"""

import zlib

import pytest

from repro.core import CodecError, decode_payload, encode_payload
from repro.core import serialization as ser


RECORD = {
    "kind": "task_end", "workflow_id": 1, "task_id": "3-42",
    "transformation_id": 3, "dependencies": ["3-41"], "time": 21.5,
    "status": "finished",
    "data": [{"id": "out42", "workflow_id": 1, "derivations": ["in42"],
              "attributes": {"out": [2] * 10}}],
}


# -- version negotiation ------------------------------------------------------


def test_default_version_is_2():
    assert encode_payload({"a": 1})[2] == 2
    assert ser.VERSION == ser.VERSION_2 == 2


def test_v1_frames_still_decode():
    # explicit cross-version guarantee: old captures and v1-only clients
    wire = encode_payload(RECORD, version=1)
    assert wire[2] == 1
    assert decode_payload(wire) == RECORD


@pytest.mark.parametrize("version", [1, 2])
@pytest.mark.parametrize("compress", [True, False])
def test_cross_version_roundtrip(version, compress):
    wire = encode_payload(RECORD, version=version, compress=compress)
    assert decode_payload(wire) == RECORD


def test_both_versions_decode_to_identical_values():
    for value in (RECORD, [RECORD] * 7, {"x": [1.5] * 40}, [], {}, "s", 0):
        v1 = decode_payload(encode_payload(value, version=1))
        v2 = decode_payload(encode_payload(value, version=2))
        assert v1 == v2 == value


def test_unknown_encode_version_rejected():
    with pytest.raises(CodecError):
        encode_payload({"a": 1}, version=3)


def test_unknown_decode_version_rejected():
    with pytest.raises(CodecError):
        decode_payload(b"PL\x03\x00\x00")


# -- string interning ---------------------------------------------------------


def test_repeated_keys_are_interned():
    # 50 records sharing field names: v2 stores each name once
    group = [RECORD] * 50
    v1 = encode_payload(group, version=1, compress=False)
    v2 = encode_payload(group, version=2, compress=False)
    assert len(v2) < len(v1) * 0.8  # the issue's >=20% grouped-size win
    assert b"workflow_id" in bytes(v1)
    assert bytes(v2).count(b"workflow_id") == 1


def test_repeated_string_values_are_interned():
    value = {"a": "repeated-value", "b": "repeated-value", "c": "repeated-value"}
    wire = encode_payload(value, compress=False)
    assert wire.count(b"repeated-value") == 1
    assert decode_payload(wire) == value


def test_string_ref_out_of_range_rejected():
    # hand-build a v2 frame: empty table (1 byte: count=0), then a ref to 5
    body = bytes([1, 0, ser.T_STRREF, 5])
    with pytest.raises(CodecError):
        decode_payload(b"PL\x02\x00" + body)


def test_decoded_tables_are_shared_safely():
    # two payloads with the same keys but different values: the memoized
    # string table must not leak values between them
    a = decode_payload(encode_payload({"k1": 1, "k2": "x"}))
    b = decode_payload(encode_payload({"k1": 2, "k2": "y"}))
    assert a == {"k1": 1, "k2": "x"}
    assert b == {"k1": 2, "k2": "y"}


# -- varint boundaries --------------------------------------------------------


@pytest.mark.parametrize("n", [
    0, 1, -1, 63, 64, 127, 128, 16383, 16384,
    2**32, -(2**32), 2**62, 2**63 - 1, -(2**63),
])
def test_varint_boundary_roundtrip(n):
    assert decode_payload(encode_payload(n, compress=False)) == n
    assert decode_payload(encode_payload({"v": [n] * 5}, compress=False)) == {"v": [n] * 5}


@pytest.mark.parametrize("n", [2**63, -(2**63) - 1, 2**100])
def test_out_of_wire_range_ints_rejected(n):
    # v1 silently emitted undecodable varints for these; v2 refuses
    with pytest.raises(CodecError):
        encode_payload(n)
    with pytest.raises(CodecError):
        encode_payload({"v": [n, n, n, n, n]})


def test_decoder_rejects_varints_beyond_64_bits():
    # a 10-octet varint can carry up to 70 bits; anything above u64 is
    # outside the wire contract and must not decode to a Python long the
    # encoder itself would refuse to re-emit
    overlong = b"\xff" * 9 + b"\x7f"  # 70 bits, all ones
    frame = b"PL\x02\x00" + bytes([1, 0, ser.T_INT]) + overlong
    with pytest.raises(CodecError):
        decode_payload(frame)
    # the largest legal zigzag value (-2**63) still decodes
    edge = encode_payload(-(2**63), compress=False)
    assert decode_payload(edge) == -(2**63)


def test_multibyte_length_strings_and_lists():
    value = {
        "long-string": "x" * 1000,
        "long-list": ["item-%d" % i for i in range(300)],
        "many-keys": {"key-%03d" % i: i for i in range(200)},
    }
    for compress in (True, False):
        assert decode_payload(encode_payload(value, compress=compress)) == value


# -- typed arrays -------------------------------------------------------------


def test_u8_array_roundtrip_and_size():
    value = {"samples": list(range(256))}
    wire = encode_payload(value, compress=False)
    assert decode_payload(wire) == value
    # 256 octets + tags/lengths/table: far below v1's ~2 bytes/int
    assert len(wire) < len(encode_payload(value, version=1, compress=False))


def test_int_array_with_negatives_and_large_values():
    value = {"deltas": [-5, 300, -70000, 2**40, -(2**40), 0, 255, 256]}
    assert decode_payload(encode_payload(value, compress=False)) == value


def test_f64_array_roundtrip_preserves_type():
    value = {"readings": [1.5, -2.25, 0.0, 3.14159, 1e300]}
    decoded = decode_payload(encode_payload(value, compress=False))
    assert decoded == value
    assert all(type(x) is float for x in decoded["readings"])


def test_bool_lists_are_not_confused_with_ints():
    value = {"flags": [True, False, True, False, True]}
    decoded = decode_payload(encode_payload(value, compress=False))
    assert decoded == value
    assert all(type(x) is bool for x in decoded["flags"])


def test_mixed_lists_fall_back_to_general_encoding():
    value = {"mixed": [1, 2.0, "three", None, True, [4], {"five": 5}, b"six"]}
    decoded = decode_payload(encode_payload(value, compress=False))
    assert decoded == value
    assert type(decoded["mixed"][0]) is int
    assert type(decoded["mixed"][1]) is float


def test_int_float_distinction_survives_roundtrip():
    value = {"ints": [1, 2, 3, 4, 5], "floats": [1.0, 2.0, 3.0, 4.0, 5.0]}
    decoded = decode_payload(encode_payload(value, compress=False))
    assert all(type(x) is int for x in decoded["ints"])
    assert all(type(x) is float for x in decoded["floats"])


# -- deep nesting & odd shapes ------------------------------------------------


def test_deeply_nested_structures():
    value = {"deep": [[[[[{"level": [[[["bottom"]]]]}]]]]]}
    for version in (1, 2):
        assert decode_payload(encode_payload(value, version=version)) == value


def test_nesting_100_levels():
    value = "leaf"
    for _ in range(100):
        value = {"child": [value]}
    for version in (1, 2):
        assert decode_payload(encode_payload(value, version=version)) == value


@pytest.mark.parametrize("key", [1, 2.5, None, True, (1, 2), b"k"])
def test_non_str_dict_keys_rejected_both_versions(key):
    for version in (1, 2):
        with pytest.raises(CodecError):
            encode_payload({key: "x"}, version=version)


def test_tuples_encode_as_lists():
    assert decode_payload(encode_payload({"t": (1, 2, 3, 4, 5)})) == {"t": [1, 2, 3, 4, 5]}


# -- truncation & malformed frames -------------------------------------------


def test_truncated_v2_string_table_rejected():
    wire = encode_payload(RECORD, compress=False)
    # cut inside the string table (which directly follows the header)
    for cut in range(ser.HEADER_SIZE, min(len(wire), ser.HEADER_SIZE + 60)):
        with pytest.raises(CodecError):
            decode_payload(wire[:cut])


def test_truncation_rejected_everywhere_v2():
    wire = encode_payload(RECORD, compress=False)
    for cut in range(1, len(wire)):
        with pytest.raises(CodecError):
            decode_payload(wire[:cut])


def test_string_table_length_overrun_rejected():
    # table claims more bytes than the frame holds
    with pytest.raises(CodecError):
        decode_payload(b"PL\x02\x00" + bytes([200, 1, 3]))


def test_string_table_invalid_utf8_rejected():
    # table: nbytes=3, count=1, len=1, invalid continuation byte
    with pytest.raises(CodecError):
        decode_payload(b"PL\x02\x00" + bytes([3, 1, 1, 0xFF]) + bytes([ser.T_STRREF, 0]))


def test_truncated_typed_arrays_rejected():
    for value in ({"u8": [7] * 50}, {"f64": [1.5] * 50}, {"iarr": [-1000] * 50}):
        wire = encode_payload(value, compress=False)
        for cut in range(ser.HEADER_SIZE + 1, len(wire)):
            with pytest.raises(CodecError):
                decode_payload(wire[:cut])


# -- compression gate & framing ----------------------------------------------


def test_small_payloads_skip_compression():
    wire = encode_payload({"t": 1})
    assert wire[3] & ser.FLAG_COMPRESSED == 0


def test_large_redundant_payloads_still_compress():
    wire = encode_payload({"in": [1] * 2000})
    assert wire[3] & ser.FLAG_COMPRESSED
    assert decode_payload(wire) == {"in": [1] * 2000}


def test_compression_gate_threshold():
    # bodies just under the gate are framed uncompressed even when zlib
    # could shave a byte or two; at/above the gate the comparison runs
    assert ser.MIN_COMPRESS_SIZE > 0
    small_body_value = {"k": "v"}
    assert encode_payload(small_body_value)[3] & ser.FLAG_COMPRESSED == 0


def test_encrypted_and_compressed_v2_framing():
    from repro.core import PayloadCipher, derive_key

    cipher = PayloadCipher(derive_key("secret"))
    big = {"data": [RECORD] * 20}
    wire = encode_payload(big, cipher=cipher)
    assert wire[2] == 2
    assert wire[3] & ser.FLAG_ENCRYPTED
    assert wire[3] & ser.FLAG_COMPRESSED  # compressed *then* encrypted
    assert decode_payload(wire, cipher=cipher) == big
    # without the key the payload is unreadable
    with pytest.raises(CodecError):
        decode_payload(wire)
    with pytest.raises(CodecError):
        decode_payload(wire, cipher=PayloadCipher(derive_key("wrong")))


def test_encrypted_uncompressed_v2_framing():
    from repro.core import PayloadCipher, derive_key

    cipher = PayloadCipher(derive_key("secret"))
    wire = encode_payload({"t": 1}, cipher=cipher)
    assert wire[3] == ser.FLAG_ENCRYPTED
    assert decode_payload(wire, cipher=cipher) == {"t": 1}


def test_v2_compressed_body_is_zlib_of_table_plus_value():
    wire = encode_payload(RECORD)
    if wire[3] & ser.FLAG_COMPRESSED:
        body = zlib.decompress(wire[ser.HEADER_SIZE:])
    else:
        body = wire[ser.HEADER_SIZE:]
    uncompressed = encode_payload(RECORD, compress=False)
    assert body == uncompressed[ser.HEADER_SIZE:]


# -- property-based -----------------------------------------------------------


from hypothesis import given, settings
from hypothesis import strategies as st

json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**63 - 1)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=40)
    | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=8)
    | st.dictionaries(st.text(max_size=10), children, max_size=8),
    max_leaves=40,
)


@given(json_like, st.booleans())
@settings(max_examples=200, deadline=None)
def test_property_v2_payload_roundtrip(value, compress):
    assert decode_payload(encode_payload(value, compress=compress)) == value


@given(json_like)
@settings(max_examples=100, deadline=None)
def test_property_v1_v2_decode_agree(value):
    assert decode_payload(encode_payload(value, version=1)) == decode_payload(
        encode_payload(value, version=2)
    )


@given(st.binary(max_size=80))
@settings(max_examples=200, deadline=None)
def test_property_v2_decoder_never_crashes_uncontrolled(data):
    try:
        decode_payload(b"PL\x02\x00" + data)
    except CodecError:
        pass
