"""Tests for the sharded translator pool on the ProvLight server."""

import pytest

from repro.core import (
    CallableBackend,
    Data,
    ProvLightClient,
    ProvLightServer,
    Task,
    TranslatorPool,
    Workflow,
)
from repro.device import A8M3, XEON_GOLD_5220, Device
from repro.net import Network
from repro.simkernel import Environment


def make_world(workers=4, n_edge=2, **server_kwargs):
    env = Environment()
    net = Network(env, seed=4)
    cloud_dev = Device(env, XEON_GOLD_5220, name="cloud-dev")
    net.add_host("cloud", device=cloud_dev)
    sink = []
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(sink.extend), workers=workers,
        **server_kwargs,
    )
    devices = []
    for i in range(n_edge):
        dev = Device(env, A8M3, name=f"edge-{i}")
        net.add_host(f"edge-{i}", device=dev)
        net.connect(f"edge-{i}", "cloud", bandwidth_bps=1e9, latency_s=0.01)
        devices.append(dev)
    return env, net, server, devices, sink


def test_pool_is_fixed_size_regardless_of_topic_count():
    env, net, server, devices, sink = make_world(workers=4)

    def scenario(env):
        for i in range(32):
            yield from server.add_translator(f"provlight/dev-{i}/data")

    env.process(scenario(env))
    env.run()
    assert len(server.pool) == 4
    assert len(server.translators) == 32  # one shim entry per topic
    attached = sum(len(w.topic_filters) for w in server.pool.workers)
    assert attached == 32
    # 32 topics need at most 4 subscriber sessions on the broker, not 32
    assert len(server.broker.sessions) <= 4


def test_shard_assignment_is_stable_and_spread():
    env, net, server, devices, sink = make_world(workers=4)
    topics = [f"provlight/dev-{i}/data" for i in range(64)]
    first = [server.pool.worker_for(t).index for t in topics]
    second = [server.pool.worker_for(t).index for t in topics]
    assert first == second  # pure function of the topic
    assert len(set(first)) == 4  # every worker serves a share


def test_wildcard_filters_shard_without_registration():
    env, net, server, devices, sink = make_world(workers=4)
    worker = server.pool.worker_for("provlight/#")
    assert worker is server.pool.worker_for("provlight/#")
    assert "provlight/#" not in server.broker.topics


def test_pool_requires_at_least_one_worker():
    env, net, server, devices, sink = make_world(workers=1)
    with pytest.raises(ValueError):
        TranslatorPool(server, 0)


def _run_workflow(env, client, wf_id, n_tasks=3):
    def proc(env):
        yield from client.setup()
        workflow = Workflow(wf_id, client)
        yield from workflow.begin()
        for i in range(n_tasks):
            task = Task(i, workflow)
            yield from task.begin([Data(f"in{i}", wf_id, {"x": [1.0] * 5})])
            yield env.timeout(0.05)
            yield from task.end([Data(f"out{i}", wf_id, {"y": [2.0] * 5})])
        yield from workflow.end(drain=True)

    env.process(proc(env))


def test_records_flow_through_sharded_pool():
    env, net, server, devices, sink = make_world(workers=2, n_edge=2)

    def scenario(env):
        for i, dev in enumerate(devices):
            yield from server.add_translator(f"provlight/edge-{i}/data")
        for i, dev in enumerate(devices):
            client = ProvLightClient(
                dev, server.endpoint, f"provlight/edge-{i}/data"
            )
            _run_workflow(env, client, wf_id=i)
        yield env.timeout(60)

    env.process(scenario(env))
    env.run()
    # 2 workflows x (wf begin/end + 3 x task begin/end) = 16 records
    assert server.records_ingested.total == 16
    types = [r["type"] for r in sink]
    assert types.count("dataflow") == 4
    assert types.count("task") == 12
    assert server.pool.queued == 0  # inboxes fully drained


def test_backend_swap_after_construction_is_honoured():
    # harness code replaces server.backend after construction; workers
    # must read it at ingest time, not bind it at startup
    env, net, server, devices, sink = make_world(workers=2, n_edge=1)
    replacement = []
    server.backend = CallableBackend(replacement.extend)

    def scenario(env):
        yield from server.add_translator("provlight/#")
        client = ProvLightClient(devices[0], server.endpoint, "provlight/edge-0/data")
        _run_workflow(env, client, wf_id="swap", n_tasks=1)
        yield env.timeout(30)

    env.process(scenario(env))
    env.run()
    assert not sink
    assert len(replacement) == 4


def test_connect_failure_propagates_and_does_not_wedge_the_worker():
    # a failed worker connect must reach every raced attach as an error
    # (not a silent hang) and leave the worker retryable
    from repro.mqttsn import MqttSnTimeout

    env, net, server, devices, sink = make_world(workers=1, n_edge=1)
    worker = server.pool.workers[0]
    real_connect = worker.client.connect

    def failing_connect():
        yield env.timeout(0.1)
        raise MqttSnTimeout("broker unreachable")

    worker.client.connect = failing_connect
    errors = []

    def attach(env, topic):
        try:
            yield from server.add_translator(topic)
        except MqttSnTimeout:
            errors.append(topic)

    def recover(env):
        yield env.timeout(1.0)
        worker.client.connect = real_connect
        yield from server.add_translator("provlight/c")

    env.process(attach(env, "provlight/a"))
    env.process(attach(env, "provlight/b"))  # waits on the same gate
    env.process(recover(env))
    env.run()
    assert sorted(errors) == ["provlight/a", "provlight/b"]
    assert worker.topic_filters == ["provlight/c"]  # later attach recovered


def test_grow_migrates_only_ring_remapped_topics():
    """Growing by one worker re-homes exactly the filters the (K+1)-node
    ring assigns to the new worker (the ring-subset property applied to
    live subscriptions); everything else keeps its owner."""
    from repro.hashring import ConsistentHashRing

    env, net, server, devices, sink = make_world(
        workers=2, pool_min=2, pool_max=3
    )
    topics = [f"provlight/dev-{i}/data" for i in range(32)]

    def scenario(env):
        for topic in topics:
            yield from server.add_translator(topic)
        before = {
            topic: server.pool.worker_for(topic).index - 1 for topic in topics
        }
        yield from server.pool._grow()
        grown = ConsistentHashRing(3, salt="worker")
        for topic in topics:
            owner = next(
                w.index - 1 for w in server.pool.workers
                if topic in w.topic_filters
            )
            assert owner == grown.node_for(topic)
            if grown.node_for(topic) != 2:  # not remapped: stayed put
                assert owner == before[topic]

    env.process(scenario(env))
    env.run()
    assert len(server.pool) == 3
    moved = sum(
        1 for t in topics
        if ConsistentHashRing(3, salt="worker").node_for(t) == 2
    )
    assert server.pool.migrated_filters.count == moved
    assert server.pool.grows.count == 1


def test_pool_autoscales_up_under_load_and_back_to_min_when_idle():
    """Sustained inbox depth grows the pool; draining it shrinks back to
    ``pool_min`` — with exactly-once, per-client-ordered ingestion across
    every topic handover."""
    import dataclasses

    from repro.calibration import SERVER_COSTS

    env = Environment()
    net = Network(env, seed=4)
    net.add_host("cloud", device=Device(env, XEON_GOLD_5220, name="cloud-dev"))
    sink = []
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(sink.extend),
        workers=1, pool_min=1, pool_max=4,
        # inflate the per-message translate cost (reference seconds; the
        # Xeon's io_speedup divides it) so one worker saturates and
        # sustained queue depth builds
        costs=dataclasses.replace(SERVER_COSTS, translate_per_message_s=0.45),
    )
    dev = Device(env, A8M3, name="edge-0")
    net.add_host("edge-0", device=dev)
    # low latency: the clients' QoS-2 round trips must outpace service
    net.connect("edge-0", "cloud", bandwidth_bps=1e9, latency_s=0.0005)

    sizes = []
    done = []

    def sampler(env):
        while len(done) < 3 or server.pool.queued:
            sizes.append(len(server.pool))
            yield env.timeout(0.1)
        for _ in range(40):  # watch the shrink back to min
            sizes.append(len(server.pool))
            yield env.timeout(0.1)

    def workload(env, topic, n_tasks):
        yield from server.add_translator(topic)
        client = ProvLightClient(dev, server.endpoint, topic)
        yield from client.setup()
        wf = Workflow(topic, client)
        yield from wf.begin()
        for i in range(n_tasks):
            task = Task(i, wf)
            yield from task.begin([])
            yield env.timeout(0.001)
            yield from task.end([])
        yield from wf.end(drain=True)
        done.append(topic)

    for t in range(3):
        env.process(workload(env, f"provlight/edge-{t}/data", 40))
    env.process(sampler(env))
    env.run()
    assert server.pool.grows.count >= 1
    assert server.pool.migrated_filters.count >= 1  # handover under load
    assert max(sizes) > 1  # it actually ran wider than min
    assert len(server.pool) == 1  # ...and came back down when idle
    assert server.pool.shrinks.count >= 1
    assert server.pool.queued == 0
    # exactly once: 3 x (2 workflow events + 40 x (begin + end))
    assert server.records_ingested.total == 246
    # per-client order survived every handover: each task's RUNNING
    # record was ingested before its FINISHED record
    seen = {}
    for record in sink:
        if record["type"] != "task":
            continue
        key = (record["dataflow_tag"], record["task_id"])
        if record["status"] == "RUNNING":
            assert key not in seen
            seen[key] = "RUNNING"
        else:
            assert seen.get(key) == "RUNNING"
            seen[key] = "FINISHED"
    assert all(v == "FINISHED" for v in seen.values())


def test_static_pool_never_starts_the_autoscale_monitor():
    env, net, server, devices, sink = make_world(workers=2, n_edge=1)

    def scenario(env):
        yield from server.add_translator("provlight/edge-0/data")
        client = ProvLightClient(
            devices[0], server.endpoint, "provlight/edge-0/data"
        )
        _run_workflow(env, client, wf_id="static", n_tasks=2)
        yield env.timeout(30)

    env.process(scenario(env))
    env.run()
    assert server.pool._monitor is None
    assert server.pool.grows.count == 0
    assert server.pool.shrinks.count == 0


def test_pool_stats_snapshot():
    env, net, server, devices, sink = make_world(
        workers=2, pool_min=1, pool_max=4
    )

    def scenario(env):
        yield from server.add_translator("provlight/edge-0/data")

    env.process(scenario(env))
    env.run()
    stats = server.pool.stats()
    assert stats["size"] == 2
    assert stats["min_workers"] == 1
    assert stats["max_workers"] == 4
    assert stats["queued"] == 0
    assert stats["grows"] == 0
    assert len(stats["workers"]) == 2
    assert sum(w["filters"] for w in stats["workers"]) == 1


def test_callable_backend_uniform_generator_protocol():
    delivered = []
    backend = CallableBackend(delivered.append)
    events = backend.ingest({"r": 1})
    # synchronous backend: delivery happens inline, no events to wait on
    assert delivered == [{"r": 1}]
    assert list(events) == []
    assert backend.delivered.count == 1
