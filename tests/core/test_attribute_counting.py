"""Shared unit test for the Table I attribute-count semantics.

One implementation (``repro.core.model``) now serves every capture
client and baseline: container values (list/tuple/dict) count
element-wise, scalars count one, and the record-shaped helper counts
across a record's data items.  Historically this logic lived twice
(``core.client.count_attributes_from_record`` duplicated
``core.model.count_attributes``) — these tests pin the single shared
implementation and its import paths.
"""

from repro.core import Data
from repro.core.model import (
    count_attribute_values,
    count_attributes,
    count_attributes_from_record,
)


def test_count_attribute_values_scalars_and_containers():
    assert count_attribute_values({}) == 0
    assert count_attribute_values({"a": 1}) == 1
    assert count_attribute_values({"a": None, "b": "x", "c": 2.5}) == 3
    assert count_attribute_values({"lst": [1, 2, 3]}) == 3
    assert count_attribute_values({"tup": (1, 2)}) == 2
    assert count_attribute_values({"map": {"x": 1, "y": 2}}) == 2
    # mixed: 4 list elements + 1 scalar + 2 dict entries + 0-length list
    assert count_attribute_values(
        {"in": [1] * 4, "flag": True, "meta": {"a": 1, "b": 2}, "empty": []}
    ) == 7


def test_count_attributes_accepts_data_objects():
    items = [
        Data("in1", 1, {"in": [1] * 10}),
        Data("in2", 1, {"scalar": 3, "pair": (1, 2)}),
        Data("in3", 1, {}),
    ]
    assert count_attributes(items) == 13


def test_count_attributes_accepts_record_dicts():
    items = [
        Data("in1", 1, {"in": [1] * 10}),
        Data("in2", 1, {"scalar": 3, "pair": (1, 2)}),
    ]
    as_records = [item.to_record() for item in items]
    assert count_attributes(as_records) == count_attributes(items) == 13


def test_count_attributes_from_record_matches_item_count():
    record = {
        "kind": "task_end",
        "workflow_id": 1,
        "data": [
            {"id": "out1", "attributes": {"out": [2] * 5}},
            {"id": "out2", "attributes": {"v": 1.5, "tags": ["a", "b"]}},
            {"id": "out3", "attributes": None},
            {"id": "out4"},  # no attributes key at all
        ],
    }
    assert count_attributes_from_record(record) == 8
    assert count_attributes_from_record({"kind": "workflow_begin"}) == 0


def test_single_implementation_everywhere():
    """The legacy import paths must all resolve to the model helper."""
    from repro.core import client as core_client
    from repro.baselines import common as baselines_common

    assert core_client.count_attributes_from_record is count_attributes_from_record
    assert baselines_common.count_attributes_from_record is count_attributes_from_record
