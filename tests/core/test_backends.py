"""Backend ingest pipelining: bulk POST bodies per drained worker batch.

The pool workers hand their whole drained batch to the backend in one
``ingest_batch`` call.  For :class:`HttpBackend` that must become *one*
bulk POST (a JSON array body) instead of one request per translated
group — the ROADMAP's "backend ingest pipelining" item — while a batch
of one keeps the bare-object body and :class:`CallableBackend` keeps
delivering group by group.
"""

import json

from repro.core import CallableBackend, HttpBackend, ProvLightClient, ProvLightServer
from repro.http import HttpResponse, HttpServer
from repro.net import Network
from repro.simkernel import Environment


def make_http_world():
    env = Environment()
    net = Network(env, seed=5)
    net.add_host("cloud")
    net.add_host("api")
    net.connect("cloud", "api", bandwidth_bps=1e9, latency_s=0.002)
    bodies = []

    def handler(request):
        bodies.append(request.body)
        return HttpResponse(status=201, reason="Created")

    HttpServer(net.hosts["api"], 5000, handler, workers=8)
    backend = HttpBackend(net.hosts["cloud"], ("api", 5000))
    return env, net, backend, bodies


def test_http_backend_batch_emits_one_bulk_post():
    env, net, backend, bodies = make_http_world()
    groups = [{"a": 1}, {"b": 2}, {"c": 3}]

    def scenario(env):
        yield from backend.ingest_batch(groups)

    env.process(scenario(env))
    env.run()
    assert len(bodies) == 1  # the whole batch pipelined into one request
    assert json.loads(bodies[0].decode()) == groups
    assert backend.delivered.total == 3
    assert backend.requests.count == 1


def test_http_backend_single_group_batch_keeps_bare_object_body():
    env, net, backend, bodies = make_http_world()

    def scenario(env):
        yield from backend.ingest_batch([{"only": 1}])
        yield from backend.ingest({"direct": 2})

    env.process(scenario(env))
    env.run()
    # wire-identical to the per-group path: no array framing
    assert [json.loads(b.decode()) for b in bodies] == [{"only": 1}, {"direct": 2}]


def test_callable_backend_batch_delivers_group_by_group():
    delivered = []
    backend = CallableBackend(delivered.append)
    events = backend.ingest_batch([{"x": 1}, {"y": 2}])
    assert list(events) == []  # synchronous: nothing to wait on
    assert delivered == [{"x": 1}, {"y": 2}]
    assert backend.delivered.count == 2


def test_worker_drained_batch_pipelines_into_fewer_posts():
    """End to end: a burst of grouped publishes drains into the worker as
    a batch, and the HTTP backend sees fewer POSTs than groups."""
    env, net, backend, bodies = make_http_world()
    server = ProvLightServer(net.hosts["cloud"], backend)
    net.add_host("edge")
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.01)

    env.process(_burst(env, server))
    env.run()
    records = []
    for body in bodies:
        payload = json.loads(body.decode())
        records.extend(payload if isinstance(payload, list) else [payload])
    assert len(records) == 12
    assert len(bodies) < 12  # pipelining actually coalesced requests


def _burst(env, server):
    """Publish 12 single-record payloads back-to-back through a raw
    MQTT-SN client so every knob but the backend stays out of the way."""
    from repro.core import encode_payload
    from repro.mqttsn import MqttSnClient

    yield from server.add_translator("provlight/edge/data")
    net_host = server.host.network.hosts["edge"]
    client = MqttSnClient(net_host, "edge-raw", server.endpoint)
    yield from client.connect()
    tid = yield from client.register("provlight/edge/data")
    yield env.timeout(0.5)
    done = []
    for i in range(12):
        record = {
            "kind": "task_end", "task_id": f"t{i}", "workflow_id": 1,
            "transformation_id": 0, "time": float(i),
            "data": [{"id": f"out{i}", "attributes": {"i": i}}],
        }
        done.append(client.publish_nowait(tid, encode_payload(record), qos=1))
    for event in done:
        yield event
