"""Tests for the mini-YAML parser."""

import pytest

from repro.e2clab import MiniYamlError, loads


def test_empty_document():
    assert loads("") is None
    assert loads("\n# only a comment\n") is None


def test_scalars():
    assert loads("x: 1")["x"] == 1
    assert loads("x: 1.5")["x"] == 1.5
    assert loads("x: true")["x"] is True
    assert loads("x: no")["x"] is False
    assert loads("x: null")["x"] is None
    assert loads("x: ~")["x"] is None
    assert loads("x: hello world")["x"] == "hello world"
    assert loads("x: 'quoted: string'")["x"] == "quoted: string"
    assert loads('x: "23ms"')["x"] == "23ms"


def test_flow_list():
    assert loads("x: [1, 2, 3]")["x"] == [1, 2, 3]
    assert loads("x: [a, 'b c', 2.5]")["x"] == ["a", "b c", 2.5]
    assert loads("x: []")["x"] == []


def test_nested_mapping():
    doc = loads("""
a:
  b:
    c: 3
  d: 4
e: 5
""")
    assert doc == {"a": {"b": {"c": 3}, "d": 4}, "e": 5}


def test_block_list_of_scalars():
    doc = loads("""
items:
  - one
  - 2
  - true
""")
    assert doc == {"items": ["one", 2, True]}


def test_list_at_same_indent_as_key():
    doc = loads("""
layers:
- name: cloud
- name: edge
""")
    assert doc == {"layers": [{"name": "cloud"}, {"name": "edge"}]}


def test_inline_mapping_list_items():
    doc = loads("- name: Server, environment: g5k, qtd: 1")
    assert doc == [{"name": "Server", "environment": "g5k", "qtd": 1}]


def test_compact_nested_mapping_value():
    doc = loads("g5k: cluster: gros")
    assert doc == {"g5k": {"cluster": "gros"}}


def test_paper_listing_2_structure():
    doc = loads("""
environment:
  g5k: cluster: gros
  iotlab: cluster: grenoble
  provenance: ProvenanceManager
layers:
- name: cloud
  services:
  - name: Server, environment: g5k, qtd: 1
- name: edge
  services:
  - name: Client, environment: iotlab, arch: a8, qtd: 64
""")
    assert doc["environment"]["g5k"] == {"cluster": "gros"}
    assert doc["environment"]["provenance"] == "ProvenanceManager"
    assert doc["layers"][0]["services"][0] == {
        "name": "Server", "environment": "g5k", "qtd": 1
    }
    assert doc["layers"][1]["services"][0]["qtd"] == 64


def test_list_item_with_continuation_lines():
    doc = loads("""
- name: edge
  services:
  - name: Client, qtd: 4
""")
    assert doc[0]["name"] == "edge"
    assert doc[0]["services"][0]["qtd"] == 4


def test_comments_are_ignored():
    doc = loads("""
# header comment
x: 1  # trailing comment
y: "a # not a comment"
""")
    assert doc == {"x": 1, "y": "a # not a comment"}


def test_urls_are_not_split_as_mappings():
    doc = loads("url: http://example.com/x")
    assert doc["url"] == "http://example.com/x"


def test_duplicate_keys_rejected():
    with pytest.raises(MiniYamlError, match="duplicate"):
        loads("a: 1\na: 2")


def test_tabs_in_indentation_rejected():
    with pytest.raises(MiniYamlError, match="tabs"):
        loads("a:\n\tb: 1")


def test_unterminated_string_rejected():
    with pytest.raises(MiniYamlError):
        loads("x: 'oops")


def test_unsupported_constructs_rejected():
    with pytest.raises(MiniYamlError):
        loads("x: {flow: map}")
    with pytest.raises(MiniYamlError):
        loads("x: &anchor 3")


def test_bad_indentation_rejected():
    with pytest.raises(MiniYamlError):
        loads("a: 1\n    b: 2\n  c: 3")


def test_missing_colon_rejected():
    with pytest.raises(MiniYamlError, match="key"):
        loads("just a line")


def test_load_file(tmp_path):
    from repro.e2clab import load_file

    path = tmp_path / "config.yaml"
    path.write_text("a: 1\n")
    assert load_file(path) == {"a": 1}
