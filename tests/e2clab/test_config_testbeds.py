"""Tests for config parsing, testbeds and the layers manager."""

import pytest

from repro.e2clab import (
    ConfigError,
    LayersServicesManager,
    ProvisionError,
    parse_layers_services,
    parse_network,
    parse_workflow,
)
from repro.e2clab import testbed_by_name as get_testbed  # avoid test* collection
from repro.net import Network
from repro.simkernel import Environment

LISTING2 = """
environment:
  g5k: cluster: gros
  iotlab: cluster: grenoble
  provenance: ProvenanceManager
layers:
- name: cloud
  services:
  - name: Server, environment: g5k, qtd: 1
- name: edge
  services:
  - name: Client, environment: iotlab, arch: a8, qtd: 8
"""


def test_parse_listing2():
    config = parse_layers_services(LISTING2)
    assert config.environment.provenance == "ProvenanceManager"
    assert set(config.environment.testbeds) == {"g5k", "iotlab"}
    assert [l.name for l in config.layers] == ["cloud", "edge"]
    client = config.layer("edge").service("Client")
    assert client.quantity == 8
    assert client.arch == "a8"
    assert client.environment == "iotlab"


def test_parse_layers_validation_errors():
    with pytest.raises(ConfigError, match="layers"):
        parse_layers_services("environment:\n  g5k: cluster: gros\n")
    with pytest.raises(ConfigError, match="environment"):
        parse_layers_services("""
environment:
  g5k: cluster: gros
layers:
- name: edge
  services:
  - name: Client, qtd: 4
""")
    with pytest.raises(ConfigError, match="unknown environment"):
        parse_layers_services("""
environment:
  g5k: cluster: gros
layers:
- name: edge
  services:
  - name: Client, environment: chameleon, qtd: 4
""")
    with pytest.raises(ConfigError, match="quantity"):
        parse_layers_services("""
environment:
  g5k: cluster: gros
layers:
- name: edge
  services:
  - name: Client, environment: g5k, qtd: 0
""")
    with pytest.raises(ConfigError, match="duplicate layer"):
        parse_layers_services("""
environment:
  g5k: cluster: gros
layers:
- name: edge
  services:
  - name: A, environment: g5k
- name: edge
  services:
  - name: B, environment: g5k
""")


def test_parse_network_rules():
    config = parse_network("""
networks:
- src: edge, dst: cloud, rate: "25Kbit", delay: "23ms", loss: 0.01
""")
    rule = config.rules[0]
    assert (rule.src, rule.dst) == ("edge", "cloud")
    assert rule.rate == "25Kbit"
    assert rule.delay == "23ms"
    assert rule.loss == 0.01


def test_parse_network_defaults_and_errors():
    assert parse_network("networks:\n") .rules == []
    with pytest.raises(ConfigError):
        parse_network("networks:\n- dst: cloud\n")


def test_parse_workflow_entries():
    config = parse_workflow("""
workflow:
- hosts: edge.Client
  workload: synthetic
  parameters:
    number_of_tasks: 10
    task_duration_s: 0.1
- hosts: edge.*
  workload: sensors
  depends_on: edge.Client:synthetic
""")
    first, second = config.entries
    assert first.hosts == "edge.Client"
    assert first.parameters["number_of_tasks"] == 10
    assert second.depends_on == ["edge.Client:synthetic"]


def test_parse_workflow_errors():
    with pytest.raises(ConfigError, match="hosts"):
        parse_workflow("workflow:\n- workload: synthetic\n  hosts: nodot\n")
    with pytest.raises(ConfigError):
        parse_workflow("workflow:\n- hosts: a.b\n")


def test_testbed_lookup_and_specs():
    iotlab = get_testbed("iotlab")
    assert iotlab.spec_for(arch="a8").name == "iotlab-a8-m3"
    g5k = get_testbed("g5k")
    assert g5k.spec_for().name == "xeon-gold-5220"
    with pytest.raises(KeyError):
        get_testbed("aws")
    with pytest.raises(ProvisionError):
        iotlab.spec_for(arch="riscv")


def test_testbed_provision_limits():
    env = Environment()
    net = Network(env)
    iotlab = get_testbed("iotlab")
    with pytest.raises(ProvisionError):
        iotlab.provision(net, 0, "x")
    with pytest.raises(ProvisionError):
        iotlab.provision(net, 100000, "x")


def test_layers_manager_deploys_and_resolves():
    env = Environment()
    net = Network(env)
    manager = LayersServicesManager(net)
    config = parse_layers_services(LISTING2)
    deployed = manager.deploy(config)
    assert len(deployed) == 2
    client = manager.service("edge", "Client")
    assert len(client.devices) == 8
    assert client.devices[0].spec.name == "iotlab-a8-m3"
    assert client.host_names[0] in net.hosts
    server = manager.service("cloud", "Server")
    assert len(server.devices) == 1
    assert server.devices[0].name == "cloud-server"  # single => no suffix

    assert manager.resolve("edge.Client") == [client]
    assert manager.resolve("edge.*") == [client]
    assert len(manager.layer_hosts("edge")) == 8
    with pytest.raises(KeyError):
        manager.service("edge", "Ghost")
    with pytest.raises(KeyError):
        manager.resolve("fog.*")
    with pytest.raises(ValueError):
        manager.resolve("nodot")
