"""Direct tests for the Provenance Manager (paper Section V)."""

import pytest

from repro.core import Data, Task, Workflow
from repro.device import A8M3, Device
from repro.e2clab import ProvenanceManager
from repro.net import Network
from repro.simkernel import Environment


def make_world(n_edge=2):
    env = Environment()
    net = Network(env, seed=8)
    devices = []
    for i in range(n_edge):
        dev = Device(env, A8M3, name=f"edge-{i}")
        net.add_host(f"edge-{i}", device=dev)
        devices.append(dev)
    manager = ProvenanceManager(net)
    manager.connect_layer_to_server(
        [d.name for d in devices], bandwidth_bps=1e9, latency_s=0.01
    )
    return env, net, manager, devices


def test_manager_provisions_its_own_cloud_host():
    env, net, manager, devices = make_world()
    assert manager.host_name == "provenance-manager"
    assert manager.host_name in net.hosts
    assert net.hosts[manager.host_name].device.spec.name == "xeon-gold-5220"


def test_manager_reuses_existing_host():
    env = Environment()
    net = Network(env, seed=1)
    existing = net.add_host("cloud-x")
    manager = ProvenanceManager(net, host_name="cloud-x")
    assert manager.host is existing


def test_deploy_client_creates_topic_and_translator():
    env, net, manager, devices = make_world()
    captured = {}

    def scenario(env):
        client = yield from manager.deploy_client(devices[0])
        captured["client"] = client
        wf = Workflow("wf", client)
        yield from wf.begin()
        task = Task(0, wf)
        yield from task.begin([Data("d0", "wf", {"x": 1})])
        yield from task.end([Data("d1", "wf", {"y": 2}, derivations=["d0"])])
        yield from wf.end(drain=True)
        yield env.timeout(10)

    env.process(scenario(env))
    env.run()
    assert captured["client"].topic == "provlight/edge-0/data"
    assert len(manager.server.translators) == 1
    assert manager.records_ingested == 4
    summary = manager.dataflow_summary("wf")
    assert summary["tasks"] == 1


def test_duplicate_topic_rejected():
    env, net, manager, devices = make_world()
    errors = []

    def scenario(env):
        yield from manager.deploy_client(devices[0], topic="same")
        try:
            yield from manager.deploy_client(devices[1], topic="same")
        except ValueError as exc:
            errors.append(str(exc))

    env.process(scenario(env))
    env.run()
    assert len(errors) == 1


def test_connect_layer_is_idempotent():
    env, net, manager, devices = make_world()
    # calling again must not raise (links already exist)
    manager.connect_layer_to_server(
        [d.name for d in devices], bandwidth_bps=1e9, latency_s=0.01
    )
    assert net.link("edge-0", manager.host_name) is not None


def test_query_passthrough():
    env, net, manager, devices = make_world()

    def scenario(env):
        client = yield from manager.deploy_client(devices[0])
        wf = Workflow("q", client)
        yield from wf.begin()
        for i in range(3):
            task = Task(i, wf)
            yield from task.begin([])
            yield from task.end([Data(f"out{i}", "q", {"score": float(i)})])
        yield from wf.end(drain=True)
        yield env.timeout(10)

    env.process(scenario(env))
    env.run()
    best = (
        manager.query("datasets")
        .where("dataflow_tag", "==", "q")
        .order_by("score", desc=True)
        .limit(1)
        .rows()
    )
    assert best[0]["score"] == 2.0


def test_grouped_manager_clients():
    env = Environment()
    net = Network(env, seed=3)
    dev = Device(env, A8M3, name="edge-g")
    net.add_host("edge-g", device=dev)
    manager = ProvenanceManager(net, group_size=4)
    manager.connect_layer_to_server(["edge-g"], bandwidth_bps=1e9, latency_s=0.01)

    def scenario(env):
        client = yield from manager.deploy_client(dev)
        assert client.group_buffer.group_size == 4
        wf = Workflow("g", client)
        yield from wf.begin()
        for i in range(6):
            task = Task(i, wf)
            yield from task.begin([])
            yield from task.end([])
        yield from wf.end(drain=True)
        yield env.timeout(10)

    env.process(scenario(env))
    env.run()
    assert manager.records_ingested == 14


def test_manager_with_sharded_broker_plane():
    """The broker_shards knob reaches the server: capture still flows
    end to end when the manager deploys a 2-shard broker cluster."""
    env = Environment()
    net = Network(env, seed=4)
    devices = []
    for i in range(2):
        dev = Device(env, A8M3, name=f"edge-s{i}")
        net.add_host(f"edge-s{i}", device=dev)
        devices.append(dev)
    manager = ProvenanceManager(net, broker_shards=2)
    manager.connect_layer_to_server(
        [d.name for d in devices], bandwidth_bps=1e9, latency_s=0.01
    )
    assert len(manager.server.broker.shards) == 2

    def scenario(env):
        for dev in devices:
            client = yield from manager.deploy_client(dev)
            wf = Workflow(f"wf-{dev.name}", client)
            yield from wf.begin()
            task = Task(0, wf)
            yield from task.begin([Data("d0", wf.id, {"x": 1})])
            yield from task.end([Data("d1", wf.id, {"y": 2})])
            yield from wf.end(drain=True)
        yield env.timeout(10)

    env.process(scenario(env))
    env.run()
    # 2 devices x (wf begin/end + task begin/end) = 8 records
    assert manager.records_ingested == 8
    assert manager.server.broker.delivery_failures.count == 0


def test_deploy_client_with_coap_transport():
    env, net, manager, devices = make_world()

    def scenario(env):
        client = yield from manager.deploy_client(devices[0], transport="coap")
        assert client.transport.name == "coap"
        wf = Workflow("c", client)
        yield from wf.begin()
        task = Task(0, wf)
        yield from task.begin([])
        yield from task.end([Data("out0", "c", {"v": 1.0})])
        yield from wf.end(drain=True)
        yield env.timeout(10)

    env.process(scenario(env))
    env.run()
    assert manager.records_ingested == 4


def test_env_hook_selects_manager_transport(monkeypatch):
    monkeypatch.setenv("REPRO_CAPTURE_TRANSPORT", "coap")
    env, net, manager, devices = make_world()
    assert manager.transport == "coap"

    def scenario(env):
        client = yield from manager.deploy_client(devices[0])
        assert client.transport.name == "coap"
        wf = Workflow("e", client)
        yield from wf.begin()
        yield from wf.end(drain=True)
        yield env.timeout(10)

    env.process(scenario(env))
    env.run()
    assert manager.records_ingested == 2


def test_env_hook_rejects_unknown_transport(monkeypatch):
    monkeypatch.setenv("REPRO_CAPTURE_TRANSPORT", "avian-carrier")
    env = Environment()
    net = Network(env, seed=1)
    with pytest.raises(ValueError, match="REPRO_CAPTURE_TRANSPORT"):
        ProvenanceManager(net)


def test_mixed_transports_share_one_backend():
    env, net, manager, devices = make_world()

    def scenario(env):
        mqtt_client = yield from manager.deploy_client(devices[0])
        coap_client = yield from manager.deploy_client(devices[1],
                                                       transport="coap")
        for tag, client in (("m", mqtt_client), ("k", coap_client)):
            wf = Workflow(tag, client)
            yield from wf.begin()
            task = Task(0, wf)
            yield from task.begin([])
            yield from task.end([])
            yield from wf.end(drain=True)
        yield env.timeout(10)

    env.process(scenario(env))
    env.run()
    # 2 workflows x (wf begin/end + task begin/end) via two transports
    assert manager.records_ingested == 8
