"""End-to-end tests for the Experiment lifecycle and Provenance Manager."""

import pytest

from repro.e2clab import (
    Experiment,
    OptimizationManager,
    SearchSpace,
    WorkflowManager,
)

LAYERS = """
environment:
  g5k: cluster: gros
  iotlab: cluster: grenoble
  provenance: ProvenanceManager
layers:
- name: cloud
  services:
  - name: Server, environment: g5k, qtd: 1
- name: edge
  services:
  - name: Client, environment: iotlab, arch: a8, qtd: 2
"""

NETWORK = """
networks:
- src: edge, dst: cloud, rate: "1Gbit", delay: "23ms"
"""

WORKFLOW = """
workflow:
- hosts: edge.Client
  workload: synthetic
  parameters:
    number_of_tasks: 6
    task_duration_s: 0.05
    attributes_per_task: 10
    chained_transformations: 3
"""


def test_full_experiment_with_provenance():
    exp = Experiment(LAYERS, NETWORK, WORKFLOW)
    results = exp.run()
    # both edge devices ran the workload
    entry = results.entries["edge.Client:synthetic"]
    assert len(entry) == 2
    assert all(r["tasks"] == 6 for r in entry)
    # provenance flowed to the backend: 2 devices x (2 wf + 12 task records)
    assert results.provenance_records == 2 * 14
    # device metrics were collected for the edge devices
    edge_metrics = [m for name, m in results.device_metrics.items()
                    if name.startswith("edge-client")]
    assert len(edge_metrics) == 2
    assert all(m.capture_cpu_utilization > 0 for m in edge_metrics)


def test_experiment_provenance_queries():
    exp = Experiment(LAYERS, NETWORK, WORKFLOW)
    exp.run()
    tasks = exp.provenance.query("tasks").rows()
    assert len(tasks) == 12  # 6 per device, begin+end merged
    assert all(t["status"] == "FINISHED" for t in tasks)
    summary = exp.provenance.dataflow_summary("1")
    assert summary["tasks"] == 12


def test_experiment_without_provenance_uses_null_capture():
    layers = LAYERS.replace("  provenance: ProvenanceManager\n", "")
    exp = Experiment(layers, NETWORK, WORKFLOW)
    results = exp.run()
    assert results.provenance_records == 0
    assert exp.provenance is None
    entry = results.entries["edge.Client:synthetic"]
    assert len(entry) == 2


def test_experiment_dependency_ordering():
    workflow = """
workflow:
- hosts: edge.Client
  workload: synthetic
  parameters:
    number_of_tasks: 3
    task_duration_s: 0.05
    chained_transformations: 3
- hosts: cloud.Server
  workload: sensors
  parameters:
    windows: 2
  depends_on: edge.Client:synthetic
"""
    exp = Experiment(LAYERS, NETWORK, workflow)
    results = exp.run()
    assert "edge.Client:synthetic" in results.entries
    assert "cloud.Server:sensors" in results.entries
    assert results.entries["cloud.Server:sensors"][0]["windows"] == 2


def test_experiment_unknown_dependency_fails():
    workflow = """
workflow:
- hosts: edge.Client
  workload: synthetic
  depends_on: ghost.entry
"""
    exp = Experiment(LAYERS, NETWORK, workflow)
    with pytest.raises(Exception):
        exp.run()


def test_experiment_group_workload_federated():
    workflow = """
workflow:
- hosts: edge.Client
  workload: federated
  parameters:
    rounds: 2
    local_epochs: 1
    epoch_duration_s: 0.05
"""
    exp = Experiment(LAYERS, NETWORK, workflow)
    results = exp.run()
    history = results.entries["edge.Client:federated"][0]
    assert len(history["rounds"]) == 2
    assert 0.0 <= history["final_accuracy"] <= 1.0
    # FL provenance captured per client workflow
    tags = {r["dataflow_tag"]
            for r in exp.provenance.query("tasks").rows()}
    assert tags == {"fl-client-0", "fl-client-1"}


def test_experiment_deploy_twice_rejected():
    exp = Experiment(LAYERS, NETWORK, WORKFLOW)
    exp.deploy()
    with pytest.raises(RuntimeError):
        exp.deploy()


def test_custom_workload_registration():
    manager = WorkflowManager()

    def trivial(env, capture_client, parameters, result):
        yield from capture_client.setup()
        result["ran"] = True
        yield env.timeout(parameters.get("sleep", 0.01))

    manager.register_function("trivial", trivial)
    workflow = """
workflow:
- hosts: edge.Client
  workload: trivial
  parameters:
    sleep: 0.02
"""
    exp = Experiment(LAYERS, NETWORK, workflow, workflow_manager=manager)
    results = exp.run()
    assert all(r["ran"] for r in results.entries["edge.Client:trivial"])


def test_unknown_workload_rejected():
    workflow = "workflow:\n- hosts: edge.Client\n  workload: quantum\n"
    exp = Experiment(LAYERS, NETWORK, workflow)
    with pytest.raises(Exception):
        exp.run()


def test_network_manager_reconfigure():
    exp = Experiment(LAYERS, NETWORK, WORKFLOW)
    exp.deploy()
    touched = exp.network_manager.reconfigure("edge", "cloud", bandwidth_bps=25e3)
    assert touched == 2
    assert exp.network.link("edge-client-0", "cloud-server").bandwidth_bps == 25e3
    with pytest.raises(KeyError):
        exp.network_manager.reconfigure("edge", "fog", loss=0.1)


# -- optimization manager -----------------------------------------------------


def test_grid_search_finds_minimum():
    space = SearchSpace(choices={"x": [0, 1, 2, 3], "y": [-1, 1]})
    opt = OptimizationManager(lambda p: (p["x"] - 2) ** 2 + p["y"], space)
    best = opt.run()
    assert best.params == {"x": 2, "y": -1}
    assert len(opt.history) == 8
    table = opt.as_table()
    assert table[0]["trial"] == 0 and "objective" in table[0]


def test_random_search_with_ranges():
    space = SearchSpace(choices={"mode": ["a", "b"]}, ranges={"lr": (0.0, 1.0)})
    opt = OptimizationManager(lambda p: abs(p["lr"] - 0.5), space,
                              mode="random", budget=30, seed=1)
    best = opt.run()
    assert abs(best.params["lr"] - 0.5) < 0.2
    assert best.params["mode"] in ("a", "b")


def test_optimizer_validation():
    with pytest.raises(ValueError):
        OptimizationManager(lambda p: 0.0, SearchSpace(), mode="grid")
    with pytest.raises(ValueError):
        OptimizationManager(lambda p: 0.0, SearchSpace(choices={"x": [1]}),
                            mode="random")  # no budget
    with pytest.raises(ValueError):
        OptimizationManager(lambda p: 0.0, SearchSpace(choices={"x": [1]}),
                            mode="annealing")
    space = SearchSpace(ranges={"x": (1.0, 0.0)})
    with pytest.raises(ValueError):
        OptimizationManager(lambda p: 0.0, space, mode="random", budget=1)


def test_grid_over_ranges_rejected():
    space = SearchSpace(ranges={"x": (0.0, 1.0)})
    opt = OptimizationManager.__new__(OptimizationManager)  # bypass init checks
    with pytest.raises(ValueError):
        list(space.grid())


def test_optimizer_over_experiment_group_size():
    """Optimize ProvLight's group size for a tiny captured workload."""
    from repro.harness import ExperimentSetup, measure_overhead
    from repro.workloads import SyntheticWorkloadConfig

    config = SyntheticWorkloadConfig(number_of_tasks=10, task_duration_s=0.05)

    def objective(params):
        result = measure_overhead(
            ExperimentSetup(system="provlight", group_size=params["group_size"]),
            config, repetitions=1, keep_outcomes=False,
        )
        return result.ci.mean

    opt = OptimizationManager(objective, SearchSpace(choices={"group_size": [0, 5, 10]}))
    best = opt.run()
    assert best.params["group_size"] in (5, 10)  # grouping beats none
