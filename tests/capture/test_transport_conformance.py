"""Transport-conformance suite for the unified capture API.

Every registered transport must honour the same contracts behind the
:class:`repro.capture.CaptureClient` façade: idempotent ``setup()``,
``drain()`` completing after ``flush_groups()``, message loss never
crashing the instrumented workflow, and ``close()`` tearing everything
down.  The suite runs parametrically against the full registry, so a
new transport inherits the whole bar by registering itself.
"""

import pytest

from repro.capture import (
    CaptureClosedError,
    CaptureConfig,
    create_client,
    transport_names,
)
from repro.coap import ProvLightCoapServer
from repro.core import CallableBackend, Data, ProvLightServer, Task, Workflow
from repro.device import A8M3, Device
from repro.http import HttpResponse, HttpServer
from repro.net import Network
from repro.simkernel import Environment

ALL_TRANSPORTS = transport_names()


@pytest.fixture(params=[False, True], ids=["besteffort", "durable"])
def durable(request):
    """Run every conformance test twice: best-effort and durable.

    The durable client adds a write-ahead journal, a dedup envelope and
    the reconnect machinery — none of which may change the façade's
    observable contracts on a healthy network.
    """
    return request.param


def make_world(transport, group_size=0, latency=0.01, bandwidth=1e9,
               loss=0.0, with_server=True, durable=False, journal_dir=None):
    """One edge device + the capture sink matching ``transport``.

    Returns ``(env, device, client, received)`` where ``received``
    counts payload arrivals at the sink (transport-agnostic).
    """
    env = Environment()
    net = Network(env, seed=7)
    dev = Device(env, A8M3, name="edge-dev")
    net.add_host("edge", device=dev)
    net.add_host("cloud")
    net.connect("edge", "cloud", bandwidth_bps=bandwidth, latency_s=latency,
                loss=loss)
    received = []
    config = CaptureConfig(transport=transport, group_size=group_size,
                           durable=durable, journal_dir=journal_dir,
                           reconnect_base_s=0.2, reconnect_max_s=2.0)
    pre = None
    if transport == "mqttsn":
        if with_server:
            server = ProvLightServer(net.hosts["cloud"],
                                     CallableBackend(received.extend))
            pre = server.add_translator("conf/#")
            endpoint = server.endpoint
        else:
            endpoint = ("cloud", 1883)
        client = create_client(dev, endpoint, "conf/edge/data", config)
        # fast retries so loss/outage runs converge quickly
        client.transport.mqtt.retry_interval_s = 0.2
    elif transport == "coap":
        if with_server:
            server = ProvLightCoapServer(net.hosts["cloud"],
                                         CallableBackend(received.extend))
            endpoint = server.endpoint
        else:
            endpoint = ("cloud", 5683)
        client = create_client(dev, endpoint, "/prov", config)
    elif transport == "http":
        if with_server:
            def handler(request):
                received.append(request.body)
                return HttpResponse(status=201)

            HttpServer(net.hosts["cloud"], 5000, handler)
        client = create_client(dev, ("cloud", 5000), "/provlight", config)
    else:  # a transport someone registered without extending this suite
        pytest.skip(f"no conformance world for transport {transport!r}")
    return env, dev, client, received, pre


def run_workflow(env, client, pre=None, n_tasks=2, attrs=10, drain=True):
    done = {}

    def proc(env):
        if pre is not None:
            yield from pre
        yield from client.setup()
        wf = Workflow(1, client)
        yield from wf.begin()
        for i in range(n_tasks):
            task = Task(i, wf)
            yield from task.begin([Data(f"in{i}", 1, {"in": [1.0] * attrs})])
            yield env.timeout(0.05)
            yield from task.end([Data(f"out{i}", 1, {"out": [2.0] * attrs},
                                      derivations=[f"in{i}"])])
        yield from wf.end(drain=drain)
        done["ok"] = True

    env.process(proc(env))
    return done


@pytest.mark.parametrize("transport", ALL_TRANSPORTS)
def test_setup_is_idempotent(transport, durable, tmp_path):
    env, dev, client, received, pre = make_world(
        transport, durable=durable, journal_dir=str(tmp_path))
    marks = {}

    def proc(env):
        if pre is not None:
            yield from pre
        yield from client.setup()
        marks["after_first"] = env.now
        yield from client.setup()  # must return immediately
        marks["after_second"] = env.now
        wf = Workflow(1, client)
        yield from wf.begin()
        yield from wf.end(drain=True)
        marks["ok"] = True

    env.process(proc(env))
    env.run()
    assert marks["ok"]
    assert marks["after_second"] == marks["after_first"]
    assert client.messages_sent.count == 2


@pytest.mark.parametrize("transport", ALL_TRANSPORTS)
def test_records_reach_the_sink(transport, durable, tmp_path):
    env, dev, client, received, pre = make_world(
        transport, durable=durable, journal_dir=str(tmp_path))
    done = run_workflow(env, client, pre, n_tasks=3)
    env.run(until=120)
    assert done["ok"]
    # 2 workflow events + 3 x (begin + end), one message each (no grouping)
    assert client.messages_sent.count == 8
    assert client.records_captured.count == 8
    assert len(received) >= 1  # sink saw traffic (shape is sink-specific)
    assert dev.memory.used("capture-buffers") == 0


@pytest.mark.parametrize("transport", ALL_TRANSPORTS)
def test_drain_completes_after_flush(transport, durable, tmp_path):
    env, dev, client, received, pre = make_world(
        transport, group_size=4, durable=durable, journal_dir=str(tmp_path))
    marks = {}

    def proc(env):
        if pre is not None:
            yield from pre
        yield from client.setup()
        wf = Workflow(1, client)
        yield from wf.begin()
        for i in range(2):  # partial group: stays buffered
            task = Task(i, wf)
            yield from task.begin([])
            yield from task.end([Data(f"out{i}", 1, {"v": [i] * 5})])
        assert len(client.group_buffer) == 2
        yield from client.flush_groups()
        assert len(client.group_buffer) == 0
        yield from client.drain()
        marks["drained_at"] = env.now
        # every buffer released once the partial group was forced out
        assert dev.memory.used("capture-buffers") == 0
        yield from wf.end(drain=True)
        marks["ok"] = True

    env.process(proc(env))
    env.run(until=120)
    assert marks["ok"]
    assert dev.memory.used("capture-buffers") == 0


@pytest.mark.parametrize("transport", ALL_TRANSPORTS)
def test_loss_never_crashes_the_workflow(transport, durable, tmp_path):
    """Datagram loss (async transports) and server outages (blocking
    HTTP) must degrade to lost records, never to workflow exceptions."""
    if transport == "http":
        # hardest failure for a blocking transport: nothing listening
        env, dev, client, received, pre = make_world(
            transport, with_server=False, durable=durable,
            journal_dir=str(tmp_path))
    else:
        env, dev, client, received, pre = make_world(
            transport, loss=0.25, durable=durable, journal_dir=str(tmp_path))
    done = run_workflow(env, client, pre, n_tasks=3, drain=False)
    env.run(until=300)
    assert done["ok"]
    assert client.records_captured.count == 8


@pytest.mark.parametrize("transport", ALL_TRANSPORTS)
def test_close_frees_static_memory(transport, durable, tmp_path):
    env, dev, client, received, pre = make_world(
        transport, durable=durable, journal_dir=str(tmp_path))
    done = run_workflow(env, client, pre, n_tasks=1)
    env.run(until=60)
    assert done["ok"]
    assert dev.memory.used("capture-static") > 0
    client.close()
    client.close()  # idempotent
    assert dev.memory.used("capture-static") == 0
    assert dev.memory.used("capture-buffers") == 0


@pytest.mark.parametrize("transport", ALL_TRANSPORTS)
def test_capture_after_close_rejected(transport, durable, tmp_path):
    env, dev, client, received, pre = make_world(
        transport, durable=durable, journal_dir=str(tmp_path))
    done = run_workflow(env, client, pre, n_tasks=1)
    env.run(until=60)
    assert done["ok"]
    client.close()

    def late(env):
        wf = Workflow(2, client)
        with pytest.raises(CaptureClosedError):
            yield from wf.begin()

    env.process(late(env))
    env.run()
