"""Unit tests for the durable capture journal.

Covers the append/ack/truncate lifecycle, crash-style reopen, the
hash-chain tamper evidence (edits, reordering, gaps, forged rows) and
both record signers.
"""

import sqlite3

import pytest

from repro.capture.journal import (
    GENESIS_HASH,
    CaptureJournal,
    EcdsaRecordSigner,
    HmacRecordSigner,
    JournalError,
    TamperError,
    chain_hash,
    journal_path_for,
)


def make_journal(tmp_path, client_id="edge-dev/conf/edge/data", signer=None):
    return CaptureJournal(
        journal_path_for(str(tmp_path), client_id), client_id, signer=signer
    )


# -- append / ack / truncate ------------------------------------------------

def test_append_assigns_monotonic_seqs(tmp_path):
    j = make_journal(tmp_path)
    seqs = [j.append(f"payload-{i}".encode(), ts=float(i)) for i in range(5)]
    assert seqs == [1, 2, 3, 4, 5]
    assert j.pending == 5
    assert len(j) == 5
    assert j.unacked() == [(i + 1, f"payload-{i}".encode()) for i in range(5)]


def test_ack_truncates_contiguous_prefix_only(tmp_path):
    j = make_journal(tmp_path)
    for i in range(4):
        j.append(f"p{i}".encode())
    j.ack(2)  # out of order: nothing contiguous from the anchor yet
    assert len(j) == 4
    assert j.pending == 3
    j.ack(1)  # now 1..2 are a contiguous acked prefix
    assert len(j) == 2
    assert j.anchor[0] == 2
    assert [seq for seq, _ in j.unacked()] == [3, 4]
    j.ack(3)
    j.ack(4)
    assert len(j) == 0
    assert j.pending == 0
    # the head survives truncation: appends continue the sequence
    assert j.append(b"next") == 5


def test_reopen_recovers_head_and_unacked(tmp_path):
    j = make_journal(tmp_path)
    for i in range(3):
        j.append(f"p{i}".encode())
    j.ack(1)
    j.close()
    # crash/restart: same path, same identity
    j2 = make_journal(tmp_path)
    assert j2.unacked() == [(2, b"p1"), (3, b"p2")]
    assert j2.head[0] == 3
    assert j2.append(b"p3") == 4
    assert j2.verify_chain() == 3


def test_journal_refuses_foreign_client(tmp_path):
    j = make_journal(tmp_path, client_id="client-a")
    j.append(b"x")
    j.close()
    path = journal_path_for(str(tmp_path), "client-a")
    with pytest.raises(JournalError, match="belongs to client"):
        CaptureJournal(path, "client-b")


def test_journal_path_sanitises_topic_ids(tmp_path):
    path = journal_path_for(str(tmp_path), "edge-dev/conf/edge/data")
    assert "/" not in path.rsplit("/", 1)[-1].replace(".journal.db", "")
    assert path.endswith(".journal.db")


# -- hash chain & tamper evidence -------------------------------------------

def test_chain_hash_binds_predecessor_seq_and_payload():
    h1 = chain_hash(GENESIS_HASH, 1, b"a")
    assert h1 != chain_hash(GENESIS_HASH, 2, b"a")
    assert h1 != chain_hash(GENESIS_HASH, 1, b"b")
    assert h1 != chain_hash(h1, 1, b"a")


def test_verify_chain_detects_payload_edit(tmp_path):
    j = make_journal(tmp_path)
    for i in range(4):
        j.append(f"record-{i}".encode())
    assert j.verify_chain() == 4
    # attacker edits a historical payload directly in the store
    j._conn.execute("UPDATE journal SET payload=? WHERE seq=2", (b"forged",))
    with pytest.raises(TamperError, match="hash mismatch at seq 2"):
        j.verify_chain()


def test_verify_chain_detects_deleted_entry(tmp_path):
    j = make_journal(tmp_path)
    for i in range(4):
        j.append(f"record-{i}".encode())
    j._conn.execute("DELETE FROM journal WHERE seq=3")
    with pytest.raises(TamperError, match="sequence gap"):
        j.verify_chain()


def test_verify_chain_detects_rewritten_history(tmp_path):
    """Recomputing hashes for a forged payload still fails: the next
    entry chains to the original digest."""
    j = make_journal(tmp_path)
    j.append(b"real-1")
    j.append(b"real-2")
    forged_hash = chain_hash(GENESIS_HASH, 1, b"forged")
    j._conn.execute(
        "UPDATE journal SET payload=?, hash=? WHERE seq=1",
        (b"forged", forged_hash),
    )
    with pytest.raises(TamperError, match="hash mismatch at seq 2"):
        j.verify_chain()


def test_verify_chain_survives_truncation(tmp_path):
    """Deleting the acked prefix keeps the suffix verifiable via the
    persisted anchor."""
    j = make_journal(tmp_path)
    for i in range(6):
        j.append(f"p{i}".encode())
    for seq in (1, 2, 3):
        j.ack(seq)
    assert len(j) == 3
    assert j.verify_chain() == 3
    j.close()
    j2 = make_journal(tmp_path)
    assert j2.verify_chain() == 3


# -- signing -----------------------------------------------------------------

def test_hmac_signed_journal_verifies_and_detects_forgery(tmp_path):
    signer = HmacRecordSigner(b"shared-secret-key-16b")
    j = make_journal(tmp_path, signer=signer)
    j.append(b"a")
    j.append(b"b")
    assert j.verify_chain() == 2
    # wrong key: every signature fails
    other = HmacRecordSigner(b"a-different-key-16bb")
    with pytest.raises(TamperError, match="signature mismatch"):
        j.verify_chain(verifier=other)
    # stripped signature: detected when verifying with the signer
    j._conn.execute("UPDATE journal SET sig=NULL WHERE seq=2")
    with pytest.raises(TamperError, match="missing signature"):
        j.verify_chain()


def test_hmac_signer_rejects_short_keys():
    with pytest.raises(ValueError):
        HmacRecordSigner(b"short")


@pytest.mark.skipif(not EcdsaRecordSigner.available(),
                    reason="cryptography not installed")
def test_ecdsa_signed_journal_verifies(tmp_path):
    signer = EcdsaRecordSigner.generate()
    j = make_journal(tmp_path, signer=signer)
    j.append(b"a")
    j.append(b"b")
    assert j.verify_chain() == 2
    # a fresh keypair must not verify this journal
    with pytest.raises(TamperError, match="signature mismatch"):
        j.verify_chain(verifier=EcdsaRecordSigner.generate())
    # verify-only instance (audit host) works without the private key
    auditor = EcdsaRecordSigner(public_key=signer._public)
    assert j.verify_chain(verifier=auditor) == 2
    with pytest.raises(JournalError, match="verify-only"):
        auditor.sign(b"x")


def test_unsigned_journal_ignores_missing_signatures(tmp_path):
    j = make_journal(tmp_path)
    j.append(b"a")
    assert j.verify_chain() == 1  # no signer, no signature checks


def test_in_memory_journal_for_tests():
    j = CaptureJournal(":memory:", "c1")
    assert j.append(b"x") == 1
    assert j.verify_chain() == 1
    j.close()
