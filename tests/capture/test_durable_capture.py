"""Durable capture: journal write-through, reconnect/replay, dedup.

The acceptance bar for the durability work: a simulated uplink
partition (drop, then heal) loses **zero** records and the backend
ingests each exactly once; a client killed mid-stream at an arbitrary
point resumes from its journal with the same guarantee; and the
supervised sender surfaces unexpected transport errors instead of dying
silently.
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capture import (
    CaptureConfig,
    CaptureSenderError,
    create_client,
)
from repro.capture.client import (
    STATE_CONNECTED,
    STATE_RECONNECTING,
)
from repro.core import CallableBackend, Data, ProvLightServer, Task, Workflow
from repro.device import A8M3, Device
from repro.net import LinkFaultInjector, Network
from repro.simkernel import Environment


def durable_config(journal_dir, **overrides):
    params = dict(
        transport="mqttsn",
        durable=True,
        journal_dir=journal_dir,
        reconnect_base_s=0.2,
        reconnect_factor=1.5,
        reconnect_max_s=1.0,
    )
    params.update(overrides)
    return CaptureConfig(**params)


def make_durable_world(journal_dir, seed=7, **config_overrides):
    """Edge device + ProvLight server + a fault injector on the uplink."""
    env = Environment()
    net = Network(env, seed=seed)
    dev = Device(env, A8M3, name="edge-dev")
    net.add_host("edge", device=dev)
    net.add_host("cloud")
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.01)
    received = []
    server = ProvLightServer(net.hosts["cloud"], CallableBackend(received.extend))
    config = durable_config(journal_dir, **config_overrides)
    client = create_client(dev, server.endpoint, "conf/edge/data", config)
    client.transport.mqtt.retry_interval_s = 0.2
    faults = LinkFaultInjector(net, "edge", "cloud")
    return env, net, dev, server, client, received, faults


def capture_tasks(env, server, client, n_tasks, spacing_s=0.2, done=None,
                  drain=True):
    done = done if done is not None else {}

    def proc(env):
        yield from server.add_translator("conf/#")
        yield from client.setup()
        wf = Workflow(1, client)
        yield from wf.begin()
        for i in range(n_tasks):
            task = Task(i, wf)
            yield from task.begin([Data(f"in{i}", 1, {"in": [1.0] * 8})])
            yield env.timeout(spacing_s)
            yield from task.end([Data(f"out{i}", 1, {"out": [2.0] * 8},
                                      derivations=[f"in{i}"])])
        yield from wf.end(drain=drain)
        done["at"] = env.now

    done["proc"] = env.process(proc(env))
    return done


# -- the acceptance criterion: partition loses nothing, exactly once --------

def test_partition_heal_loses_zero_records_exactly_once(tmp_path):
    env, net, dev, server, client, received, faults = make_durable_world(
        str(tmp_path)
    )
    states = []
    client.add_connection_listener(states.append)
    # cut the uplink mid-stream for 2 simulated seconds
    faults.partition_at(0.5, 2.0)
    done = capture_tasks(env, server, client, n_tasks=8)
    env.run(until=600)

    assert "at" in done, "drain never resolved after the partition healed"
    # 2 workflow events + 8 x (begin + end)
    assert client.records_captured.count == 18
    # zero loss, exactly once: every record ingested, none twice
    assert server.records_ingested.count == 18
    assert len(received) == 18
    # the outage actually exercised replay and the server-side dedup
    assert client.reconnects.count >= 1
    assert client.replayed.count >= 1
    assert server.duplicates_dropped.count >= 0
    assert (server.records_ingested.count + server.duplicates_dropped.count
            >= client.messages_sent.count)
    # journal fully acknowledged and truncated after the drain
    assert client.journal.pending == 0
    assert len(client.journal) == 0
    # the client reported the flap to its listeners
    assert STATE_RECONNECTING in states
    assert states[-1] == STATE_CONNECTED
    assert faults.outages == [(0.5, 2.5)]


def test_repeated_flaps_converge(tmp_path):
    env, net, dev, server, client, received, faults = make_durable_world(
        str(tmp_path)
    )
    faults.flap(period_s=1.0, down_s=0.4, cycles=3)
    done = capture_tasks(env, server, client, n_tasks=10)
    env.run(until=600)
    assert "at" in done
    assert client.records_captured.count == 22
    assert server.records_ingested.count == 22
    assert client.journal.pending == 0
    assert len(faults.outages) == 3


def test_best_effort_client_loses_records_on_partition(tmp_path):
    """The control: without durable=True the same outage drops records
    (this is the gap the journal exists to close)."""
    env, net, dev, server, client, received, faults = make_durable_world(
        str(tmp_path), durable=False
    )
    # long enough that at least one message exhausts its entire QoS
    # retry budget strictly inside the outage
    faults.partition_at(0.5, 4.0)
    done = capture_tasks(env, server, client, n_tasks=8, drain=False)
    env.run(until=600)
    assert "at" in done
    assert client.records_captured.count == 18
    assert server.records_ingested.count < 18


# -- crash recovery -----------------------------------------------------------

def test_crashed_client_replays_journal_on_next_setup(tmp_path):
    """Phase 1 crashes mid-partition (client abandoned, never closed);
    phase 2 reopens the same journal and must deliver the parked
    records exactly once."""
    env, net, dev, server, client, received, faults = make_durable_world(
        str(tmp_path)
    )
    # partition right after setup() and never heal: records pile up in
    # the journal (a boundary straggler or two may have slipped through)
    faults.partition_at(0.1, 10_000.0)
    capture_tasks(env, server, client, n_tasks=3, drain=False)
    env.run(until=60)  # crash: simply stop simulating; no close()
    assert client.records_captured.count == 8
    pending1 = client.journal.pending
    assert pending1 > 0

    # phase 2: new process, same device/topic identity, same journal dir
    env2, net2, dev2, server2, client2, received2, _ = make_durable_world(
        str(tmp_path)
    )
    # same logical backend: its dedup state survives client restarts
    server2.deduper = server.deduper
    done = {}

    def proc(env):
        yield from server2.add_translator("conf/#")
        yield from client2.setup()  # recovers + replays the journal
        yield from client2.drain()
        done["at"] = env.now

    env2.process(proc(env2))
    env2.run(until=120)
    assert "at" in done
    assert client2.replayed.count == pending1
    # exactly once across the crash: every captured record ingested,
    # boundary stragglers deduped rather than doubled
    assert (server.records_ingested.count
            + server2.records_ingested.count) == 8
    assert client2.journal.pending == 0


def test_close_preserves_unacked_journal(tmp_path):
    env, net, dev, server, client, received, faults = make_durable_world(
        str(tmp_path)
    )
    faults.partition_at(0.1, 10_000.0)
    capture_tasks(env, server, client, n_tasks=2, drain=False)
    env.run(until=30)
    pending = client.journal.pending
    assert pending > 0
    client.close()  # orderly close: memory freed, durable state kept
    env.run(until=31)  # let the parked sender observe the close and exit
    assert dev.memory.used("capture-buffers") == 0
    # reopen the journal directly: the entries survived
    from repro.capture import CaptureJournal
    from repro.capture.journal import journal_path_for

    j = CaptureJournal(journal_path_for(str(tmp_path), client.client_id),
                       client.client_id)
    assert j.pending == pending
    assert j.verify_chain() == len(j)
    j.close()


# -- property: kill at a random point, resume, exactly once ------------------

@given(
    kill_after_s=st.floats(min_value=0.05, max_value=4.0),
    n_tasks=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=12, deadline=None)
def test_kill_anywhere_resume_is_exactly_once(kill_after_s, n_tasks):
    """Kill the client at an arbitrary simulated instant — records may
    be undelivered, in flight, or delivered-but-unacked — then resume
    from the journal against the *same logical backend* (dedup state
    carries over, as it would on a long-lived server).  Every record is
    ingested exactly once."""
    with tempfile.TemporaryDirectory() as journal_dir:
        env, net, dev, server, client, received, faults = make_durable_world(
            journal_dir
        )
        # a mid-stream outage makes delivered-but-unacked windows likely
        faults.partition_at(0.3, 1.0)
        done1 = capture_tasks(env, server, client, n_tasks=n_tasks,
                              drain=False)
        env.run(until=kill_after_s)  # crash: the client stops cold here
        captured_phase1 = client.records_captured.count
        total_records = 2 + 2 * n_tasks
        # Only the *client* crashed; the server plane is long-lived.  Stop
        # the workload and the client at the kill instant (no further
        # captures or sends), then let the surviving server finish
        # ingesting what the broker had already acknowledged — a record
        # acked to the client but still inside the translator pipeline is
        # the server's responsibility, not a journal loss.
        workload = done1["proc"]
        if workload.is_alive:
            workload.defused = True
            workload.interrupt("client crash")
        client.close()  # crash-equivalent durability: journal state kept
        env.run(until=kill_after_s + 60)

        env2, net2, dev2, server2, client2, received2, _ = make_durable_world(
            journal_dir
        )
        # same logical backend: ingested set and dedup floor carry over
        server2.deduper = server.deduper
        done = {}

        def top_up(env):
            yield from server2.add_translator("conf/#")
            yield from client2.setup()
            wf = Workflow(1, client2)
            yield from wf.begin()
            remaining = max(0, total_records - captured_phase1 - 2)
            for i in range(remaining):
                task = Task(1000 + i, wf)
                yield from task.begin([])
            yield from wf.end(drain=True)
            done["at"] = env.now

        env2.process(top_up(env2))
        env2.run(until=600)
        assert "at" in done
        ingested_total = (server.records_ingested.count
                          + server2.records_ingested.count)
        captured_total = captured_phase1 + client2.records_captured.count
        # exactly once across the crash: nothing lost, nothing doubled
        assert ingested_total == captured_total
        assert client2.journal.pending == 0


# -- sender supervision --------------------------------------------------------

def test_sender_survives_transport_raise_and_surfaces_error(tmp_path):
    env, net, dev, server, client, received, faults = make_durable_world(
        str(tmp_path)
    )
    real_send = client.transport.send
    blowups = {"left": 2}

    def flaky_send(payload):
        if blowups["left"] > 0:
            blowups["left"] -= 1
            raise RuntimeError("injected transport bug")
        return real_send(payload)

    client.transport.send = flaky_send
    errors = []
    done = {}

    def proc(env):
        yield from server.add_translator("conf/#")
        yield from client.setup()
        wf = Workflow(1, client)
        yield from wf.begin()
        for i in range(6):
            task = Task(i, wf)
            try:
                yield from task.begin([])
            except CaptureSenderError as exc:
                errors.append(exc)
            yield env.timeout(0.5)
        yield from client.drain()
        done["at"] = env.now

    env.process(proc(env))
    env.run(until=300)
    assert "at" in done
    # the injected failures were surfaced, not swallowed
    assert len(errors) >= 1
    assert "injected transport bug" in str(errors[0])
    # and the journaled entries still made it through after the restarts
    assert server.records_ingested.count == client.records_captured.count
    assert client.journal.pending == 0


def test_sender_failure_without_journal_counts_record_lost(tmp_path):
    """Best-effort client: a transport bug costs the record, surfaces
    the error, and the sender keeps servicing later captures."""
    env, net, dev, server, client, received, faults = make_durable_world(
        str(tmp_path), durable=False
    )
    real_send = client.transport.send
    blowups = {"left": 1}

    def flaky_send(payload):
        if blowups["left"] > 0:
            blowups["left"] -= 1
            raise RuntimeError("injected transport bug")
        return real_send(payload)

    client.transport.send = flaky_send
    errors = []
    done = {}

    def proc(env):
        yield from server.add_translator("conf/#")
        yield from client.setup()
        wf = Workflow(1, client)
        yield from wf.begin()
        for i in range(4):
            task = Task(i, wf)
            try:
                yield from task.begin([])
            except CaptureSenderError as exc:
                errors.append(exc)
            yield env.timeout(0.5)
        yield from client.drain()
        done["at"] = env.now

    env.process(proc(env))
    env.run(until=120)
    assert "at" in done
    assert len(errors) == 1
    # exactly one record lost to the injected bug, the rest delivered
    assert server.records_ingested.count == client.records_captured.count - 1
