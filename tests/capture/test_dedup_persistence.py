"""Restart-safe server-side dedup: the sink-crash-then-replay regression.

PR 6 made *clients* durable (journal + replay-on-reconnect).  The gap
this closes: the server's :class:`ReplayDeduper` lived only in memory,
so a crashed-and-restarted sink would re-ingest every record a durable
client replays.  With ``state_path`` the dedup floor survives the
restart and replays stay exactly-once across sink incarnations.
"""

import os

import pytest

from repro.capture.envelope import ReplayDeduper, wrap_payload
from repro.core import CallableBackend, ProvLightServer, encode_payload
from repro.mqttsn import MqttSnClient
from repro.net import Network
from repro.simkernel import Environment


# ------------------------------------------------------------- unit level

def test_deduper_state_survives_restart(tmp_path):
    path = str(tmp_path / "dedup.log")
    first = ReplayDeduper(state_path=path)
    for seq in (1, 2, 3, 7):
        assert not first.seen("edge-0", seq)
        first.mark("edge-0", seq)
    first.mark("edge-1", 1)
    first.close()

    second = ReplayDeduper(state_path=path)
    for seq in (1, 2, 3, 7):
        assert second.seen("edge-0", seq)
    assert second.seen("edge-1", 1)
    assert not second.seen("edge-0", 4)   # the gap is still open
    assert not second.seen("edge-0", 8)
    assert not second.seen("edge-2", 1)
    second.close()


def test_deduper_recovery_compacts_the_log(tmp_path):
    path = str(tmp_path / "dedup.log")
    first = ReplayDeduper(state_path=path)
    for seq in range(1, 101):
        first.mark("edge-0", seq)
    first.close()
    size_before = os.path.getsize(path)

    second = ReplayDeduper(state_path=path)  # recovery rewrites the log
    second.close()
    # 100 contiguous seqs compact to one floor line
    assert os.path.getsize(path) < size_before
    third = ReplayDeduper(state_path=path)
    assert third.seen("edge-0", 100)
    assert not third.seen("edge-0", 101)
    third.close()


def test_deduper_tolerates_a_torn_tail_line(tmp_path):
    path = str(tmp_path / "dedup.log")
    first = ReplayDeduper(state_path=path)
    first.mark("edge-0", 1)
    first.close()
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('["edge-0", 2')  # the crash tore the last append

    second = ReplayDeduper(state_path=path)
    assert second.seen("edge-0", 1)
    assert not second.seen("edge-0", 2)  # the torn mark never happened
    second.close()


def test_deduper_without_state_path_is_memory_only(tmp_path):
    deduper = ReplayDeduper()
    deduper.mark("c", 1)
    assert deduper.seen("c", 1)
    deduper.close()  # harmless without a backing file
    assert ReplayDeduper().seen("c", 1) is False


# ----------------------------------------- the sink-crash-then-replay story

def run_sink_incarnation(state_path, wires, seed=7):
    """One server lifetime: publish every (topic, wire) pair, QoS 1.

    Returns the records the backend ingested and the server (for its
    counters).  Each call is a fresh simulation — exactly what a sink
    crash + restart looks like: all in-memory state gone, only
    ``state_path`` carries over.
    """
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("cloud")
    net.add_host("edge")
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.01)
    received = []
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(received.extend),
        dedup_state_path=state_path,
    )
    publisher = MqttSnClient(net.hosts["edge"], "edge-0", server.endpoint)

    def scenario(env):
        yield from server.add_translator("conf/#")
        yield from publisher.connect()
        tid = yield from publisher.register("conf/edge/data")
        for wire in wires:
            yield from publisher.publish(tid, wire, qos=1)
            yield env.timeout(0.05)

    env.process(scenario(env))
    env.run(until=60)
    server.deduper.close()
    return received, server


def record(i):
    return {
        "kind": "task_end", "workflow_id": 1, "task_id": i,
        "transformation_id": 0, "dependencies": [], "time": float(i),
        "status": "finished",
        "data": [{"id": f"d{i}", "workflow_id": 1, "derivations": [],
                  "attributes": {"v": i}}],
    }


def test_restarted_sink_does_not_reingest_replayed_records(tmp_path):
    state_path = str(tmp_path / "server-dedup.log")
    wires = [
        wrap_payload("edge-0", seq, encode_payload(record(seq)))
        for seq in range(1, 6)
    ]

    first_received, first_server = run_sink_incarnation(state_path, wires)
    assert len(first_received) == 5
    assert first_server.records_ingested.total == 5

    # the sink crashes; the durable client saw no acks for its last
    # publishes and replays everything, then continues with fresh seqs
    replay_plus_new = wires + [
        wrap_payload("edge-0", seq, encode_payload(record(seq)))
        for seq in range(6, 9)
    ]
    second_received, second_server = run_sink_incarnation(
        state_path, replay_plus_new
    )
    # exactly-once across incarnations: only the 3 new records ingest
    assert len(second_received) == 3
    assert second_server.duplicates_dropped.count == 5
    assert second_server.records_ingested.total == 3


def test_without_state_path_a_restart_reingests(tmp_path):
    """The control: memory-only dedup forgets across incarnations —
    documenting why the persisted floor matters."""
    wires = [
        wrap_payload("edge-0", seq, encode_payload(record(seq)))
        for seq in range(1, 4)
    ]
    first_received, _ = run_sink_incarnation(None, wires)
    second_received, second_server = run_sink_incarnation(None, wires)
    assert len(first_received) == 3
    assert len(second_received) == 3  # the replays ingested again
    assert second_server.duplicates_dropped.count == 0
