"""API-surface and behaviour tests for :mod:`repro.capture`.

Pins the public surface (``__all__``), the config validation, the
registry contracts, and the ``close()`` teardown semantics (sender
process stopped, queued buffers freed, pending drains failed).
"""

import pytest

import repro.capture as capture
from repro.capture import (
    CaptureClient,
    CaptureClosedError,
    CaptureConfig,
    CaptureTransport,
    create_client,
    register_transport,
    transport_names,
    unregister_transport,
)
from repro.core import CallableBackend, Data, ProvLightServer, Task, Workflow
from repro.device import A8M3, Device
from repro.net import Network
from repro.simkernel import Environment

#: the public surface of the unified capture API — additions are fine
#: but must be deliberate (update this list *and* the docs)
EXPECTED_ALL = [
    "CaptureClient",
    "CaptureClosedError",
    "CaptureConfig",
    "CaptureJournal",
    "CaptureSenderError",
    "CaptureTransport",
    "DEFAULT_TRANSPORT",
    "EcdsaRecordSigner",
    "HmacRecordSigner",
    "JournalError",
    "ReplayDeduper",
    "TamperError",
    "create_client",
    "create_transport",
    "deploy_capture_sink",
    "get_transport_factory",
    "normalize_transport",
    "register_transport",
    "transport_names",
    "unregister_transport",
    "unwrap_payload",
    "wrap_payload",
]


def test_public_surface_is_pinned():
    assert sorted(capture.__all__) == sorted(EXPECTED_ALL)
    for name in capture.__all__:
        assert hasattr(capture, name), f"__all__ names missing symbol {name}"


def test_builtin_transports_registered():
    names = transport_names()
    assert set(names) >= {"mqttsn", "coap", "http"}


def test_aliases_resolve():
    assert capture.normalize_transport("MQTT-SN") == "mqttsn"
    assert capture.normalize_transport("http-blocking") == "http"
    assert capture.get_transport_factory("mqtt-sn") is (
        capture.get_transport_factory("mqttsn")
    )


def test_unknown_transport_fails_loudly():
    with pytest.raises(ValueError, match="unknown capture transport"):
        capture.get_transport_factory("carrier-pigeon")


def test_duplicate_registration_rejected():
    def factory(device, server, topic, config):  # pragma: no cover
        raise AssertionError("never constructed")

    register_transport("test-dup", factory)
    try:
        with pytest.raises(ValueError, match="already registered"):
            register_transport("test-dup", factory)
        register_transport("test-dup", factory, replace=True)  # explicit wins
    finally:
        unregister_transport("test-dup")


def test_register_transport_decorator_form():
    @register_transport("test-decorated")
    class DummyTransport(CaptureTransport):
        name = "test-decorated"

        def __init__(self, device, server, topic, config):
            pass

    try:
        assert capture.get_transport_factory("test-decorated") is DummyTransport
    finally:
        unregister_transport("test-decorated")


def test_config_validation():
    with pytest.raises(ValueError, match="group_size"):
        CaptureConfig(group_size=-1)
    with pytest.raises(ValueError, match="qos"):
        CaptureConfig(qos=3)
    with pytest.raises(ValueError, match="transport"):
        CaptureConfig(transport="")


def test_config_with_and_describe():
    config = CaptureConfig()
    varied = config.with_(transport="coap", group_size=10, compress=False)
    assert config.transport == "mqttsn" and config.group_size == 0
    assert varied.transport == "coap" and varied.group_size == 10
    assert "coap" in varied.describe() and "group=10" in varied.describe()


def make_world(bandwidth=1e9, latency=0.01):
    env = Environment()
    net = Network(env, seed=9)
    dev = Device(env, A8M3, name="edge-dev")
    net.add_host("edge", device=dev)
    net.add_host("cloud")
    net.connect("edge", "cloud", bandwidth_bps=bandwidth, latency_s=latency)
    sink = []
    server = ProvLightServer(net.hosts["cloud"], CallableBackend(sink.extend))
    client = create_client(dev, server.endpoint, "api/edge/data")
    return env, net, dev, server, client, sink


def test_create_client_overrides():
    env, net, dev, server, client, sink = make_world()
    grouped = create_client(dev, server.endpoint, "api/edge/grouped",
                            group_size=5, compress=False)
    assert grouped.group_buffer.group_size == 5
    assert grouped.compress is False
    assert isinstance(grouped, CaptureClient)


def test_close_tears_down_sender_and_fails_drain_waiters():
    """Regression: ``close()`` used to leave the background sender alive
    and queued ``capture-buffers`` allocations outstanding forever."""
    # a 25 Kbit link so several encoded records are still queued when we
    # pull the plug
    env, net, dev, server, client, sink = make_world(bandwidth=25e3)
    outcome = {}

    def scenario(env):
        yield from server.add_translator("api/#")
        yield from client.setup()
        wf = Workflow(1, client)
        yield from wf.begin()
        for i in range(4):
            task = Task(i, wf)
            yield from task.begin([Data(f"in{i}", 1, {"in": [1.0] * 100})])
            yield from task.end([Data(f"out{i}", 1, {"out": [2.0] * 100})])
        outcome["queued"] = len(client._queue.items)

        def drainer(env):
            try:
                yield from client.drain()
                outcome["drain_failed"] = False
            except CaptureClosedError:
                outcome["drain_failed"] = True

        env.process(drainer(env))
        yield env.timeout(0.5)  # the first messages crawl onto the wire
        client.close()
        outcome["buffers_after_close"] = dev.memory.used("capture-buffers")
        yield env.timeout(60)  # in-flight QoS exchange settles either way

    env.process(scenario(env))
    env.run()
    assert outcome["queued"] > 0, "workload never saturated the queue"
    assert outcome["drain_failed"] is True
    # queued payloads were dropped and their buffers freed at close();
    # at most the single in-flight message could still be accounted then
    assert outcome["buffers_after_close"] <= 1000
    # ...and nothing leaks once the in-flight exchange resolves
    assert dev.memory.used("capture-buffers") == 0
    assert dev.memory.used("capture-static") == 0
    # the background sender exited instead of blocking forever
    assert client._sender.triggered
    assert client.closed


def test_close_without_traffic_is_clean():
    env, net, dev, server, client, sink = make_world()
    client.close()
    assert dev.memory.used("capture-static") == 0
    env.run(until=1)  # sender wakes on the close sentinel and exits
    assert client._sender.triggered


def test_drain_after_close_raises_instead_of_hanging():
    """A post-close drain can never resolve (the sender is gone), so it
    must fail loudly rather than park the caller forever."""
    env, net, dev, server, client, sink = make_world()
    client.close()
    outcome = {}

    def late_drainer(env):
        try:
            yield from client.drain()
            outcome["raised"] = False
        except CaptureClosedError:
            outcome["raised"] = True

    env.process(late_drainer(env))
    env.run(until=5)
    assert outcome["raised"] is True


def test_unregister_builtin_is_recoverable():
    """Built-ins reload after unregister_transport (module import side
    effects cannot re-run, so the registry restores the factory)."""
    factory = capture.get_transport_factory("coap")
    unregister_transport("coap")
    assert capture.get_transport_factory("coap") is factory
    assert "coap" in transport_names()


def test_deploy_capture_sink_rejects_mqttsn_and_unknown():
    from repro.capture import deploy_capture_sink

    env = Environment()
    net = Network(env, seed=2)
    host = net.add_host("cloud")
    with pytest.raises(ValueError, match="no capture sink"):
        deploy_capture_sink("mqttsn", host, lambda records: None)
    with pytest.raises(ValueError, match="no capture sink"):
        deploy_capture_sink("smoke-signals", host, lambda records: None)
