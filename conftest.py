"""Repo-level pytest configuration.

``pytest --sim-debug`` runs the whole suite with every bare
``Environment()`` construction routed to
:class:`repro.simkernel.DebugEnvironment`, the runtime kernel-hazard
detector (cross-environment events, double triggers, non-monotonic
schedules, unretrieved failures — see ``docs/static-analysis.md``).
CI runs the suite this way so every PR executes under the detector.
"""

import os
import sys

# make `pytest` work without PYTHONPATH=src (CI still sets it explicitly)
_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    parser.addoption(
        "--sim-debug",
        action="store_true",
        default=False,
        help="build every simkernel Environment as a DebugEnvironment, "
        "turning silent kernel misuse (cross-environment events, double "
        "triggers, non-monotonic schedules, unretrieved failures) into "
        "loud test failures",
    )


def pytest_configure(config):
    if config.getoption("--sim-debug"):
        from repro.simkernel import install_debug_environment

        install_debug_environment()


def pytest_report_header(config):
    if config.getoption("--sim-debug"):
        return "sim-debug: DebugEnvironment hazard detection ACTIVE"
    return None
