"""Benchmark: transport protocols for ProvLight capture.

Extension beyond the paper: the same ProvLight capture pipeline over
three transports — MQTT-SN QoS 2 on UDP (the paper's choice), CoAP
CON/ACK on UDP (the RFC 7252 alternative the paper's Section III cites),
and blocking HTTP/1.1 on TCP (what the baselines do).  Confirms the
paper's argument that the *asynchronous UDP-based* transports are
interchangeable for workflow overhead, while the blocking TCP path is
the outlier.

Every variant goes through the same :class:`repro.capture.CaptureClient`
façade via registry lookup (``create_client`` + ``CaptureConfig``): the
client-side critical path — cost charging, encoding, memory accounting,
sender loop — is one code path, so the measured differences are
attributable to the transport adapters alone.
"""

import numpy as np
from conftest import bench_repetitions, run_once

from repro.capture import CaptureConfig, create_client
from repro.coap import ProvLightCoapServer
from repro.core import CallableBackend, ProvLightServer
from repro.device import A8M3, Device
from repro.http import HttpResponse, HttpServer
from repro.metrics import mean_ci, render_table
from repro.net import Network
from repro.simkernel import Environment
from repro.workloads import SyntheticWorkloadConfig, synthetic_workload

CONFIG = SyntheticWorkloadConfig(attributes_per_task=100, task_duration_s=0.5)


def _run(transport: str, seed: int):
    env = Environment()
    net = Network(env, seed=seed)
    dev = Device(env, A8M3)
    net.add_host("edge", device=dev)
    net.add_host("cloud")
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.023)
    result = {}
    capture = CaptureConfig(transport=transport)

    if transport == "http-blocking":
        HttpServer(net.hosts["cloud"], 5000, lambda r: HttpResponse(status=201))
        client = create_client(dev, ("cloud", 5000), "/provlight", capture)
        env.process(synthetic_workload(env, client, CONFIG,
                                       rng=np.random.default_rng(seed), result=result))
    elif transport == "coap":
        server = ProvLightCoapServer(net.hosts["cloud"], CallableBackend(lambda r: None))
        client = create_client(dev, server.endpoint, "/prov", capture)
        env.process(synthetic_workload(env, client, CONFIG,
                                       rng=np.random.default_rng(seed), result=result))
    else:  # mqtt-sn
        server = ProvLightServer(net.hosts["cloud"], CallableBackend(lambda r: None))
        client = create_client(dev, server.endpoint, "p/edge", capture)

        def scenario(env):
            yield from server.add_translator("p/#")
            yield from synthetic_workload(env, client, CONFIG,
                                          rng=np.random.default_rng(seed),
                                          result=result)

        env.process(scenario(env))
    env.run(until=200)
    return {
        "overhead": result["elapsed"] / CONFIG.nominal_duration_s() - 1.0,
        "device_bytes": dev.radio.tx.total + dev.radio.rx.total,
    }


TRANSPORTS = ["mqtt-sn", "coap", "http-blocking"]


def run_comparison(reps: int):
    rows, measured = [], {}
    for transport in TRANSPORTS:
        samples = [_run(transport, seed + 1) for seed in range(reps)]
        ci = mean_ci([s["overhead"] for s in samples])
        measured[transport] = {
            "overhead": ci.mean,
            "bytes": float(np.mean([s["device_bytes"] for s in samples])),
        }
        rows.append([
            transport,
            ci.as_percent(),
            f"{measured[transport]['bytes'] / 1024:.1f} KB",
        ])
    text = render_table(
        "Transport comparison for ProvLight capture (0.5s tasks, 100 attrs)",
        ["transport", "time overhead", "device bytes (tx+rx)"],
        rows,
        note="async UDP transports are equivalent for overhead; blocking TCP is the outlier",
    )
    return text, measured


def test_protocol_comparison(benchmark, show):
    text, m = run_once(benchmark, lambda: run_comparison(bench_repetitions(2)))
    show(text)
    # both async transports achieve the paper's low overhead
    assert m["mqtt-sn"]["overhead"] < 0.03
    assert m["coap"]["overhead"] < 0.03
    # and they are within 20% of each other
    assert abs(m["coap"]["overhead"] - m["mqtt-sn"]["overhead"]) < 0.2 * m["mqtt-sn"]["overhead"] + 0.001
    # the blocking transport is an order of magnitude worse
    assert m["http-blocking"]["overhead"] > 5 * m["mqtt-sn"]["overhead"]
    # CoAP's 2-packet exchange moves fewer bytes than QoS 2's 4 packets
    assert m["coap"]["bytes"] < m["mqtt-sn"]["bytes"]
