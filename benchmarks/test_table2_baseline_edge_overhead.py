"""Benchmark: paper Table II — baseline capture overhead on IoT/Edge.

Reproduces the 8-workload grid for ProvLake and DfAnalyzer on the A8-M3
device model (1 Gbit + 23 ms emulated path) and checks the table's shape:
every cell is high overhead (>3%), ProvLake is slower than DfAnalyzer,
and each cell lands near the paper's value.
"""

from conftest import bench_repetitions, run_once

from repro.harness import table2


def test_table2_baseline_edge_overhead(benchmark, show):
    result = run_once(benchmark, lambda: table2(bench_repetitions()))
    show(result.text)
    assert result.ok, result.failed_checks()
