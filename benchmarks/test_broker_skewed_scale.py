"""Skewed fan-in: placement policy decides how much shards help.

``test_broker_shard_scale.py`` measures the best case for hash
placement — client ids spread evenly, every shard gets its share.  This
file measures the adversarial population: a **Zipf-style skew** where
the 16 *heavy* publishers (50 messages each) carry client ids that all
hash onto the same ring node, plus 32 light publishers (10 messages
each) with unconstrained ids.  The ring-subset property of
:class:`~repro.hashring.ConsistentHashRing` (growing a ring only steals
keys for the new node) means ids chosen to clump on node 0 of the
8-ring clump on node 0 at every smaller shard count too, so the same
population is adversarial at 1, 4 and 8 shards.

Under ``placement="hash"`` the hot shard serves the heavy cohort
serially and extra shards barely help; ``placement="p2c"``
(power-of-two-choices on live shard load) spreads the same CONNECTs
nearly evenly and restores shard scaling.  Numbers out of this file:

* pytest-benchmark medians (wall-clock simulation cost, gated against
  the checked-in baseline);
* simulated ``msgs/s`` and the cluster's ``max_mean_session_ratio`` via
  ``benchmark.extra_info`` — machine-independent, the source of the
  ``broker_throughput_speedup_8_shards_over_1_skewed``,
  ``skewed_placement_gain_p2c_over_hash_8_shards`` and
  ``p2c_max_mean_session_ratio_8_shards`` headlines in
  ``BENCH_microbench_codecs.json``.

``test_p2c_beats_hash_on_skewed_population`` pins the ISSUE's
acceptance bars deterministically in simulated time.
"""

from dataclasses import dataclass

import pytest

from repro.hashring import ConsistentHashRing
from repro.mqttsn import BrokerCluster, MqttSnClient
from repro.net import Network
from repro.simkernel import Environment

N_HEAVY = 16
MSGS_HEAVY = 50
N_LIGHT = 32
MSGS_LIGHT = 10
TOTAL_MSGS = N_HEAVY * MSGS_HEAVY + N_LIGHT * MSGS_LIGHT

#: all publishers blast at this simulated instant, after the staggered
#: CONNECT/REGISTER exchanges have settled
BLAST_AT_S = 1.0

CASES = [(1, "hash"), (4, "hash"), (8, "hash"), (4, "p2c"), (8, "p2c")]


def heavy_ids(count: int) -> list:
    """Client ids that all hash onto node 0 of the 8-shard ring (and,
    by the ring-subset property, onto node 0 of every smaller ring)."""
    ring = ConsistentHashRing(8, salt="shard")
    out, i = [], 0
    while len(out) < count:
        candidate = f"heavy-{i}"
        if ring.node_for(candidate) == 0:
            out.append(candidate)
        i += 1
    return out


@dataclass
class SkewRunResult:
    shards: int
    placement: str
    delivered: int
    makespan_s: float
    max_mean_session_ratio: float

    @property
    def throughput_msgs_per_s(self) -> float:
        return self.delivered / self.makespan_s


def run_skewed_workload(shards: int, placement: str) -> SkewRunResult:
    env = Environment()
    net = Network(env, seed=3)
    net.add_host("cloud")
    cluster = BrokerCluster(
        net.hosts["cloud"], shards=shards, placement=placement
    )

    done = {"at": None, "count": 0}

    def on_message(topic, payload):
        done["count"] += 1
        if done["count"] == TOTAL_MSGS:
            done["at"] = env.now

    net.add_host("monitor")
    net.connect("monitor", "cloud", bandwidth_bps=1e9, latency_s=0.0005)
    monitor = MqttSnClient(net.hosts["monitor"], "monitor", cluster.endpoint)

    def run_monitor(env):
        yield from monitor.connect()
        yield from monitor.subscribe("skew/#", on_message, qos=0)

    def run_publisher(env, client, index, slot, n_msgs):
        # stagger CONNECTs a little so load-aware placement reads the
        # plane as it fills (real fleets do not connect in one datagram)
        yield env.timeout(slot * 0.002)
        yield from client.connect()
        topic_id = yield from client.register(f"skew/dev-{index}/data")
        yield env.timeout(BLAST_AT_S - env.now)
        for m in range(n_msgs):
            client.publish_nowait(topic_id, b"m%05d" % m, qos=0)

    env.process(run_monitor(env))
    populations = (
        [(cid, MSGS_HEAVY) for cid in heavy_ids(N_HEAVY)]
        + [(f"light-{i}", MSGS_LIGHT) for i in range(N_LIGHT)]
    )
    for slot, (cid, n_msgs) in enumerate(populations):
        name = f"edge-{cid}"
        net.add_host(name)
        net.connect(name, "cloud", bandwidth_bps=1e9, latency_s=0.0005)
        client = MqttSnClient(net.hosts[name], cid, cluster.endpoint)
        env.process(run_publisher(env, client, cid, slot, n_msgs))
    env.run()

    assert done["at"] is not None, (
        f"only {done['count']}/{TOTAL_MSGS} messages delivered"
    )
    return SkewRunResult(
        shards=shards,
        placement=placement,
        delivered=done["count"],
        makespan_s=done["at"] - BLAST_AT_S,
        max_mean_session_ratio=cluster.stats()["max_mean_session_ratio"],
    )


@pytest.mark.parametrize("shards,placement", CASES)
def test_skewed_publish_throughput(benchmark, shards, placement):
    result = benchmark(run_skewed_workload, shards, placement)
    assert result.delivered == TOTAL_MSGS
    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["placement"] = placement
    benchmark.extra_info["simulated_msgs_per_s"] = round(
        result.throughput_msgs_per_s, 1
    )
    benchmark.extra_info["simulated_makespan_ms"] = round(
        result.makespan_s * 1e3, 3
    )
    benchmark.extra_info["max_mean_session_ratio"] = round(
        result.max_mean_session_ratio, 3
    )


def test_p2c_beats_hash_on_skewed_population():
    """Acceptance bars, deterministic in simulated time:

    * at 8 shards, p2c placement's speedup over the single broker is at
      least 1.5x the hash placement's speedup on the same skewed
      population (hash strands the heavy cohort on one shard);
    * p2c keeps the session imbalance (max/mean per live shard) at or
      under 1.3.
    """
    one = run_skewed_workload(1, "hash")
    hash8 = run_skewed_workload(8, "hash")
    p2c8 = run_skewed_workload(8, "p2c")
    assert one.delivered == hash8.delivered == p2c8.delivered
    hash_speedup = hash8.throughput_msgs_per_s / one.throughput_msgs_per_s
    p2c_speedup = p2c8.throughput_msgs_per_s / one.throughput_msgs_per_s
    assert p2c_speedup >= 1.5 * hash_speedup, (
        f"p2c speedup {p2c_speedup:.2f}x < 1.5 x hash {hash_speedup:.2f}x"
    )
    assert p2c8.max_mean_session_ratio <= 1.3, (
        f"p2c session imbalance {p2c8.max_mean_session_ratio:.2f} > 1.3"
    )
