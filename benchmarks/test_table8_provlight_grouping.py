"""Benchmark: paper Table VIII — ProvLight grouping vs bandwidth.

Because publishing is asynchronous, ProvLight's workflow-visible overhead
is insensitive to a 40000x bandwidth drop (1 Gbit -> 25 Kbit), and
grouping ended-task records shaves the remaining per-call cost.
"""

from conftest import bench_repetitions, run_once

from repro.harness import table8


def test_table8_provlight_grouping(benchmark, show):
    result = run_once(benchmark, lambda: table8(bench_repetitions()))
    show(result.text)
    assert result.ok, result.failed_checks()
