"""Shared benchmark configuration.

Repetitions per experimental condition default to 3 here (the paper uses
10) so the full benchmark suite finishes in minutes; set
``REPRO_REPETITIONS`` to reproduce the paper's statistics exactly::

    REPRO_REPETITIONS=10 pytest benchmarks/ --benchmark-only
"""

import os

import pytest


def bench_repetitions(default: int = 3) -> int:
    value = os.environ.get("REPRO_REPETITIONS")
    if value:
        return max(1, int(value))
    return default


@pytest.fixture
def show(capsys):
    """Print through pytest's capture so tables appear in the output."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _show


def run_once(benchmark, fn):
    """Run a harness driver exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
