"""Microbenchmarks: real wall-clock cost of the wire codecs.

Unlike the table benchmarks (which measure *simulated* time), these
measure the actual Python cost of the encoders/decoders this repository
runs on every captured record, and compare ProvLight's binary format
against the baselines' JSON path.  They also validate the paper's
qualitative point: the compact binary encoding is cheaper to produce
and much smaller than verbose JSON.
"""

import json

import pytest

from repro.core import decode_payload, encode_payload
from repro.mqttsn import packets as pkt

RECORD_10 = {
    "kind": "task_end", "workflow_id": 1, "task_id": "3-42",
    "transformation_id": 3, "dependencies": ["3-41"], "time": 21.5,
    "status": "finished",
    "data": [{"id": "out42", "workflow_id": 1, "derivations": ["in42"],
              "attributes": {"out": [2] * 10}}],
}

RECORD_100 = {
    **RECORD_10,
    "data": [{"id": "out42", "workflow_id": 1, "derivations": ["in42"],
              "attributes": {"out": [2] * 100}}],
}


#: the grouped-capture payload shape of Tables III/VIII: one flush of a
#: group_size=50 buffer, where key interning compounds across records
GROUP_50 = [RECORD_10] * 50


def test_encode_payload_10_attrs(benchmark):
    wire = benchmark(encode_payload, RECORD_10)
    assert decode_payload(wire) == RECORD_10


def test_encode_payload_100_attrs(benchmark):
    wire = benchmark(encode_payload, RECORD_100)
    assert decode_payload(wire) == RECORD_100


def test_encode_payload_100_attrs_v1_baseline(benchmark):
    # the seed (v1) encoder, kept as the perf baseline the v2 fast path
    # is judged against (>=2x encode+decode is the acceptance bar)
    wire = benchmark(lambda: encode_payload(RECORD_100, version=1))
    assert decode_payload(wire) == RECORD_100


def test_encode_payload_uncompressed_100_attrs(benchmark):
    wire = benchmark(lambda: encode_payload(RECORD_100, compress=False))
    assert decode_payload(wire) == RECORD_100


def test_decode_payload_100_attrs(benchmark):
    wire = encode_payload(RECORD_100)
    assert benchmark(decode_payload, wire) == RECORD_100


def test_decode_payload_100_attrs_v1_baseline(benchmark):
    wire = encode_payload(RECORD_100, version=1)
    assert benchmark(decode_payload, wire) == RECORD_100


def test_encode_grouped_payload_50x10(benchmark):
    wire = benchmark(encode_payload, GROUP_50)
    assert decode_payload(wire) == GROUP_50


def test_encode_grouped_payload_50x10_v1_baseline(benchmark):
    wire = benchmark(lambda: encode_payload(GROUP_50, version=1))
    assert decode_payload(wire) == GROUP_50


def test_decode_grouped_payload_50x10(benchmark):
    wire = encode_payload(GROUP_50)
    assert benchmark(decode_payload, wire) == GROUP_50


def test_grouped_payload_interning_size_win():
    # key/value interning compounds across grouped records: the v2
    # representation is >=20% smaller before compression, and the
    # compressed wire bytes must not regress either
    v1 = len(encode_payload(GROUP_50, version=1, compress=False))
    v2 = len(encode_payload(GROUP_50, compress=False))
    assert v2 <= v1 * 0.8, f"uncompressed grouped: v1={v1} v2={v2}"
    v1c = len(encode_payload(GROUP_50, version=1))
    v2c = len(encode_payload(GROUP_50))
    assert v2c <= v1c, f"compressed grouped: v1={v1c} v2={v2c}"


def test_json_encode_100_attrs_for_comparison(benchmark):
    body = benchmark(lambda: json.dumps(RECORD_100).encode())
    # the headline size comparison: binary+zlib is much smaller than JSON
    assert len(encode_payload(RECORD_100)) < len(body) / 2


def test_mqttsn_publish_encode(benchmark):
    payload = encode_payload(RECORD_100)
    message = pkt.Publish(topic_id=7, msg_id=99, payload=payload, qos=2)
    wire = benchmark(message.encode)
    assert pkt.decode(wire) == message


def test_mqttsn_publish_decode(benchmark):
    wire = pkt.Publish(topic_id=7, msg_id=99,
                       payload=encode_payload(RECORD_100), qos=2).encode()
    decoded = benchmark(pkt.decode, wire)
    assert decoded.topic_id == 7


def test_encrypted_payload_overhead(benchmark):
    from repro.core import PayloadCipher, derive_key

    cipher = PayloadCipher(derive_key("bench"))
    wire = benchmark(lambda: encode_payload(RECORD_100, cipher=cipher))
    assert decode_payload(wire, cipher=cipher) == RECORD_100


def test_journal_append_100_attrs(benchmark, tmp_path):
    # the durable-capture write-through: one hash-chained SQLite WAL
    # append per captured payload — the real cost a durable=True client
    # pays on top of encoding (the BENCH headline tracks the ratio)
    from repro.capture import CaptureJournal

    journal = CaptureJournal(str(tmp_path / "bench.journal.db"), "bench-client")
    payload = encode_payload(RECORD_100)
    benchmark(journal.append, payload)
    assert journal.verify_chain() == len(journal)
    journal.close()


def test_journal_append_signed_100_attrs(benchmark, tmp_path):
    from repro.capture import CaptureJournal, HmacRecordSigner

    journal = CaptureJournal(
        str(tmp_path / "bench-signed.journal.db"),
        "bench-client",
        signer=HmacRecordSigner(b"bench-signing-key-16"),
    )
    payload = encode_payload(RECORD_100)
    benchmark(journal.append, payload)
    assert journal.verify_chain() == len(journal)
    journal.close()


def test_envelope_wrap_unwrap_100_attrs(benchmark):
    from repro.capture import unwrap_payload, wrap_payload

    payload = encode_payload(RECORD_100)

    def roundtrip():
        return unwrap_payload(wrap_payload("edge-dev/conf/edge/data", 12345,
                                           payload))

    client_id, seq, inner = benchmark(roundtrip)
    assert (client_id, seq) == ("edge-dev/conf/edge/data", 12345)
    assert inner == payload
