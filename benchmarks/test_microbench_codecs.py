"""Microbenchmarks: real wall-clock cost of the wire codecs.

Unlike the table benchmarks (which measure *simulated* time), these
measure the actual Python cost of the encoders/decoders this repository
runs on every captured record, and compare ProvLight's binary format
against the baselines' JSON path.  They also validate the paper's
qualitative point: the compact binary encoding is cheaper to produce
and much smaller than verbose JSON.
"""

import json

import pytest

from repro.core import decode_payload, encode_payload
from repro.mqttsn import packets as pkt

RECORD_10 = {
    "kind": "task_end", "workflow_id": 1, "task_id": "3-42",
    "transformation_id": 3, "dependencies": ["3-41"], "time": 21.5,
    "status": "finished",
    "data": [{"id": "out42", "workflow_id": 1, "derivations": ["in42"],
              "attributes": {"out": [2] * 10}}],
}

RECORD_100 = {
    **RECORD_10,
    "data": [{"id": "out42", "workflow_id": 1, "derivations": ["in42"],
              "attributes": {"out": [2] * 100}}],
}


def test_encode_payload_10_attrs(benchmark):
    wire = benchmark(encode_payload, RECORD_10)
    assert decode_payload(wire) == RECORD_10


def test_encode_payload_100_attrs(benchmark):
    wire = benchmark(encode_payload, RECORD_100)
    assert decode_payload(wire) == RECORD_100


def test_encode_payload_uncompressed_100_attrs(benchmark):
    wire = benchmark(lambda: encode_payload(RECORD_100, compress=False))
    assert decode_payload(wire) == RECORD_100


def test_decode_payload_100_attrs(benchmark):
    wire = encode_payload(RECORD_100)
    assert benchmark(decode_payload, wire) == RECORD_100


def test_json_encode_100_attrs_for_comparison(benchmark):
    body = benchmark(lambda: json.dumps(RECORD_100).encode())
    # the headline size comparison: binary+zlib is much smaller than JSON
    assert len(encode_payload(RECORD_100)) < len(body) / 2


def test_mqttsn_publish_encode(benchmark):
    payload = encode_payload(RECORD_100)
    message = pkt.Publish(topic_id=7, msg_id=99, payload=payload, qos=2)
    wire = benchmark(message.encode)
    assert pkt.decode(wire) == message


def test_mqttsn_publish_decode(benchmark):
    wire = pkt.Publish(topic_id=7, msg_id=99,
                       payload=encode_payload(RECORD_100), qos=2).encode()
    decoded = benchmark(pkt.decode, wire)
    assert decoded.topic_id == 7


def test_encrypted_payload_overhead(benchmark):
    from repro.core import PayloadCipher, derive_key

    cipher = PayloadCipher(derive_key("bench"))
    wire = benchmark(lambda: encode_payload(RECORD_100, cipher=cipher))
    assert decode_payload(wire, cipher=cipher) == RECORD_100
