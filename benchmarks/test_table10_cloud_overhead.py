"""Benchmark: paper Table X — capture overhead on cloud servers.

Same workloads on the Xeon device model over a LAN-latency link: all
three systems are low overhead (<3%), with ProvLight still the fastest
by roughly the paper's 7x/5x factors.
"""

from conftest import bench_repetitions, run_once

from repro.harness import table10


def test_table10_cloud_overhead(benchmark, show):
    result = run_once(benchmark, lambda: table10(bench_repetitions()))
    show(result.text)
    assert result.ok, result.failed_checks()
