"""Fault-tolerance cost of the broker plane: failover MTTR + degraded rate.

Two numbers the fault-tolerant server plane (shard watchdog + failover)
is judged by, both measured in *simulated* time so they are
machine-independent:

* ``failover_recovery_ms`` — mean time to recover: a shard is killed
  under a durable fan-in and the clock runs from the kill instant until
  every dropped publisher is reconnected onto a survivor with its
  journal backlog replayed (connection-state transitions timestamp
  this; no polling).  Detection (``failover_detect_s``), QoS-retry
  exhaustion, reconnect backoff and replay are all inside the window —
  it is the end-to-end publish outage a device experiences.
* ``degraded_throughput_3_of_4_shards`` — the fan-in throughput a
  4-shard cluster sustains *after* losing one shard, as a fraction of
  the healthy 4-shard rate on the identical workload.  The ring shrinks
  to 3 partitions but the dispatcher still pays its serial front cost,
  so the ratio lands between 3/4 and 1 depending on how skewed the
  re-homed sessions are.

As in ``test_broker_shard_scale.py`` the pytest-benchmark medians gate
the wall-clock cost of simulating these scenarios, while the simulated
measures ride along in ``benchmark.extra_info`` and feed the headline
rows ``scripts/run_benchmarks.py`` writes.
"""

import shutil
import tempfile
from dataclasses import dataclass

import pytest

from repro.capture import CaptureConfig, create_client
from repro.core import CallableBackend, Data, ProvLightServer, Task, Workflow
from repro.device import A8M3, XEON_GOLD_5220, Device
from repro.mqttsn import BrokerCluster, MqttSnClient
from repro.net import Network, ServerFaultInjector
from repro.simkernel import Environment

# ------------------------------------------------ failover recovery time

N_DEVICES = 4
N_TASKS = 6
KILL_AT_S = 0.8


@dataclass
class FailoverResult:
    recovery_ms: float
    captured: int
    ingested: int
    reconnected: int


def run_failover_recovery(shards: int = 4) -> FailoverResult:
    """Kill one of ``shards`` under a durable fan-in; time the outage.

    Client ids are chosen so at least one publisher homes on the victim
    shard (deterministic given the hash ring).  Every client timestamps
    its connection-state transitions; the recovery window closes when
    the last client that entered ``reconnecting`` after the kill is back
    to ``connected`` — which the client only reports after its journal
    replay drained, so the measure includes catch-up, not just the
    handshake.
    """
    env = Environment()
    net = Network(env, seed=11)
    net.add_host("cloud", device=Device(env, XEON_GOLD_5220, name="cloud-dev"))
    received = []
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(received.extend),
        workers=4, broker_shards=shards,
    )
    cluster = server.broker
    victim = None
    client_ids = []
    i = 0
    while len(client_ids) < N_DEVICES:
        candidate = f"edge-{i}"
        home = cluster.shard_of(candidate)
        if victim is None:
            victim = home
            client_ids.append(candidate)
        elif home != victim or sum(
            1 for c in client_ids if cluster.shard_of(c) == victim
        ) < 2:
            client_ids.append(candidate)
        i += 1

    journal_dir = tempfile.mkdtemp(prefix="provlight-failover-bench-")
    transitions = {cid: [] for cid in client_ids}
    clients = []
    for cid in client_ids:
        dev = Device(env, A8M3, name=cid)
        net.add_host(f"host-{cid}", device=dev)
        net.connect(f"host-{cid}", "cloud", bandwidth_bps=1e9, latency_s=0.01)
        config = CaptureConfig(
            transport="mqttsn", durable=True, journal_dir=journal_dir,
            client_id=cid, qos=1,
            reconnect_base_s=0.2, reconnect_factor=1.5, reconnect_max_s=1.0,
        )
        client = create_client(dev, server.endpoint, f"bench/{cid}/data", config)
        client.transport.mqtt.retry_interval_s = 0.2
        client.transport.mqtt.max_retries = 3
        client.add_connection_listener(
            lambda state, cid=cid: transitions[cid].append((env.now, state))
        )
        clients.append(client)

    injector = ServerFaultInjector(server)
    injector.kill_shard_at(KILL_AT_S, victim)

    done = []

    def drive(env, client, topic):
        yield from server.add_translator(topic)
        yield from client.setup()
        wf = Workflow(1, client)
        yield from wf.begin()
        for i in range(N_TASKS):
            task = Task(i, wf)
            yield from task.begin([Data(f"in{i}", 1, {"x": [1.0] * 4})])
            yield env.timeout(0.2)
            yield from task.end([Data(f"out{i}", 1, {"y": [2.0] * 4})])
        yield from wf.end(drain=True)
        done.append(env.now)

    for cid, client in zip(client_ids, clients):
        env.process(drive(env, client, f"bench/{cid}/data"))
    env.run(until=600)

    try:
        assert len(done) == N_DEVICES, "a client never finished its drain"
        assert cluster.failovers.count == 1

        # close the window at the last post-kill return to "connected"
        recovered_at = None
        reconnected = 0
        for cid, log in transitions.items():
            dropped_at = next(
                (t for t, s in log if t >= KILL_AT_S and s == "reconnecting"),
                None,
            )
            if dropped_at is None:
                continue
            reconnected += 1
            back = max(t for t, s in log if s == "connected" and t > dropped_at)
            recovered_at = back if recovered_at is None else max(recovered_at, back)
        assert recovered_at is not None, "no client exercised the outage"
        captured = sum(c.records_captured.count for c in clients)
        return FailoverResult(
            recovery_ms=(recovered_at - KILL_AT_S) * 1e3,
            captured=captured,
            ingested=int(server.records_ingested.total),
            reconnected=reconnected,
        )
    finally:
        for client in clients:
            client.close()
        shutil.rmtree(journal_dir, ignore_errors=True)


def test_failover_recovery(benchmark):
    result = benchmark(run_failover_recovery)
    expected = N_DEVICES * (2 + 2 * N_TASKS)
    assert result.captured == expected
    assert result.ingested == expected  # zero loss, exactly once
    assert result.reconnected >= 1
    benchmark.extra_info["failover_recovery_ms"] = round(result.recovery_ms, 1)
    benchmark.extra_info["reconnected_clients"] = result.reconnected


# ------------------------------------------- degraded fan-in throughput

N_PUBLISHERS = 48
MSGS_PER_PUBLISHER = 25
BLAST_AT_S = 1.0
#: kill instant for the degraded run: before any CONNECT, so publishers
#: classify onto the already-shrunk ring (plain MQTT-SN clients have no
#: reconnect machine; mid-connection kills belong to the recovery
#: benchmark above)
DEGRADE_AT_S = 0.01
CONNECT_AT_S = 0.3


@dataclass
class DegradedRunResult:
    live_shards: int
    delivered: int
    makespan_s: float

    @property
    def throughput_msgs_per_s(self) -> float:
        return self.delivered / self.makespan_s


def run_degraded_publish_workload(shards: int = 4,
                                  kill_one: bool = False) -> DegradedRunResult:
    """The shard-scale fan-in, optionally on a plane that lost a shard.

    With ``kill_one`` the first shard is killed (and failed over) before
    any client connects: the measured blast then runs on the surviving
    ``shards - 1`` partitions behind the same dispatcher — the steady
    degraded state after a failover, isolated from the outage transient.
    """
    env = Environment()
    net = Network(env, seed=3)
    net.add_host("cloud")
    cluster = BrokerCluster(net.hosts["cloud"], shards=shards)

    if kill_one:
        def chaos(env):
            yield env.timeout(DEGRADE_AT_S)
            cluster.kill_shard(0)

        env.process(chaos(env))

    expected = N_PUBLISHERS * MSGS_PER_PUBLISHER
    done = {"at": None, "count": 0}

    def on_message(topic, payload):
        done["count"] += 1
        if done["count"] == expected:
            done["at"] = env.now

    net.add_host("monitor")
    net.connect("monitor", "cloud", bandwidth_bps=1e9, latency_s=0.0005)
    monitor = MqttSnClient(net.hosts["monitor"], "monitor", cluster.endpoint)

    def run_monitor(env):
        yield env.timeout(CONNECT_AT_S)  # well after the failover settled
        yield from monitor.connect()
        yield from monitor.subscribe("bench/#", on_message, qos=0)

    def run_publisher(env, client, index):
        yield env.timeout(CONNECT_AT_S)
        yield from client.connect()
        topic_id = yield from client.register(f"bench/dev-{index}/data")
        yield env.timeout(BLAST_AT_S - env.now)
        for m in range(MSGS_PER_PUBLISHER):
            client.publish_nowait(topic_id, b"m%05d" % m, qos=0)

    env.process(run_monitor(env))
    for i in range(N_PUBLISHERS):
        name = f"edge-{i}"
        net.add_host(name)
        net.connect(name, "cloud", bandwidth_bps=1e9, latency_s=0.0005)
        client = MqttSnClient(net.hosts[name], f"pub-{i}", cluster.endpoint)
        env.process(run_publisher(env, client, i))
    env.run()

    assert done["at"] is not None, (
        f"only {done['count']}/{expected} messages delivered"
    )
    if kill_one:
        assert cluster.failovers.count == 1
    return DegradedRunResult(
        live_shards=len(cluster.alive_shards),
        delivered=done["count"],
        makespan_s=done["at"] - BLAST_AT_S,
    )


def test_degraded_cluster_publish_throughput(benchmark):
    result = benchmark(run_degraded_publish_workload, 4, True)
    assert result.delivered == N_PUBLISHERS * MSGS_PER_PUBLISHER
    assert result.live_shards == 3
    benchmark.extra_info["live_shards"] = result.live_shards
    benchmark.extra_info["simulated_msgs_per_s"] = round(
        result.throughput_msgs_per_s, 1
    )
    benchmark.extra_info["simulated_makespan_ms"] = round(
        result.makespan_s * 1e3, 3
    )


def test_degraded_throughput_stays_useful():
    """Acceptance bar, deterministic in simulated time: losing 1 of 4
    shards keeps at least half the healthy fan-in throughput (expected
    ~3/4: three live partitions behind the same serial dispatcher)."""
    healthy = run_degraded_publish_workload(4, kill_one=False)
    degraded = run_degraded_publish_workload(4, kill_one=True)
    assert healthy.delivered == degraded.delivered
    ratio = degraded.throughput_msgs_per_s / healthy.throughput_msgs_per_s
    assert ratio > 0.5, f"degraded throughput collapsed to {ratio:.2f}x"
