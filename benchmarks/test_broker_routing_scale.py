"""Microbenchmarks: broker routing and translator sharding at 1000 topics.

The seed broker routed each PUBLISH with an O(sessions x subscriptions)
linear scan and the server spawned one subscriber client per topic.
These benchmarks pit that layout against this repo's replacements — the
:class:`~repro.mqttsn.topics.SubscriptionIndex` (exact hash map +
wildcard trie) and the fixed-size :class:`~repro.core.TranslatorPool` —
at the scale the paper's Table IX argument points towards: 1000
per-device topics served by 4 pool workers.

``test_routing_index_speedup_at_1000_topics`` pins the acceptance bar
(>=5x over the seed scan); ``scripts/run_benchmarks.py`` records the
measured ratio in ``BENCH_microbench_codecs.json``.
"""

import time

from repro.core import CallableBackend, ProvLightServer
from repro.device import XEON_GOLD_5220, Device
from repro.mqttsn import SubscriptionIndex, topic_matches
from repro.net import Network
from repro.simkernel import Environment

N_TOPICS = 1000
POOL_WORKERS = 4

#: topic hit mid-registry: the seed scan pays half the session list even
#: on a hit, the index pays one hash lookup plus a short trie walk
PROBE_TOPIC = f"provlight/dev-{N_TOPICS // 2}/data"


def sessions_with_1000_topics():
    """Seed layout: one subscriber session per device topic, plus the two
    wildcard monitors a dashboard deployment adds."""
    sessions = {}
    for i in range(N_TOPICS):
        sessions[("cloud", 40000 + i)] = [(f"provlight/dev-{i}/data", 2)]
    sessions[("cloud", 39998)] = [("provlight/+/data", 1)]
    sessions[("cloud", 39999)] = [("provlight/#", 0)]
    return sessions


def linear_route(sessions, topic):
    """The seed broker's ``_forward`` loop, kept as the perf baseline."""
    out = []
    for key, subs in sessions.items():
        for pattern, qos in subs:
            if topic_matches(pattern, topic):
                out.append((key, qos))
                break  # one delivery per client even with overlapping subs
    return out


def build_index(sessions):
    index = SubscriptionIndex()
    for key, subs in sessions.items():
        for pattern, qos in subs:
            index.add(key, pattern, qos)
    return index


def test_route_1000_topics_linear_scan_baseline(benchmark):
    sessions = sessions_with_1000_topics()
    matches = benchmark(linear_route, sessions, PROBE_TOPIC)
    assert len(matches) == 3  # the device subscriber + both wildcards


def test_route_1000_topics_index(benchmark):
    sessions = sessions_with_1000_topics()
    index = build_index(sessions)
    matches = benchmark(index.match, PROBE_TOPIC)
    # same result set as the seed scan (order differs: subscription age)
    assert dict(matches) == dict(linear_route(sessions, PROBE_TOPIC))


def test_index_maintenance_1000_subscribe_disconnect(benchmark):
    sessions = sessions_with_1000_topics()

    def churn():
        index = build_index(sessions)
        for key in sessions:
            index.remove(key)
        return index

    index = benchmark(churn)
    assert index.match(PROBE_TOPIC) == []


def test_routing_index_speedup_at_1000_topics():
    """Acceptance bar: the index routes >=5x faster than the seed scan."""
    sessions = sessions_with_1000_topics()
    index = build_index(sessions)
    probes = [f"provlight/dev-{i}/data" for i in range(0, N_TOPICS, 97)]

    def best_of(fn, repeats=5, iterations=20):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(iterations):
                for topic in probes:
                    fn(topic)
            best = min(best, time.perf_counter() - start)
        return best

    scan_s = best_of(lambda topic: linear_route(sessions, topic))
    index_s = best_of(index.match)
    speedup = scan_s / index_s
    assert speedup >= 5.0, f"routing speedup only {speedup:.1f}x"


def _pool_world(workers):
    env = Environment()
    net = Network(env, seed=1)
    device = Device(env, XEON_GOLD_5220, name="cloud-dev")
    net.add_host("cloud", device=device)
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(lambda r: None), workers=workers
    )
    return env, server


def test_pool_shard_assignment_1000_topics(benchmark):
    env, server = _pool_world(POOL_WORKERS)
    topics = [f"provlight/dev-{i}/data" for i in range(N_TOPICS)]

    def assign():
        return [server.pool.worker_for(topic).index for topic in topics]

    assignment = benchmark(assign)
    shares = [assignment.count(w.index) for w in server.pool.workers]
    assert len(shares) == POOL_WORKERS
    assert all(share > 0 for share in shares)
    # consistent hashing keeps the heaviest shard well under a hot spot
    assert max(shares) < N_TOPICS * 0.6


def test_pool_subscribes_1000_topics_with_4_clients():
    """1000 topics x 4 workers versus the seed's 1000 subscriber clients:
    the pool keeps the broker at 4 sessions and still attaches every
    topic."""
    env, server = _pool_world(POOL_WORKERS)

    def scenario(env):
        for i in range(N_TOPICS):
            yield from server.add_translator(f"provlight/dev-{i}/data")

    env.process(scenario(env))
    env.run()
    assert sum(len(w.topic_filters) for w in server.pool.workers) == N_TOPICS
    assert len(server.broker.sessions) == POOL_WORKERS
    assert len(server.broker.subscriptions) == N_TOPICS
