"""Benchmark: paper Table III — ProvLake grouping vs bandwidth.

Grouping amortizes the expensive serialize+POST over many records: at
1 Gbit it reaches low overhead (<3%) at group=50, while at 25 Kbit the
transfer time dominates and overhead stays >43% for every group size.
"""

from conftest import bench_repetitions, run_once

from repro.harness import table3


def test_table3_provlake_grouping(benchmark, show):
    result = run_once(benchmark, lambda: table3(bench_repetitions()))
    show(result.text)
    assert result.ok, result.failed_checks()
