"""Benchmark: paper Table IX — ProvLight scalability to 64 devices.

8..64 devices publish to per-device topics in parallel; the broker fans
out to one translator per topic. Per-device overhead stays flat because
clients publish asynchronously — the cloud side absorbs the fan-in.
"""

from conftest import bench_repetitions, run_once

from repro.harness import table9


def test_table9_scalability(benchmark, show):
    result = run_once(benchmark, lambda: table9(bench_repetitions(2)))
    show(result.text)
    assert result.ok, result.failed_checks()
