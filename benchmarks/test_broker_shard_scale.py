"""Broker-plane horizontal scaling: PUBLISH throughput at 1/2/4/8 shards.

Table IX-style fan-in — dozens of devices publishing to per-device
topics at the same instant, with a wildcard monitor subscribed to all of
them — driven into a :class:`~repro.mqttsn.BrokerCluster` at increasing
shard counts.  A cluster of one is the seed deployment (one broker owns
the port); larger clusters pay the front dispatcher's bundled forwarding
cost (``broker_dispatch_fixed_s`` per shard bundle +
``broker_dispatch_per_datagram_s`` per datagram) but service their
session partitions in parallel, so the *simulated* sustained throughput
rises until the serial dispatch cost dominates.

Two kinds of numbers come out of this file:

* pytest-benchmark medians (wall-clock cost of simulating the workload,
  gated against the checked-in baseline like every other microbench);
* the simulated ``msgs/s`` each run records via ``benchmark.extra_info``
  — machine-independent, and the source of the
  ``broker_throughput_speedup_4_shards_over_1`` headline that
  ``scripts/run_benchmarks.py`` writes to ``BENCH_microbench_codecs.json``.

``test_cluster_throughput_scales_with_shards`` pins the acceptance bar
(4 shards sustain measurably more than 1) deterministically in simulated
time, so it holds on any hardware.
"""

from dataclasses import dataclass

import pytest

from repro.mqttsn import BrokerCluster, MqttSnClient
from repro.net import Network
from repro.simkernel import Environment

N_PUBLISHERS = 48
MSGS_PER_PUBLISHER = 25
SHARD_COUNTS = (1, 2, 4, 8)

#: all publishers blast at this simulated instant, well after every
#: CONNECT/REGISTER exchange has settled
BLAST_AT_S = 1.0


@dataclass
class ShardRunResult:
    shards: int
    delivered: int
    makespan_s: float
    #: front-dispatcher amortization: datagrams forwarded per shard
    #: bundle (0 for the dispatcher-less single-shard deployment)
    datagrams_per_bundle: float = 0.0

    @property
    def throughput_msgs_per_s(self) -> float:
        return self.delivered / self.makespan_s


def run_publish_workload(shards: int) -> ShardRunResult:
    """Drive the fan-in workload into a ``shards``-wide cluster.

    Returns the simulated makespan from the blast instant to the last
    delivery at the wildcard monitor (QoS 0 end to end: the broker plane
    itself is the only queueing stage, which is what we are measuring).
    """
    env = Environment()
    net = Network(env, seed=3)
    net.add_host("cloud")
    cluster = BrokerCluster(net.hosts["cloud"], shards=shards)

    expected = N_PUBLISHERS * MSGS_PER_PUBLISHER
    done = {"at": None, "count": 0}

    def on_message(topic, payload):
        done["count"] += 1
        if done["count"] == expected:
            done["at"] = env.now

    net.add_host("monitor")
    net.connect("monitor", "cloud", bandwidth_bps=1e9, latency_s=0.0005)
    monitor = MqttSnClient(net.hosts["monitor"], "monitor", cluster.endpoint)

    def run_monitor(env):
        yield from monitor.connect()
        yield from monitor.subscribe("bench/#", on_message, qos=0)

    def run_publisher(env, client, index):
        yield from client.connect()
        topic_id = yield from client.register(f"bench/dev-{index}/data")
        yield env.timeout(BLAST_AT_S - env.now)
        for m in range(MSGS_PER_PUBLISHER):
            client.publish_nowait(topic_id, b"m%05d" % m, qos=0)

    env.process(run_monitor(env))
    for i in range(N_PUBLISHERS):
        name = f"edge-{i}"
        net.add_host(name)
        net.connect(name, "cloud", bandwidth_bps=1e9, latency_s=0.0005)
        client = MqttSnClient(net.hosts[name], f"pub-{i}", cluster.endpoint)
        env.process(run_publisher(env, client, i))
    env.run()

    assert done["at"] is not None, (
        f"only {done['count']}/{expected} messages delivered"
    )
    return ShardRunResult(
        shards=shards,
        delivered=done["count"],
        makespan_s=done["at"] - BLAST_AT_S,
        datagrams_per_bundle=(
            cluster.dispatcher.datagrams_per_bundle if cluster.dispatcher else 0.0
        ),
    )


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_cluster_publish_throughput(benchmark, shards):
    result = benchmark(run_publish_workload, shards)
    assert result.delivered == N_PUBLISHERS * MSGS_PER_PUBLISHER
    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["simulated_msgs_per_s"] = round(
        result.throughput_msgs_per_s, 1
    )
    benchmark.extra_info["simulated_makespan_ms"] = round(
        result.makespan_s * 1e3, 3
    )
    benchmark.extra_info["dispatch_datagrams_per_bundle"] = round(
        result.datagrams_per_bundle, 2
    )


def test_cluster_throughput_scales_with_shards():
    """Acceptance bar: 4 shards sustain >1.5x the single broker's
    simulated PUBLISH throughput on the same workload (expected ~3.5x:
    near-linear shard scaling minus the serial dispatcher front)."""
    one = run_publish_workload(1)
    four = run_publish_workload(4)
    assert one.delivered == four.delivered
    speedup = four.throughput_msgs_per_s / one.throughput_msgs_per_s
    assert speedup > 1.5, f"shard scaling speedup only {speedup:.2f}x"
