"""Benchmark: ablation of ProvLight's design choices (paper Section VII-A).

The paper attributes the gains to four choices; this bench toggles each
one on the 0.5 s / 100-attribute workload and prints its contribution:

* async MQTT-SN/UDP vs blocking HTTP/TCP (the dominant factor),
* payload compression,
* grouping of ended-task records,
* the simplified data model (dominant for memory).
"""

import numpy as np
from conftest import bench_repetitions, run_once

from repro.baselines.ablations import SyncHttpProvLightClient, VerboseModelProvLightClient
from repro.core import CallableBackend, ProvLightClient, ProvLightServer
from repro.device import A8M3, Device
from repro.http import HttpResponse, HttpServer
from repro.metrics import mean_ci, render_table
from repro.net import Network
from repro.simkernel import Environment
from repro.workloads import SyntheticWorkloadConfig, synthetic_workload

CONFIG = SyntheticWorkloadConfig(attributes_per_task=100, task_duration_s=0.5)


def _run_variant(variant: str, seed: int):
    env = Environment()
    net = Network(env, seed=seed)
    dev = Device(env, A8M3)
    net.add_host("edge", device=dev)
    net.add_host("cloud")
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.023)
    result = {}

    if variant == "sync-http":
        HttpServer(net.hosts["cloud"], 5000, lambda r: HttpResponse(status=201))
        client = SyncHttpProvLightClient(dev, ("cloud", 5000))
        env.process(synthetic_workload(env, client, CONFIG,
                                       rng=np.random.default_rng(seed), result=result))
    else:
        server = ProvLightServer(net.hosts["cloud"], CallableBackend(lambda r: None))
        kwargs = {}
        cls = ProvLightClient
        if variant == "no-compression":
            kwargs["compress"] = False
        elif variant == "grouping-50":
            kwargs["group_size"] = 50
        elif variant == "verbose-model":
            cls = VerboseModelProvLightClient
        client = cls(dev, server.endpoint, "abl/edge", **kwargs)

        def scenario(env):
            yield from server.add_translator("abl/#")
            yield from synthetic_workload(env, client, CONFIG,
                                          rng=np.random.default_rng(seed),
                                          result=result)

        env.process(scenario(env))
    env.run(until=200)
    nominal = CONFIG.nominal_duration_s()
    payload = getattr(client, "payload_bytes", None)
    bytes_total = payload.total if payload else client.body_bytes.total
    return {
        "overhead": result["elapsed"] / nominal - 1.0,
        # utilization over the workflow window (not the drain tail)
        "cpu": dev.cpu.busy_time("capture") / result["elapsed"],
        "mem": (dev.memory.peak("capture-static")
                + dev.memory.peak("capture-buffers")) / dev.spec.ram_bytes,
        "bytes": bytes_total,
    }


VARIANTS = ["full", "grouping-50", "no-compression", "verbose-model", "sync-http"]


def run_ablation(reps: int):
    rows = []
    measured = {}
    for variant in VARIANTS:
        samples = [_run_variant(variant, seed + 1) for seed in range(reps)]
        overhead = mean_ci([s["overhead"] for s in samples])
        measured[variant] = {
            "overhead": overhead.mean,
            "cpu": float(np.mean([s["cpu"] for s in samples])),
            "mem": float(np.mean([s["mem"] for s in samples])),
            "bytes": float(np.mean([s["bytes"] for s in samples])),
        }
        m = measured[variant]
        rows.append([
            variant,
            overhead.as_percent(),
            f"{m['cpu'] * 100:.2f}%",
            f"{m['mem'] * 100:.2f}%",
            f"{m['bytes'] / 1024:.1f} KB",
        ])
    text = render_table(
        "Ablation - ProvLight design choices (0.5s tasks, 100 attrs)",
        ["variant", "time overhead", "capture CPU", "capture memory", "payload bytes"],
        rows,
        note=(
            "paper VII-A: the async protocol dominates capture time/CPU; the "
            "simplified data model dominates memory and trims time/CPU further"
        ),
    )
    return text, measured


def test_ablation_design_choices(benchmark, show):
    text, m = run_once(benchmark, lambda: run_ablation(bench_repetitions(2)))
    show(text)
    # protocol is the dominant factor for capture time (paper's main claim)
    assert m["sync-http"]["overhead"] > 5 * m["full"]["overhead"]
    # the simplified model is the dominant factor for memory
    assert m["verbose-model"]["mem"] > 1.5 * m["full"]["mem"]
    # verbose model also costs extra capture time and CPU
    assert m["verbose-model"]["overhead"] > m["full"]["overhead"]
    assert m["verbose-model"]["cpu"] > m["full"]["cpu"]
    # compression reduces bytes on the wire
    assert m["no-compression"]["bytes"] > m["full"]["bytes"]
    # grouping reduces overhead a little (never increases it)
    assert m["grouping-50"]["overhead"] <= m["full"]["overhead"] * 1.02
