"""Benchmark: paper Fig. 6 (a-d) — CPU, memory, network and power
overheads of capture on the edge device.

All four panels share one experimental condition (0.5 s tasks, 100
attributes), executed once per system by the module-scoped fixture.
"""

import pytest
from conftest import bench_repetitions, run_once

from repro.harness import fig6a_cpu, fig6b_memory, fig6c_network, fig6d_power, figure6_runs


@pytest.fixture(scope="module")
def runs():
    return figure6_runs(bench_repetitions())


def test_fig6a_cpu_overhead(benchmark, show, runs):
    result = run_once(benchmark, lambda: fig6a_cpu(runs))
    show(result.text)
    assert result.ok, result.failed_checks()


def test_fig6b_memory_overhead(benchmark, show, runs):
    result = run_once(benchmark, lambda: fig6b_memory(runs))
    show(result.text)
    assert result.ok, result.failed_checks()


def test_fig6c_network_overhead(benchmark, show, runs):
    result = run_once(benchmark, lambda: fig6c_network(runs))
    show(result.text)
    assert result.ok, result.failed_checks()


def test_fig6d_power_overhead(benchmark, show, runs):
    result = run_once(benchmark, lambda: fig6d_power(runs))
    show(result.text)
    assert result.ok, result.failed_checks()
