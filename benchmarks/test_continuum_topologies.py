"""Continuum topology sweep: Table IX fan-in per topology preset, plus
fleet-churn recovery time.

The scalability experiments so far measured fan-in over an ideal star;
this file re-runs the same shape of workload over each
:data:`~repro.net.continuum.TOPOLOGY_PRESETS` tier layout — constrained
25 Kbit edge uplinks, lossy wireless with Gilbert-Elliott bursts, WAN
fog hops — and records the *simulated* ingestion throughput via
``benchmark.extra_info`` (machine-independent, like the shard-scale
benchmarks).  ``scripts/run_benchmarks.py`` turns them into the
``continuum_throughput_ratio_lossy_edge_over_ideal`` headline: what the
continuum's worst radio layer costs versus the ideal star assumption.

``test_fleet_churn_recovery`` measures the device-plane chaos path: a
durable 10-client fleet suffers 20% churn and the median crash→up
recovery time (restart + journal replay, on the simulation clock) lands
in the ``fleet_churn_recovery_ms_20pct`` headline.
"""

import shutil
import tempfile
from dataclasses import dataclass

import pytest

from repro.capture import CaptureConfig, create_client
from repro.core import CallableBackend, ProvLightServer
from repro.device import A8M3, XEON_GOLD_5220, Device
from repro.mqttsn.client import MqttSnTimeout
from repro.net import (
    TOPOLOGY_PRESETS,
    ContinuumTopology,
    FleetFaultInjector,
    Network,
    TopologySpec,
)
from repro.simkernel import Environment

N_DEVICES = 12
RECORDS_PER_DEVICE = 10
PRESETS = tuple(TOPOLOGY_PRESETS)

CHURN_FLEET = 10
CHURN_FRACTION = 0.2
CHURN_DOWN_S = 1.0


@dataclass
class FaninResult:
    preset: str
    delivered: int
    makespan_s: float

    @property
    def throughput_msgs_per_s(self) -> float:
        return self.delivered / self.makespan_s


def record(i, now):
    return {"kind": "task_begin", "workflow_id": 1,
            "transformation_id": 1, "task_id": i, "time": now}


def build_capture_world(preset, n_devices, seed, journal_dir=None):
    """A ProvLight server on the cloud root of ``preset``, one capture
    client per edge device."""
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("cloud", device=Device(env, XEON_GOLD_5220, name="cloud-dev"))
    received = []
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(received.extend), workers=4,
    )
    spec = TopologySpec.parse(preset).scaled(n_devices)
    devices = []

    def factory(tier, index):
        if tier != spec.leaf.name:
            return None
        device = Device(env, A8M3, name=f"{tier}-{index}")
        devices.append(device)
        return device

    topo = ContinuumTopology(net, spec, root_host="cloud",
                             device_factory=factory)
    clients = []
    for device in devices:
        config = CaptureConfig(
            transport="mqttsn", qos=1,
            durable=journal_dir is not None,
            journal_dir=journal_dir, client_id=device.name,
            reconnect_base_s=0.2, reconnect_factor=1.5, reconnect_max_s=1.0,
        )
        client = create_client(device, server.endpoint,
                               f"bench/{device.name}/data", config)
        client.transport.mqtt.retry_interval_s = 0.2
        clients.append(client)
    return env, net, server, received, topo, clients


def setup_with_retry(env, client):
    """Burst loss can eat a whole handshake; setup is idempotent."""
    for _ in range(30):
        try:
            yield from client.setup()
            return
        except MqttSnTimeout:
            yield env.timeout(0.5)
    raise AssertionError(f"{client.client_id} never completed setup")


def run_topology_fanin(preset: str) -> FaninResult:
    """Simulated makespan of the Table IX-style fan-in over ``preset``.

    Clients are durable: over a lossy layer, QoS 1 alone is
    at-least-once — only the durable dedup envelope makes the ingested
    count comparable across presets (exactly once everywhere).
    """
    journal_dir = tempfile.mkdtemp(prefix="bench-fanin-journals-")
    try:
        return _run_topology_fanin(preset, journal_dir)
    finally:
        shutil.rmtree(journal_dir, ignore_errors=True)


def _run_topology_fanin(preset: str, journal_dir: str) -> FaninResult:
    env, net, server, received, topo, clients = build_capture_world(
        preset, N_DEVICES, seed=9, journal_dir=journal_dir,
    )
    done = []

    def workload(env, client):
        yield from server.add_translator(client.topic)
        yield from setup_with_retry(env, client)
        for i in range(RECORDS_PER_DEVICE):
            yield from client.capture(record(i, env.now))
        yield from client.drain()
        done.append(env.now)

    for client in clients:
        env.process(workload(env, client))
    env.run(until=3600)
    assert len(done) == N_DEVICES, "some client never drained"
    expected = N_DEVICES * RECORDS_PER_DEVICE
    # QoS 1 retries ride out uniform and burst loss; nothing may vanish
    assert len(received) == expected, (
        f"{preset}: {len(received)}/{expected} records ingested"
    )
    return FaninResult(
        preset=preset, delivered=len(received), makespan_s=max(done),
    )


@pytest.mark.parametrize("preset", PRESETS)
def test_topology_fanin_throughput(benchmark, preset):
    result = benchmark(run_topology_fanin, preset)
    assert result.delivered == N_DEVICES * RECORDS_PER_DEVICE
    benchmark.extra_info["preset"] = preset
    benchmark.extra_info["simulated_msgs_per_s"] = round(
        result.throughput_msgs_per_s, 1
    )
    benchmark.extra_info["simulated_makespan_ms"] = round(
        result.makespan_s * 1e3, 1
    )


def test_lossy_edge_throughput_stays_within_reason():
    """Acceptance bar, in simulated time so it holds on any hardware:
    the lossy-wireless continuum ingests everything (QoS 1 + dedup),
    slower than the ideal star but not pathologically so."""
    ideal = run_topology_fanin("ideal")
    lossy = run_topology_fanin("lossy-wireless")
    assert lossy.delivered == ideal.delivered
    ratio = lossy.throughput_msgs_per_s / ideal.throughput_msgs_per_s
    assert ratio < 1.0, "a lossy radio layer cannot beat the ideal star"
    # ~100x slower is the expected cost of loss-triggered retry backoff
    # over sub-ms links; another order of magnitude would mean livelock
    assert ratio > 0.002, f"lossy-wireless collapsed to {ratio:.4f}x ideal"


def run_churn_recovery() -> float:
    """Max crash→up recovery time (sim seconds) of a 20% churn wave over
    a durable 10-client fleet on the ideal preset."""
    journal_dir = tempfile.mkdtemp(prefix="bench-churn-journals-")
    try:
        env, net, server, received, topo, clients = build_capture_world(
            "ideal", CHURN_FLEET, seed=23, journal_dir=journal_dir,
        )
        fleet = FleetFaultInjector(env, topology=topo, seed=23)
        proxies = []
        for client in clients:
            def build(client=client):
                return create_client(
                    client.device, server.endpoint, client.topic,
                    client.config,
                )

            fleet.register(client.device.name, client, build)
            proxies.append(fleet.proxy(client.device.name))
        fleet.churn_at(0.8, CHURN_FRACTION, CHURN_DOWN_S)
        done = []

        def workload(env, proxy):
            yield from server.add_translator(proxy.topic)
            yield from setup_with_retry(env, proxy)
            for i in range(RECORDS_PER_DEVICE):
                yield from proxy.capture(record(i, env.now))
                yield env.timeout(0.25)
            yield from proxy.drain()
            done.append(env.now)

        for proxy in proxies:
            env.process(workload(env, proxy))
        env.run(until=3600)
        assert len(done) == CHURN_FLEET, "some proxy never drained"
        stats = fleet.stats()
        assert stats["devices_crashed"] == round(CHURN_FRACTION * CHURN_FLEET)
        assert stats["devices_down"] == 0
        completed = sum(p.records_completed for p in proxies)
        assert completed == CHURN_FLEET * RECORDS_PER_DEVICE
        assert len(received) == completed, "churn lost records"
        return max(fleet.recovery_times_s())
    finally:
        shutil.rmtree(journal_dir, ignore_errors=True)


def test_fleet_churn_recovery(benchmark):
    recovery_s = benchmark(run_churn_recovery)
    # down_s is the floor: a restart cannot finish before its schedule
    assert recovery_s >= CHURN_DOWN_S
    benchmark.extra_info["fleet_churn_recovery_ms_20pct"] = round(
        recovery_s * 1e3, 1
    )
    benchmark.extra_info["churn_fraction"] = CHURN_FRACTION
    benchmark.extra_info["fleet_size"] = CHURN_FLEET
