"""Benchmark: paper Table VII — ProvLight capture overhead on IoT/Edge.

The headline table: ProvLight stays under 3% on all eight synthetic
workloads (vs >39% for the baselines at 0.5 s tasks), under 0.5% for
3.5 s+ tasks, and attribute count barely moves the needle.
"""

from conftest import bench_repetitions, run_once

from repro.harness import table7


def test_table7_provlight_edge_overhead(benchmark, show):
    result = run_once(benchmark, lambda: table7(bench_repetitions()))
    show(result.text)
    assert result.ok, result.failed_checks()
