"""Legacy setup shim.

The evaluation environment is offline and lacks the ``wheel`` package, so
PEP 660 editable installs fail; with this shim ``pip install -e .`` falls
back to the classic ``setup.py develop`` path which needs only setuptools.
"""
from setuptools import setup

setup()
