#!/usr/bin/env python
"""repro-lint CLI: run the reproducibility lint over the tree.

Usage::

    python scripts/lint.py                      # lint src and tests
    python scripts/lint.py src tests --format=json
    python scripts/lint.py --rules wall-clock,bare-swallow src
    python scripts/lint.py --list-rules

Exit codes: 0 clean, 1 violations found, 2 usage error.  CI runs this
before pytest (see scripts/ci.sh); the rule catalog and suppression
grammar are documented in docs/static-analysis.md.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.analysis import (  # noqa: E402  (path bootstrap above)
    all_rules,
    get_rules,
    lint_paths,
    render_json,
    render_text,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python scripts/lint.py",
        description="Static reproducibility lint (see docs/static-analysis.md).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="NAMES",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, rule in sorted(all_rules().items()):
            scope = "src-only" if rule.src_only else "everywhere"
            print(f"{name:20s} [{scope}] {rule.description}")
        return 0

    try:
        rules = get_rules(
            [n.strip() for n in args.rules.split(",") if n.strip()]
            if args.rules else None
        )
    except ValueError as exc:
        parser.error(str(exc))

    missing = [p for p in (args.paths or ["src", "tests"]) if not os.path.exists(p)]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    violations, files_checked = lint_paths(args.paths or ["src", "tests"], rules)
    renderer = render_json if args.format == "json" else render_text
    print(renderer(violations, files_checked))
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
