#!/usr/bin/env python
"""Run the codec microbenchmarks and record the perf trajectory.

Runs ``benchmarks/test_microbench_codecs.py`` under pytest-benchmark with
a fixed seed, then writes ``BENCH_microbench_codecs.json`` at the repo
root: median ns/op per benchmark, the real payload sizes the codecs
produce, and the headline v2-vs-v1 ratios the hot-path issue tracks.

Regression gate: when ``benchmarks/baseline_microbench_codecs.json``
exists, any benchmark whose median is more than ``--threshold`` (default
25%) slower than the baseline fails the run with exit code 1, so CI can
catch codec regressions.  ``--write-baseline`` refreshes the baseline
from the current run.

Usage::

    python scripts/run_benchmarks.py              # run + write BENCH json
    python scripts/run_benchmarks.py --write-baseline
    python scripts/run_benchmarks.py --threshold 0.10
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "benchmarks" / "test_microbench_codecs.py"
OUTPUT_FILE = REPO_ROOT / "BENCH_microbench_codecs.json"
BASELINE_FILE = REPO_ROOT / "benchmarks" / "baseline_microbench_codecs.json"

#: deterministic interpreter state for reproducible dict ordering/hashing
FIXED_SEED = "0"


def run_pytest_benchmark(json_out: Path) -> None:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = FIXED_SEED
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_FILE),
        "-q",
        "--benchmark-only",
        "--benchmark-disable-gc",
        "--benchmark-warmup=on",
        f"--benchmark-json={json_out}",
    ]
    result = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    if result.returncode != 0:
        sys.exit(f"benchmark run failed (pytest exit {result.returncode})")


def payload_sizes() -> dict:
    import importlib.util

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core import encode_payload

    spec = importlib.util.spec_from_file_location("microbench_codecs", BENCH_FILE)
    mb = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mb)

    record_100 = mb.RECORD_100
    group_50 = mb.GROUP_50
    return {
        "record_100_v1_bytes": len(encode_payload(record_100, version=1)),
        "record_100_v2_bytes": len(encode_payload(record_100)),
        "record_100_v1_uncompressed_bytes": len(
            encode_payload(record_100, version=1, compress=False)
        ),
        "record_100_v2_uncompressed_bytes": len(
            encode_payload(record_100, compress=False)
        ),
        "grouped_50x10_v1_bytes": len(encode_payload(group_50, version=1)),
        "grouped_50x10_v2_bytes": len(encode_payload(group_50)),
        "grouped_50x10_v1_uncompressed_bytes": len(
            encode_payload(group_50, version=1, compress=False)
        ),
        "grouped_50x10_v2_uncompressed_bytes": len(
            encode_payload(group_50, compress=False)
        ),
    }


def summarize(raw: dict) -> dict:
    benchmarks = {}
    for bench in raw.get("benchmarks", ()):
        stats = bench["stats"]
        benchmarks[bench["name"]] = {
            "median_ns": round(stats["median"] * 1e9, 1),
            "mean_ns": round(stats["mean"] * 1e9, 1),
            "stddev_ns": round(stats["stddev"] * 1e9, 1),
            "rounds": stats["rounds"],
        }
    return benchmarks


def headline(benchmarks: dict, sizes: dict) -> dict:
    def median(name: str):
        entry = benchmarks.get(name)
        return entry["median_ns"] if entry else None

    out: dict = {}
    e1 = median("test_encode_payload_100_attrs_v1_baseline")
    e2 = median("test_encode_payload_100_attrs")
    d1 = median("test_decode_payload_100_attrs_v1_baseline")
    d2 = median("test_decode_payload_100_attrs")
    if all(x for x in (e1, e2, d1, d2)):
        out["encode_speedup_v2_over_v1"] = round(e1 / e2, 2)
        out["decode_speedup_v2_over_v1"] = round(d1 / d2, 2)
        out["encode_decode_speedup_v2_over_v1"] = round((e1 + d1) / (e2 + d2), 2)
    g1 = sizes["grouped_50x10_v1_uncompressed_bytes"]
    g2 = sizes["grouped_50x10_v2_uncompressed_bytes"]
    out["grouped_uncompressed_size_reduction"] = round(1 - g2 / g1, 3)
    out["grouped_compressed_size_reduction"] = round(
        1 - sizes["grouped_50x10_v2_bytes"] / sizes["grouped_50x10_v1_bytes"], 3
    )
    return out


def check_regressions(benchmarks: dict, baseline: dict, threshold: float) -> list:
    regressions = []
    for name, entry in baseline.get("benchmarks", {}).items():
        current = benchmarks.get(name)
        if current is None:
            continue
        old, new = entry["median_ns"], current["median_ns"]
        if old > 0 and new > old * (1 + threshold):
            regressions.append(
                f"{name}: median {new:.0f} ns vs baseline {old:.0f} ns "
                f"(+{(new / old - 1):.0%}, threshold +{threshold:.0%})"
            )
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional slowdown that counts as a regression (default 0.25)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"refresh {BASELINE_FILE.name} from this run",
    )
    args = parser.parse_args()

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_out = Path(handle.name)
    try:
        run_pytest_benchmark(json_out)
        raw = json.loads(json_out.read_text())
    finally:
        json_out.unlink(missing_ok=True)

    benchmarks = summarize(raw)
    sizes = payload_sizes()
    report = {
        "schema": 1,
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "fixed_seed": FIXED_SEED,
        "benchmarks": benchmarks,
        "payload_sizes": sizes,
        "headline": headline(benchmarks, sizes),
    }
    OUTPUT_FILE.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT_FILE.relative_to(REPO_ROOT)}")
    for key, value in report["headline"].items():
        print(f"  {key}: {value}")

    if args.write_baseline:
        BASELINE_FILE.write_text(
            json.dumps({"benchmarks": benchmarks}, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {BASELINE_FILE.relative_to(REPO_ROOT)}")
        return 0

    if BASELINE_FILE.exists():
        baseline = json.loads(BASELINE_FILE.read_text())
        regressions = check_regressions(benchmarks, baseline, args.threshold)
        if regressions:
            print("PERFORMANCE REGRESSIONS:", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"no regressions vs {BASELINE_FILE.relative_to(REPO_ROOT)}")
    else:
        print("no checked-in baseline; skipping regression gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
