#!/usr/bin/env python
"""Run the wall-clock microbenchmarks and record the perf trajectory.

Runs ``benchmarks/test_microbench_codecs.py``,
``benchmarks/test_broker_routing_scale.py`` and
``benchmarks/test_broker_shard_scale.py`` under pytest-benchmark with a
fixed seed, then writes ``BENCH_microbench_codecs.json`` at the repo
root: median ns/op per benchmark, the real payload sizes the codecs
produce, and the headline ratios the hot-path issues track (codec
v2-vs-v1, routing index vs the seed linear scan at 1000 topics, broker
cluster throughput at 4 shards vs the single broker — the latter read
from the simulated-time ``extra_info`` the shard benchmark records, so
it is machine-independent).

Regression gate: when ``benchmarks/baseline_microbench_codecs.json``
exists **and was written on this machine** (the baseline records a
machine fingerprint — medians are not comparable across hardware), any
benchmark whose median is more than ``--threshold`` (default 25%) slower
than the baseline fails the run with exit code 1, so CI can catch
regressions.  ``--write-baseline`` refreshes the baseline from the
current run.

``--quick`` caps pytest-benchmark's calibration so the whole run fits in
tier-1 CI budgets; it still arms the regression gate — with the
threshold widened to at least ``QUICK_THRESHOLD`` because uncalibrated
medians jitter — but skips rewriting the committed BENCH json and
refuses ``--write-baseline`` (baselines must come from full runs).

Usage::

    python scripts/run_benchmarks.py              # run + write BENCH json
    python scripts/run_benchmarks.py --write-baseline
    python scripts/run_benchmarks.py --quick      # CI: gate only
    python scripts/run_benchmarks.py --threshold 0.10
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILES = [
    REPO_ROOT / "benchmarks" / "test_microbench_codecs.py",
    REPO_ROOT / "benchmarks" / "test_broker_routing_scale.py",
    REPO_ROOT / "benchmarks" / "test_broker_shard_scale.py",
    REPO_ROOT / "benchmarks" / "test_broker_skewed_scale.py",
    REPO_ROOT / "benchmarks" / "test_shard_failover.py",
    REPO_ROOT / "benchmarks" / "test_continuum_topologies.py",
]
OUTPUT_FILE = REPO_ROOT / "BENCH_microbench_codecs.json"
BASELINE_FILE = REPO_ROOT / "benchmarks" / "baseline_microbench_codecs.json"

#: deterministic interpreter state for reproducible dict ordering/hashing
FIXED_SEED = "0"

#: minimum gate threshold in --quick mode: 3-round no-warmup medians of
#: sub-microsecond benchmarks jitter well past 25% without a real
#: regression; 100% still catches the order-of-magnitude collapses the
#: gate exists for
QUICK_THRESHOLD = 1.0


def machine_fingerprint() -> str:
    """Identifies the hardware class/interpreter a baseline is valid for.

    Deliberately excludes the hostname: CI runners are ephemeral and the
    gate must still arm on them.  Architecture + interpreter is the
    coarse cut that makes medians comparable; the thresholds absorb
    same-arch machine-to-machine wobble.
    """
    version = ".".join(platform.python_version_tuple()[:2])
    return f"{platform.machine()}/py{version}"


def run_pytest_benchmark(json_out: Path, quick: bool) -> None:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = FIXED_SEED
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *[str(path) for path in BENCH_FILES],
        "-q",
        "--benchmark-only",
        "--benchmark-disable-gc",
        f"--benchmark-json={json_out}",
    ]
    # warmup stays on even in quick mode: cold medians of sub-microsecond
    # benchmarks run ~2x the calibrated ones and would trip any sane gate
    cmd += ["--benchmark-warmup=on"]
    if quick:
        cmd += ["--benchmark-max-time=0.1", "--benchmark-min-rounds=3"]
    result = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    if result.returncode != 0:
        sys.exit(f"benchmark run failed (pytest exit {result.returncode})")


def payload_sizes() -> dict:
    import importlib.util

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core import encode_payload

    codec_bench = BENCH_FILES[0]
    spec = importlib.util.spec_from_file_location("microbench_codecs", codec_bench)
    mb = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mb)

    record_100 = mb.RECORD_100
    group_50 = mb.GROUP_50
    return {
        "record_100_v1_bytes": len(encode_payload(record_100, version=1)),
        "record_100_v2_bytes": len(encode_payload(record_100)),
        "record_100_v1_uncompressed_bytes": len(
            encode_payload(record_100, version=1, compress=False)
        ),
        "record_100_v2_uncompressed_bytes": len(
            encode_payload(record_100, compress=False)
        ),
        "grouped_50x10_v1_bytes": len(encode_payload(group_50, version=1)),
        "grouped_50x10_v2_bytes": len(encode_payload(group_50)),
        "grouped_50x10_v1_uncompressed_bytes": len(
            encode_payload(group_50, version=1, compress=False)
        ),
        "grouped_50x10_v2_uncompressed_bytes": len(
            encode_payload(group_50, compress=False)
        ),
    }


def summarize(raw: dict) -> dict:
    benchmarks = {}
    for bench in raw.get("benchmarks", ()):
        stats = bench["stats"]
        entry = {
            "median_ns": round(stats["median"] * 1e9, 1),
            "mean_ns": round(stats["mean"] * 1e9, 1),
            "stddev_ns": round(stats["stddev"] * 1e9, 1),
            "rounds": stats["rounds"],
        }
        extra = bench.get("extra_info") or {}
        if extra:
            # simulated-time measures (e.g. shard-cluster msgs/s) ride
            # along; unlike medians they are machine-independent
            entry["extra_info"] = extra
        benchmarks[bench["name"]] = entry
    return benchmarks


def headline(benchmarks: dict, sizes: dict) -> dict:
    def median(name: str):
        entry = benchmarks.get(name)
        return entry["median_ns"] if entry else None

    out: dict = {}
    e1 = median("test_encode_payload_100_attrs_v1_baseline")
    e2 = median("test_encode_payload_100_attrs")
    d1 = median("test_decode_payload_100_attrs_v1_baseline")
    d2 = median("test_decode_payload_100_attrs")
    if all(x for x in (e1, e2, d1, d2)):
        out["encode_speedup_v2_over_v1"] = round(e1 / e2, 2)
        out["decode_speedup_v2_over_v1"] = round(d1 / d2, 2)
        out["encode_decode_speedup_v2_over_v1"] = round((e1 + d1) / (e2 + d2), 2)
    r1 = median("test_route_1000_topics_linear_scan_baseline")
    r2 = median("test_route_1000_topics_index")
    if r1 and r2:
        out["routing_speedup_index_over_scan_1000_topics"] = round(r1 / r2, 1)

    def shard_throughput(shards: int):
        entry = benchmarks.get(f"test_cluster_publish_throughput[{shards}]")
        if not entry:
            return None
        return entry.get("extra_info", {}).get("simulated_msgs_per_s")

    t1 = shard_throughput(1)
    for shards in (2, 4, 8):
        tn = shard_throughput(shards)
        if t1 and tn:
            out[f"broker_throughput_speedup_{shards}_shards_over_1"] = round(
                tn / t1, 2
            )
    # front-dispatcher bundling: datagrams amortized per shard bundle at
    # the heaviest fan-in (8 shards) — 1.0 would mean no amortization
    entry = benchmarks.get("test_cluster_publish_throughput[8]")
    if entry:
        per_bundle = entry.get("extra_info", {}).get("dispatch_datagrams_per_bundle")
        if per_bundle:
            out["dispatch_amortization_datagrams_per_bundle_8_shards"] = per_bundle
    # skewed fan-in: what placement policy buys when the client-id
    # population clumps on one ring node (the adversarial case for hash)
    def skewed(shards: int, placement: str):
        entry = benchmarks.get(
            f"test_skewed_publish_throughput[{shards}-{placement}]"
        )
        if not entry:
            return None
        return entry.get("extra_info", {})

    s1 = skewed(1, "hash")
    s8_hash = skewed(8, "hash")
    s8_p2c = skewed(8, "p2c")
    if s1 and s8_p2c and s1.get("simulated_msgs_per_s"):
        out["broker_throughput_speedup_8_shards_over_1_skewed"] = round(
            s8_p2c["simulated_msgs_per_s"] / s1["simulated_msgs_per_s"], 2
        )
        if s8_hash and s8_hash.get("simulated_msgs_per_s"):
            out["skewed_placement_gain_p2c_over_hash_8_shards"] = round(
                s8_p2c["simulated_msgs_per_s"]
                / s8_hash["simulated_msgs_per_s"],
                2,
            )
        ratio = s8_p2c.get("max_mean_session_ratio")
        if ratio:
            out["p2c_max_mean_session_ratio_8_shards"] = ratio
    # fault tolerance: the end-to-end publish outage a durable client
    # rides through when a shard dies (detection + reconnect + replay),
    # and the fan-in rate the plane keeps after losing 1 of 4 shards
    entry = benchmarks.get("test_failover_recovery")
    if entry:
        recovery = entry.get("extra_info", {}).get("failover_recovery_ms")
        if recovery:
            out["failover_recovery_ms"] = recovery
    entry = benchmarks.get("test_degraded_cluster_publish_throughput")
    if entry:
        degraded = entry.get("extra_info", {}).get("simulated_msgs_per_s")
        healthy = shard_throughput(4)
        if degraded and healthy:
            out["degraded_throughput_3_of_4_shards"] = round(
                degraded / healthy, 2
            )
    # continuum topologies: what the paper's tiered, lossy continuum
    # costs versus the seed's ideal-star assumption (simulated time, so
    # machine-independent), and how fast a 20%-churned durable fleet is
    # whole again (restart + journal replay)
    def topology_throughput(preset: str):
        entry = benchmarks.get(f"test_topology_fanin_throughput[{preset}]")
        if not entry:
            return None
        return entry.get("extra_info", {}).get("simulated_msgs_per_s")

    ideal = topology_throughput("ideal")
    if ideal:
        for preset in ("constrained-edge", "lossy-wireless", "wan-fog"):
            tp = topology_throughput(preset)
            if tp:
                key = preset.replace("-", "_")
                out[f"continuum_throughput_ratio_{key}_over_ideal"] = round(
                    tp / ideal, 4
                )
        lossy = topology_throughput("lossy-wireless")
        if lossy:
            out["continuum_throughput_ratio_lossy_edge_over_ideal"] = round(
                lossy / ideal, 4
            )
    entry = benchmarks.get("test_fleet_churn_recovery")
    if entry:
        recovery = entry.get("extra_info", {}).get("fleet_churn_recovery_ms_20pct")
        if recovery:
            out["fleet_churn_recovery_ms_20pct"] = recovery
    # durable capture: what the WAL write-through adds on top of encoding
    # one 100-attr record (the per-record client cost of durable=True)
    wal = median("test_journal_append_100_attrs")
    wal_signed = median("test_journal_append_signed_100_attrs")
    if wal and e2:
        out["wal_append_overhead_vs_encode_100_attrs"] = round(wal / e2, 2)
    if wal and wal_signed:
        out["wal_append_signing_overhead"] = round(wal_signed / wal, 2)
    g1 = sizes["grouped_50x10_v1_uncompressed_bytes"]
    g2 = sizes["grouped_50x10_v2_uncompressed_bytes"]
    out["grouped_uncompressed_size_reduction"] = round(1 - g2 / g1, 3)
    out["grouped_compressed_size_reduction"] = round(
        1 - sizes["grouped_50x10_v2_bytes"] / sizes["grouped_50x10_v1_bytes"], 3
    )
    return out


def check_regressions(benchmarks: dict, baseline: dict, threshold: float) -> list:
    regressions = []
    for name, entry in baseline.get("benchmarks", {}).items():
        current = benchmarks.get(name)
        if current is None:
            # a renamed or collection-dropped benchmark must not silently
            # disarm its gate; force a baseline refresh instead
            regressions.append(
                f"{name}: present in the baseline but missing from this run "
                "(renamed/dropped? rerun --write-baseline to acknowledge)"
            )
            continue
        old, new = entry["median_ns"], current["median_ns"]
        if old > 0 and new > old * (1 + threshold):
            regressions.append(
                f"{name}: median {new:.0f} ns vs baseline {old:.0f} ns "
                f"(+{(new / old - 1):.0%}, threshold +{threshold:.0%})"
            )
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional slowdown that counts as a regression (default 0.25)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"refresh {BASELINE_FILE.name} from this run",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short calibration for CI: arms the regression gate but "
        "does not rewrite the committed BENCH json",
    )
    args = parser.parse_args()
    if args.quick and args.write_baseline:
        parser.error("--write-baseline needs a full calibrated run; drop --quick")

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_out = Path(handle.name)
    try:
        run_pytest_benchmark(json_out, quick=args.quick)
        raw = json.loads(json_out.read_text())
    finally:
        json_out.unlink(missing_ok=True)

    benchmarks = summarize(raw)
    sizes = payload_sizes()
    report = {
        "schema": 2,
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "machine": machine_fingerprint(),
        "fixed_seed": FIXED_SEED,
        "quick": args.quick,
        "benchmarks": benchmarks,
        "payload_sizes": sizes,
        "headline": headline(benchmarks, sizes),
    }
    if args.quick:
        print("quick mode: BENCH json not rewritten")
    else:
        OUTPUT_FILE.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {OUTPUT_FILE.relative_to(REPO_ROOT)}")
    for key, value in report["headline"].items():
        print(f"  {key}: {value}")

    if args.write_baseline:
        BASELINE_FILE.write_text(
            json.dumps(
                {
                    "machine": machine_fingerprint(),
                    "recorded_on": platform.node(),
                    "python": sys.version.split()[0],
                    "generated_at": report["generated_at"],
                    "benchmarks": benchmarks,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote {BASELINE_FILE.relative_to(REPO_ROOT)}")
        return 0

    if BASELINE_FILE.exists():
        baseline = json.loads(BASELINE_FILE.read_text())
        # a baseline without a fingerprint is from an unknown machine:
        # treat it as incomparable rather than silently arming the gate
        recorded_on = baseline.get("machine")
        if recorded_on != machine_fingerprint():
            print(
                f"baseline was recorded on {recorded_on or 'unknown'!r}, this "
                f"is {machine_fingerprint()!r}; medians are not comparable — "
                "skipping regression gate (rerun --write-baseline here)"
            )
            return 0
        threshold = args.threshold
        if args.quick and threshold < QUICK_THRESHOLD:
            threshold = QUICK_THRESHOLD
            print(f"quick mode: gate threshold widened to +{threshold:.0%}")
        regressions = check_regressions(benchmarks, baseline, threshold)
        if regressions:
            print("PERFORMANCE REGRESSIONS:", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"no regressions vs {BASELINE_FILE.relative_to(REPO_ROOT)}")
    else:
        print("no checked-in baseline; skipping regression gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
