#!/usr/bin/env bash
# Tier-1 CI: the static reproducibility lint, the full test suite under
# the runtime hazard detector, the example smoke tests, then the quick
# perf regression gate.
#
# The examples are the library's public face (and the quickest thing a
# user copies); executing every examples/*.py headlessly means an API
# regression in a user-facing entry point fails the gate even if no
# unit test covers that exact call pattern.
#
# The quick gate re-runs every microbenchmark with capped calibration
# (~seconds, not minutes) and fails on >QUICK_THRESHOLD slowdowns
# against benchmarks/baseline_microbench_codecs.json — so an
# accidental hot-path collapse is caught on every change, not only when
# someone remembers to run the full benchmark suite.  See
# scripts/run_benchmarks.py for the baseline/fingerprint rules.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# static reproducibility lint (AST determinism/hazard checks; see
# docs/static-analysis.md for the rule catalog and suppression grammar)
python scripts/lint.py src tests --format=text

# the suite runs under the simkernel runtime hazard detector: every
# Environment() is a DebugEnvironment, so cross-environment events,
# double triggers, non-monotonic schedules and unretrieved failures
# fail the gate at the misuse site instead of corrupting a run
python -m pytest -x -q --sim-debug

for example in examples/*.py; do
    echo "smoke: $example"
    python "$example" > /dev/null
done

# durability smoke: the flaky-uplink example *asserts* zero loss and
# exactly-once ingestion across two partitions, so run it loudly (the
# loop above already executed it, but its output is the contract)
echo "durability smoke: examples/flaky_uplink.py"
python examples/flaky_uplink.py

# chaos smoke: the fan-in example kills a broker shard *and* flaps the
# backend link mid-stream, asserting failover + circuit-breaker spill
# recovery end exactly-once — the fault-tolerance contract, run loudly
echo "chaos smoke: examples/chaos_fanin.py"
python examples/chaos_fanin.py

# continuum smoke: the continuum chaos example churns 25% of a tiered
# constrained-edge fleet and cuts the edge<->fog backhaul mid-run,
# asserting journal-replay recovery ends exactly-once — the continuum
# topology contract, run loudly
echo "continuum smoke: examples/continuum_chaos.py"
python examples/continuum_chaos.py

# elasticity smoke: the elastic fan-in example asserts the scaling
# contract — p2c spreads a hash-adversarial CONNECT burst, the
# translator pool grows under load and shrinks back to min, and every
# record lands exactly once across the worker handovers — run loudly
echo "elasticity smoke: examples/elastic_fanin.py"
python examples/elastic_fanin.py

python scripts/run_benchmarks.py --quick
