#!/usr/bin/env bash
# Tier-1 CI: the full test suite, then the quick perf regression gate.
#
# The quick gate re-runs every microbenchmark with capped calibration
# (~seconds, not minutes) and fails on >QUICK_THRESHOLD slowdowns
# against benchmarks/baseline_microbench_codecs.json — so an
# accidental hot-path collapse is caught on every change, not only when
# someone remembers to run the full benchmark suite.  See
# scripts/run_benchmarks.py for the baseline/fingerprint rules.
set -euo pipefail
cd "$(dirname "$0")/.."

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q
python scripts/run_benchmarks.py --quick
