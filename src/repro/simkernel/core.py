"""The simulation environment: clock, event heap and run loop."""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, Iterable, Optional

from .events import (
    NORMAL,
    PENDING,
    AllOf,
    AnyOf,
    Event,
    Process,
    Timeout,
)

__all__ = [
    "Environment",
    "EmptySchedule",
    "StopSimulation",
    "set_default_environment_class",
    "default_environment_class",
]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Signals :meth:`Environment.run` to return (internal)."""


#: When set, bare ``Environment(...)`` constructions build this subclass
#: instead (see :func:`set_default_environment_class`).  This is how
#: ``pytest --sim-debug`` swaps the whole suite onto the hazard-detecting
#: :class:`~repro.simkernel.debug.DebugEnvironment` without touching any
#: call site.
_default_environment_class: Optional[type] = None


def set_default_environment_class(cls: Optional[type]) -> None:
    """Override (or with ``None``, restore) what ``Environment()`` builds.

    ``cls`` must be a strict subclass of :class:`Environment`; explicit
    constructions of a subclass are never redirected.
    """
    global _default_environment_class
    if cls is not None and not (
        isinstance(cls, type) and issubclass(cls, Environment) and cls is not Environment
    ):
        raise TypeError(f"{cls!r} is not a strict Environment subclass")
    _default_environment_class = cls


def default_environment_class() -> Optional[type]:
    """The currently installed construction override (``None`` = base)."""
    return _default_environment_class


class Environment:
    """Execution environment for a discrete-event simulation.

    Time is a float in *seconds* (all repro subsystems use seconds).  The
    passage of time is driven exclusively by stepping through scheduled
    events; between events, time is frozen.

    Example::

        env = Environment()

        def worker(env):
            yield env.timeout(1.5)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 1.5 and proc.value == "done"
    """

    __slots__ = ("_now", "_queue", "_eid", "_active_proc")

    #: consulted once per process yield (see ``Process._resume``); the
    #: debug subclass flips it to route yields through hazard checks
    _debug = False

    def __new__(cls, *args, **kwargs):
        override = _default_environment_class
        if override is not None and cls is Environment:
            return object.__new__(override)
        return object.__new__(cls)

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []  # heap of (time, priority, eid, event)
        self._eid = 0
        self._active_proc: Optional[Process] = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None outside callbacks)."""
        return self._active_proc

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that fires ``delay`` seconds from now.

        Timeouts dominate the event heap (every modeled CPU slice and
        network wait allocates one), so this builds the object directly
        instead of going through ``Timeout.__init__`` → ``schedule`` —
        the two extra frames are measurable at scalability-run volume.
        KEEP IN SYNC with ``Timeout.__init__``/``Event.__init__``
        (tests/simkernel/test_core.py pins the two construction paths
        to identical state).
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Timeout.__new__(Timeout)
        event.env = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._defused = False
        event.delay = delay
        self._eid = eid = self._eid + 1
        heappush(self._queue, (self._now + delay, NORMAL, eid, event))
        return event

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers once all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers once any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Schedule ``event`` to be processed ``delay`` seconds from now."""
        self._eid = eid = self._eid + 1
        heappush(self._queue, (self._now + delay, priority, eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if none)."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` when the queue is empty.
        """
        queue = self._queue
        if not queue:
            raise EmptySchedule()
        self._now, _, _, event = heappop(queue)

        callbacks = event.callbacks
        if callbacks is None:
            # Event was already processed (can happen when an event is
            # scheduled twice, e.g. via trigger chains); nothing to do.
            return
        event.callbacks = None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure crashes the simulation, mirroring an
            # uncaught exception in a thread you actually care about.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time) or an :class:`Event` (run until it
        triggers, returning its value).
        """
        at_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                at_event = until
                if at_event.callbacks is None:  # already processed
                    return at_event._value
                at_event.callbacks.append(_stop_simulation)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not be before the current time ({self._now})"
                    )
                stop = Event(self)
                stop._ok = True
                stop._value = None
                stop.callbacks = [_stop_simulation]
                self.schedule(stop, NORMAL, at - self._now)

        step = self.step
        try:
            while True:
                step()
        except StopSimulation as exc:
            return exc.args[0] if exc.args else None
        except EmptySchedule:
            if at_event is not None and at_event._value is PENDING:
                raise RuntimeError(
                    f"no scheduled events left but {at_event!r} has not triggered"
                ) from None
        return None

    def run_until_idle(self) -> None:
        """Run until the event queue drains completely."""
        self.run()

    def __repr__(self) -> str:
        return f"<Environment now={self._now} queued={len(self._queue)}>"


def _stop_simulation(event: Event) -> None:
    if not event._ok:
        event._defused = True
        raise event._value
    raise StopSimulation(event._value)
