"""Runtime hazard detection for the simulation kernel.

Static analysis (:mod:`repro.analysis`) catches determinism hazards that
are visible in source — wall-clock reads, unseeded RNGs, dropped event
handles.  This module catches the ones only an *executing* kernel can
see.  :class:`DebugEnvironment` is a drop-in :class:`Environment`
subclass that turns silent kernel misuse into loud, attributable errors:

``cross-env-yield`` / ``cross-env-schedule`` / ``cross-env-run``
    An event owned by one :class:`Environment` was yielded from,
    scheduled on, or run-until on *another* environment.  The two
    environments have independent clocks and heaps, so the waiter either
    never resumes or resumes at a nonsense time.  A real bug class now
    that topology tests build one environment per tier by mistake.
``double-schedule``
    The same event was placed on the heap twice while still pending —
    the signature of a double trigger through :meth:`Event.trigger` or a
    manual ``env.schedule`` of an already-triggered event.  The second
    processing is silently skipped by the base kernel; here it is loud.
``schedule-after-processed``
    An event whose callbacks already ran was scheduled again.  Waiters
    attached after the fact will never fire.
``non-monotonic``
    An event was scheduled with a negative delay (behind ``env.now``),
    or popped behind the clock.  Time must never run backwards in a
    reproducible discrete-event run.
``unretrieved-failure``
    A failed event completed undefused with nobody to receive the
    exception — the simkernel analog of asyncio's "exception was never
    retrieved".  The base kernel already crashes the run; the debug
    kernel additionally records the hazard and annotates the exception
    with the event that carried it, so the crash is attributable.

All hazards except ``unretrieved-failure`` raise :class:`SimHazardError`
at the moment of misuse; ``unretrieved-failure`` re-raises the *original*
exception (annotated via ``add_note``) so intentional crash-propagation
semantics — and the tests that pin them — are preserved.  Every hazard,
fatal or not, is appended to :attr:`DebugEnvironment.hazards`.

Enable for a whole pytest run with ``pytest --sim-debug`` (see the repo
``conftest.py``), which routes every ``Environment()`` construction to
:class:`DebugEnvironment` via :func:`install_debug_environment`.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop
from typing import Any, List, Optional

from . import core
from .core import EmptySchedule, Environment
from .events import NORMAL, Event, Process, Timeout

__all__ = [
    "DebugEnvironment",
    "SimHazard",
    "SimHazardError",
    "install_debug_environment",
    "uninstall_debug_environment",
    "debug_environment_installed",
]


@dataclass(frozen=True)
class SimHazard:
    """One detected kernel-integrity hazard."""

    kind: str
    time: float
    event: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] t={self.time:g} {self.event}: {self.detail}"


class SimHazardError(RuntimeError):
    """A kernel-integrity hazard detected by :class:`DebugEnvironment`."""

    def __init__(self, hazard: SimHazard):
        super().__init__(str(hazard))
        self.hazard = hazard


class DebugEnvironment(Environment):
    """An :class:`Environment` that detects kernel misuse as it happens.

    Semantically identical to the base environment for correct programs
    (same event ordering, same clock, same results); incorrect programs
    fail loudly at the misuse site instead of corrupting the run.  The
    checks cost one set operation per scheduled event plus a few
    comparisons, so this is an opt-in debugging tool, not the default.
    """

    __slots__ = ("hazards", "_pending")

    #: consulted on the process-yield hot path (see ``Process._resume``)
    _debug = True

    def __init__(self, initial_time: float = 0.0):
        super().__init__(initial_time)
        self.hazards: List[SimHazard] = []
        self._pending: set = set()

    # -- hazard plumbing ---------------------------------------------------
    def _hazard(self, kind: str, event: Any, detail: str) -> None:
        hazard = SimHazard(kind, self._now, repr(event), detail)
        self.hazards.append(hazard)
        raise SimHazardError(hazard)

    # -- checked construction / scheduling ---------------------------------
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Checked Timeout: skips the base fast path so the schedule goes
        through the instrumented :meth:`schedule`."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return Timeout(self, delay, value)

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        owner = getattr(event, "env", None)
        if owner is not self:
            self._hazard(
                "cross-env-schedule", event,
                f"event owned by {owner!r} scheduled on {self!r}; each event "
                "must live on the environment that created it",
            )
        if event.callbacks is None:
            self._hazard(
                "schedule-after-processed", event,
                "event was scheduled again after its callbacks already ran "
                "(double trigger of a processed event)",
            )
        if delay < 0:
            self._hazard(
                "non-monotonic", event,
                f"scheduled {-delay:g}s into the past (now={self._now:g}); "
                "simulated time must never run backwards",
            )
        key = id(event)
        if key in self._pending:
            self._hazard(
                "double-schedule", event,
                "event is already on the schedule while still pending "
                "(double trigger — check Event.trigger/succeed/fail call sites)",
            )
        self._pending.add(key)
        super().schedule(event, priority, delay)

    # -- checked execution -------------------------------------------------
    def step(self) -> None:
        queue = self._queue
        if not queue:
            raise EmptySchedule()
        now, _, _, event = heappop(queue)
        if now < self._now:
            self._hazard(
                "non-monotonic", event,
                f"popped an event at t={now:g} behind the clock "
                f"(now={self._now:g})",
            )
        self._now = now
        self._pending.discard(id(event))

        callbacks = event.callbacks
        if callbacks is None:
            return
        event.callbacks = None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            hazard = SimHazard(
                "unretrieved-failure", self._now, repr(event),
                f"failed event completed undefused with {len(callbacks)} "
                f"callback(s); its exception {exc!r} was never retrieved "
                "(yield the event, or mark it defused if the failure is "
                "intentional)",
            )
            self.hazards.append(hazard)
            if isinstance(exc, BaseException):
                exc.add_note(f"sim-debug: {hazard}")
                raise exc
            raise SimHazardError(hazard)

    def run(self, until: Any = None) -> Any:
        if isinstance(until, Event) and until.env is not self:
            self._hazard(
                "cross-env-run", until,
                f"run(until=...) got an event owned by {until.env!r}; it can "
                "never trigger on this environment's heap",
            )
        return super().run(until)

    # -- process-yield hook (called from Process._resume when _debug) ------
    def _check_yield(self, process: Process, event: Any) -> None:
        owner = getattr(event, "env", None)
        if owner is not None and owner is not self:
            self._hazard(
                "cross-env-yield", event,
                f"process {process.name!r} yielded an event owned by "
                f"{owner!r}; the waiter would never be resumed by this "
                "environment",
            )

    def __repr__(self) -> str:
        return (
            f"<DebugEnvironment now={self._now} queued={len(self._queue)} "
            f"hazards={len(self.hazards)}>"
        )


def install_debug_environment() -> None:
    """Route every bare ``Environment()`` construction to
    :class:`DebugEnvironment` (process-wide, e.g. for ``pytest --sim-debug``)."""
    core.set_default_environment_class(DebugEnvironment)


def uninstall_debug_environment() -> None:
    """Restore bare ``Environment()`` constructions to the base class."""
    core.set_default_environment_class(None)


def debug_environment_installed() -> bool:
    """True while :func:`install_debug_environment` is in effect."""
    return core.default_environment_class() is DebugEnvironment
