"""Discrete-event simulation kernel.

A compact, dependency-free DES engine in the generator-coroutine style:
:class:`Environment` drives :class:`Process` generators that yield
:class:`Event` objects (timeouts, resource requests, store gets, ...).

This kernel is the substrate every other ``repro`` subsystem runs on —
network links, protocol stacks, devices and workloads are all processes in
one environment, sharing one simulated clock.
"""

from .core import (
    EmptySchedule,
    Environment,
    StopSimulation,
    default_environment_class,
    set_default_environment_class,
)
from .debug import (
    DebugEnvironment,
    SimHazard,
    SimHazardError,
    debug_environment_installed,
    install_debug_environment,
    uninstall_debug_environment,
)
from .events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Initialize,
    Interrupt,
    Process,
    Timeout,
)
from .monitor import Counter, RateMeter, Series, TimeWeighted
from .resources import (
    Container,
    FilterStore,
    PriorityItem,
    PriorityResource,
    PriorityStore,
    Resource,
    Store,
)

__all__ = [
    "Environment",
    "EmptySchedule",
    "StopSimulation",
    "set_default_environment_class",
    "default_environment_class",
    "DebugEnvironment",
    "SimHazard",
    "SimHazardError",
    "install_debug_environment",
    "uninstall_debug_environment",
    "debug_environment_installed",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Initialize",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "Resource",
    "PriorityResource",
    "Container",
    "Store",
    "FilterStore",
    "PriorityStore",
    "PriorityItem",
    "TimeWeighted",
    "Counter",
    "Series",
    "RateMeter",
]
