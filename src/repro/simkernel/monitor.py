"""Measurement helpers for simulations.

Two recurring needs in the evaluation harness:

* time-weighted statistics (mean CPU utilization over a run, mean queue
  length) — :class:`TimeWeighted`;
* event counters / byte counters with per-interval rates — :class:`Counter`
  and :class:`RateMeter`;
* raw time series for debugging/plotting — :class:`Series`.

All of them read the clock from the environment they were created with, so
they compose with any process without explicit time plumbing.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["TimeWeighted", "Counter", "Series", "RateMeter"]


class TimeWeighted:
    """Tracks a piecewise-constant value and integrates it over time.

    Typical use: ``cpu_busy = TimeWeighted(env, 0)``; set ``.value = 1``
    when the CPU starts work and back to ``0`` when it idles;
    ``mean()`` then returns utilization.
    """

    def __init__(self, env, initial: float = 0.0):
        self.env = env
        self._value = float(initial)
        self._last_change = env.now
        self._start = env.now
        self._integral = 0.0

    @property
    def value(self) -> float:
        return self._value

    @value.setter
    def value(self, new: float) -> None:
        now = self.env.now
        self._integral += self._value * (now - self._last_change)
        self._last_change = now
        self._value = float(new)

    def add(self, delta: float) -> None:
        """Adjust the current value by ``delta``."""
        self.value = self._value + delta

    def integral(self) -> float:
        """Integral of the value from creation until now."""
        return self._integral + self._value * (self.env.now - self._last_change)

    def mean(self) -> float:
        """Time-weighted mean since creation (0 if no time elapsed)."""
        elapsed = self.env.now - self._start
        if elapsed <= 0:
            return self._value
        return self.integral() / elapsed

    def reset(self) -> None:
        """Restart integration from the current instant."""
        self._start = self._last_change = self.env.now
        self._integral = 0.0


class Counter:
    """A simple named counter (events, bytes, messages)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self.total = 0.0

    def record(self, amount: float = 1.0) -> None:
        self.count += 1
        self.total += amount

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0

    def __repr__(self) -> str:
        return f"<Counter {self.name}: n={self.count} total={self.total}>"


class Series:
    """Append-only (time, value) series."""

    def __init__(self, env, name: str = ""):
        self.env = env
        self.name = name
        self.times: list[float] = []
        self.values: list[Any] = []

    def record(self, value: Any) -> None:
        self.times.append(self.env.now)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def last(self) -> Any:
        return self.values[-1] if self.values else None

    def __repr__(self) -> str:
        return f"<Series {self.name}: n={len(self)}>"


class RateMeter:
    """Accumulates amounts and reports an average rate over elapsed time.

    Used for the paper's Fig. 6c "network usage (KB/s) during capture".
    """

    def __init__(self, env):
        self.env = env
        self._start: Optional[float] = None
        self._stop: Optional[float] = None
        self.total = 0.0

    def start(self) -> None:
        if self._start is None:
            self._start = self.env.now

    def stop(self) -> None:
        self._stop = self.env.now

    def record(self, amount: float) -> None:
        if self._start is None:
            self._start = self.env.now
        self.total += amount

    def elapsed(self) -> float:
        if self._start is None:
            return 0.0
        end = self._stop if self._stop is not None else self.env.now
        return max(0.0, end - self._start)

    def rate(self) -> float:
        """Average rate (amount per second); 0 if no time elapsed."""
        elapsed = self.elapsed()
        if elapsed <= 0:
            return 0.0
        return self.total / elapsed
