"""Core event types for the discrete-event simulation kernel.

The kernel follows the classic generator-coroutine design (popularized by
SimPy): simulation *processes* are Python generators that ``yield`` events;
the environment resumes a process when the yielded event is *triggered*.

Every event moves through three states:

``pending``
    created, not yet scheduled;
``triggered``
    scheduled on the environment's event heap with a value or an error;
``processed``
    its callbacks have run (processes waiting on it have been resumed).

Determinism matters for reproducible experiments, so the kernel orders
simultaneous events by ``(time, priority, insertion id)``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "Event",
    "Timeout",
    "Initialize",
    "Process",
    "Interrupt",
    "Condition",
    "AnyOf",
    "AllOf",
    "ConditionValue",
]

#: Sentinel for an event value that has not been set yet.
PENDING = object()

#: Scheduling priority for events that must run before normal ones at the
#: same simulated instant (used for process initialization and interrupts).
URGENT = 0

#: Default scheduling priority.
NORMAL = 1


class Event:
    """An event that may happen at some point in simulated time.

    Callbacks are ``f(event)`` callables executed when the event is
    processed.  Processes register themselves as callbacks when they yield
    the event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):  # noqa: F821 - forward ref
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if self._value is PENDING:
            raise RuntimeError(f"{self} has not yet been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with (or its exception)."""
        if self._value is PENDING:
            raise RuntimeError(f"{self} has not yet been triggered")
        return self._value

    @property
    def defused(self) -> bool:
        """True if a failure was handled by a waiter (suppresses crash)."""
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        A failed event re-raises the exception inside every process that
        waits on it; if nobody waits, the simulation crashes (unless the
        event is *defused*).
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state/value of another event."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self, NORMAL)

    # -- composition ------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        return f"<{type(self).__name__} object at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after ``delay`` units of simulated time.

    ``Environment.timeout`` builds Timeouts without calling this
    initializer (hot-path shortcut) — keep the field set here and there
    in sync.
    """

    __slots__ = ("delay",)

    def __init__(self, env, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, NORMAL, delay)

    def __repr__(self) -> str:
        return f"<Timeout({self.delay}) at {id(self):#x}>"


class Initialize(Event):
    """Internal event that starts a process when it is created."""

    __slots__ = ()

    def __init__(self, env, process: "Process"):
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env.schedule(self, URGENT)


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called."""

    @property
    def cause(self) -> Any:
        """The cause passed to ``interrupt()``."""
        return self.args[0]


class _InterruptEvent(Event):
    """Immediate event that throws :class:`Interrupt` into a process."""

    __slots__ = ("process",)

    def __init__(self, env, process: "Process", cause: Any):
        super().__init__(env)
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks = [self._throw]
        env.schedule(self, URGENT)

    def _throw(self, event: Event) -> None:
        process = self.process
        if process._value is not PENDING:  # already terminated
            return
        # Unsubscribe the process from whatever it currently waits on, then
        # resume it with the failed interrupt event.
        if process._target is not None and process._target.callbacks is not None:
            try:
                process._target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._resume(self)


class Process(Event):
    """Wraps a generator so it can be executed by the environment.

    The process itself is an event that triggers when the generator
    terminates: with the ``return`` value on success, or with the raised
    exception on failure.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env, generator, name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits for (None if running)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True until the wrapped generator has terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        _InterruptEvent(self.env, self, cause)

    def _resume(self, event: Event) -> None:
        """Resume the generator with the value of ``event``."""
        env = self.env
        env._active_proc = self
        generator = self._generator
        send = generator.send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    # The event failed: re-raise inside the process.  Mark
                    # it defused -- the process had the chance to handle it.
                    event._defused = True
                    exc = event._value
                    next_event = generator.throw(exc)
            except StopIteration as exc:
                # Process finished successfully.
                self._ok = True
                self._value = exc.value
                env.schedule(self, NORMAL)
                break
            except BaseException as exc:
                # Process crashed.
                self._ok = False
                self._value = exc
                env.schedule(self, NORMAL)
                break

            if env._debug:
                env._check_yield(self, next_event)
            try:
                if next_event.callbacks is not None:
                    # Event not yet processed: wait for it.
                    next_event.callbacks.append(self._resume)
                    self._target = next_event
                    break
                # Event already processed: loop and resume immediately.
                event = next_event
            except AttributeError:
                msg = f"process {self.name!r} yielded a non-event: {next_event!r}"
                error = RuntimeError(msg)
                error.__cause__ = None
                self._ok = False
                self._value = error
                env.schedule(self, NORMAL)
                break
        env._active_proc = None

    def __repr__(self) -> str:
        return f"<Process({self.name}) at {id(self):#x}>"


class ConditionValue:
    """Ordered mapping of triggered events to values for conditions."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(key)
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def keys(self):
        return list(self.events)

    def values(self):
        return [e._value for e in self.events]

    def items(self):
        return [(e, e._value) for e in self.events]

    def todict(self) -> dict:
        return dict(self.items())

    def __eq__(self, other) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Waits for a combination of events (all-of / any-of)."""

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(self, env, evaluate: Callable, events: Iterable[Event]):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")

        # Immediately check events already processed; subscribe to the rest.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        if not self._events and self._value is PENDING:
            self.succeed(ConditionValue())

    def _collect_values(self) -> ConditionValue:
        # Only include events whose callbacks have already run ("processed"):
        # a pending Timeout carries its value from creation but has not
        # occurred yet in simulated time.
        result = ConditionValue()
        for event in self._events:
            if event.callbacks is not None:
                continue
            if isinstance(event, Condition) and isinstance(event._value, ConditionValue):
                result.events.extend(event._value.events)
            else:
                result.events.append(event)
        return result

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            # Propagate failure.
            event._defused = True
            self._ok = False
            self._value = event._value
            self.env.schedule(self, NORMAL)
        elif self._evaluate(self._events, self._count):
            self._ok = True
            self._value = self._collect_values()
            self.env.schedule(self, NORMAL)

    @staticmethod
    def all_events(events: list, count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: list, count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Condition that triggers when all ``events`` have triggered."""

    __slots__ = ()

    def __init__(self, env, events: Iterable[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that triggers when any of ``events`` has triggered."""

    __slots__ = ()

    def __init__(self, env, events: Iterable[Event]):
        super().__init__(env, Condition.any_events, events)
