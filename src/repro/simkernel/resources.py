"""Shared-resource primitives built on the event kernel.

Three families, mirroring what network/device models need:

* :class:`Resource` — a semaphore with ``capacity`` slots (CPU cores,
  server worker pools).  FIFO; :class:`PriorityResource` adds priorities.
* :class:`Container` — a continuous quantity (battery charge, buffer
  bytes) with ``put``/``get`` of amounts.
* :class:`Store` — a FIFO queue of Python objects (packet queues,
  mailboxes); :class:`FilterStore` allows selective gets.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from .events import Event

__all__ = [
    "Request",
    "Release",
    "Resource",
    "PriorityRequest",
    "PriorityResource",
    "Container",
    "Store",
    "FilterStore",
    "PriorityItem",
    "PriorityStore",
]


class Request(Event):
    """Request event for one slot of a :class:`Resource`.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource", "usage_since")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self.usage_since: Optional[float] = None
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot (or abandon the queue position)."""
        self.resource._do_cancel(self)


class Release(Event):
    """Explicit release event (triggers immediately)."""

    __slots__ = ("request",)

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        self.request = request
        resource._do_cancel(request)
        self.succeed()


class Resource:
    """Semaphore-style resource with ``capacity`` identical slots."""

    def __init__(self, env, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.env = env
        self._capacity = capacity
        self.users: list[Request] = []
        self.queue: list[Request] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> Release:
        return Release(self, request)

    # -- internal ----------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self._grant(request)
        else:
            self.queue.append(request)

    def _grant(self, request: Request) -> None:
        self.users.append(request)
        request.usage_since = self.env.now
        request.succeed()

    def _do_cancel(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
            self._wake_next()
        elif request in self.queue:
            self.queue.remove(request)

    def _wake_next(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            self._grant(self.queue.pop(0))


class PriorityRequest(Request):
    """Request with a priority (lower value = served earlier)."""

    __slots__ = ("priority", "time", "key")

    def __init__(self, resource: "PriorityResource", priority: int = 0):
        self.priority = priority
        self.time = resource.env.now
        self.key = (priority, self.time)
        super().__init__(resource)


class PriorityResource(Resource):
    """Resource whose waiting queue is ordered by request priority."""

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self._grant(request)
        else:
            self.queue.append(request)
            self.queue.sort(key=lambda r: r.key)  # type: ignore[attr-defined]


class _ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be > 0")
        super().__init__(container.env)
        self.amount = amount
        container._put_waiters.append(self)
        container._trigger()


class _ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be > 0")
        super().__init__(container.env)
        self.amount = amount
        container._get_waiters.append(self)
        container._trigger()


class Container:
    """A homogeneous bulk quantity between 0 and ``capacity``."""

    def __init__(self, env, capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self._capacity = capacity
        self._level = init
        self._put_waiters: list[_ContainerPut] = []
        self._get_waiters: list[_ContainerGet] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> _ContainerPut:
        return _ContainerPut(self, amount)

    def get(self, amount: float) -> _ContainerGet:
        return _ContainerGet(self, amount)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_waiters:
                put = self._put_waiters[0]
                if self._level + put.amount <= self._capacity:
                    self._put_waiters.pop(0)
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._get_waiters:
                get = self._get_waiters[0]
                if self._level >= get.amount:
                    self._get_waiters.pop(0)
                    self._level -= get.amount
                    get.succeed()
                    progressed = True


class _StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_waiters.append(self)
        store._trigger()


class _StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._get_waiters.append(self)
        store._trigger()


class _FilterStoreGet(_StoreGet):
    __slots__ = ("filter",)

    def __init__(self, store: "FilterStore", filter: Callable[[Any], bool]):
        self.filter = filter
        super().__init__(store)


class Store:
    """FIFO queue of arbitrary items with optional bounded capacity."""

    def __init__(self, env, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.env = env
        self._capacity = capacity
        self.items: list = []
        self._put_waiters: list[_StorePut] = []
        self._get_waiters: list[_StoreGet] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    def put(self, item: Any) -> _StorePut:
        """Queue ``item``; blocks (as an event) while the store is full."""
        return _StorePut(self, item)

    def get(self) -> _StoreGet:
        """Pop the oldest item; blocks (as an event) while empty."""
        return _StoreGet(self)

    def drain_pending(self, limit: Optional[int] = None) -> list:
        """Pop up to ``limit`` immediately-available items without waiting.

        Returns possibly-empty list; never blocks.  This is the batch
        companion to :meth:`get`: a consumer wakes on one ``get`` and
        drains whatever else queued up in the same instant.  Draining
        frees capacity, so blocked putters are re-triggered.
        """
        if not self.items:
            return []
        if limit is None or limit >= len(self.items):
            drained, self.items = self.items, []
        else:
            drained = self.items[:limit]
            del self.items[:limit]
        if self._put_waiters:
            self._trigger()
        return drained

    def _do_put(self, event: _StorePut) -> bool:
        if len(self.items) < self._capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: _StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.pop(0))
            return True
        return False

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._put_waiters:
                if self._do_put(self._put_waiters[0]):
                    self._put_waiters.pop(0)
                    progressed = True
                else:
                    break
            idx = 0
            while idx < len(self._get_waiters):
                if self._do_get(self._get_waiters[idx]):
                    self._get_waiters.pop(idx)
                    progressed = True
                else:
                    idx += 1


class FilterStore(Store):
    """Store whose ``get`` takes a predicate selecting an item."""

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> _FilterStoreGet:  # type: ignore[override]
        return _FilterStoreGet(self, filter)

    def drain_pending(  # type: ignore[override]
        self,
        limit: Optional[int] = None,
        filter: Callable[[Any], bool] = lambda item: True,
    ) -> list:
        """Pop up to ``limit`` items matching ``filter`` without waiting.

        Honours the selection contract: items the predicate rejects stay
        queued (the base class would pop FIFO regardless of filters).
        """
        drained: list = []
        index = 0
        while index < len(self.items) and (limit is None or len(drained) < limit):
            if filter(self.items[index]):
                drained.append(self.items.pop(index))
            else:
                index += 1
        if drained and self._put_waiters:
            self._trigger()
        return drained

    def _do_get(self, event: _StoreGet) -> bool:
        predicate = getattr(event, "filter", lambda item: True)
        for i, item in enumerate(self.items):
            if predicate(item):
                self.items.pop(i)
                event.succeed(item)
                return True
        return False


class PriorityItem:
    """Wraps an item with an orderable priority for :class:`PriorityStore`."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: Any, item: Any):
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __repr__(self) -> str:
        return f"PriorityItem({self.priority!r}, {self.item!r})"


class PriorityStore(Store):
    """Store that always yields the smallest item (heap ordered)."""

    def _do_put(self, event: _StorePut) -> bool:
        if len(self.items) < self._capacity:
            heapq.heappush(self.items, event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: _StoreGet) -> bool:
        if self.items:
            event.succeed(heapq.heappop(self.items))
            return True
        return False

    def drain_pending(self, limit: Optional[int] = None) -> list:
        """Pop up to ``limit`` items in priority order without waiting."""
        count = len(self.items) if limit is None else min(limit, len(self.items))
        drained = [heapq.heappop(self.items) for _ in range(count)]
        if drained and self._put_waiters:
            self._trigger()
        return drained
