"""Energy model: integrates device power over simulated time.

Power components (see :class:`repro.calibration.EnergyCoefficients`):

* base (idle board) power, always on;
* CPU power proportional to busy-core fraction (read from :class:`Cpu`);
* radio transmit energy per KB actually sent;
* radio receive/listen power while a process blocks on the network
  (baselines waiting for HTTP responses keep the radio in RX);
* a *wake window* after any radio activity: the SoC is kept out of its
  low-power state for a short period (race-to-sleep), merged across
  overlapping windows.

The meter answers the two questions of paper Fig. 6d: average power in
watts over a run, and the relative overhead versus a capture-free run.
"""

from __future__ import annotations

from typing import Optional

from ..simkernel import Environment, TimeWeighted
from ..calibration import EnergyCoefficients
from .cpu import Cpu

__all__ = ["EnergyMeter"]


class EnergyMeter:
    """Integrates the power model for one device."""

    def __init__(self, env: Environment, coeffs: EnergyCoefficients, cpu: Cpu):
        self.env = env
        self.coeffs = coeffs
        self.cpu = cpu
        self._started = env.now
        self._tx_joules = 0.0
        self._tx_bytes = 0
        self._rx_listeners = TimeWeighted(env, 0)
        # merged wake-window accounting
        self._wake_until = env.now
        self._awake_time = 0.0

    # -- hooks called by radio / protocol layers ---------------------------
    def on_transmit(self, nbytes: int) -> None:
        """Charge transmit energy for ``nbytes`` and open a wake window."""
        if nbytes < 0:
            raise ValueError(f"negative byte count: {nbytes}")
        self._tx_bytes += nbytes
        self._tx_joules += self.coeffs.tx_j_per_kb * (nbytes / 1024.0)
        self.touch_wake_window()

    def on_receive(self, nbytes: int) -> None:
        """Open a wake window on packet receipt (RX energy is duty-based)."""
        self.touch_wake_window()

    def rx_listen_start(self) -> None:
        """The device starts actively listening for a network response."""
        self._rx_listeners.add(1)

    def rx_listen_stop(self) -> None:
        """The device stops listening."""
        self._rx_listeners.add(-1)

    def touch_wake_window(self) -> None:
        """Extend the awake window to ``now + wake_window_s``, merging."""
        now = self.env.now
        new_until = now + self.coeffs.wake_window_s
        if now >= self._wake_until:
            self._awake_time += self.coeffs.wake_window_s
        else:
            self._awake_time += max(0.0, new_until - self._wake_until)
        self._wake_until = max(self._wake_until, new_until)

    # -- readout ---------------------------------------------------------------
    def _awake_time_so_far(self) -> float:
        """Awake-window time elapsed by now (clips an open window)."""
        now = self.env.now
        if now >= self._wake_until:
            return self._awake_time
        return self._awake_time - (self._wake_until - now)

    def elapsed(self) -> float:
        return self.env.now - self._started

    def energy_joules(self) -> float:
        """Total energy consumed since creation (or reset)."""
        elapsed = self.elapsed()
        cpu_busy_core_seconds = self.cpu.busy_cores.integral()
        rx_seconds = self._rx_listeners.integral()
        return (
            self.coeffs.base_w * elapsed
            + self.coeffs.cpu_busy_w * cpu_busy_core_seconds
            + self._tx_joules
            + self.coeffs.rx_listen_w * rx_seconds
            + self.coeffs.wake_window_w * self._awake_time_so_far()
        )

    def average_power_w(self) -> float:
        """Mean power since creation; base power if no time has passed."""
        elapsed = self.elapsed()
        if elapsed <= 0:
            return self.coeffs.base_w
        return self.energy_joules() / elapsed

    @property
    def tx_bytes(self) -> int:
        return self._tx_bytes

    def reset(self) -> None:
        """Restart integration (CPU accounting must be reset separately)."""
        self._started = self.env.now
        self._tx_joules = 0.0
        self._tx_bytes = 0
        self._rx_listeners.reset()
        self._wake_until = self.env.now
        self._awake_time = 0.0

    def __repr__(self) -> str:
        return f"<EnergyMeter avg={self.average_power_w():.3f} W>"
