"""Device: the composition of CPU, memory, radio and energy models.

A :class:`Device` is what workloads and capture libraries run *on*.  The
network layer attaches a host endpoint to it (see
:class:`repro.net.topology.Network.add_host`), wiring packet send/receive
events into the radio and energy accounting.
"""

from __future__ import annotations

from typing import Optional

from ..simkernel import Environment
from .cpu import Cpu
from .energy import EnergyMeter
from .memory import Memory
from .radio import Radio
from .specs import A8M3, DeviceSpec

__all__ = ["Device"]


class Device:
    """A simulated machine with accounted resources."""

    def __init__(
        self,
        env: Environment,
        spec: DeviceSpec = A8M3,
        name: Optional[str] = None,
        strict_memory: bool = False,
    ):
        self.env = env
        self.spec = spec
        self.name = name or spec.name
        self.cpu = Cpu(env, spec)
        self.memory = Memory(spec, strict=strict_memory)
        self.energy: Optional[EnergyMeter] = (
            EnergyMeter(env, spec.energy, self.cpu) if spec.energy else None
        )
        self.radio = Radio(env, self.energy)
        #: set by the network layer when this device joins a topology
        self.host = None

    # -- convenience ------------------------------------------------------
    def run(self, compute_s=0.0, io_busy_s=0.0, io_wait_s=0.0, tag="workload"):
        """Shortcut for ``device.cpu.run(...)`` (yield from it)."""
        return self.cpu.run(compute_s, io_busy_s, io_wait_s, tag=tag)

    def blocking_network_wait(self, event):
        """Wait on ``event`` while the radio listens for the response.

        Used by blocking clients (HTTP): the energy model charges RX-listen
        power for the whole wait — the mechanism behind the baselines'
        power overhead in paper Fig. 6d.
        """
        if self.energy is not None:
            self.energy.rx_listen_start()
        try:
            value = yield event
        finally:
            if self.energy is not None:
                self.energy.rx_listen_stop()
        return value

    def reset_accounting(self) -> None:
        """Reset CPU/energy/radio accounting (memory ledger persists)."""
        self.cpu.reset_accounting()
        self.radio.reset()
        if self.energy is not None:
            self.energy.reset()

    def __repr__(self) -> str:
        return f"<Device {self.name} ({self.spec.name})>"
