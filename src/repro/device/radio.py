"""Radio / NIC accounting for a device.

The radio does not shape traffic (links in :mod:`repro.net` own the timing
model); it is the bridge between the network layer and the device's energy
meter and byte counters.  The paper's Fig. 6c "network usage" is read from
these counters.
"""

from __future__ import annotations

from typing import Optional

from ..simkernel import Counter, Environment, RateMeter
from .energy import EnergyMeter

__all__ = ["Radio"]


class Radio:
    """Per-device transmit/receive accounting."""

    def __init__(self, env: Environment, energy: Optional[EnergyMeter] = None):
        self.env = env
        self.energy = energy
        self.tx = Counter("tx-bytes")
        self.rx = Counter("rx-bytes")
        self.tx_rate = RateMeter(env)
        self.rx_rate = RateMeter(env)

    def on_transmit(self, nbytes: int) -> None:
        """Called by the network layer when this device sends a packet."""
        self.tx.record(nbytes)
        self.tx_rate.record(nbytes)
        if self.energy is not None:
            self.energy.on_transmit(nbytes)

    def on_receive(self, nbytes: int) -> None:
        """Called by the network layer when this device receives a packet."""
        self.rx.record(nbytes)
        self.rx_rate.record(nbytes)
        if self.energy is not None:
            self.energy.on_receive(nbytes)

    @property
    def total_bytes(self) -> int:
        """Bytes moved in both directions."""
        return int(self.tx.total + self.rx.total)

    def reset(self) -> None:
        self.tx.reset()
        self.rx.reset()
        self.tx_rate = RateMeter(self.env)
        self.rx_rate = RateMeter(self.env)

    def __repr__(self) -> str:
        return f"<Radio tx={self.tx.total:.0f}B rx={self.rx.total:.0f}B>"
