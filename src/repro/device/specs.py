"""Hardware specifications for the devices used in the paper's evaluation.

Two device classes appear in the paper:

* **A8-M3** (FIT IoT LAB): ARM Cortex-A8 @ 600 MHz, 256 MB RAM, 802.15.4
  radio, 3.7 V / 650 mAh LiPo battery — the edge device under test;
* **Grid'5000 ``gros``**: Intel Xeon Gold 5220 @ 2.20 GHz, 18 cores,
  96 GB RAM — the cloud server hosting brokers/servers/backends, and the
  client machine for the Table X cloud experiment.

Speed is modelled relative to the A8-M3 with two scalars (see
:mod:`repro.calibration` for why one scalar cannot fit the paper's
edge-and-cloud numbers simultaneously): ``compute_speedup`` for
interpreter-bound work and ``io_speedup`` for syscall-bound work, with an
``io_floor_s`` under which per-call io work cannot shrink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..calibration import A8M3_ENERGY, EnergyCoefficients

__all__ = ["DeviceSpec", "A8M3", "XEON_GOLD_5220", "spec_by_name"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a device model."""

    name: str
    cpu_freq_hz: float
    cores: int
    #: Speedup over the A8-M3 for interpreter-bound (compute-class) work.
    compute_speedup: float
    #: Speedup over the A8-M3 for syscall-bound (io-class) work.
    io_speedup: float
    #: Per-operation lower bound for scaled io work, in seconds.
    io_floor_s: float
    ram_bytes: int
    #: Power-model coefficients; None for devices whose power the paper
    #: does not measure (cloud servers).
    energy: Optional[EnergyCoefficients] = None
    #: Nominal radio/NIC line rate in bits/s (802.15.4 for the A8-M3;
    #: the *effective* experiment bandwidth is set by the network links).
    radio_bps: float = 250_000.0

    def scale_compute(self, seconds_at_ref: float) -> float:
        """Scale reference-device compute work to this device."""
        if seconds_at_ref <= 0:
            return 0.0
        return seconds_at_ref / self.compute_speedup

    def scale_io(self, seconds_at_ref: float) -> float:
        """Scale reference-device io work to this device (with floor)."""
        if seconds_at_ref <= 0:
            return 0.0
        return max(seconds_at_ref / self.io_speedup, self.io_floor_s)


#: The paper's edge device (reference device: speedups are 1 by definition).
A8M3 = DeviceSpec(
    name="iotlab-a8-m3",
    cpu_freq_hz=600e6,
    cores=1,
    compute_speedup=1.0,
    io_speedup=1.0,
    io_floor_s=0.0,
    ram_bytes=256 * 1024 * 1024,
    energy=A8M3_ENERGY,
    radio_bps=250_000.0,
)

#: The paper's cloud server (Grid'5000 "gros" cluster).
XEON_GOLD_5220 = DeviceSpec(
    name="xeon-gold-5220",
    cpu_freq_hz=2.2e9,
    cores=18,
    compute_speedup=30.0,
    io_speedup=30.0,
    io_floor_s=0.5e-3,
    ram_bytes=96 * 1024 * 1024 * 1024,
    energy=None,
    radio_bps=1e9,
)

_SPECS = {spec.name: spec for spec in (A8M3, XEON_GOLD_5220)}


def spec_by_name(name: str) -> DeviceSpec:
    """Look up a built-in spec by its ``name`` field."""
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown device spec {name!r}; known: {sorted(_SPECS)}"
        ) from None
