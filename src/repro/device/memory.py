"""Tagged resident-memory accounting for a device.

The paper's Fig. 6b reports the capture library's memory usage relative to
the device's RAM.  We track allocations per tag ("workload",
"capture-static", "capture-buffers", ...) with current and peak values, so
the harness can report exactly the capture-attributable share.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

from .specs import DeviceSpec

__all__ = ["Memory", "MemoryExceeded"]


class MemoryExceeded(RuntimeError):
    """Raised in strict mode when allocations exceed device RAM."""


class Memory:
    """Byte-granular allocation ledger with per-tag peaks."""

    def __init__(self, spec: DeviceSpec, strict: bool = False):
        self.spec = spec
        self.strict = strict
        self._current: Dict[str, int] = defaultdict(int)
        self._peak: Dict[str, int] = defaultdict(int)
        self._peak_total = 0

    # -- operations ---------------------------------------------------------
    def allocate(self, nbytes: int, tag: str = "workload") -> None:
        """Record an allocation of ``nbytes`` under ``tag``."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        self._current[tag] += nbytes
        self._peak[tag] = max(self._peak[tag], self._current[tag])
        total = self.used()
        self._peak_total = max(self._peak_total, total)
        if self.strict and total > self.spec.ram_bytes:
            raise MemoryExceeded(
                f"{self.spec.name}: {total} bytes used > {self.spec.ram_bytes} RAM"
            )

    def free(self, nbytes: int, tag: str = "workload") -> None:
        """Record a release of ``nbytes`` under ``tag``."""
        if nbytes < 0:
            raise ValueError(f"negative free: {nbytes}")
        if nbytes > self._current[tag]:
            raise ValueError(
                f"freeing {nbytes} bytes from tag {tag!r} holding {self._current[tag]}"
            )
        self._current[tag] -= nbytes

    # -- inspection -----------------------------------------------------------
    def used(self, tag: str | None = None) -> int:
        """Bytes currently allocated (for one tag or in total)."""
        if tag is not None:
            return self._current.get(tag, 0)
        return sum(self._current.values())

    def peak(self, tag: str | None = None) -> int:
        """Peak bytes (for one tag, or the all-tags-total peak)."""
        if tag is not None:
            return self._peak.get(tag, 0)
        return self._peak_total

    def fraction_of_ram(self, tag: str | None = None, peak: bool = True) -> float:
        """Peak (or current) usage as a fraction of device RAM."""
        value = self.peak(tag) if peak else self.used(tag)
        return value / self.spec.ram_bytes

    def tags(self) -> Dict[str, int]:
        """Snapshot of current usage per tag."""
        return {tag: n for tag, n in self._current.items() if n}

    def __repr__(self) -> str:
        return f"<Memory {self.spec.name} used={self.used()}/{self.spec.ram_bytes}>"
