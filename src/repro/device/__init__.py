"""Device models: CPU, memory, radio and energy accounting.

The paper evaluates on two device classes — A8-M3 IoT boards and Xeon
cloud servers — whose specs live in :mod:`repro.device.specs`.  Work is
charged in calibrated reference-seconds (see :mod:`repro.calibration`).
"""

from .cpu import Cpu
from .device import Device
from .energy import EnergyMeter
from .memory import Memory, MemoryExceeded
from .radio import Radio
from .specs import A8M3, XEON_GOLD_5220, DeviceSpec, spec_by_name

__all__ = [
    "Cpu",
    "Device",
    "EnergyMeter",
    "Memory",
    "MemoryExceeded",
    "Radio",
    "DeviceSpec",
    "A8M3",
    "XEON_GOLD_5220",
    "spec_by_name",
]
