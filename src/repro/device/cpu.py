"""CPU model: turns calibrated work amounts into simulated time.

Work is specified in *reference seconds* (time the operation takes on the
A8-M3, see :mod:`repro.calibration`) in up to three components:

``compute_s``
    busy CPU, interpreter-bound; scales with ``compute_speedup``;
``io_busy_s``
    busy CPU in syscall paths; scales with ``io_speedup`` (with floor);
``io_wait_s``
    blocked-but-idle time (kernel waits, blocking socket calls); the
    process is delayed but no core is held busy.

Busy time is accounted per *tag* so the harness can attribute utilization
to "capture" vs "workload" exactly like the paper's Fig. 6a does.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Generator

from ..simkernel import Environment, Resource, TimeWeighted
from .specs import DeviceSpec

__all__ = ["Cpu"]


class Cpu:
    """A multi-core CPU shared by the processes running on one device."""

    def __init__(self, env: Environment, spec: DeviceSpec):
        self.env = env
        self.spec = spec
        self._cores = Resource(env, capacity=spec.cores)
        #: number of busy cores over time (for utilization and energy)
        self.busy_cores = TimeWeighted(env, 0)
        self._busy_time_by_tag: Dict[str, float] = defaultdict(float)
        self._started = env.now

    # -- execution ---------------------------------------------------------
    def run(
        self,
        compute_s: float = 0.0,
        io_busy_s: float = 0.0,
        io_wait_s: float = 0.0,
        tag: str = "workload",
    ) -> Generator:
        """Generator performing the given work; use as ``yield from``.

        Busy components hold one core for their (scaled) duration; the wait
        component delays the caller without occupying a core.
        """
        spec = self.spec
        env = self.env
        busy = 0.0
        if compute_s:
            busy = spec.scale_compute(compute_s)
        if io_busy_s:
            busy += spec.scale_io(io_busy_s)
        if busy > 0:
            with self._cores.request() as req:
                yield req
                self.busy_cores.add(1)
                try:
                    yield env.timeout(busy)
                finally:
                    self.busy_cores.add(-1)
                    self._busy_time_by_tag[tag] += busy
        if io_wait_s:
            wait = spec.scale_io(io_wait_s)
            if wait > 0:
                yield env.timeout(wait)

    def run_async(
        self,
        compute_s: float = 0.0,
        io_busy_s: float = 0.0,
        io_wait_s: float = 0.0,
        tag: str = "background",
    ):
        """Schedule :meth:`run` as an independent process (fire and forget).

        Models work done by a background thread (e.g. ProvLight's async
        sender): it consumes CPU and shows up in utilization, but does not
        delay the caller.
        """
        return self.env.process(
            self.run(compute_s, io_busy_s, io_wait_s, tag=tag),
            name=f"cpu-async-{tag}",
        )

    # -- accounting ---------------------------------------------------------
    def busy_time(self, tag: str | None = None) -> float:
        """Accumulated busy seconds, for one tag or all tags."""
        if tag is not None:
            return self._busy_time_by_tag.get(tag, 0.0)
        return sum(self._busy_time_by_tag.values())

    def busy_tags(self) -> Dict[str, float]:
        """Snapshot of per-tag busy seconds."""
        return dict(self._busy_time_by_tag)

    def utilization(self, tag: str | None = None) -> float:
        """Mean core utilization in [0, 1] since creation (or reset).

        With a tag, the utilization attributable to that tag only —
        matching the paper's "CPU usage of the capture library".
        """
        elapsed = self.env.now - self._started
        if elapsed <= 0:
            return 0.0
        if tag is None:
            return self.busy_cores.integral() / (elapsed * self.spec.cores)
        return self._busy_time_by_tag.get(tag, 0.0) / (elapsed * self.spec.cores)

    def reset_accounting(self) -> None:
        """Restart utilization accounting from the current instant."""
        self._busy_time_by_tag.clear()
        self.busy_cores.reset()
        self._started = self.env.now

    def __repr__(self) -> str:
        return f"<Cpu {self.spec.name} cores={self.spec.cores}>"
