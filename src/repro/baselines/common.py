"""Shared machinery for the baseline capture libraries.

Both ProvLake and DfAnalyzer capture clients follow the same pattern the
paper analyzes (Table VI): build a provenance record, serialize it to
verbose JSON, and POST it over a **blocking** HTTP/1.1 request on a
keep-alive TCP connection.  The workflow thread is stalled for the whole
serialize + transmit + server + response cycle — the root cause of the
Table II overheads.

The wire mechanics of that pattern (the keep-alive session, the error
swallowing, the radio-listen energy accounting) live in one place:
:class:`HttpPostCaptureTransport`, which doubles as the registered
``http`` transport of the unified capture API — so the baselines here,
the ``SyncHttpProvLightClient`` ablation and
``create_client(..., transport="http")`` all exercise the same blocking
POST path.

The classes here also define the uniform capture-client interface that
lets one instrumented workload run against any capture system (ProvLight,
the baselines, or no capture at all):

* ``now`` property — simulated clock for record timestamps;
* ``setup()`` / ``capture(record, groupable)`` / ``flush_groups()`` /
  ``drain()`` — generators;
* ``close()``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..capture import CaptureConfig, CaptureTransport, register_transport
from ..core.model import count_attributes_from_record
from ..device import Device
from ..http import HttpRequestError, HttpSession
from ..net import Endpoint
from ..simkernel import Counter

__all__ = [
    "NullCaptureClient",
    "BlockingHttpCaptureClient",
    "HttpPostCaptureTransport",
    "iso_time",
]

#: collector resource the ``http`` capture transport POSTs to by default
DEFAULT_HTTP_CAPTURE_PATH = "/provlight"


def iso_time(seconds: float) -> str:
    """Format a simulated timestamp the way the real libraries do
    (ISO-8601-ish strings inflate the JSON exactly like in production)."""
    ms = int(round(seconds * 1000))
    s, ms = divmod(ms, 1000)
    m, s = divmod(s, 60)
    h, m = divmod(m, 60)
    return f"2023-01-17T{h:02d}:{m:02d}:{s:02d}.{ms:03d}Z"


class HttpPostCaptureTransport(CaptureTransport):
    """Blocking HTTP/1.1 POST capture transport (the baselines' wire).

    ``blocking = True``: the façade awaits every ``send()`` on the
    workflow's critical path, reproducing the synchronous
    request/response stall of the real ProvLake/DfAnalyzer libraries.
    Request errors are counted, never raised — like the real libraries,
    capture failure must not crash the instrumented application.
    """

    name = "http"
    blocking = True
    requires_setup = False

    def __init__(self, device: Device, server: Endpoint, topic: str = "",
                 config: Optional[CaptureConfig] = None,
                 path: Optional[str] = None,
                 user_agent: str = "provlight-http-capture/1.0"):
        self.device = device
        self.env = device.env
        self.server = server
        if path is None:
            path = topic if topic.startswith("/") else DEFAULT_HTTP_CAPTURE_PATH
        self.path = path
        self.session = HttpSession(device.host, user_agent=user_agent)
        self.requests_sent = Counter("requests")
        self.body_bytes = Counter("body-bytes")
        self.capture_errors = Counter("errors")
        #: durable clients need the ack hook to be truthful: a failed
        #: POST must fail the completion event so the façade parks the
        #: journaled entry for replay.  Best-effort clients keep the
        #: baselines' count-and-carry-on semantics.
        self._report_failures = bool(config is not None and config.durable)

    def connect(self):
        """Nothing to pre-establish: the first POST dials the server."""
        return None
        yield  # pragma: no cover - generator shape

    def register(self, topic: str):
        return self.path
        yield  # pragma: no cover - generator shape

    def send(self, body: bytes):
        """POST ``body``; the returned event completes with the response
        (and always succeeds — errors land in ``capture_errors``)."""
        done = self.env.event()
        self.env.process(self._post(body, done),
                         name=f"http-capture-post-{self.path}")
        return done

    def _post(self, body: bytes, done):
        self.body_bytes.record(len(body))
        energy = self.device.energy
        error: Optional[Exception] = None
        if energy is not None:
            energy.rx_listen_start()
        try:
            response = yield from self.session.post(self.server, self.path, body)
            if not response.ok:
                self.capture_errors.record()
                error = HttpRequestError(
                    f"collector rejected capture POST: {response.status}"
                )
        except HttpRequestError as exc:
            # like the real libraries: log and carry on, never crash the
            # instrumented application
            self.capture_errors.record()
            error = exc
        finally:
            # an unexpected exception still unblocks the waiting capture
            # call (the failed post process surfaces it loudly); a parked
            # workflow would be strictly worse than a visible error
            if energy is not None:
                energy.rx_listen_stop()
            self.requests_sent.record()
            if not done.triggered:
                if error is not None and self._report_failures:
                    done.fail(error)
                else:
                    done.succeed()

    def disconnect(self) -> None:
        self.session.close()


register_transport("http", HttpPostCaptureTransport)


class NullCaptureClient:
    """No-op capture client: the "without provenance" control run.

    The paper's overhead metric is the relative difference against this.
    """

    def __init__(self, device: Device):
        self.device = device
        self.env = device.env
        self.records_captured = Counter("records")

    @property
    def now(self) -> float:
        return self.env.now

    def setup(self):
        return self
        yield  # pragma: no cover

    def capture(self, record: Dict[str, Any], groupable: bool = True):
        self.records_captured.record()
        return None
        yield  # pragma: no cover

    def flush_groups(self):
        return None
        yield  # pragma: no cover

    def drain(self):
        return None
        yield  # pragma: no cover

    def close(self) -> None:
        pass


class BlockingHttpCaptureClient:
    """Base class for the ProvLake/DfAnalyzer-style capture libraries.

    Subclasses define the cost constants, the JSON wire format (envelope +
    per-record rendering) and whether grouping is supported.  The wire
    I/O itself goes through :class:`HttpPostCaptureTransport`, the same
    adapter the unified capture API registers as ``http``.
    """

    #: subclasses: human name for diagnostics
    system_name = "baseline"
    #: ProvLake's grouping batches *every* message (its feature predates
    #: ProvLight's ended-tasks-only refinement), so subclasses that group
    #: set this to ignore the per-record ``groupable`` hint.
    group_all = False

    def __init__(
        self,
        device: Device,
        server: Endpoint,
        path: str,
        lib_bytes: int,
        group_size: int = 0,
    ):
        if device.host is None:
            raise RuntimeError(f"device {device.name} is not attached to a network host")
        if group_size and not self.supports_grouping():
            raise ValueError(f"{self.system_name} does not support grouping")
        self.device = device
        self.env = device.env
        self.server = server
        self.path = path
        self.group_size = group_size
        self.transport = HttpPostCaptureTransport(
            device, server, path=path,
            user_agent=f"{self.system_name}-capture/1.0",
        )
        self.session = self.transport.session
        self._buffer: List[Dict[str, Any]] = []
        self._lib_bytes = lib_bytes
        device.memory.allocate(lib_bytes, tag="capture-static")
        self.records_captured = Counter("records")
        # wire counters are owned by the transport; exposed here under the
        # historical names
        self.requests_sent = self.transport.requests_sent
        self.body_bytes = self.transport.body_bytes
        self.capture_errors = self.transport.capture_errors

    # -- interface hooks for subclasses -------------------------------------
    def supports_grouping(self) -> bool:
        return False

    def build_cost_s(self, n_attrs: int) -> float:
        raise NotImplementedError

    def flush_compute_cost_s(self, records: List[Dict[str, Any]]) -> float:
        raise NotImplementedError

    def flush_io_wait_s(self) -> float:
        raise NotImplementedError

    def render_body(self, records: List[Dict[str, Any]]) -> bytes:
        raise NotImplementedError

    # -- capture-client interface ----------------------------------------------
    @property
    def now(self) -> float:
        return self.env.now

    def setup(self):
        """Nothing to pre-establish: the first POST dials the server."""
        return self
        yield  # pragma: no cover

    def capture(self, record: Dict[str, Any], groupable: bool = True):
        """Generator: capture one record, blocking like the real library."""
        self.records_captured.record()
        n_attrs = count_attributes_from_record(record)
        yield from self.device.cpu.run(
            compute_s=self.build_cost_s(n_attrs), tag="capture"
        )
        if self.group_size > 0 and (groupable or self.group_all):
            self._buffer.append(record)
            self.device.memory.allocate(_record_footprint(record), tag="capture-buffers")
            if len(self._buffer) >= self.group_size:
                yield from self._flush()
        else:
            yield from self._post([record])

    def flush_groups(self):
        """Generator: send any partially filled group."""
        if self._buffer:
            yield from self._flush()

    def drain(self):
        """Blocking clients have nothing pending once capture returns."""
        return None
        yield  # pragma: no cover

    def close(self) -> None:
        self.transport.disconnect()
        self.device.memory.free(self._lib_bytes, tag="capture-static")

    # -- internals ---------------------------------------------------------------
    def _flush(self):
        records, self._buffer = self._buffer, []
        for record in records:
            self.device.memory.free(_record_footprint(record), tag="capture-buffers")
        yield from self._post(records)

    def _post(self, records: List[Dict[str, Any]]):
        yield from self.device.cpu.run(
            compute_s=self.flush_compute_cost_s(records),
            io_wait_s=self.flush_io_wait_s(),
            tag="capture",
        )
        yield self.transport.send(self.render_body(records))


def _record_footprint(record: Dict[str, Any]) -> int:
    """Rough in-memory footprint of a buffered record."""
    return 300 + 40 * count_attributes_from_record(record)
