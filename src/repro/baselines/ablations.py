"""Ablation variants of ProvLight for the design-choice analysis.

Paper Section VII-A attributes ProvLight's gains to a combination of
choices: the asynchronous MQTT-SN/UDP transport (major impact on capture
time, energy, CPU, network), payload compression, grouping, and the
simplified data model (major impact on memory, ~1.7%/1.4% further
capture-time/CPU reduction).  The classes here isolate those choices so
the ablation benchmark can toggle them one at a time:

* :class:`SyncHttpProvLightClient` — ProvLight's model + binary codec,
  but shipped through a *blocking HTTP POST per message* like the
  baselines.  Isolates the transport choice.
* :class:`VerboseModelProvLightClient` — ProvLight's transport, but
  records are built through a heavyweight PROV-document path and carry
  the un-simplified attribute layout.  Isolates the simplified model.
* compression and grouping are first-class flags of the real client
  (``compress=``, ``group_size=``) and need no variant class.
"""

from __future__ import annotations

from typing import Any, Dict

from ..calibration import MEMORY_FOOTPRINTS, PROVLAKE_COSTS
from ..capture import CaptureClient, CaptureConfig
from ..core.client import ProvLightClient
from ..core.model import count_attributes_from_record
from ..device import Device
from ..net import Endpoint
from .common import HttpPostCaptureTransport

__all__ = ["SyncHttpProvLightClient", "VerboseModelProvLightClient"]


class SyncHttpProvLightClient(CaptureClient):
    """ProvLight's compact payloads over the baselines' blocking HTTP.

    A shim constructing the shared façade with the ``http`` transport:
    client-side record building, encoding and memory accounting keep
    ProvLight's cheap simplified-model costs; what changes is the
    transport: one synchronous request/response cycle per message over
    TCP, paying connection latency on the workflow's critical path.  The
    measured gap to real ProvLight is the *protocol* contribution.
    """

    def __init__(self, device: Device, server: Endpoint,
                 path: str = "/provlight", compress: bool = True):
        config = CaptureConfig(transport="http", compress=compress)
        transport = HttpPostCaptureTransport(
            device, server, path=path,
            user_agent="provlight-sync-http-capture/1.0",
        )
        super().__init__(device, server, path, config, transport=transport)
        # wire counters under the baseline-family names
        self.requests_sent = self.transport.requests_sent
        self.body_bytes = self.transport.body_bytes
        self.capture_errors = self.transport.capture_errors

    def supports_grouping(self) -> bool:
        # the ablation isolates the transport; grouping stays off
        return False


class VerboseModelProvLightClient(ProvLightClient):
    """ProvLight's transport with a heavyweight provenance data model.

    Records pass through a full PROV-document construction (charged at the
    baselines' record-build cost) and carry the verbose nested layout, so
    payloads are larger and the client's buffers grow — isolating what the
    paper's *simplified data model* buys on top of the protocol.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # the heavyweight model's resident footprint matches the baselines'
        extra = MEMORY_FOOTPRINTS.provlake_lib_bytes - self.footprints.provlight_lib_bytes
        self.device.memory.allocate(extra, tag="capture-static")
        self._extra_static = extra

    def capture(self, record: Dict[str, Any], groupable: bool = True):
        n_attrs = count_attributes_from_record(record)
        # heavyweight document building before the normal capture path
        yield from self.device.cpu.run(
            compute_s=PROVLAKE_COSTS.record_build_compute_s
            + PROVLAKE_COSTS.record_build_per_attr_s * n_attrs,
            tag="capture",
        )
        verbose = _verbose_record(record)
        yield from super().capture(verbose, groupable=groupable)

    def close(self) -> None:
        if not self.closed:  # close() is idempotent; free the extra once
            self.device.memory.free(self._extra_static, tag="capture-static")
        super().close()


def _verbose_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Re-shape a record the way non-simplified PROV layouts do."""
    verbose = {
        "@type": f"prov:{record.get('kind', 'record')}",
        "prov:wasAssociatedWith": {
            "agent": {"@id": f"workflow/{record.get('workflow_id')}"}
        },
        "metadata": {
            "schema": "prov-dm-1.1",
            "generated_by": "provlight-verbose",
            "timestamp": {"value": record.get("time"), "unit": "seconds"},
        },
    }
    verbose.update(record)
    verbose["data"] = [
        {
            # keep the simplified keys so translation still works...
            "id": item.get("id"),
            "workflow_id": item.get("workflow_id"),
            "derivations": list(item.get("derivations", ())),
            "attributes": dict(item.get("attributes", {})),
            # ...and add the verbose PROV envelope around them
            "entity": {"@id": f"data/{item.get('id')}"},
            "prov:wasAttributedTo": {
                "agent": {"@id": f"workflow/{item.get('workflow_id')}"}
            },
            "prov:wasDerivedFrom": [
                {"entity": {"@id": f"data/{d}"}} for d in item.get("derivations", ())
            ],
            "attribute_annotations": [
                {"name": key, "type": type(value).__name__}
                for key, value in item.get("attributes", {}).items()
            ],
        }
        for item in record.get("data", ())
    ]
    return verbose
