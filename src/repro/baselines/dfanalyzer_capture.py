"""DfAnalyzer-style capture library (baseline).

Reproduces the DfAnalyzer Python capture component the paper measures:
every ``task.begin``/``task.end`` becomes one synchronous HTTP POST of a
dataflow-model JSON message to the DfAnalyzer RESTful ingestion API; no
grouping support (paper Table IV).

Cost constants are fitted to Table II — see
:class:`repro.calibration.DfAnalyzerCosts`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..calibration import DFANALYZER_COSTS, MEMORY_FOOTPRINTS, DfAnalyzerCosts
from ..core.model import count_attributes_from_record
from ..device import Device
from ..net import Endpoint
from .common import BlockingHttpCaptureClient, iso_time

__all__ = ["DfAnalyzerCaptureClient"]

_HEADER = {
    "dfa_version": "1.0.4",
    "client": {"library": "dfa-lib-python", "language": "python"},
    "ingestion": {"mode": "runtime", "api": "pde", "format": "json"},
}


class DfAnalyzerCaptureClient(BlockingHttpCaptureClient):
    """Per-call blocking JSON-over-HTTP capture (no grouping)."""

    system_name = "dfanalyzer"

    def __init__(
        self,
        device: Device,
        server: Endpoint,
        path: str = "/pde/task",
        costs: DfAnalyzerCosts = DFANALYZER_COSTS,
    ):
        self.costs = costs
        super().__init__(
            device,
            server,
            path,
            lib_bytes=MEMORY_FOOTPRINTS.dfanalyzer_lib_bytes,
            group_size=0,
        )

    def supports_grouping(self) -> bool:
        return False

    def build_cost_s(self, n_attrs: int) -> float:
        return self.costs.record_build_compute_s

    def flush_compute_cost_s(self, records: List[Dict[str, Any]]) -> float:
        total = self.costs.flush_fixed_compute_s
        for record in records:
            total += (
                self.costs.flush_per_record_compute_s
                + self.costs.flush_per_attr_compute_s
                * count_attributes_from_record(record)
            )
        return total

    def flush_io_wait_s(self) -> float:
        return self.costs.flush_io_s

    def render_body(self, records: List[Dict[str, Any]]) -> bytes:
        # DfAnalyzer posts one message per request; records arrive here
        # one at a time because grouping is unsupported.
        body = dict(_HEADER)
        body["messages"] = [self._render_record(r) for r in records]
        return json.dumps(body).encode()

    def _render_record(self, record: Dict[str, Any]) -> Dict[str, Any]:
        kind = record.get("kind", "")
        if kind.startswith("workflow"):
            return {
                "object": "dataflow",
                "dataflow_tag": f"df_{record['workflow_id']}",
                "event": kind.split("_", 1)[1],
                "timestamp": iso_time(record.get("time", 0.0)),
            }
        datasets = []
        for item in record.get("data", ()):
            datasets.append(
                {
                    "tag": str(item["id"]),
                    "dependency": [str(d) for d in item.get("derivations", ())],
                    "elements": [item.get("attributes", {})],
                }
            )
        return {
            "object": "task",
            "dataflow_tag": f"df_{record['workflow_id']}",
            "transformation_tag": f"tr_{record.get('transformation_id')}",
            "id": record["task_id"],
            "status": "RUNNING" if kind == "task_begin" else "FINISHED",
            "dependency": {"tags": [str(d) for d in record.get("dependencies", ())]},
            "performance": {"time": iso_time(record.get("time", 0.0))},
            "sets": datasets,
        }
