"""PROV-IO- and Komadu-style capture models (paper Table IV).

The paper *excludes* these two systems from its performance analysis
because of design-level limitations, not measured numbers:

* **PROV-IO** "does not send the captured data over the network ...
  Instead, it periodically dumps the in-memory provenance graph to
  disk" — unsuitable for flash-backed, RAM-limited IoT devices;
* **Komadu** has no client/server split: "the capture and the processing
  of the captured information run in the same machine".

To make Table IV executable rather than prose, this module implements
both behaviours against the simulated device models, and the tests
demonstrate exactly the limitations the paper cites: PROV-IO's growing
in-memory graph plus periodic flash stalls, and Komadu's server-grade
processing cost charged to the edge CPU.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..calibration import MS, SERVER_COSTS
from ..core.model import count_attributes_from_record
from ..core.serialization import encode_value
from ..device import Device
from ..simkernel import Counter

__all__ = ["ProvIOClient", "KomaduClient", "FlashStorage"]


class FlashStorage:
    """A small flash/SD storage model for edge devices.

    eMMC/SD write paths on boards like the A8-M3 are slow and bursty;
    writes block for ``size/bandwidth`` plus a per-sync latency.
    """

    def __init__(self, env, write_bandwidth_bps: float = 6e6 * 8,
                 sync_latency_s: float = 18 * MS):
        self.env = env
        self.write_bandwidth_bps = write_bandwidth_bps
        self.sync_latency_s = sync_latency_s
        self.bytes_written = Counter("flash-bytes")

    def write(self, nbytes: int):
        """Generator: blocking write of ``nbytes`` (with fsync)."""
        self.bytes_written.record(nbytes)
        yield self.env.timeout(
            nbytes * 8.0 / self.write_bandwidth_bps + self.sync_latency_s
        )


class ProvIOClient:
    """PROV-IO-style capture: in-memory graph, periodic dump to disk.

    Implements the capture-client interface, so the standard workloads
    run unmodified — and exhibit the paper's two objections: the graph
    grows resident memory without bound between dumps, and each dump
    stalls the workflow for a flash write of the *whole* graph.
    """

    def __init__(self, device: Device, dump_every_records: int = 50,
                 storage: Optional[FlashStorage] = None):
        if dump_every_records <= 0:
            raise ValueError("dump_every_records must be positive")
        self.device = device
        self.env = device.env
        self.storage = storage or FlashStorage(device.env)
        self.dump_every_records = dump_every_records
        self._graph: List[Dict[str, Any]] = []
        self._graph_bytes = 0
        self.records_captured = Counter("records")
        self.dumps = Counter("dumps")

    @property
    def now(self) -> float:
        return self.env.now

    def setup(self):
        return self
        yield  # pragma: no cover

    def capture(self, record: Dict[str, Any], groupable: bool = True):
        self.records_captured.record()
        n_attrs = count_attributes_from_record(record)
        # graph insertion: node/edge building, cheap-ish but resident
        yield from self.device.cpu.run(
            compute_s=1.1 * MS + 0.004 * MS * n_attrs, tag="capture"
        )
        size = len(encode_value(record)) + 260  # node/edge object overhead
        self._graph.append(record)
        self._graph_bytes += size
        self.device.memory.allocate(size, tag="capture-buffers")
        if len(self._graph) % self.dump_every_records == 0:
            yield from self._dump()

    def _dump(self):
        """Serialize and write the whole graph (PROV-IO keeps it around)."""
        yield from self.device.cpu.run(
            compute_s=0.02 * MS * max(1, self._graph_bytes // 100), tag="capture"
        )
        yield from self.storage.write(self._graph_bytes)
        self.dumps.record(self._graph_bytes)

    def flush_groups(self):
        return None
        yield  # pragma: no cover

    def drain(self):
        if self._graph:
            yield from self._dump()

    def close(self) -> None:
        self.device.memory.free(self._graph_bytes, tag="capture-buffers")
        self._graph.clear()
        self._graph_bytes = 0

    @property
    def resident_graph_bytes(self) -> int:
        return self._graph_bytes


class KomaduClient:
    """Komadu-style capture: ingest pipeline runs on the capturing machine.

    Komadu's notification/ingest/storage stack is server software; with no
    client/server separation the edge device pays the full processing cost
    (parse, channel dispatch, relational insert) for every captured record.
    """

    def __init__(self, device: Device, backend=None):
        self.device = device
        self.env = device.env
        self.backend = backend
        self.records_captured = Counter("records")

    @property
    def now(self) -> float:
        return self.env.now

    def setup(self):
        return self
        yield  # pragma: no cover

    def capture(self, record: Dict[str, Any], groupable: bool = True):
        self.records_captured.record()
        n_attrs = count_attributes_from_record(record)
        # client-side record building (comparable to other libraries)...
        yield from self.device.cpu.run(
            compute_s=1.6 * MS + 0.004 * MS * n_attrs, tag="capture"
        )
        # ...plus the whole server pipeline, locally: XML-ish parsing,
        # channel handling and a relational insert per record.
        yield from self.device.cpu.run(
            compute_s=34.0 * MS + 0.02 * MS * n_attrs,
            io_busy_s=SERVER_COSTS.backend_insert_per_record_s * 12,
            tag="capture-server",
        )
        if self.backend is not None:
            self.backend(record)

    def flush_groups(self):
        return None
        yield  # pragma: no cover

    def drain(self):
        return None
        yield  # pragma: no cover

    def close(self) -> None:
        pass
