"""Baseline capture systems the paper compares ProvLight against.

ProvLake- and DfAnalyzer-style capture libraries: verbose JSON over
blocking HTTP/1.1 on TCP, with grouping support for ProvLake only.  Both
implement the same capture-client interface as
:class:`repro.core.ProvLightClient`, so any instrumented workload can run
against any system.  :class:`NullCaptureClient` is the no-capture control
used as the denominator of every overhead number.
"""

from .common import BlockingHttpCaptureClient, NullCaptureClient, iso_time
from .dfanalyzer_capture import DfAnalyzerCaptureClient
from .provlake import ProvLakeClient

__all__ = [
    "BlockingHttpCaptureClient",
    "NullCaptureClient",
    "ProvLakeClient",
    "DfAnalyzerCaptureClient",
    "iso_time",
]
