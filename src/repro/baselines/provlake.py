"""ProvLake-style capture library (baseline).

Reproduces the open-source ProvLake client behaviour the paper measures:
PROV-DM records rendered as verbose JSON with a full prospective-
provenance envelope, POSTed synchronously over HTTP 1.1 to the ProvLake
collector.  Supports the paper's *grouping* option (Table III): records
are buffered cheaply and the expensive serialize+POST happens once per
group, sharing one envelope.

Cost constants are fitted to Tables II/III — see
:class:`repro.calibration.ProvLakeCosts`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..calibration import MEMORY_FOOTPRINTS, PROVLAKE_COSTS, ProvLakeCosts
from ..core.model import count_attributes_from_record
from ..device import Device
from ..net import Endpoint
from .common import BlockingHttpCaptureClient, iso_time

__all__ = ["ProvLakeClient"]

#: PROV context boilerplate shipped with every request (the open-source
#: client resends namespaces/schema with each message batch).
_PROV_CONTEXT = {
    "@context": {
        "prov": "http://www.w3.org/ns/prov#",
        "provlake": "http://ibm.com/provlake/schema/v1#",
        "xsd": "http://www.w3.org/2001/XMLSchema#",
        "dcterms": "http://purl.org/dc/terms/",
        "foaf": "http://xmlns.com/foaf/0.1/",
        "schema": "http://schema.org/",
    },
    "schema_version": "1.2.2",
    "capture_library": {
        "name": "provlake-py",
        "version": "0.7.1",
        "language": "python",
        "transport": {"protocol": "HTTP/1.1", "encoding": "application/json"},
    },
    "prospective": {
        "workflow_definition": "user-instrumented",
        "storage_policy": {"persistence": "polystore", "consistency": "eventual"},
        "agents": [
            {
                "id": "prov:agent/capture-client",
                "type": "prov:SoftwareAgent",
                "acted_on_behalf_of": "prov:agent/user",
            }
        ],
    },
}


class ProvLakeClient(BlockingHttpCaptureClient):
    """Blocking JSON-over-HTTP capture with optional message grouping."""

    system_name = "provlake"
    group_all = True

    def __init__(
        self,
        device: Device,
        server: Endpoint,
        path: str = "/api/provlake/messages",
        group_size: int = 0,
        costs: ProvLakeCosts = PROVLAKE_COSTS,
    ):
        self.costs = costs
        super().__init__(
            device,
            server,
            path,
            lib_bytes=MEMORY_FOOTPRINTS.provlake_lib_bytes,
            group_size=group_size,
        )

    def supports_grouping(self) -> bool:
        return True

    def build_cost_s(self, n_attrs: int) -> float:
        return (
            self.costs.record_build_compute_s
            + self.costs.record_build_per_attr_s * n_attrs
        )

    def flush_compute_cost_s(self, records: List[Dict[str, Any]]) -> float:
        total = self.costs.flush_fixed_compute_s
        for record in records:
            total += (
                self.costs.flush_per_record_compute_s
                + self.costs.flush_per_attr_compute_s
                * count_attributes_from_record(record)
            )
        return total

    def flush_io_wait_s(self) -> float:
        return self.costs.flush_io_s

    def render_body(self, records: List[Dict[str, Any]]) -> bytes:
        envelope = dict(_PROV_CONTEXT)
        envelope["messages"] = [self._render_record(r) for r in records]
        return json.dumps(envelope).encode()

    def _render_record(self, record: Dict[str, Any]) -> Dict[str, Any]:
        kind = record.get("kind", "")
        rendered: Dict[str, Any] = {
            "prov_obj": "workflow" if kind.startswith("workflow") else "task",
            "wf_execution": f"wfexec_{record['workflow_id']}",
            "act_type": kind,
            "timestamp": iso_time(record.get("time", 0.0)),
            "status": record.get("status", ""),
        }
        if not kind.startswith("workflow"):
            rendered["data_transformation"] = f"dt_{record.get('transformation_id')}"
            rendered["task"] = {
                "id": record["task_id"],
                "dependencies": [str(d) for d in record.get("dependencies", ())],
                "workflow": f"wfexec_{record['workflow_id']}",
            }
            values: Dict[str, Any] = {}
            for item in record.get("data", ()):
                values[str(item["id"])] = {
                    "attributes": item.get("attributes", {}),
                    "derived_from": [str(d) for d in item.get("derivations", ())],
                    "attributed_to": f"wfexec_{item.get('workflow_id')}",
                }
            key = "used" if kind == "task_begin" else "generated"
            rendered[key] = values
        return rendered
