"""CoAP (RFC 7252) wire format — the subset a capture transport needs.

The paper's Section III lists CoAP next to MQTT-SN among the IoT-grade
protocols the baselines ignore; this package implements enough of CoAP
to run ProvLight's capture over it and compare the two transports.

Supported here: the 4-byte fixed header (version/type/token length, code,
message id), tokens, delta-encoded Uri-Path and Content-Format options,
the payload marker, and the four message types (CON/NON/ACK/RST) with
piggybacked responses.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "CoapError",
    "CoapMessage",
    "TYPE_CON",
    "TYPE_NON",
    "TYPE_ACK",
    "TYPE_RST",
    "CODE_EMPTY",
    "CODE_POST",
    "CODE_CREATED",
    "CODE_CHANGED",
    "CODE_BAD_REQUEST",
    "CODE_NOT_FOUND",
    "code_str",
]

VERSION = 1

TYPE_CON = 0
TYPE_NON = 1
TYPE_ACK = 2
TYPE_RST = 3

# codes are class.detail packed as (class << 5) | detail
CODE_EMPTY = 0x00
CODE_POST = 0x02            # 0.02
CODE_CREATED = 0x41         # 2.01
CODE_CHANGED = 0x44         # 2.04
CODE_BAD_REQUEST = 0x80     # 4.00
CODE_NOT_FOUND = 0x84       # 4.04

OPT_URI_PATH = 11
OPT_CONTENT_FORMAT = 12

PAYLOAD_MARKER = 0xFF


class CoapError(ValueError):
    """Malformed CoAP message."""


def code_str(code: int) -> str:
    """Render a code as the familiar ``c.dd`` notation."""
    return f"{code >> 5}.{code & 0x1F:02d}"


def _encode_option_parts(value: int) -> Tuple[int, bytes]:
    """Nibble + extended bytes for an option delta or length."""
    if value < 13:
        return value, b""
    if value < 269:
        return 13, bytes([value - 13])
    if value < 65805:
        return 14, struct.pack(">H", value - 269)
    raise CoapError(f"option delta/length too large: {value}")


def _decode_option_part(nibble: int, data: bytes, pos: int) -> Tuple[int, int]:
    if nibble < 13:
        return nibble, pos
    if nibble == 13:
        if pos >= len(data):
            raise CoapError("truncated option extension")
        return data[pos] + 13, pos + 1
    if nibble == 14:
        if pos + 2 > len(data):
            raise CoapError("truncated option extension")
        return struct.unpack(">H", data[pos:pos + 2])[0] + 269, pos + 2
    raise CoapError("reserved option nibble 15")


@dataclass
class CoapMessage:
    """One CoAP message."""

    mtype: int = TYPE_CON
    code: int = CODE_EMPTY
    message_id: int = 0
    token: bytes = b""
    uri_path: List[str] = field(default_factory=list)
    content_format: Optional[int] = None
    payload: bytes = b""

    # -- encoding ---------------------------------------------------------
    def encode(self) -> bytes:
        if not 0 <= self.mtype <= 3:
            raise CoapError(f"invalid type {self.mtype}")
        if len(self.token) > 8:
            raise CoapError("token longer than 8 bytes")
        out = bytearray()
        out.append((VERSION << 6) | (self.mtype << 4) | len(self.token))
        out.append(self.code)
        out += struct.pack(">H", self.message_id)
        out += self.token

        # options must be emitted in ascending option-number order
        options: List[Tuple[int, bytes]] = []
        for segment in self.uri_path:
            options.append((OPT_URI_PATH, segment.encode()))
        if self.content_format is not None:
            options.append((OPT_CONTENT_FORMAT,
                            struct.pack(">H", self.content_format).lstrip(b"\x00")))
        options.sort(key=lambda kv: kv[0])
        last = 0
        for number, value in options:
            delta_nibble, delta_ext = _encode_option_parts(number - last)
            len_nibble, len_ext = _encode_option_parts(len(value))
            out.append((delta_nibble << 4) | len_nibble)
            out += delta_ext + len_ext + value
            last = number

        if self.payload:
            out.append(PAYLOAD_MARKER)
            out += self.payload
        return bytes(out)

    @property
    def wire_size(self) -> int:
        return len(self.encode())

    # -- decoding -----------------------------------------------------------
    @classmethod
    def decode(cls, data: bytes) -> "CoapMessage":
        if len(data) < 4:
            raise CoapError("message shorter than the fixed header")
        version = data[0] >> 6
        if version != VERSION:
            raise CoapError(f"unsupported version {version}")
        mtype = (data[0] >> 4) & 0x03
        tkl = data[0] & 0x0F
        if tkl > 8:
            raise CoapError(f"invalid token length {tkl}")
        code = data[1]
        (message_id,) = struct.unpack(">H", data[2:4])
        pos = 4
        if pos + tkl > len(data):
            raise CoapError("truncated token")
        token = data[pos:pos + tkl]
        pos += tkl

        uri_path: List[str] = []
        content_format: Optional[int] = None
        number = 0
        while pos < len(data) and data[pos] != PAYLOAD_MARKER:
            byte = data[pos]
            pos += 1
            delta, pos = _decode_option_part(byte >> 4, data, pos)
            length, pos = _decode_option_part(byte & 0x0F, data, pos)
            if pos + length > len(data):
                raise CoapError("truncated option value")
            value = data[pos:pos + length]
            pos += length
            number += delta
            if number == OPT_URI_PATH:
                try:
                    uri_path.append(value.decode())
                except UnicodeDecodeError:
                    raise CoapError("Uri-Path option is not valid UTF-8") from None
            elif number == OPT_CONTENT_FORMAT:
                content_format = int.from_bytes(value, "big") if value else 0
            # unknown options: elective ones are skipped silently

        payload = b""
        if pos < len(data):
            if data[pos] != PAYLOAD_MARKER:
                raise CoapError("garbage where payload marker expected")
            payload = data[pos + 1:]
            if not payload:
                raise CoapError("payload marker with empty payload")
        return cls(
            mtype=mtype, code=code, message_id=message_id, token=token,
            uri_path=uri_path, content_format=content_format, payload=payload,
        )

    def __repr__(self) -> str:
        path = "/" + "/".join(self.uri_path) if self.uri_path else ""
        return (
            f"<CoAP {('CON', 'NON', 'ACK', 'RST')[self.mtype]} "
            f"{code_str(self.code)} mid={self.message_id}{path} "
            f"{len(self.payload)}B>"
        )
