"""CoAP (RFC 7252) over simulated UDP, plus a ProvLight-over-CoAP
transport — a protocol-comparison extension: CON/ACK (2 packets,
at-least-once + dedup) versus MQTT-SN QoS 2 (4 packets, exactly-once)."""

from .endpoint import DEFAULT_COAP_PORT, CoapClient, CoapServer, CoapTimeout
from .messages import (
    CODE_BAD_REQUEST,
    CODE_CHANGED,
    CODE_CREATED,
    CODE_EMPTY,
    CODE_NOT_FOUND,
    CODE_POST,
    TYPE_ACK,
    TYPE_CON,
    TYPE_NON,
    TYPE_RST,
    CoapError,
    CoapMessage,
    code_str,
)
from .transport import ProvLightCoapClient, ProvLightCoapServer

__all__ = [
    "CoapMessage",
    "CoapError",
    "code_str",
    "CoapClient",
    "CoapServer",
    "CoapTimeout",
    "DEFAULT_COAP_PORT",
    "ProvLightCoapClient",
    "ProvLightCoapServer",
    "TYPE_CON",
    "TYPE_NON",
    "TYPE_ACK",
    "TYPE_RST",
    "CODE_EMPTY",
    "CODE_POST",
    "CODE_CREATED",
    "CODE_CHANGED",
    "CODE_BAD_REQUEST",
    "CODE_NOT_FOUND",
]
