"""CoAP client and server over simulated UDP.

Implements the RFC 7252 messaging layer: confirmable requests with
exponential-backoff retransmission, ACKs with piggybacked responses,
non-confirmable fire-and-forget, and message-id deduplication on the
server.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional, Tuple

from ..net import Endpoint, Host
from ..simkernel import Counter
from .messages import (
    CODE_CHANGED,
    CODE_EMPTY,
    CODE_NOT_FOUND,
    CODE_POST,
    TYPE_ACK,
    TYPE_CON,
    TYPE_NON,
    TYPE_RST,
    CoapError,
    CoapMessage,
)

__all__ = ["CoapClient", "CoapServer", "CoapTimeout", "DEFAULT_COAP_PORT"]

DEFAULT_COAP_PORT = 5683

# RFC 7252 transmission parameters (ACK_RANDOM_FACTOR folded in)
ACK_TIMEOUT_S = 2.0
MAX_RETRANSMIT = 4


class CoapTimeout(ConnectionError):
    """A confirmable exchange exhausted its retransmissions."""


#: handler: (path segments, payload) -> (code, response payload)
RequestHandler = Callable[[Tuple[str, ...], bytes], Tuple[int, bytes]]


class CoapServer:
    """A CoAP server with per-path handlers and MID deduplication."""

    def __init__(self, host: Host, port: int = DEFAULT_COAP_PORT,
                 service_time_s: float = 0.0005):
        self.host = host
        self.env = host.env
        self.sock = host.udp_socket(port)
        self.port = port
        self.service_time_s = service_time_s
        self._handlers: Dict[Tuple[str, ...], RequestHandler] = {}
        self._seen: Dict[Tuple[Endpoint, int], int] = {}  # dedup cache
        self.requests = Counter("requests")
        self.duplicates = Counter("duplicates")
        self.env.process(self._recv_loop(), name=f"coap-server-{host.name}:{port}")

    def route(self, path: str, handler: RequestHandler) -> None:
        """Register a handler for an absolute path like ``"/prov/edge"``."""
        key = tuple(seg for seg in path.split("/") if seg)
        self._handlers[key] = handler

    def _recv_loop(self):
        while True:
            data, source = yield self.sock.recv()
            if self.service_time_s > 0:
                yield self.env.timeout(self.service_time_s)
            try:
                message = CoapMessage.decode(data)
            except CoapError:
                continue
            self._dispatch(message, source)

    def _dispatch(self, message: CoapMessage, source: Endpoint) -> None:
        if message.mtype not in (TYPE_CON, TYPE_NON):
            return  # stray ACK/RST at a server: ignore
        dedup_key = (source, message.message_id)
        if dedup_key in self._seen:
            self.duplicates.record()
            if message.mtype == TYPE_CON:
                # re-ACK with the cached response code
                self._reply(message, source, self._seen[dedup_key], b"")
            return
        handler = self._handlers.get(tuple(message.uri_path))
        if handler is None:
            code, payload = CODE_NOT_FOUND, b""
        else:
            code, payload = handler(tuple(message.uri_path), message.payload)
        self.requests.record(len(message.payload))
        self._seen[dedup_key] = code
        if message.mtype == TYPE_CON:
            self._reply(message, source, code, payload)

    def _reply(self, request: CoapMessage, source: Endpoint, code: int,
               payload: bytes) -> None:
        ack = CoapMessage(
            mtype=TYPE_ACK, code=code, message_id=request.message_id,
            token=request.token, payload=payload,
        )
        self.sock.sendto(ack.encode(), source)


class CoapClient:
    """A CoAP client bound to one host."""

    def __init__(self, host: Host, server: Endpoint,
                 ack_timeout_s: float = ACK_TIMEOUT_S,
                 max_retransmit: int = MAX_RETRANSMIT):
        self.host = host
        self.env = host.env
        self.server = server
        self.sock = host.udp_socket()
        self.ack_timeout_s = ack_timeout_s
        self.max_retransmit = max_retransmit
        self._mids = itertools.cycle(range(1, 0x10000))
        self._pending: Dict[int, object] = {}  # mid -> completion event
        self.posts = Counter("posts")
        self.env.process(self._recv_loop(), name=f"coap-client-{host.name}")

    def _recv_loop(self):
        while True:
            data, _source = yield self.sock.recv()
            try:
                message = CoapMessage.decode(data)
            except CoapError:
                continue
            if message.mtype in (TYPE_ACK, TYPE_RST):
                event = self._pending.pop(message.message_id, None)
                if event is not None and not event.triggered:
                    if message.mtype == TYPE_RST:
                        event.fail(ConnectionError("connection reset (RST)"))
                    else:
                        event.succeed(message)

    def post(self, path: str, payload: bytes, confirmable: bool = True):
        """Generator: POST ``payload``; returns the ACK message (or None
        for non-confirmable)."""
        segments = [seg for seg in path.split("/") if seg]
        mid = next(self._mids)
        request = CoapMessage(
            mtype=TYPE_CON if confirmable else TYPE_NON,
            code=CODE_POST, message_id=mid, uri_path=segments,
            content_format=42, payload=payload,
        )
        self.posts.record(len(payload))
        if not confirmable:
            self.sock.sendto(request.encode(), self.server)
            return None
        done = self.env.event()
        self._pending[mid] = done
        self.sock.sendto(request.encode(), self.server)
        self.env.process(self._retransmit(request, mid, 0), name=f"coap-rtx-{mid}")
        response = yield done
        return response

    def post_nowait(self, path: str, payload: bytes):
        """Confirmable POST returning the completion event immediately
        (the exchange runs in the receive loop — the async capture path)."""
        segments = [seg for seg in path.split("/") if seg]
        mid = next(self._mids)
        request = CoapMessage(
            mtype=TYPE_CON, code=CODE_POST, message_id=mid,
            uri_path=segments, content_format=42, payload=payload,
        )
        self.posts.record(len(payload))
        done = self.env.event()
        self._pending[mid] = done
        self.sock.sendto(request.encode(), self.server)
        self.env.process(self._retransmit(request, mid, 0), name=f"coap-rtx-{mid}")
        return done

    def _retransmit(self, request: CoapMessage, mid: int, attempt: int):
        yield self.env.timeout(self.ack_timeout_s * (2 ** attempt))
        event = self._pending.get(mid)
        if event is None or event.triggered:
            return
        if attempt >= self.max_retransmit:
            self._pending.pop(mid, None)
            event.fail(CoapTimeout(f"CON {mid} exhausted retransmissions"))
            return
        self.sock.sendto(request.encode(), self.server)
        self.env.process(
            self._retransmit(request, mid, attempt + 1), name=f"coap-rtx-{mid}"
        )
