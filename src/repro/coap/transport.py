"""ProvLight capture over CoAP instead of MQTT-SN.

Same design properties as the MQTT-SN client (asynchronous background
sender, binary+zlib payloads, ended-task grouping — all owned by the
shared :class:`~repro.capture.CaptureClient` façade), but the transport
is a confirmable CoAP POST per message: a 2-packet CON/ACK exchange
versus MQTT-SN QoS 2's 4-packet handshake — at-least-once with
server-side deduplication versus exactly-once.  The protocol-comparison
benchmark quantifies the trade.
"""

from __future__ import annotations

from ..calibration import SERVER_COSTS
from ..capture import CaptureClient, CaptureConfig, CaptureTransport, register_transport
from ..capture.envelope import ReplayDeduper, unwrap_payload
from ..core.translator import Translator
from ..device import Device
from ..net import Endpoint, Host
from ..simkernel import Counter, Store
from .endpoint import DEFAULT_COAP_PORT, CoapClient, CoapServer
from .messages import CODE_CHANGED

__all__ = [
    "ProvLightCoapClient",
    "ProvLightCoapServer",
    "CoapCaptureTransport",
    "DEFAULT_CAPTURE_PATH",
]

#: resource the capture server exposes and clients POST to by default
DEFAULT_CAPTURE_PATH = "/prov"


class ProvLightCoapServer:
    """Capture sink: CoAP server + translator + backend."""

    def __init__(self, host: Host, backend, port: int = DEFAULT_COAP_PORT,
                 target: str = "dfanalyzer", cipher=None):
        self.host = host
        self.env = host.env
        self.backend = backend
        self.translator = Translator(target, cipher=cipher)
        self.server = CoapServer(host, port)
        self.records_ingested = Counter("records")
        self.translate_errors = Counter("errors")
        #: CoAP CON is at-least-once on the wire; durable clients add a
        #: (client_id, seq) envelope and this index drops the replays
        self.deduper = ReplayDeduper()
        self.duplicates_dropped = Counter("duplicates-dropped")
        self._inbox: Store = Store(self.env)
        self.server.route(DEFAULT_CAPTURE_PATH, self._on_post)
        self.env.process(self._work_loop(), name="coap-prov-translator")

    @property
    def endpoint(self) -> Endpoint:
        return (self.host.name, self.server.port)

    def _on_post(self, path, payload):
        self._inbox.put(payload)
        return CODE_CHANGED, b""

    def _work_loop(self):
        device = self.host.device
        while True:
            payload = yield self._inbox.get()
            try:
                envelope = unwrap_payload(payload)
            except Exception:
                self.translate_errors.record()
                continue
            if envelope is not None:
                client_id, seq, payload = envelope
                if self.deduper.is_duplicate(client_id, seq):
                    self.duplicates_dropped.record()
                    continue
            try:
                records, translated = self.translator.translate_payload(payload)
            except Exception:
                self.translate_errors.record()
                continue
            work = SERVER_COSTS.translate_per_message_s
            if len(records) > 1:
                work += SERVER_COSTS.translate_group_fixed_s
            if device is not None:
                yield from device.cpu.run(io_busy_s=work, tag="translator")
            else:
                yield self.env.timeout(work)
            # uniform backend protocol: ingest() returns an iterable of
            # simulation events (empty for synchronous backends)
            yield from self.backend.ingest(translated)
            self.records_ingested.record(len(records))


class CoapCaptureTransport(CaptureTransport):
    """Capture over confirmable CoAP POSTs.

    ``send()`` is :meth:`~repro.coap.CoapClient.post_nowait`: the CON
    retransmission machinery runs in the CoAP client's receive loop, off
    the workflow's critical path.  CoAP is connectionless, so there is
    nothing to establish and capture may begin before ``setup()``.
    """

    name = "coap"
    blocking = False
    requires_setup = False

    def __init__(self, device: Device, server: Endpoint, topic: str,
                 config: CaptureConfig):
        self.coap = CoapClient(device.host, server)
        # topics map onto the resource path; MQTT-style topic names keep
        # the server's default capture resource
        self.path = topic if topic.startswith("/") else DEFAULT_CAPTURE_PATH

    def connect(self):
        """CoAP is connectionless: nothing to establish."""
        return None
        yield  # pragma: no cover - generator shape

    def register(self, topic: str):
        return self.path
        yield  # pragma: no cover - generator shape

    def send(self, payload: bytes):
        return self.coap.post_nowait(self.path, payload)


register_transport("coap", CoapCaptureTransport)


class ProvLightCoapClient(CaptureClient):
    """The ProvLight capture client with a CoAP transport.

    Compatibility shim constructing the shared façade with the ``coap``
    transport; costs and grouping behaviour are identical to the MQTT-SN
    client so any difference in an experiment is attributable to the
    protocol alone.
    """

    def __init__(
        self,
        device: Device,
        server: Endpoint,
        group_size: int = 0,
        compress: bool = True,
        cipher=None,
        costs=None,
    ):
        config = CaptureConfig(
            transport="coap",
            group_size=group_size,
            compress=compress,
            cipher=cipher,
        )
        if costs is not None:
            config = config.with_(costs=costs)
        super().__init__(device, server, DEFAULT_CAPTURE_PATH, config)

    @property
    def coap(self) -> CoapClient:
        """The underlying CoAP client (tests tune its retransmit knobs)."""
        return self.transport.coap

    def __repr__(self) -> str:
        return f"<ProvLightCoapClient {self.transport.path} on {self.device.name}>"
