"""ProvLight capture over CoAP instead of MQTT-SN.

Same design properties as the MQTT-SN client (asynchronous background
sender, binary+zlib payloads, ended-task grouping), but the transport is
a confirmable CoAP POST per message: a 2-packet CON/ACK exchange versus
MQTT-SN QoS 2's 4-packet handshake — at-least-once with server-side
deduplication versus exactly-once.  The protocol-comparison benchmark
quantifies the trade.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..calibration import MEMORY_FOOTPRINTS, PROVLIGHT_COSTS, SERVER_COSTS
from ..core.client import count_attributes_from_record
from ..core.grouping import GroupBuffer
from ..core.serialization import encode_payload
from ..core.translator import Translator
from ..device import Device
from ..net import Endpoint, Host
from ..simkernel import Counter, Store
from .endpoint import DEFAULT_COAP_PORT, CoapClient, CoapServer
from .messages import CODE_CHANGED

__all__ = ["ProvLightCoapClient", "ProvLightCoapServer"]


class ProvLightCoapServer:
    """Capture sink: CoAP server + translator + backend."""

    def __init__(self, host: Host, backend, port: int = DEFAULT_COAP_PORT,
                 target: str = "dfanalyzer", cipher=None):
        self.host = host
        self.env = host.env
        self.backend = backend
        self.translator = Translator(target, cipher=cipher)
        self.server = CoapServer(host, port)
        self.records_ingested = Counter("records")
        self.translate_errors = Counter("errors")
        self._inbox: Store = Store(self.env)
        self.server.route("/prov", self._on_post)
        self.env.process(self._work_loop(), name="coap-prov-translator")

    @property
    def endpoint(self) -> Endpoint:
        return (self.host.name, self.server.port)

    def _on_post(self, path, payload):
        self._inbox.put(payload)
        return CODE_CHANGED, b""

    def _work_loop(self):
        device = self.host.device
        while True:
            payload = yield self._inbox.get()
            try:
                records, translated = self.translator.translate_payload(payload)
            except Exception:
                self.translate_errors.record()
                continue
            work = SERVER_COSTS.translate_per_message_s
            if len(records) > 1:
                work += SERVER_COSTS.translate_group_fixed_s
            if device is not None:
                yield from device.cpu.run(io_busy_s=work, tag="translator")
            else:
                yield self.env.timeout(work)
            # uniform backend protocol: ingest() returns an iterable of
            # simulation events (empty for synchronous backends)
            yield from self.backend.ingest(translated)
            self.records_ingested.record(len(records))


class ProvLightCoapClient:
    """The ProvLight capture client with a CoAP transport.

    Implements the standard capture-client interface; costs and grouping
    behaviour are identical to the MQTT-SN client so any difference in an
    experiment is attributable to the protocol alone.
    """

    def __init__(
        self,
        device: Device,
        server: Endpoint,
        group_size: int = 0,
        compress: bool = True,
        cipher=None,
        costs=PROVLIGHT_COSTS,
    ):
        if device.host is None:
            raise RuntimeError(f"device {device.name} is not attached to a network host")
        self.device = device
        self.env = device.env
        self.compress = compress
        self.cipher = cipher
        self.costs = costs
        self.group_buffer = GroupBuffer(group_size)
        self.coap = CoapClient(device.host, server)
        self._queue: Store = Store(self.env)
        self._outstanding = 0
        self._drain_waiters: List = []
        self.messages_sent = Counter("messages")
        self.payload_bytes = Counter("payload-bytes")
        self.records_captured = Counter("records")
        device.memory.allocate(
            MEMORY_FOOTPRINTS.provlight_lib_bytes, tag="capture-static"
        )
        self.env.process(self._sender_loop(), name="coap-provlight-sender")

    @property
    def now(self) -> float:
        return self.env.now

    def setup(self):
        """CoAP is connectionless: nothing to establish."""
        return self
        yield  # pragma: no cover

    def capture(self, record: Dict[str, Any], groupable: bool = True):
        self.records_captured.record()
        n_attrs = count_attributes_from_record(record)
        if groupable and self.group_buffer.enabled:
            yield from self.device.cpu.run(
                compute_s=self.costs.buffered_fixed_compute_s
                + self.costs.buffered_per_attr_compute_s * n_attrs,
                io_wait_s=self.costs.buffered_io_s,
                tag="capture",
            )
            group = self.group_buffer.add(record)
            if group is not None:
                yield from self._flush_group(group)
        else:
            yield from self.device.cpu.run(
                compute_s=self.costs.inline_fixed_compute_s
                + self.costs.inline_per_attr_compute_s * n_attrs,
                io_wait_s=self.costs.inline_io_s,
                tag="capture",
            )
            self._enqueue(
                encode_payload(record, compress=self.compress, cipher=self.cipher)
            )

    def flush_groups(self):
        group = self.group_buffer.flush()
        if group is not None:
            yield from self._flush_group(group)

    def _flush_group(self, group):
        yield from self.device.cpu.run(
            compute_s=self.costs.group_flush_fixed_compute_s
            + self.costs.group_flush_per_record_compute_s * len(group),
            io_wait_s=self.costs.group_flush_io_s,
            tag="capture",
        )
        self._enqueue(
            encode_payload(group, compress=self.compress, cipher=self.cipher)
        )

    def _enqueue(self, payload: bytes) -> None:
        nbytes = len(payload) + MEMORY_FOOTPRINTS.per_message_overhead_bytes
        self.device.memory.allocate(nbytes, tag="capture-buffers")
        self._outstanding += 1
        self._queue.put((payload, nbytes))

    def _sender_loop(self):
        while True:
            payload, nbytes = yield self._queue.get()
            done = self.coap.post_nowait("/prov", payload)
            self.device.cpu.run_async(
                io_busy_s=self.costs.async_per_message_io_s, tag="capture"
            )
            try:
                yield done
            except Exception:
                pass  # exhausted retransmissions: record lost, never crash
            self.messages_sent.record()
            self.payload_bytes.record(len(payload))
            self.device.memory.free(nbytes, tag="capture-buffers")
            self._outstanding -= 1
            if self._outstanding == 0 and not self._queue.items:
                waiters, self._drain_waiters = self._drain_waiters, []
                for event in waiters:
                    event.succeed()

    def drain(self):
        if self._outstanding == 0 and not self._queue.items:
            return
        event = self.env.event()
        self._drain_waiters.append(event)
        yield event

    def close(self) -> None:
        self.device.memory.free(
            MEMORY_FOOTPRINTS.provlight_lib_bytes, tag="capture-static"
        )
