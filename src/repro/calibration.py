"""Calibration constants tying the simulation to the paper's measurements.

The DES charges simulated CPU time for library work instead of executing it
on an ARM board.  Every constant below is expressed **in seconds of work on
the reference device** (the FIT IoT LAB A8-M3: ARM Cortex-A8 @ 600 MHz,
single core) and is annotated with the paper measurement it was fitted
against.  Faster devices divide these times by their per-class speedup
(see :class:`repro.device.specs.DeviceSpec`).

Work is split into two classes, because the paper's edge-vs-cloud numbers
cannot be explained by a single scalar speedup:

* ``compute`` — interpreter-bound work (building provenance documents,
  JSON/binary serialization, compression).  A Xeon runs this ~25x faster
  than the A8-M3 (clock x superscalar x cache effects).
* ``io`` — syscall/socket/GIL-bound work per message.  This scales much
  less (~20x ceiling with a floor per call), which is what lets ProvLight
  remain measurable on cloud servers (paper Table X: 0.24 % -> 0.11 %).

Fidelity contract (see DESIGN.md §2): the *baseline* systems' constants are
fitted to the paper's Tables II/III; ProvLight's constants are fitted only
to its per-call capture cost (Table VII first column), and everything else
about ProvLight's behaviour — grouping gains, bandwidth insensitivity,
scalability, network bytes — *emerges* from the simulated design (async
MQTT-SN publish, real zlib compression of real payloads, QoS 2 exchange).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ProvLakeCosts",
    "DfAnalyzerCosts",
    "ProvLightCosts",
    "ServerCosts",
    "EnergyCoefficients",
    "MemoryFootprints",
    "PROVLAKE_COSTS",
    "DFANALYZER_COSTS",
    "PROVLIGHT_COSTS",
    "SERVER_COSTS",
    "A8M3_ENERGY",
    "MEMORY_FOOTPRINTS",
]

MS = 1e-3  # readability: constants below are written in milliseconds


@dataclass(frozen=True)
class ProvLakeCosts:
    """Client-side costs of the ProvLake-style capture library.

    Fitted against paper Table II (edge overhead 56.9 %-57.3 % at 0.5 s
    tasks => ~142-143 ms per capture call of which ~48 ms is network
    round-trip measured separately) and Table III (grouping: 2.37 % at
    group=50 => ~1.7 ms residual per-record cost).
    """

    #: Building one in-memory prov record (cheap dict work), per call.
    record_build_compute_s: float = 1.7 * MS
    #: Extra per attribute when building the record.
    record_build_per_attr_s: float = 0.002 * MS
    #: Fixed serialize+request-preparation work per HTTP flush.
    flush_fixed_compute_s: float = 46.0 * MS
    #: Serialization work per record inside a flush.
    flush_per_record_compute_s: float = 0.55 * MS
    #: Serialization work per attribute per record inside a flush.
    flush_per_attr_compute_s: float = 0.011 * MS
    #: Blocking-but-not-busy time per flush (socket setup, GIL waits,
    #: kernel buffers) — the gap between Table II totals and Fig. 6a CPU.
    flush_io_s: float = 44.4 * MS


@dataclass(frozen=True)
class DfAnalyzerCosts:
    """Client-side costs of the DfAnalyzer-style capture library.

    Fitted against paper Table II (39.8 %-40.5 % at 0.5 s tasks => ~99.5 to
    ~101.3 ms per call) and Fig. 6a (CPU ~5x ProvLight => busy share
    ~33 ms of the ~51 ms non-network cost).
    """

    record_build_compute_s: float = 1.2 * MS
    flush_fixed_compute_s: float = 30.0 * MS
    flush_per_record_compute_s: float = 0.4 * MS
    flush_per_attr_compute_s: float = 0.019 * MS
    flush_io_s: float = 18.7 * MS


@dataclass(frozen=True)
class ProvLightCosts:
    """Client-side costs of the ProvLight capture library.

    Fitted against paper Table VII (1.45 % / 1.54 % at 0.5 s tasks =>
    3.6-3.9 ms per capture call) and the paper's own micro-measurement that
    compressing a 100-attribute payload costs ~1 ms on the device
    (Section VII-A).  The async QoS 2 bookkeeping cost is fitted to the
    Fig. 6a CPU utilization (~1.7-2 %).
    """

    #: Inline model-object + binary-serialize + compress work per call.
    inline_fixed_compute_s: float = 1.45 * MS
    #: Compression/serialization per attribute (100 attrs ~ +0.3 ms).
    inline_per_attr_compute_s: float = 0.003 * MS
    #: Inline enqueue + publish syscall path (io class).
    inline_io_s: float = 2.1 * MS
    #: Background sender work per message (QoS 2 PUBREC/PUBREL/PUBCOMP
    #: handling); busy but off the critical path of the workflow.
    async_per_message_io_s: float = 2.6 * MS
    #: When grouping: cheap buffer-append per captured call.
    buffered_fixed_compute_s: float = 0.7 * MS
    buffered_per_attr_compute_s: float = 0.003 * MS
    buffered_io_s: float = 0.95 * MS
    #: When grouping: flush costs per group and per grouped record.
    group_flush_fixed_compute_s: float = 1.3 * MS
    group_flush_per_record_compute_s: float = 0.75 * MS
    group_flush_io_s: float = 1.2 * MS


@dataclass(frozen=True)
class ServerCosts:
    """Cloud-side service times (Xeon Gold 5220 reference, *not* scaled).

    The paper reports decompress+translate ~0.005 s per grouped payload on
    the cloud server (Section VII-A); HTTP ingestion service time is fitted
    so the measured edge RTT contribution lands at ~48 ms given the 23 ms
    one-way emulated delay.
    """

    #: uWSGI-style HTTP request service time (ProvLake/DfAnalyzer server).
    http_request_service_s: float = 1.3 * MS
    #: Broker forwarding work per MQTT-SN packet.
    broker_per_packet_s: float = 0.05 * MS
    #: Fixed broker wakeup cost amortized over a batch of queued datagrams
    #: (poll/epoll return, loop dispatch).  Charged once per service batch,
    #: so draining N queued packets costs ``batch_fixed + N * per_packet``
    #: instead of N full wakeups — the batching win Table IX leans on.
    broker_batch_fixed_s: float = 0.02 * MS
    #: Sharded broker plane: fixed cost of handing one per-shard *bundle*
    #: of datagrams to its owning shard (queue push + shard wakeup), also
    #: charged per inter-shard relay hop.  The dispatcher drains its
    #: socket in batches and forwards one bundle per shard per wakeup, so
    #: a batch of N datagrams bound for K shards costs
    #: ``K * dispatch_fixed + N * dispatch_per_datagram`` instead of N
    #: full dispatches — amortizing the fixed cost raises the serial
    #: front plane's Amdahl ceiling well past the previous ~10x.
    broker_dispatch_fixed_s: float = 0.005 * MS
    #: Marginal per-datagram dispatcher cost (header peek + append to an
    #: already-open bundle).  An order of magnitude below
    #: ``broker_per_packet_s``: the dispatcher never parses past the
    #: message-type octet.
    broker_dispatch_per_datagram_s: float = 0.001 * MS
    #: Translator: decompress + translate one ProvLight message.
    translate_per_message_s: float = 0.9 * MS
    #: Translator: fixed extra for a grouped payload (paper: ~5 ms total).
    translate_group_fixed_s: float = 3.0 * MS
    #: Backend (DfAnalyzer storage) insert per record.
    backend_insert_per_record_s: float = 0.6 * MS


@dataclass(frozen=True)
class EnergyCoefficients:
    """Power model for the A8-M3 board (3.7 V LiPo).

    Fitted against paper Fig. 6d: no-capture average power ~1.394 W
    (back-computed from 1.43 W at +2.58 %), capture deltas of
    +0.036/+0.076/+0.095 W for ProvLight/ProvLake/DfAnalyzer.

    Components: idle base; CPU busy power (scaled by utilization); radio
    energy per transmitted KB; radio receive/listen power during blocking
    network waits; and a wake-window cost — after any radio or capture
    activity the SoC is held out of its low-power state for a short window
    (race-to-sleep behaviour), which taxes systems that spread many long
    blocking calls over the run.
    """

    base_w: float = 1.394
    cpu_busy_w: float = 0.20
    tx_j_per_kb: float = 0.002
    rx_listen_w: float = 0.15
    #: Extra power while the SoC is in its post-activity wake window.
    wake_window_w: float = 0.07
    wake_window_s: float = 0.040


@dataclass(frozen=True)
class MemoryFootprints:
    """Resident-memory model (bytes), fitted against paper Fig. 6b.

    ProvLight <4 % of the A8-M3's 256 MB, baselines ~2x more.  Static
    library footprints dominate; dynamic buffers (grouping queues, pending
    publishes) are accounted from real payload byte counts on top.
    """

    workflow_base_bytes: int = 34_000_000  # CPython + workload script
    provlight_lib_bytes: int = 8_200_000
    provlake_lib_bytes: int = 18_200_000
    dfanalyzer_lib_bytes: int = 16_900_000
    #: Per buffered/pending message bookkeeping overhead (object headers).
    per_message_overhead_bytes: int = 420


PROVLAKE_COSTS = ProvLakeCosts()
DFANALYZER_COSTS = DfAnalyzerCosts()
PROVLIGHT_COSTS = ProvLightCosts()
SERVER_COSTS = ServerCosts()
A8M3_ENERGY = EnergyCoefficients()
MEMORY_FOOTPRINTS = MemoryFootprints()
