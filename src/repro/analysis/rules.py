"""Repo-specific lint rules: the determinism/hazard checks.

Each rule is a :class:`~repro.analysis.framework.Rule` registered with
the framework; ``scripts/lint.py src tests`` runs them all and CI gates
on a clean result.  See ``docs/static-analysis.md`` for the rationale
and the suppression grammar.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List, Optional, Set

from .framework import Rule, SourceModule, register_rule

__all__ = [
    "WallClockRule",
    "UnseededRandomRule",
    "DroppedEventRule",
    "BareSwallowRule",
    "AllExportSyncRule",
]


# -- wall-clock ------------------------------------------------------------
#: host-clock reads that make a simulated run depend on real time
_WALL_CLOCK_BANNED = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.sleep",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: the one sanctioned wall-clock site: the harness timing shim
_WALL_CLOCK_ALLOWED_SUFFIXES = ("repro/harness/timing.py",)


@register_rule
class WallClockRule(Rule):
    """Ban host-clock reads in simulation code.

    Simulated components must take time exclusively from ``env.now``;
    a ``time.time()``/``time.sleep()``/``datetime.now()`` call couples a
    run to the host and breaks bit-for-bit reproducibility.  The harness
    may legitimately measure how long regeneration takes in *real*
    seconds — but only through :mod:`repro.harness.timing`, the explicit
    allowlisted shim.
    """

    name = "wall-clock"
    description = "host-clock call in simulation code"
    src_only = True

    def applies(self, module: SourceModule) -> bool:
        if not super().applies(module):
            return False
        normalized = module.path.replace(os.sep, "/")
        return not normalized.endswith(_WALL_CLOCK_ALLOWED_SUFFIXES)

    def visitors(self):
        return {ast.Call: self._call}

    def _call(self, node: ast.Call, module: SourceModule, report) -> None:
        origin = module.resolve(node.func)
        if origin in _WALL_CLOCK_BANNED:
            report(
                node,
                f"{origin}() reads the host clock inside simulation code; "
                "use the simulated clock (env.now) or, for harness-side "
                "wall timing, the explicit repro.harness.timing shim",
            )


# -- unseeded-random -------------------------------------------------------
#: module-level stdlib ``random`` attributes that are NOT hidden-global
#: draws (constructing an owned/seeded generator is exactly the fix)
_RANDOM_ALLOWED = frozenset({"random.Random", "random.SystemRandom"})

#: legacy numpy global-state entry points stay banned; seeded construction
#: through the Generator API is the sanctioned route
_NUMPY_ALLOWED = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
    }
)


@register_rule
class UnseededRandomRule(Rule):
    """Ban draws from the hidden module-level RNG state.

    ``random.random()``/``np.random.rand()`` share one process-global
    generator: any import-order or test-order change silently reshuffles
    every subsequent draw.  Deterministic experiments own their
    generators — ``random.Random(seed)`` / ``np.random.default_rng(seed)``
    — so a run's randomness is a function of its declared seed alone.
    """

    name = "unseeded-random"
    description = "module-level RNG call instead of a seeded instance"

    def visitors(self):
        return {ast.Call: self._call}

    def _call(self, node: ast.Call, module: SourceModule, report) -> None:
        origin = module.resolve(node.func)
        if origin is None:
            return
        if origin.startswith("random.") and origin not in _RANDOM_ALLOWED:
            report(
                node,
                f"{origin}() draws from the shared global RNG; construct a "
                "seeded random.Random(seed) instance instead",
            )
        elif (
            origin.startswith("numpy.random.") and origin not in _NUMPY_ALLOWED
        ):
            report(
                node,
                f"{origin}() uses numpy's global RNG state; use a seeded "
                "numpy.random.default_rng(seed) generator instead",
            )


# -- dropped-event ---------------------------------------------------------
def _looks_like_env(node: ast.AST) -> bool:
    """Heuristic: does this expression name a simulation environment?"""
    if isinstance(node, ast.Name):
        return node.id == "env" or node.id.endswith("_env")
    if isinstance(node, ast.Attribute):
        return node.attr in ("env", "_env")
    return False


@register_rule
class DroppedEventRule(Rule):
    """Flag simkernel results discarded as bare expression statements —
    the discrete-event analog of an unawaited coroutine.

    * ``env.timeout(...)`` / ``env.event()`` discarded: the event is
      scheduled (or created) but the handle is gone, so nothing can ever
      wait on it; it silently pads ``run_until_idle``.
    * ``env.process(...)`` discarded without a ``name=`` (library sources
      only): fire-and-forget daemons are legitimate, but an anonymous
      dropped handle is indistinguishable from an accidentally lost one —
      name it so crash reports and the DebugEnvironment can attribute it.
      Tests spawn short-lived processes whose crashes already fail the
      test, so the naming requirement does not extend there.
    * ``<fresh event>.succeed()/.fail()`` (receiver is itself a call,
      e.g. ``env.event().succeed()``): the triggered event is discarded
      before anyone could possibly observe it.  Triggering a *stored*
      event (``gate.succeed()``) is the normal idiom and is not flagged.
    """

    name = "dropped-event"
    description = "simkernel event/process result discarded"

    def visitors(self):
        return {ast.Expr: self._expr}

    def _expr(self, node: ast.Expr, module: SourceModule, report) -> None:
        call = node.value
        if not isinstance(call, ast.Call) or not isinstance(call.func, ast.Attribute):
            return
        attr = call.func.attr
        receiver = call.func.value
        if attr in ("timeout", "event") and _looks_like_env(receiver):
            report(
                node,
                f"result of .{attr}(...) is discarded; nothing can ever wait "
                "on this event — bind it (or yield it from a process)",
            )
        elif attr == "process" and _looks_like_env(receiver):
            if module.is_src and not any(kw.arg == "name" for kw in call.keywords):
                report(
                    node,
                    "fire-and-forget process without a name= is untraceable "
                    "when it crashes; bind the Process or pass name=...",
                )
        elif attr in ("succeed", "fail") and isinstance(receiver, ast.Call):
            report(
                node,
                f"event is created and .{attr}()-ed in one discarded "
                "expression; no waiter can ever observe it — bind the event "
                "first",
            )


# -- bare-swallow ----------------------------------------------------------
_BROAD_EXCEPTIONS = ("Exception", "BaseException")


def _is_broad_handler(node: ast.ExceptHandler) -> Optional[str]:
    """The broad exception name this handler catches, or None."""
    if node.type is None:
        return "<bare except>"
    if isinstance(node.type, ast.Name) and node.type.id in _BROAD_EXCEPTIONS:
        return node.type.id
    if isinstance(node.type, ast.Tuple):
        for elt in node.type.elts:
            if isinstance(elt, ast.Name) and elt.id in _BROAD_EXCEPTIONS:
                return elt.id
    return None


@register_rule
class BareSwallowRule(Rule):
    """Flag ``except Exception: pass`` — failure swallowed without trace.

    A silently-swallowed broad exception is exactly the capture-loss
    failure mode a provenance system must engineer against: the record
    is gone and nothing counted it.  Narrow the exception type, handle
    it, or justify the swallow with
    ``# lint: disable=bare-swallow(reason)`` on the ``except`` line.
    """

    name = "bare-swallow"
    description = "broad exception silently swallowed"

    def visitors(self):
        return {ast.ExceptHandler: self._handler}

    def _handler(self, node: ast.ExceptHandler, module: SourceModule, report) -> None:
        broad = _is_broad_handler(node)
        if broad is None:
            return
        if all(isinstance(stmt, ast.Pass) for stmt in node.body):
            report(
                node,
                f"except {broad}: pass swallows every failure without a "
                "trace; narrow the exception, count/log it, or justify with "
                "# lint: disable=bare-swallow(reason)",
            )


# -- all-export-sync -------------------------------------------------------
def _literal_all(tree: ast.Module) -> Optional[tuple]:
    """``(node, names)`` for a top-level literal ``__all__``, else None."""
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = stmt.value
                if isinstance(value, (ast.List, ast.Tuple)) and all(
                    isinstance(e, ast.Constant) and isinstance(e.value, str)
                    for e in value.elts
                ):
                    return stmt, [e.value for e in value.elts]
                return None  # dynamically built: not statically checkable
    return None


def _top_level_bindings(tree: ast.Module) -> tuple:
    """``(all_names, def_class_names)`` bound at module top level.

    Recurses into top-level ``if``/``try`` bodies (version guards,
    optional-dependency gates) but not into function or class bodies.
    """
    bound: Set[str] = set()
    defs: Dict[str, int] = {}

    def visit(stmts) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(stmt.name)
                defs.setdefault(stmt.name, stmt.lineno)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            bound.add(node.id)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name != "*":
                        bound.add(alias.asname or alias.name)
            elif isinstance(stmt, ast.If):
                visit(stmt.body)
                visit(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body)
                visit(stmt.orelse)
                visit(stmt.finalbody)
                for handler in stmt.handlers:
                    visit(handler.body)
            elif isinstance(stmt, (ast.For, ast.While, ast.With)):
                visit(stmt.body)

    visit(tree.body)
    return bound, defs


@register_rule
class AllExportSyncRule(Rule):
    """Keep ``__all__`` and the public surface in sync.

    The transport-conformance suites pin the public API through
    ``__all__``; an exported name that does not exist is a latent
    ``from x import *`` crash, and a public top-level def/class missing
    from ``__all__`` is surface the conformance pin silently does not
    cover.  Modules without a literal ``__all__`` are skipped.
    """

    name = "all-export-sync"
    description = "__all__ out of sync with the module surface"
    src_only = True

    def check_module(self, module: SourceModule, report) -> None:
        found = _literal_all(module.tree)
        if found is None:
            return
        all_node, exported = found
        bound, defs = _top_level_bindings(module.tree)

        seen: Set[str] = set()
        for name in exported:
            if name in seen:
                report(all_node, f"__all__ lists {name!r} twice")
            seen.add(name)
            if name not in bound:
                report(
                    all_node,
                    f"__all__ exports {name!r} but the module never binds it "
                    "(latent `from ... import *` crash)",
                )

        for name, lineno in sorted(defs.items(), key=lambda kv: kv[1]):
            if not name.startswith("_") and name not in seen:
                report(
                    lineno,
                    f"public {name!r} is defined but missing from __all__; "
                    "export it or rename it with a leading underscore",
                )
