"""repro-lint: a small AST checker framework for reproducibility hazards.

Every acceptance claim this repository makes rests on seeded,
deterministic discrete-event runs; a stray wall-clock read or an
unseeded RNG quietly turns a deterministic acceptance test flaky.  This
framework lets repo-specific rules (see :mod:`repro.analysis.rules`)
express those hazards as AST checks that run in one pass per file.

Architecture
------------
* :class:`Rule` subclasses register themselves with :func:`register_rule`
  and contribute per-node-type visitors (``visitors()``) and/or a
  whole-module pass (``check_module()``).
* :class:`SourceModule` wraps one parsed file: source, AST, an
  import-alias map for resolving dotted call origins, and the parsed
  suppression comments.
* :func:`lint_source` runs the applicable rules over one module and
  applies the suppression/audit pipeline; :func:`lint_paths` walks
  directories and aggregates.

Suppression grammar
-------------------
A violation is suppressed by a comment *on the reported line*::

    except Exception:  # lint: disable=bare-swallow(wire bytes are untrusted)

or for a whole file by a standalone comment anywhere in it::

    # lint: disable-file=wall-clock(this module IS the timing shim)

The parenthesised reason is mandatory: a suppression without one is
itself reported (``bad-suppression``), as is a suppression naming an
unknown rule or one that matches no violation (``unused-suppression``) —
so the tree can never accumulate unexplained or stale opt-outs.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Type

__all__ = [
    "Violation",
    "Suppression",
    "SourceModule",
    "Rule",
    "register_rule",
    "all_rules",
    "get_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
    "render_text",
    "render_json",
    "BAD_SUPPRESSION",
    "UNUSED_SUPPRESSION",
    "PARSE_ERROR",
]

#: framework-level pseudo-rules (not registered, never suppressible)
BAD_SUPPRESSION = "bad-suppression"
UNUSED_SUPPRESSION = "unused-suppression"
PARSE_ERROR = "parse-error"


@dataclass(frozen=True, order=True)
class Violation:
    """One reported lint finding, sortable into file/line order."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class Suppression:
    """A parsed ``# lint: disable[-file]=rule(reason)`` comment."""

    rule: str
    reason: str
    line: int
    file_level: bool
    used: bool = False


_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rule>[A-Za-z0-9_-]+)\s*(?:\((?P<reason>.*)\))?"
)


def _parse_suppressions(
    source: str, path: str
) -> Tuple[List[Suppression], List[Violation]]:
    """Extract suppression comments via tokenize (never fooled by strings)."""
    suppressions: List[Suppression] = []
    violations: List[Violation] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [t for t in tokens if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return [], []  # the AST parse will report the real error
    for tok in comments:
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        reason = (match.group("reason") or "").strip()
        if not reason:
            violations.append(
                Violation(
                    path, line, tok.start[1], BAD_SUPPRESSION,
                    f"suppression of {match.group('rule')!r} carries no reason; "
                    "write # lint: disable=<rule>(why this is safe)",
                )
            )
            continue
        suppressions.append(
            Suppression(
                rule=match.group("rule"),
                reason=reason,
                line=line,
                file_level=match.group("scope") == "disable-file",
            )
        )
    return suppressions, violations


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    """Map local names to their dotted import origin.

    ``import time`` → ``{"time": "time"}``; ``import numpy as np`` →
    ``{"np": "numpy"}``; ``from time import sleep as zzz`` →
    ``{"zzz": "time.sleep"}``.  Only top-of-tree imports matter for the
    determinism rules, but nested imports (inside defs) are collected
    too — a wall-clock call is a hazard wherever its import lives.
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports cannot name stdlib hazards
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


class SourceModule:
    """One parsed source file plus the metadata rules need."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.imports = _collect_imports(self.tree)
        self.suppressions, self.suppression_errors = _parse_suppressions(source, path)
        parts = path.replace(os.sep, "/").split("/")
        #: True for library sources (under a ``repro`` package directory,
        #: not under ``tests``): some rules only police the library.
        self.is_src = "repro" in parts and "tests" not in parts

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain via the import map.

        ``time.sleep`` (after ``import time``) → ``"time.sleep"``;
        unresolvable expressions (locals, calls) → ``None``.
        """
        if isinstance(node, ast.Name):
            return self.imports.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`name`/:attr:`description`, register with
    :func:`register_rule`, and implement ``visitors()`` (per-node-type
    handlers, dispatched in a single AST walk shared by all rules)
    and/or ``check_module()`` (whole-module checks).
    """

    name: str = ""
    description: str = ""
    #: restrict the rule to library sources (``SourceModule.is_src``)
    src_only: bool = False

    def applies(self, module: SourceModule) -> bool:
        return module.is_src or not self.src_only

    def visitors(self) -> Dict[Type[ast.AST], Callable]:
        """Map node types to ``handler(node, module, report)`` callables."""
        return {}

    def check_module(self, module: SourceModule, report: Callable) -> None:
        """Whole-module pass (``report(node_or_line, message)``)."""


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its name."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"{cls.__name__} has no rule name")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return cls


def all_rules() -> Dict[str, Rule]:
    """All registered rules by name (rules module import is implicit)."""
    from . import rules as _rules  # noqa: F401  (registration side effect)

    return dict(_REGISTRY)


def get_rules(names: Optional[Sequence[str]] = None) -> List[Rule]:
    registry = all_rules()
    if names is None:
        return list(registry.values())
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise ValueError(
            f"unknown rule(s) {', '.join(sorted(unknown))}; "
            f"available: {', '.join(sorted(registry))}"
        )
    return [registry[n] for n in names]


def _run_rules(module: SourceModule, rules: Sequence[Rule]) -> List[Violation]:
    violations: List[Violation] = []

    def reporter_for(rule: Rule) -> Callable:
        def report(node, message: str) -> None:
            line = getattr(node, "lineno", node if isinstance(node, int) else 1)
            col = getattr(node, "col_offset", 0)
            violations.append(Violation(module.path, line, col, rule.name, message))

        return report

    dispatch: Dict[type, List[Tuple[Callable, Callable]]] = {}
    module_passes: List[Tuple[Rule, Callable]] = []
    for rule in rules:
        if not rule.applies(module):
            continue
        report = reporter_for(rule)
        for node_type, handler in rule.visitors().items():
            dispatch.setdefault(node_type, []).append((handler, report))
        module_passes.append((rule, report))

    if dispatch:
        for node in ast.walk(module.tree):
            for handler, report in dispatch.get(type(node), ()):
                handler(node, module, report)
    for rule, report in module_passes:
        rule.check_module(module, report)
    return violations


def _apply_suppressions(
    module: SourceModule, violations: List[Violation]
) -> List[Violation]:
    known = set(all_rules())
    result: List[Violation] = list(module.suppression_errors)
    valid: List[Suppression] = []
    for supp in module.suppressions:
        if supp.rule not in known:
            result.append(
                Violation(
                    module.path, supp.line, 0, BAD_SUPPRESSION,
                    f"suppression names unknown rule {supp.rule!r}; "
                    f"available: {', '.join(sorted(known))}",
                )
            )
        else:
            valid.append(supp)

    for violation in violations:
        suppressed = False
        for supp in valid:
            if supp.rule != violation.rule:
                continue
            if supp.file_level or supp.line == violation.line:
                supp.used = True
                suppressed = True
        if not suppressed:
            result.append(violation)

    for supp in valid:
        if not supp.used:
            result.append(
                Violation(
                    module.path, supp.line, 0, UNUSED_SUPPRESSION,
                    f"suppression of {supp.rule!r} matches no violation; "
                    "delete it (stale opt-outs hide future regressions)",
                )
            )
    return sorted(result)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint one in-memory module; the unit used by tests and fixtures."""
    if rules is None:
        rules = get_rules()
    try:
        module = SourceModule(path, source)
    except SyntaxError as exc:
        return [
            Violation(
                path, exc.lineno or 1, (exc.offset or 1) - 1, PARSE_ERROR,
                f"could not parse: {exc.msg}",
            )
        ]
    return _apply_suppressions(module, _run_rules(module, rules))


def lint_file(path: str, rules: Optional[Sequence[Rule]] = None) -> List[Violation]:
    with open(path, "r", encoding="utf-8") as fh:
        return lint_source(fh.read(), path, rules)


def _iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in ("__pycache__", ".git")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def lint_paths(
    paths: Sequence[str], rules: Optional[Sequence[Rule]] = None
) -> Tuple[List[Violation], int]:
    """Lint every ``*.py`` under ``paths``; returns (violations, n_files)."""
    if rules is None:
        rules = get_rules()
    violations: List[Violation] = []
    count = 0
    for filename in _iter_python_files(paths):
        count += 1
        violations.extend(lint_file(filename, rules))
    return sorted(violations), count


# -- reporters -------------------------------------------------------------
def render_text(violations: Sequence[Violation], files_checked: int) -> str:
    lines = [v.format() for v in violations]
    dirty = len({v.path for v in violations})
    lines.append(
        f"{len(violations)} violation(s) in {dirty} file(s) "
        f"({files_checked} checked)"
    )
    return "\n".join(lines)


def render_json(violations: Sequence[Violation], files_checked: int) -> str:
    return json.dumps(
        {
            "violations": [v.to_dict() for v in violations],
            "files_checked": files_checked,
            "ok": not violations,
        },
        indent=2,
    )
