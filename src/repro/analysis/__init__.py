"""repro-lint: static analysis for reproducibility hazards.

Layer 1 of the two-layer correctness tooling (layer 2 is the runtime
:class:`~repro.simkernel.DebugEnvironment`): an AST checker framework
plus repo-specific rules that enforce the paper's controlled-experiment
methodology — no wall-clock reads, no hidden-global RNG draws, no
dropped simkernel event handles, no silently-swallowed failures, and an
``__all__`` that matches the public surface.

Run it via ``python scripts/lint.py src tests``; CI gates on the result.
See ``docs/static-analysis.md`` for the rule catalog and suppression
grammar.
"""

from .framework import (
    BAD_SUPPRESSION,
    PARSE_ERROR,
    UNUSED_SUPPRESSION,
    Rule,
    SourceModule,
    Suppression,
    Violation,
    all_rules,
    get_rules,
    lint_file,
    lint_paths,
    lint_source,
    register_rule,
    render_json,
    render_text,
)
from .rules import (
    AllExportSyncRule,
    BareSwallowRule,
    DroppedEventRule,
    UnseededRandomRule,
    WallClockRule,
)

__all__ = [
    "Violation",
    "Suppression",
    "SourceModule",
    "Rule",
    "register_rule",
    "all_rules",
    "get_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
    "render_text",
    "render_json",
    "BAD_SUPPRESSION",
    "UNUSED_SUPPRESSION",
    "PARSE_ERROR",
    "WallClockRule",
    "UnseededRandomRule",
    "DroppedEventRule",
    "BareSwallowRule",
    "AllExportSyncRule",
]
