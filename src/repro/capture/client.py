"""The transport-agnostic capture client façade.

This owns the paper's client-side critical path exactly once — the
calibrated attribute-cost charging, ended-task grouping, binary
encoding + compression, per-message memory accounting, the background
sender loop and the ``flush_groups()/drain()/close()`` semantics — and
delegates only the wire to a pluggable
:class:`~repro.capture.CaptureTransport`.  The MQTT-SN, CoAP and
blocking-HTTP capture clients are thin shims over this class, so any
measured difference between them is attributable to the protocol alone
(the design property behind the protocol-comparison benchmark).

Blocking transports (``transport.blocking``) are serviced inline: each
send is awaited on the workflow's critical path, reproducing the
baselines' Table II/III behaviour.  Asynchronous transports hand
payloads to a background sender process, which is what keeps ProvLight's
capture calls flat across bandwidths (Tables VII/VIII).

Durability (``config.durable``): every outbound payload is appended to
a :class:`~repro.capture.journal.CaptureJournal` *before* dispatch and
travels inside a dedup envelope (:mod:`repro.capture.envelope`).  A
delivery failure — QoS retries exhausted, server gone, uplink
partitioned — parks the entry for replay and trips the reconnect state
machine: exponential backoff with jitter, a transport ``reconnect()``
probe, then in-order replay of every unacknowledged entry.  Successful
deliveries acknowledge (and truncate) their journal entry.  Combined
with server-side ``(client_id, seq)`` dedup this gives at-least-once
transport semantics and exactly-once backend ingestion, and a journal
left behind by a crashed client is replayed by the next ``setup()``.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Dict, List, Optional

from ..simkernel import Counter, Store
from .config import CaptureConfig
from .envelope import wrap_payload
from .journal import DEFAULT_JOURNAL_DIR, CaptureJournal, journal_path_for
from .transport import CaptureTransport

__all__ = [
    "CaptureClient",
    "CaptureClosedError",
    "CaptureSenderError",
    "STATE_DISCONNECTED",
    "STATE_CONNECTED",
    "STATE_RECONNECTING",
    "STATE_CLOSED",
]

#: queue sentinel that tells the background sender loop to exit
_CLOSE = object()

#: connection states reported to :meth:`CaptureClient.add_connection_listener`
STATE_DISCONNECTED = "disconnected"
STATE_CONNECTED = "connected"
STATE_RECONNECTING = "reconnecting"
STATE_CLOSED = "closed"

# Late-bound repro.core imports: core.client subclasses CaptureClient, so
# importing core here at module time would be circular whichever package
# is imported first.  Bound once, at the first client construction.
_core_loaded = False
_GroupBuffer = None
_encode_payload = None
_count_attributes_from_record = None


def _load_core() -> None:
    global _core_loaded, _GroupBuffer, _encode_payload, _count_attributes_from_record
    if _core_loaded:
        return
    from ..core.grouping import GroupBuffer
    from ..core.model import count_attributes_from_record
    from ..core.serialization import encode_payload

    _GroupBuffer = GroupBuffer
    _encode_payload = encode_payload
    _count_attributes_from_record = count_attributes_from_record
    _core_loaded = True


class CaptureClosedError(RuntimeError):
    """The capture client was closed; pending drains fail with this."""


class CaptureSenderError(RuntimeError):
    """The background sender hit an unexpected transport error.

    The sender is supervised: it survives the error and is restarted
    under the reconnect backoff policy, but the failure is surfaced on
    the next ``capture()``/``drain()`` so an instrumented workflow (or a
    test) can notice a misbehaving transport instead of silently losing
    its capture stream.
    """


class CaptureClient:
    """Capture client bound to one device, shipping to one topic.

    Build instances through :func:`repro.capture.create_client` (or a
    compatibility shim like ``ProvLightClient``); passing an explicit
    ``transport`` bypasses the registry, which the shims use to expose
    protocol-specific knobs.
    """

    def __init__(
        self,
        device,
        server,
        topic: str,
        config: Optional[CaptureConfig] = None,
        transport: Optional[CaptureTransport] = None,
    ):
        _load_core()
        if device.host is None:
            raise RuntimeError(
                f"device {device.name} is not attached to a network host"
            )
        self.config = config = config or CaptureConfig()
        self.device = device
        self.env = device.env
        self.server = server
        self.topic = topic
        self.qos = config.qos
        self.compress = config.compress
        self.cipher = config.cipher
        self.costs = config.costs
        self.footprints = config.footprints
        self.group_buffer = _GroupBuffer(config.group_size)
        #: stable identity: journal file, envelope dedup key, backoff seed
        self.client_id = config.client_id or f"{device.name}/{topic}"
        if transport is None:
            from .registry import create_transport

            transport = create_transport(device, server, topic, config)
        self.transport = transport
        self.handle: Any = None
        self._ready = False
        self._closed = False
        self._queue: Store = Store(self.env)
        self._outstanding = 0
        self._drain_waiters: List = []
        self.messages_sent = Counter("messages")
        self.payload_bytes = Counter("payload-bytes")
        self.records_captured = Counter("records")
        self.replayed = Counter("replayed")
        self.reconnects = Counter("reconnects")
        self.journal: Optional[CaptureJournal] = None
        self._journal_closed = False
        if config.durable:
            journal_dir = config.journal_dir or DEFAULT_JOURNAL_DIR
            self.journal = CaptureJournal(
                journal_path_for(journal_dir, self.client_id),
                self.client_id,
                signer=config.signer,
            )
        self.connection_state = STATE_DISCONNECTED
        self._state_listeners: List = []
        #: entries awaiting replay after a delivery failure: (wire, nbytes, seq)
        self._replay: List = []
        self._pause_gate = None  # sender parks here while reconnecting
        self._recovery = None  # the reconnect state-machine process
        self._sender_failure: Optional[BaseException] = None
        self._sender_item = None  # item the sender holds while in flight
        self._rng = random.Random(zlib.crc32(self.client_id.encode("utf-8")))
        device.memory.allocate(config.footprints.provlight_lib_bytes,
                               tag="capture-static")
        self._sender = None
        if not transport.blocking:
            self._sender = self.env.process(
                self._sender_loop(), name=f"capture-sender-{self.topic}"
            )

    # ------------------------------------------------------------------ API
    @property
    def now(self) -> float:
        """Simulated clock (used by model classes for record timestamps)."""
        return self.env.now

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def durable(self) -> bool:
        return self.journal is not None

    def add_connection_listener(self, callback) -> None:
        """Register ``callback(state)`` for connection-state transitions
        (``connected`` / ``reconnecting`` / ``closed``)."""
        self._state_listeners.append(callback)

    def setup(self):
        """Generator: establish the transport and announce the topic.

        Idempotent: a client that is already set up returns immediately,
        so deployment frameworks can hand out ready clients and
        workloads can still call ``setup()`` unconditionally.

        A durable client also recovers its journal here: entries a
        previous incarnation appended but never got acknowledged are
        scheduled for replay (the server's dedup makes re-sends of
        actually-delivered entries harmless).
        """
        self._check_open()
        if self._ready:
            return self
        yield from self.transport.connect()
        self.handle = yield from self.transport.register(self.topic)
        self._ready = True
        self._set_state(STATE_CONNECTED)
        if self.journal is not None:
            self._recover_journal()
        return self

    def capture(self, record: Dict[str, Any], groupable: bool = True):
        """Generator: capture one record (called by the model classes).

        Charges calibrated inline costs, produces the real payload bytes
        and hands them to the transport.  For asynchronous transports
        this returns as soon as the record is queued — that is the
        *entire* workflow-visible cost; blocking transports additionally
        stall for their request/response cycle, like the real baseline
        libraries.
        """
        self._check_open()
        self._raise_sender_failure()
        if not self._ready and self.transport.requires_setup:
            raise RuntimeError("capture before setup()")
        self.records_captured.record()
        n_attrs = _count_attributes_from_record(record)
        costs = self.costs
        cpu_run = self.device.cpu.run
        if groupable and self.group_buffer.enabled:
            yield from cpu_run(
                compute_s=costs.buffered_fixed_compute_s
                + costs.buffered_per_attr_compute_s * n_attrs,
                io_wait_s=costs.buffered_io_s,
                tag="capture",
            )
            group = self.group_buffer.add(record)
            if group is not None:
                yield from self._flush_group(group)
        else:
            yield from cpu_run(
                compute_s=costs.inline_fixed_compute_s
                + costs.inline_per_attr_compute_s * n_attrs,
                io_wait_s=costs.inline_io_s,
                tag="capture",
            )
            yield from self._dispatch(
                _encode_payload(record, compress=self.compress, cipher=self.cipher)
            )

    def flush_groups(self):
        """Generator: force out a partial group (workflow end)."""
        group = self.group_buffer.flush()
        if group is not None:
            yield from self._flush_group(group)
        return None
        yield  # pragma: no cover - make this a generator even when empty

    def drain(self):
        """Generator: wait until every in-flight message completed its
        delivery contract.  Diagnostic/teardown helper; the paper's
        overhead metric intentionally does not include this wait.

        On a durable client this includes entries parked for replay: the
        drain resolves only once the reconnect machine delivered them.

        Raises :class:`CaptureClosedError` on a closed client — both
        when called after ``close()`` (a post-close drain would never
        resolve: the sender is gone) and when the client is closed while
        the drain is pending.
        """
        self._check_open()
        self._raise_sender_failure()
        if self._outstanding == 0 and not self._queue.items:
            return
        event = self.env.event()
        self._drain_waiters.append(event)
        yield event

    def close(self) -> None:
        """Tear down: stop the sender, free pending buffers, fail any
        ``drain()`` waiters, disconnect and release the static memory.

        Idempotent.  Queued-but-unsent payloads are dropped (their
        ``capture-buffers`` allocations freed); a message the transport
        already holds in flight completes or times out in the background
        and releases its buffer then.  On a durable client the dropped
        entries stay unacknowledged in the journal, so the next
        ``setup()`` on the same journal replays them — close() loses
        memory, never durable state.
        """
        if self._closed:
            return
        self._closed = True
        for item in self._queue.drain_pending():
            if item is _CLOSE:
                continue
            _, nbytes, _ = item
            self.device.memory.free(nbytes, tag="capture-buffers")
            self._outstanding -= 1
        for _, nbytes, _ in self._replay:
            self.device.memory.free(nbytes, tag="capture-buffers")
            self._outstanding -= 1
        self._replay.clear()
        if self._sender is not None:
            self._queue.put(_CLOSE)
        gate, self._pause_gate = self._pause_gate, None
        if gate is not None:
            gate.succeed()  # let a parked sender observe _closed and exit
        waiters, self._drain_waiters = self._drain_waiters, []
        for event in waiters:
            event.fail(CaptureClosedError(
                f"capture client for topic {self.topic!r} closed with "
                "messages outstanding"
            ))
        self.transport.disconnect()
        if self.journal is not None and not self._journal_closed:
            self._journal_closed = True
            self.journal.close()
        self.device.memory.free(
            self.footprints.provlight_lib_bytes, tag="capture-static"
        )
        self._set_state(STATE_CLOSED)

    # ------------------------------------------------------------- internals
    def _check_open(self) -> None:
        if self._closed:
            raise CaptureClosedError(
                f"capture client for topic {self.topic!r} is closed"
            )

    def _raise_sender_failure(self) -> None:
        if self._sender_failure is not None:
            cause, self._sender_failure = self._sender_failure, None
            raise CaptureSenderError(
                f"background sender for topic {self.topic!r} failed "
                f"({type(cause).__name__}: {cause}) and was restarted"
            ) from cause

    def _set_state(self, state: str) -> None:
        if state == self.connection_state:
            return
        self.connection_state = state
        for callback in list(self._state_listeners):
            try:
                callback(state)
            except Exception:  # lint: disable=bare-swallow(a listener is observability, never control flow: a buggy one must not take down the capture pipeline)
                pass

    def _flush_group(self, group: List[Dict[str, Any]]):
        costs = self.costs
        yield from self.device.cpu.run(
            compute_s=costs.group_flush_fixed_compute_s
            + costs.group_flush_per_record_compute_s * len(group),
            io_wait_s=costs.group_flush_io_s,
            tag="capture",
        )
        yield from self._dispatch(
            _encode_payload(group, compress=self.compress, cipher=self.cipher)
        )

    def _dispatch(self, payload: bytes):
        """Generator: journal + account for one outbound payload and ship
        it — queued for the sender loop, or awaited inline when the
        transport blocks."""
        seq = None
        wire = payload
        if self.journal is not None:
            seq = self.journal.append(payload, ts=self.env.now)
            wire = wrap_payload(self.client_id, seq, payload)
        nbytes = len(wire) + self.footprints.per_message_overhead_bytes
        self.device.memory.allocate(nbytes, tag="capture-buffers")
        self._outstanding += 1
        if not self.transport.blocking:
            self._queue.put((wire, nbytes, seq))
            return
        delivered = True
        try:
            done = self.transport.send(wire)
            yield done
        except Exception:
            # delivery failed; without a journal the record is lost, but
            # capture must never crash the workflow
            delivered = False
        if delivered or self.journal is None:
            self._complete(wire, nbytes, seq, delivered=delivered)
        else:
            self._mark_failed(wire, nbytes, seq)

    def _complete(self, wire: bytes, nbytes: int, seq: Optional[int],
                  delivered: bool = True) -> None:
        self.messages_sent.record()
        self.payload_bytes.record(len(wire))
        if (delivered and seq is not None
                and self.journal is not None and not self._journal_closed):
            self.journal.ack(seq)
        self.device.memory.free(nbytes, tag="capture-buffers")
        self._outstanding -= 1
        if self._outstanding == 0 and not self._queue.items:
            waiters, self._drain_waiters = self._drain_waiters, []
            for event in waiters:
                event.succeed()

    # ------------------------------------------- sender loop + supervision
    def _sender_loop(self):
        """Supervised sender: an unexpected transport exception never
        kills the background sender silently — the error is stashed for
        the next ``capture()``/``drain()``, the in-flight entry is parked
        for replay (durable) or counted lost (best-effort), and the loop
        restarts after a backoff delay."""
        while True:
            try:
                finished = yield from self._sender_body()
            except Exception as exc:
                self._sender_failure = exc
                item, self._sender_item = self._sender_item, None
                if item is not None:
                    wire, nbytes, seq = item
                    if self.journal is not None:
                        self._mark_failed(wire, nbytes, seq)
                    else:
                        self._complete(wire, nbytes, seq, delivered=False)
                yield self.env.timeout(self._backoff_delay(0))
                continue
            if finished:
                return

    def _sender_body(self):
        while True:
            item = yield self._queue.get()
            if item is _CLOSE:
                return True
            self._sender_item = item
            wire, nbytes, seq = item
            # while the reconnect machine owns the transport, park: the
            # replay entries must go out first to preserve seq order
            while self._pause_gate is not None:
                yield self._pause_gate
            if self._closed:
                self._sender_item = None
                self._complete(wire, nbytes, seq, delivered=False)
                return True
            done = self.transport.send(wire)
            # delivery bookkeeping (QoS handshakes, retransmissions) runs
            # on a background thread: busy CPU, but off the workflow path
            self.device.cpu.run_async(
                io_busy_s=self.costs.async_per_message_io_s, tag="capture"
            )
            delivered = True
            try:
                yield done
            except Exception:
                # delivery contract exhausted its retries
                delivered = False
            self._sender_item = None
            if delivered or self.journal is None:
                # without a journal the record is lost, but capture must
                # never crash the workflow
                self._complete(wire, nbytes, seq, delivered=delivered)
            else:
                self._mark_failed(wire, nbytes, seq)

    # --------------------------------------------- reconnect state machine
    def _mark_failed(self, wire: bytes, nbytes: int, seq: Optional[int]) -> None:
        """Park a journaled entry for replay and trip the reconnect
        machine (idempotent while one is already running)."""
        self._replay.append((wire, nbytes, seq))
        self._start_recovery()

    def _recover_journal(self) -> None:
        """Schedule replay of entries a previous incarnation left
        unacknowledged (crash recovery)."""
        rows = self.journal.unacked()
        if not rows:
            return
        overhead = self.footprints.per_message_overhead_bytes
        for seq, payload in rows:
            wire = wrap_payload(self.client_id, seq, payload)
            nbytes = len(wire) + overhead
            self.device.memory.allocate(nbytes, tag="capture-buffers")
            self._outstanding += 1
            self._replay.append((wire, nbytes, seq))
        self._start_recovery(established=True)

    def _start_recovery(self, established: bool = False) -> None:
        if self._closed or (self._recovery is not None
                            and self._recovery.is_alive):
            return
        self._set_state(STATE_RECONNECTING)
        if self._pause_gate is None:
            self._pause_gate = self.env.event()
        self._recovery = self.env.process(
            self._recovery_loop(established),
            name=f"capture-recovery-{self.topic}",
        )

    def _recovery_loop(self, established: bool):
        """Exponential backoff + reconnect probe + in-order replay.

        ``established`` skips the first probe: crash recovery runs right
        after ``setup()`` already performed the handshake.
        """
        attempt = 0
        while not self._closed:
            if not established:
                yield self.env.timeout(self._backoff_delay(attempt))
                attempt += 1
                if self._closed:
                    return
                try:
                    self.handle = yield from self.transport.reconnect(self.topic)
                except Exception:
                    continue  # uplink still down: back off harder
                self.reconnects.record()
            established = False
            while self._replay and not self._closed:
                wire, nbytes, seq = self._replay[0]
                try:
                    done = self.transport.send(wire)
                    yield done
                except Exception:
                    break  # still unreachable: back off and re-probe
                self._replay.pop(0)
                self.replayed.record()
                self._complete(wire, nbytes, seq, delivered=True)
            else:
                if not self._closed:
                    self._recovered()
                return

    def _recovered(self) -> None:
        self._recovery = None
        gate, self._pause_gate = self._pause_gate, None
        if gate is not None:
            gate.succeed()  # resume the parked sender
        self._set_state(STATE_CONNECTED)

    def _backoff_delay(self, attempt: int) -> float:
        config = self.config
        delay = min(
            config.reconnect_max_s,
            config.reconnect_base_s * (config.reconnect_factor ** attempt),
        )
        if config.reconnect_jitter:
            # deterministic per-client jitter de-synchronises a fleet of
            # clients reconnecting after the same partition heals
            delay *= 1.0 + config.reconnect_jitter * (2.0 * self._rng.random() - 1.0)
        return max(delay, 1e-9)

    def __repr__(self) -> str:
        return (
            f"<CaptureClient {self.transport.name}:{self.topic} "
            f"on {self.device.name}>"
        )
