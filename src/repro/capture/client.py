"""The transport-agnostic capture client façade.

This owns the paper's client-side critical path exactly once — the
calibrated attribute-cost charging, ended-task grouping, binary
encoding + compression, per-message memory accounting, the background
sender loop and the ``flush_groups()/drain()/close()`` semantics — and
delegates only the wire to a pluggable
:class:`~repro.capture.CaptureTransport`.  The MQTT-SN, CoAP and
blocking-HTTP capture clients are thin shims over this class, so any
measured difference between them is attributable to the protocol alone
(the design property behind the protocol-comparison benchmark).

Blocking transports (``transport.blocking``) are serviced inline: each
send is awaited on the workflow's critical path, reproducing the
baselines' Table II/III behaviour.  Asynchronous transports hand
payloads to a background sender process, which is what keeps ProvLight's
capture calls flat across bandwidths (Tables VII/VIII).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..simkernel import Counter, Store
from .config import CaptureConfig
from .transport import CaptureTransport

__all__ = ["CaptureClient", "CaptureClosedError"]

#: queue sentinel that tells the background sender loop to exit
_CLOSE = object()

# Late-bound repro.core imports: core.client subclasses CaptureClient, so
# importing core here at module time would be circular whichever package
# is imported first.  Bound once, at the first client construction.
_core_loaded = False
_GroupBuffer = None
_encode_payload = None
_count_attributes_from_record = None


def _load_core() -> None:
    global _core_loaded, _GroupBuffer, _encode_payload, _count_attributes_from_record
    if _core_loaded:
        return
    from ..core.grouping import GroupBuffer
    from ..core.model import count_attributes_from_record
    from ..core.serialization import encode_payload

    _GroupBuffer = GroupBuffer
    _encode_payload = encode_payload
    _count_attributes_from_record = count_attributes_from_record
    _core_loaded = True


class CaptureClosedError(RuntimeError):
    """The capture client was closed; pending drains fail with this."""


class CaptureClient:
    """Capture client bound to one device, shipping to one topic.

    Build instances through :func:`repro.capture.create_client` (or a
    compatibility shim like ``ProvLightClient``); passing an explicit
    ``transport`` bypasses the registry, which the shims use to expose
    protocol-specific knobs.
    """

    def __init__(
        self,
        device,
        server,
        topic: str,
        config: Optional[CaptureConfig] = None,
        transport: Optional[CaptureTransport] = None,
    ):
        _load_core()
        if device.host is None:
            raise RuntimeError(
                f"device {device.name} is not attached to a network host"
            )
        self.config = config = config or CaptureConfig()
        self.device = device
        self.env = device.env
        self.server = server
        self.topic = topic
        self.qos = config.qos
        self.compress = config.compress
        self.cipher = config.cipher
        self.costs = config.costs
        self.footprints = config.footprints
        self.group_buffer = _GroupBuffer(config.group_size)
        if transport is None:
            from .registry import create_transport

            transport = create_transport(device, server, topic, config)
        self.transport = transport
        self.handle: Any = None
        self._ready = False
        self._closed = False
        self._queue: Store = Store(self.env)
        self._outstanding = 0
        self._drain_waiters: List = []
        self.messages_sent = Counter("messages")
        self.payload_bytes = Counter("payload-bytes")
        self.records_captured = Counter("records")
        device.memory.allocate(config.footprints.provlight_lib_bytes,
                               tag="capture-static")
        self._sender = None
        if not transport.blocking:
            self._sender = self.env.process(
                self._sender_loop(), name=f"capture-sender-{self.topic}"
            )

    # ------------------------------------------------------------------ API
    @property
    def now(self) -> float:
        """Simulated clock (used by model classes for record timestamps)."""
        return self.env.now

    @property
    def closed(self) -> bool:
        return self._closed

    def setup(self):
        """Generator: establish the transport and announce the topic.

        Idempotent: a client that is already set up returns immediately,
        so deployment frameworks can hand out ready clients and
        workloads can still call ``setup()`` unconditionally.
        """
        self._check_open()
        if self._ready:
            return self
        yield from self.transport.connect()
        self.handle = yield from self.transport.register(self.topic)
        self._ready = True
        return self

    def capture(self, record: Dict[str, Any], groupable: bool = True):
        """Generator: capture one record (called by the model classes).

        Charges calibrated inline costs, produces the real payload bytes
        and hands them to the transport.  For asynchronous transports
        this returns as soon as the record is queued — that is the
        *entire* workflow-visible cost; blocking transports additionally
        stall for their request/response cycle, like the real baseline
        libraries.
        """
        self._check_open()
        if not self._ready and self.transport.requires_setup:
            raise RuntimeError("capture before setup()")
        self.records_captured.record()
        n_attrs = _count_attributes_from_record(record)
        costs = self.costs
        cpu_run = self.device.cpu.run
        if groupable and self.group_buffer.enabled:
            yield from cpu_run(
                compute_s=costs.buffered_fixed_compute_s
                + costs.buffered_per_attr_compute_s * n_attrs,
                io_wait_s=costs.buffered_io_s,
                tag="capture",
            )
            group = self.group_buffer.add(record)
            if group is not None:
                yield from self._flush_group(group)
        else:
            yield from cpu_run(
                compute_s=costs.inline_fixed_compute_s
                + costs.inline_per_attr_compute_s * n_attrs,
                io_wait_s=costs.inline_io_s,
                tag="capture",
            )
            yield from self._dispatch(
                _encode_payload(record, compress=self.compress, cipher=self.cipher)
            )

    def flush_groups(self):
        """Generator: force out a partial group (workflow end)."""
        group = self.group_buffer.flush()
        if group is not None:
            yield from self._flush_group(group)
        return None
        yield  # pragma: no cover - make this a generator even when empty

    def drain(self):
        """Generator: wait until every in-flight message completed its
        delivery contract.  Diagnostic/teardown helper; the paper's
        overhead metric intentionally does not include this wait.

        Raises :class:`CaptureClosedError` on a closed client — both
        when called after ``close()`` (a post-close drain would never
        resolve: the sender is gone) and when the client is closed while
        the drain is pending.
        """
        self._check_open()
        if self._outstanding == 0 and not self._queue.items:
            return
        event = self.env.event()
        self._drain_waiters.append(event)
        yield event

    def close(self) -> None:
        """Tear down: stop the sender, free pending buffers, fail any
        ``drain()`` waiters, disconnect and release the static memory.

        Idempotent.  Queued-but-unsent payloads are dropped (their
        ``capture-buffers`` allocations freed); a message the transport
        already holds in flight completes or times out in the background
        and releases its buffer then.
        """
        if self._closed:
            return
        self._closed = True
        for item in self._queue.drain_pending():
            if item is _CLOSE:
                continue
            _, nbytes = item
            self.device.memory.free(nbytes, tag="capture-buffers")
            self._outstanding -= 1
        if self._sender is not None:
            self._queue.put(_CLOSE)
        waiters, self._drain_waiters = self._drain_waiters, []
        for event in waiters:
            event.fail(CaptureClosedError(
                f"capture client for topic {self.topic!r} closed with "
                "messages outstanding"
            ))
        self.transport.disconnect()
        self.device.memory.free(
            self.footprints.provlight_lib_bytes, tag="capture-static"
        )

    # ------------------------------------------------------------- internals
    def _check_open(self) -> None:
        if self._closed:
            raise CaptureClosedError(
                f"capture client for topic {self.topic!r} is closed"
            )

    def _flush_group(self, group: List[Dict[str, Any]]):
        costs = self.costs
        yield from self.device.cpu.run(
            compute_s=costs.group_flush_fixed_compute_s
            + costs.group_flush_per_record_compute_s * len(group),
            io_wait_s=costs.group_flush_io_s,
            tag="capture",
        )
        yield from self._dispatch(
            _encode_payload(group, compress=self.compress, cipher=self.cipher)
        )

    def _dispatch(self, payload: bytes):
        """Generator: account for one outbound payload and ship it —
        queued for the sender loop, or awaited inline when the transport
        blocks."""
        nbytes = len(payload) + self.footprints.per_message_overhead_bytes
        self.device.memory.allocate(nbytes, tag="capture-buffers")
        self._outstanding += 1
        if not self.transport.blocking:
            self._queue.put((payload, nbytes))
            return
        done = self.transport.send(payload)
        try:
            yield done
        except Exception:
            # delivery failed; the record is lost but capture must never
            # crash the workflow
            pass
        self._complete(payload, nbytes)

    def _complete(self, payload: bytes, nbytes: int) -> None:
        self.messages_sent.record()
        self.payload_bytes.record(len(payload))
        self.device.memory.free(nbytes, tag="capture-buffers")
        self._outstanding -= 1
        if self._outstanding == 0 and not self._queue.items:
            waiters, self._drain_waiters = self._drain_waiters, []
            for event in waiters:
                event.succeed()

    def _sender_loop(self):
        while True:
            item = yield self._queue.get()
            if item is _CLOSE:
                return
            payload, nbytes = item
            done = self.transport.send(payload)
            # delivery bookkeeping (QoS handshakes, retransmissions) runs
            # on a background thread: busy CPU, but off the workflow path
            self.device.cpu.run_async(
                io_busy_s=self.costs.async_per_message_io_s, tag="capture"
            )
            try:
                yield done
            except Exception:
                # delivery contract exhausted its retries; the record is
                # lost but capture must never crash the workflow.
                pass
            self._complete(payload, nbytes)

    def __repr__(self) -> str:
        return (
            f"<CaptureClient {self.transport.name}:{self.topic} "
            f"on {self.device.name}>"
        )
