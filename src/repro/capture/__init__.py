"""``repro.capture`` — the unified capture API (single public surface).

The paper's capture library, factored so that one declarative
:class:`CaptureConfig` selects transport x grouping x QoS x cipher and
one :class:`CaptureClient` façade owns the client-side critical path for
every transport::

    from repro.capture import CaptureConfig, create_client

    client = create_client(device, server.endpoint, "provlight/edge/data",
                           CaptureConfig(transport="mqttsn", group_size=10))
    yield from client.setup()
    ...             # Workflow/Task/Data instrument against this client
    client.close()

Built-in transports: ``mqttsn`` (the paper's asynchronous MQTT-SN QoS 2
client), ``coap`` (confirmable CoAP POST) and ``http`` (the baselines'
blocking HTTP/1.1 POST).  Adding one is three steps — subclass
:class:`CaptureTransport`, write a factory, call
:func:`register_transport` — see ``docs/capture-api.md``.
"""

from .client import CaptureClient, CaptureClosedError, CaptureSenderError
from .config import DEFAULT_TRANSPORT, CaptureConfig
from .envelope import ReplayDeduper, unwrap_payload, wrap_payload
from .journal import (
    CaptureJournal,
    EcdsaRecordSigner,
    HmacRecordSigner,
    JournalError,
    TamperError,
)
from .registry import (
    create_client,
    create_transport,
    get_transport_factory,
    normalize_transport,
    register_transport,
    transport_names,
    unregister_transport,
)
from .sinks import deploy_capture_sink
from .transport import CaptureTransport

__all__ = [
    "CaptureClient",
    "CaptureClosedError",
    "CaptureConfig",
    "CaptureJournal",
    "CaptureSenderError",
    "CaptureTransport",
    "DEFAULT_TRANSPORT",
    "EcdsaRecordSigner",
    "HmacRecordSigner",
    "JournalError",
    "ReplayDeduper",
    "TamperError",
    "create_client",
    "create_transport",
    "deploy_capture_sink",
    "get_transport_factory",
    "normalize_transport",
    "register_transport",
    "transport_names",
    "unregister_transport",
    "unwrap_payload",
    "wrap_payload",
]
