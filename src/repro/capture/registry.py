"""Transport registry: name -> factory, plus the ``create_client`` entry
point that is the library's single public way to build a capture client.

Built-in transports self-register when their module is imported; the
registry knows which module provides each built-in name and imports it
lazily, so ``create_client(..., CaptureConfig(transport="coap"))`` works
without the caller importing :mod:`repro.coap` first.  Third-party
transports call :func:`register_transport` (usable as a decorator) with
a factory ``(device, server, topic, config) -> CaptureTransport``.
"""

from __future__ import annotations

from importlib import import_module
from typing import Callable, Dict, Optional, Tuple

from .config import CaptureConfig
from .transport import CaptureTransport

__all__ = [
    "register_transport",
    "unregister_transport",
    "create_client",
    "create_transport",
    "get_transport_factory",
    "transport_names",
    "normalize_transport",
]

#: factory(device, server, topic, config) -> CaptureTransport
TransportFactory = Callable[..., CaptureTransport]

_TRANSPORTS: Dict[str, TransportFactory] = {}

#: spelling variants accepted anywhere a transport name is taken
_ALIASES = {
    "mqtt-sn": "mqttsn",
    "mqtt_sn": "mqttsn",
    "http-blocking": "http",
    "provlake-http": "http",
}

#: (module, factory attribute) for each built-in transport.  The module
#: registers it on first import; the attribute lets ``_load_builtins``
#: restore an entry after ``unregister_transport`` even though the
#: module's import side effects cannot re-run.
_BUILTINS = {
    "mqttsn": ("repro.core.client", "MqttSnCaptureTransport"),
    "coap": ("repro.coap.transport", "CoapCaptureTransport"),
    "http": ("repro.baselines.common", "HttpPostCaptureTransport"),
}


def normalize_transport(name: str) -> str:
    """Canonical registry name for ``name`` (resolves aliases)."""
    canonical = name.strip().lower()
    return _ALIASES.get(canonical, canonical)


def register_transport(name: str, factory: Optional[TransportFactory] = None,
                       replace: bool = False):
    """Register ``factory`` under ``name``; decorator form supported.

    ``factory(device, server, topic, config)`` must return a
    :class:`~repro.capture.CaptureTransport`.  Re-registering an
    existing name raises unless ``replace=True`` (a silent overwrite of
    e.g. ``"mqttsn"`` would be a hard-to-find bug).
    """
    canonical = normalize_transport(name)
    if not canonical:
        raise ValueError("transport name must be non-empty")

    def _register(factory: TransportFactory) -> TransportFactory:
        if canonical in _TRANSPORTS and not replace:
            raise ValueError(f"transport {canonical!r} is already registered")
        _TRANSPORTS[canonical] = factory
        return factory

    if factory is None:
        return _register
    return _register(factory)


def unregister_transport(name: str) -> None:
    """Remove a registered transport (primarily for tests)."""
    _TRANSPORTS.pop(normalize_transport(name), None)


def _load_builtins(name: Optional[str] = None) -> None:
    targets = [name] if name in _BUILTINS else list(_BUILTINS)
    for builtin in targets:
        if builtin not in _TRANSPORTS:
            module_name, attr = _BUILTINS[builtin]
            module = import_module(module_name)
            if builtin not in _TRANSPORTS:
                # already-imported module (register side effect cannot
                # re-run): restore the entry from its factory attribute
                _TRANSPORTS[builtin] = getattr(module, attr)


def get_transport_factory(name: str) -> TransportFactory:
    """The factory registered under ``name`` (loads built-ins lazily)."""
    canonical = normalize_transport(name)
    if canonical not in _TRANSPORTS:
        _load_builtins(canonical)
    try:
        return _TRANSPORTS[canonical]
    except KeyError:
        raise ValueError(
            f"unknown capture transport {name!r}; registered: "
            f"{', '.join(transport_names())}"
        ) from None


def transport_names() -> Tuple[str, ...]:
    """Sorted names of every registered transport (built-ins included)."""
    _load_builtins()
    return tuple(sorted(_TRANSPORTS))


def create_transport(device, server, topic: str,
                     config: Optional[CaptureConfig] = None) -> CaptureTransport:
    """Instantiate the transport selected by ``config.transport``."""
    config = config or CaptureConfig()
    factory = get_transport_factory(config.transport)
    return factory(device, server, topic, config)


def create_client(device, server, topic: str,
                  config: Optional[CaptureConfig] = None, **overrides):
    """Build a ready-to-``setup()`` capture client.

    ``server`` is the transport-specific endpoint (broker for MQTT-SN,
    CoAP server, HTTP collector).  ``overrides`` are
    :class:`CaptureConfig` field overrides applied on top of ``config``,
    so quick one-off variations read naturally::

        client = create_client(dev, broker, "provlight/edge/data",
                               transport="coap", group_size=10)
    """
    from .client import CaptureClient  # deferred: client imports this module

    config = config or CaptureConfig()
    if overrides:
        config = config.with_(**overrides)
    return CaptureClient(device, server, topic, config)
