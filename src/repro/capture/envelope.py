"""Delivery envelope + replay dedup: the at-least-once -> exactly-once glue.

A durable capture client may send the same journaled payload more than
once (a retransmitted QoS exchange whose ack was lost, a replay after an
uplink partition, a crash-recovery replay of the whole journal).  To
make replays idempotent end-to-end, every durable payload travels inside
a tiny envelope frame carrying the client identity and the journal
sequence number::

    magic "PE" | version (1) | flags (1) | varint(len cid) | cid utf8
               | varint(seq) | inner payload...

The sink side (translator pool, CoAP capture server, HTTP collector)
peeks the envelope *without* decoding the inner payload, asks a
:class:`ReplayDeduper` whether ``(client_id, seq)`` was already ingested
and drops duplicates before paying any translate cost.  Non-durable
clients send bare payloads (magic ``PL``) which pass through untouched,
so the wire stays backward compatible.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Set, Tuple

__all__ = [
    "ENVELOPE_MAGIC",
    "EnvelopeError",
    "wrap_payload",
    "unwrap_payload",
    "ReplayDeduper",
]

ENVELOPE_MAGIC = b"PE"
ENVELOPE_VERSION = 1


class EnvelopeError(ValueError):
    """A payload carrying the envelope magic could not be parsed."""


def _encode_varint(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise EnvelopeError("truncated varint in envelope")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise EnvelopeError("varint overflow in envelope")


def wrap_payload(client_id: str, seq: int, payload: bytes) -> bytes:
    """Frame ``payload`` with its dedup identity."""
    cid = client_id.encode("utf-8")
    return (
        ENVELOPE_MAGIC
        + bytes((ENVELOPE_VERSION, 0))
        + _encode_varint(len(cid))
        + cid
        + _encode_varint(seq)
        + payload
    )


def unwrap_payload(data: bytes) -> Optional[Tuple[str, int, bytes]]:
    """``(client_id, seq, inner payload)`` for an enveloped payload,
    ``None`` for anything else (bare payloads pass through)."""
    if len(data) < 4 or data[:2] != ENVELOPE_MAGIC:
        return None
    if data[2] != ENVELOPE_VERSION:
        raise EnvelopeError(f"unsupported envelope version {data[2]}")
    cid_len, offset = _decode_varint(data, 4)
    if offset + cid_len > len(data):
        raise EnvelopeError("truncated client id in envelope")
    try:
        client_id = data[offset:offset + cid_len].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise EnvelopeError("client id is not valid UTF-8") from exc
    seq, offset = _decode_varint(data, offset + cid_len)
    return client_id, seq, data[offset:]


class ReplayDeduper:
    """Tracks ``(client_id, seq)`` pairs already ingested.

    Per client it keeps a *floor* (every sequence number up to and
    including it has been seen) plus the sparse set of seen numbers
    above the floor; acked-in-order traffic therefore costs O(1) memory
    per client, and out-of-order replays only cost memory for the gap
    they straddle.

    :meth:`seen` and :meth:`mark` split the check from the record so a
    crash-supervised sink can check *before* translating but mark only
    *after* the backend accepted the batch — marking at check time would
    make a crash-then-requeue drop the requeued records as "duplicates".
    :meth:`is_duplicate` keeps the one-shot check-and-record semantics
    for sinks whose ingest cannot crash mid-way.

    With ``state_path`` every mark is appended to a JSON-lines file and
    the index is rebuilt (then compacted) on construction, so a sink
    restart does not re-ingest records a durable client replays.
    """

    def __init__(self, state_path: Optional[str] = None):
        self._floor: Dict[str, int] = {}
        self._above: Dict[str, Set[int]] = {}
        self._state_path = state_path
        self._state_file = None
        if state_path is not None:
            self._recover(state_path)

    # ------------------------------------------------------------- queries
    def seen(self, client_id: str, seq: int) -> bool:
        """True when this pair was already marked (pure check)."""
        if seq <= self._floor.get(client_id, 0):
            return True
        above = self._above.get(client_id)
        return above is not None and seq in above

    def mark(self, client_id: str, seq: int) -> None:
        """Record the pair as ingested (idempotent)."""
        floor = self._floor.get(client_id, 0)
        if seq <= floor:
            return
        above = self._above.get(client_id)
        if above is None:
            above = self._above[client_id] = set()
        if seq in above:
            return
        above.add(seq)
        while floor + 1 in above:
            floor += 1
            above.discard(floor)
        self._floor[client_id] = floor
        if self._state_file is not None:
            self._state_file.write(json.dumps([client_id, seq]) + "\n")
            self._state_file.flush()

    def is_duplicate(self, client_id: str, seq: int) -> bool:
        """True when this pair was already ingested; records it otherwise."""
        if self.seen(client_id, seq):
            return True
        self.mark(client_id, seq)
        return False

    def floor(self, client_id: str) -> int:
        """Highest contiguous sequence number seen for ``client_id``."""
        return self._floor.get(client_id, 0)

    # --------------------------------------------------------- persistence
    def _recover(self, state_path: str) -> None:
        """Rebuild the index from the append log, then compact it.

        The log is replayed line by line (a torn final line from a crash
        mid-append is skipped — its record was never acked as ingested
        either, so the replayed payload will simply be ingested again)
        and rewritten as one entry per client floor plus the sparse
        above-floor pairs.
        """
        if os.path.exists(state_path):
            with open(state_path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue  # torn tail write: at-least-once covers it
                    if not isinstance(entry, list):
                        continue
                    if len(entry) == 3 and entry[0] == "floor":
                        # compacted floor line: every seq <= floor was seen
                        _, client_id, floor = entry
                        if floor > self._floor.get(client_id, 0):
                            self._floor[client_id] = floor
                            above = self._above.get(client_id)
                            if above is not None:
                                self._above[client_id] = {
                                    s for s in above if s > floor
                                }
                    elif len(entry) == 2:
                        client_id, seq = entry
                        self.mark(client_id, seq)
        tmp_path = state_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as fh:
            for client_id, floor in self._floor.items():
                if floor > 0:
                    fh.write(json.dumps(["floor", client_id, floor]) + "\n")
            for client_id, above in self._above.items():
                for seq in sorted(above):
                    fh.write(json.dumps([client_id, seq]) + "\n")
        os.replace(tmp_path, state_path)
        self._state_file = open(state_path, "a", encoding="utf-8")

    def close(self) -> None:
        """Close the persistence handle (state remains on disk)."""
        if self._state_file is not None:
            self._state_file.close()
            self._state_file = None

    def __repr__(self) -> str:
        return f"<ReplayDeduper clients={len(self._floor)}>"
