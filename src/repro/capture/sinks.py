"""Capture-*sink* deployment shared by the harness and E2Clab.

``create_client`` picks the device-side transport; something on the
cloud side still has to terminate it.  The MQTT-SN sink is the full
:class:`~repro.core.server.ProvLightServer` (broker + translator pool)
whose knobs the callers own, but the CoAP server and the blocking-HTTP
collector are boilerplate — a translator feeding an ingest callable —
that the experiment harness and the Provenance Manager would otherwise
each hand-roll.  :func:`deploy_capture_sink` builds them once, so a new
transport's sink is added here, next to the registry that names it.

Imports are deferred: the protocol stacks import :mod:`repro.capture`
for their adapters, so importing them at module time would be circular.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from .registry import normalize_transport

__all__ = ["deploy_capture_sink"]

#: default port of the blocking-HTTP capture collector
DEFAULT_HTTP_SINK_PORT = 5000


def deploy_capture_sink(
    transport: str,
    host,
    ingest: Callable,
    target: str = "dfanalyzer",
    http_port: int = DEFAULT_HTTP_SINK_PORT,
    http_workers: int = 1,
    dedup_state_path: Optional[str] = None,
) -> Tuple[object, Tuple[str, int]]:
    """Deploy the capture sink for ``transport`` on ``host``.

    ``ingest`` is the backend callable translated records are fed to.
    Returns ``(server, endpoint)`` where ``endpoint`` is what
    :func:`~repro.capture.create_client` takes as ``server``.  The
    ``mqttsn`` sink is *not* built here — construct a
    :class:`~repro.core.server.ProvLightServer` directly (its worker and
    shard knobs belong to the deployment).

    ``dedup_state_path`` makes the HTTP collector's replay-dedup index
    durable: a restarted collector recovering from the same path keeps
    rejecting ``(client_id, seq)`` pairs it ingested before the crash,
    so journal replays stay exactly-once across sink restarts.
    """
    transport = normalize_transport(transport)
    if transport == "coap":
        from ..coap import ProvLightCoapServer
        from ..core.server import CallableBackend

        server = ProvLightCoapServer(host, CallableBackend(ingest), target=target)
        return server, server.endpoint
    if transport == "http":
        from ..core.translator import Translator
        from ..http import HttpResponse, HttpServer
        from .envelope import ReplayDeduper, unwrap_payload

        translator = Translator(target)
        deduper = ReplayDeduper(state_path=dedup_state_path)

        def collector(request):
            try:
                body = request.body
                envelope = unwrap_payload(body)
                if envelope is not None:
                    client_id, seq, body = envelope
                    if deduper.is_duplicate(client_id, seq):
                        # a replayed POST the collector already ingested:
                        # still 201 so the durable client acks its journal
                        return HttpResponse(status=201, reason="Created")
                _, translated = translator.translate_payload(body)
                ingest(translated)
            except Exception:  # lint: disable=bare-swallow(wire bytes are untrusted: any malformed envelope/payload is capture loss, and loss must never crash the collector — the durability acceptance tests pin this)
                pass
            return HttpResponse(status=201, reason="Created")

        server = HttpServer(host, http_port, collector, workers=http_workers)
        return server, (host.name, http_port)
    raise ValueError(
        f"no capture sink known for transport {transport!r} "
        "(mqttsn sinks are a ProvLightServer; see repro.capture.sinks)"
    )
