"""The transport protocol behind the unified capture API.

A *transport* is the thin, protocol-specific layer between the shared
:class:`~repro.capture.CaptureClient` critical path and the wire: it
knows how to establish a session, announce a topic, ship one opaque
payload, and tear down.  Everything else — cost charging, grouping,
encoding, memory accounting, drain semantics — lives in the façade and
is written exactly once.

Concrete adapters live next to the protocol stacks they wrap:

* ``mqttsn`` — :class:`repro.core.client.MqttSnCaptureTransport`
  (the paper's choice: asynchronous QoS publish over UDP);
* ``coap`` — :class:`repro.coap.transport.CoapCaptureTransport`
  (confirmable POST, RFC 7252);
* ``http`` — :class:`repro.baselines.common.HttpPostCaptureTransport`
  (the baselines' blocking HTTP/1.1 POST; ``blocking = True``).

New transports subclass :class:`CaptureTransport` and register a factory
with :func:`repro.capture.register_transport`; see
``docs/capture-api.md`` for a worked example.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["CaptureTransport"]


class CaptureTransport:
    """Protocol every capture transport implements.

    ``connect()`` and ``register()`` are generators (they may wait on
    simulated network exchanges); ``send()`` is synchronous and returns
    a completion :class:`~repro.simkernel.Event` so the caller decides
    whether to wait.  The façade consults two class flags:

    * ``blocking`` — ``True`` means every ``send()`` must be awaited on
      the workflow's critical path (the baselines' HTTP transport);
      ``False`` means sends are queued to the background sender loop.
    * ``requires_setup`` — ``True`` means ``capture()`` before
      ``setup()`` is a programming error (MQTT-SN needs its topic
      registered); connectionless transports set ``False``.
    """

    #: registry name of this transport (diagnostics)
    name: str = "abstract"
    #: True: capture() waits for each send on the workflow's critical path
    blocking: bool = False
    #: True: the client must run setup() before the first capture()
    requires_setup: bool = True

    def connect(self):
        """Generator: establish the transport session (idempotence is
        handled by the façade — this is called at most once)."""
        return None
        yield  # pragma: no cover - generator shape

    def register(self, topic: str):
        """Generator: announce ``topic``; returns a transport handle
        (topic id, path, ...) or ``None``."""
        return None
        yield  # pragma: no cover - generator shape

    def send(self, payload: bytes):
        """Ship one opaque payload; returns the completion event.

        The event may *fail* (QoS retries exhausted, server missing).
        The façade swallows the failure — capture loss must never crash
        the instrumented workflow — so transports are free to surface
        delivery errors through it.
        """
        raise NotImplementedError

    def disconnect(self) -> None:
        """Tear down the session (fire and forget)."""

    def describe(self) -> str:
        mode = "blocking" if self.blocking else "async"
        return f"{self.name} ({mode})"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"
