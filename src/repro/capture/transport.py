"""The transport protocol behind the unified capture API.

A *transport* is the thin, protocol-specific layer between the shared
:class:`~repro.capture.CaptureClient` critical path and the wire: it
knows how to establish a session, announce a topic, ship one opaque
payload, and tear down.  Everything else — cost charging, grouping,
encoding, memory accounting, drain semantics — lives in the façade and
is written exactly once.

Concrete adapters live next to the protocol stacks they wrap:

* ``mqttsn`` — :class:`repro.core.client.MqttSnCaptureTransport`
  (the paper's choice: asynchronous QoS publish over UDP);
* ``coap`` — :class:`repro.coap.transport.CoapCaptureTransport`
  (confirmable POST, RFC 7252);
* ``http`` — :class:`repro.baselines.common.HttpPostCaptureTransport`
  (the baselines' blocking HTTP/1.1 POST; ``blocking = True``).

New transports subclass :class:`CaptureTransport` and register a factory
with :func:`repro.capture.register_transport`; see
``docs/capture-api.md`` for a worked example.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["CaptureTransport"]


class CaptureTransport:
    """Protocol every capture transport implements.

    ``connect()`` and ``register()`` are generators (they may wait on
    simulated network exchanges); ``send()`` is synchronous and returns
    a completion :class:`~repro.simkernel.Event` so the caller decides
    whether to wait.  The façade consults two class flags:

    * ``blocking`` — ``True`` means every ``send()`` must be awaited on
      the workflow's critical path (the baselines' HTTP transport);
      ``False`` means sends are queued to the background sender loop.
    * ``requires_setup`` — ``True`` means ``capture()`` before
      ``setup()`` is a programming error (MQTT-SN needs its topic
      registered); connectionless transports set ``False``.
    """

    #: registry name of this transport (diagnostics)
    name: str = "abstract"
    #: True: capture() waits for each send on the workflow's critical path
    blocking: bool = False
    #: True: the client must run setup() before the first capture()
    requires_setup: bool = True

    def connect(self):
        """Generator: establish the transport session (idempotence is
        handled by the façade — this is called at most once)."""
        return None
        yield  # pragma: no cover - generator shape

    def register(self, topic: str):
        """Generator: announce ``topic``; returns a transport handle
        (topic id, path, ...) or ``None``."""
        return None
        yield  # pragma: no cover - generator shape

    def send(self, payload: bytes):
        """Ship one opaque payload; returns the completion event.

        The completion event doubles as the transport's **ack hook**: it
        must *succeed* only once the transport's delivery contract for
        this payload is fulfilled (QoS 2: PUBCOMP; CoAP CON: ACK; HTTP:
        2xx response) and *fail* when the contract is exhausted (retries
        spent, server missing).  A non-durable façade swallows the
        failure — capture loss must never crash the instrumented
        workflow; a durable façade keeps the journaled entry
        unacknowledged and replays it after :meth:`reconnect`.
        """
        raise NotImplementedError

    def reconnect(self, topic: str):
        """Generator: re-establish the session after a delivery failure.

        Called by the durable client's reconnect state machine between
        backoff delays; it may raise (the uplink is still down), in
        which case the machine backs off and retries.  The default
        re-runs the connect/register handshake and returns the fresh
        topic handle; connectionless transports inherit this as a no-op
        probe (their first replayed ``send()`` is the real probe).
        """
        yield from self.connect()
        handle = yield from self.register(topic)
        return handle

    def disconnect(self) -> None:
        """Tear down the session (fire and forget)."""

    def describe(self) -> str:
        mode = "blocking" if self.blocking else "async"
        return f"{self.name} ({mode})"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"
