"""Declarative configuration for the unified capture API.

One frozen :class:`CaptureConfig` selects everything that varies between
the paper's capture scenarios — transport x grouping x QoS x cipher —
plus the calibration overrides (costs, memory footprints) the harness
uses to fit the paper's tables.  The same config object drives
:func:`repro.capture.create_client`, the experiment harness
(``ExperimentSetup.capture_config()``) and the E2Clab Provenance
Manager, so an experimental condition is described once and reused
everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from ..calibration import (
    MEMORY_FOOTPRINTS,
    PROVLIGHT_COSTS,
    MemoryFootprints,
    ProvLightCosts,
)

__all__ = ["CaptureConfig", "DEFAULT_TRANSPORT"]

#: The paper's transport choice (MQTT-SN QoS 2 over UDP).
DEFAULT_TRANSPORT = "mqttsn"


@dataclass(frozen=True)
class CaptureConfig:
    """Everything that defines how one capture client behaves.

    The client-side critical path (cost charging, grouping, encoding,
    memory accounting) is owned by :class:`~repro.capture.CaptureClient`
    and is identical for every transport, so any difference between two
    configs that differ only in ``transport`` is attributable to the
    protocol alone.
    """

    #: registered transport name (see :func:`repro.capture.transport_names`)
    transport: str = DEFAULT_TRANSPORT
    #: group ended-task records in batches of this size (0 = no grouping)
    group_size: int = 0
    #: zlib-compress encoded payloads (paper's default)
    compress: bool = True
    #: MQTT-SN quality of service for transports that honour it
    qos: int = 2
    #: optional :class:`~repro.core.security.PayloadCipher` for
    #: authenticated payload encryption
    cipher: Optional[Any] = None
    #: explicit client identity (transports that need one generate it;
    #: durable clients also key their journal and dedup identity on it,
    #: falling back to the stable ``device-name/topic`` pair)
    client_id: Optional[str] = None
    #: calibrated client-side costs (Table VII/VIII fits)
    costs: ProvLightCosts = PROVLIGHT_COSTS
    #: calibrated resident/per-message memory footprints (Fig. 6b fits)
    footprints: MemoryFootprints = MEMORY_FOOTPRINTS
    #: write every outbound payload through an append-only WAL journal
    #: before dispatch; unacknowledged entries survive crashes and are
    #: replayed on reconnect (at-least-once, deduplicated server-side)
    durable: bool = False
    #: directory holding the journal database (durable clients only);
    #: ``None`` uses :data:`repro.capture.journal.DEFAULT_JOURNAL_DIR`
    journal_dir: Optional[str] = None
    #: optional record signer (``sign``/``verify``/``algorithm``) for
    #: HyperProv-style tamper-evident journals — see
    #: :class:`~repro.capture.journal.HmacRecordSigner` and
    #: :class:`~repro.capture.journal.EcdsaRecordSigner`
    signer: Optional[Any] = None
    #: reconnect backoff: first delay, growth factor, ceiling, jitter
    #: fraction (each delay is scaled by ``1 ± jitter * U``) — the state
    #: machine in :class:`~repro.capture.CaptureClient` uses these
    reconnect_base_s: float = 0.5
    reconnect_factor: float = 2.0
    reconnect_max_s: float = 30.0
    reconnect_jitter: float = 0.1

    def __post_init__(self):
        if not self.transport or not isinstance(self.transport, str):
            raise ValueError(f"transport must be a non-empty string, got {self.transport!r}")
        if self.group_size < 0:
            raise ValueError(f"group_size must be >= 0, got {self.group_size}")
        if self.qos not in (0, 1, 2):
            raise ValueError(f"qos must be 0, 1 or 2, got {self.qos}")
        if self.reconnect_base_s <= 0:
            raise ValueError(f"reconnect_base_s must be > 0, got {self.reconnect_base_s}")
        if self.reconnect_factor < 1.0:
            raise ValueError(f"reconnect_factor must be >= 1, got {self.reconnect_factor}")
        if self.reconnect_max_s < self.reconnect_base_s:
            raise ValueError("reconnect_max_s must be >= reconnect_base_s")
        if not 0.0 <= self.reconnect_jitter < 1.0:
            raise ValueError(f"reconnect_jitter must be in [0, 1), got {self.reconnect_jitter}")

    def with_(self, **changes) -> "CaptureConfig":
        """A copy of this config with ``changes`` applied."""
        return replace(self, **changes)

    def describe(self) -> str:
        parts = [self.transport]
        if self.group_size:
            parts.append(f"group={self.group_size}")
        if not self.compress:
            parts.append("uncompressed")
        if self.qos != 2:
            parts.append(f"qos={self.qos}")
        if self.cipher is not None:
            parts.append("encrypted")
        if self.durable:
            parts.append("durable")
        return " ".join(parts)
