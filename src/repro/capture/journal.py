"""Durable edge-side capture journal: append-only, hash-chained, signed.

The disconnected-edge scenarios need capture that survives client
crashes and long uplink partitions, so a ``durable=True`` capture client
writes every outbound payload through this journal *before* handing it
to the transport.  The store is an append-only SQLite table in WAL mode
(one fsync-cheap append per payload; the same idiom real edge capture
daemons use), keyed by a **monotonic per-client sequence number** that
doubles as the server-side dedup key — see :mod:`repro.capture.envelope`.

Tamper evidence (HyperProv-style): every entry carries
``sha256(prev_hash || seq || payload)``, chaining it to its predecessor;
:meth:`CaptureJournal.verify_chain` recomputes the chain and raises
:class:`TamperError` on any edited, reordered or missing entry.
Optionally each chained hash is signed — :class:`HmacRecordSigner`
(standard library, shared key) or :class:`EcdsaRecordSigner` (P-256,
gated on the ``cryptography`` package being installed).

Delivery acknowledgements truncate the journal: :meth:`ack` marks an
entry delivered, and the contiguous acked prefix is deleted, with its
last ``(seq, hash)`` retained as the *anchor* so the chain of the
surviving suffix stays verifiable.  Entries never acked — the client
crashed, or the uplink never healed — are returned by :meth:`unacked`
and replayed on the next ``setup()``/reconnect.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import re
import sqlite3
from typing import List, Optional, Tuple

__all__ = [
    "CaptureJournal",
    "JournalError",
    "TamperError",
    "HmacRecordSigner",
    "EcdsaRecordSigner",
    "chain_hash",
    "journal_path_for",
    "GENESIS_HASH",
    "DEFAULT_JOURNAL_DIR",
]

#: hash-chain anchor of an empty journal (no predecessor)
GENESIS_HASH = "0" * 64

#: where durable clients put their journals unless told otherwise
DEFAULT_JOURNAL_DIR = ".provlight-journal"


class JournalError(RuntimeError):
    """The journal could not be opened or operated on."""


class TamperError(JournalError):
    """Chain verification failed: an entry was edited, forged or lost."""


def chain_hash(prev_hash: str, seq: int, payload: bytes) -> str:
    """The chained digest of one entry: binds payload, position and
    predecessor, so any historical edit breaks every later hash."""
    h = hashlib.sha256()
    h.update(prev_hash.encode("ascii"))
    h.update(seq.to_bytes(8, "little"))
    h.update(payload)
    return h.hexdigest()


def journal_path_for(journal_dir: str, client_id: str) -> str:
    """The journal file for ``client_id`` under ``journal_dir`` (the id
    is sanitised — topic-style ids contain ``/``)."""
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", client_id) or "client"
    return os.path.join(journal_dir, f"{safe}.journal.db")


class HmacRecordSigner:
    """Shared-key record signing (HMAC-SHA256, standard library only)."""

    algorithm = "hmac-sha256"

    def __init__(self, key: bytes):
        if not isinstance(key, (bytes, bytearray)) or len(key) < 16:
            raise ValueError("signing key must be at least 16 bytes")
        self._key = bytes(key)

    def sign(self, data: bytes) -> bytes:
        return hmac.new(self._key, data, hashlib.sha256).digest()

    def verify(self, data: bytes, signature: bytes) -> bool:
        return hmac.compare_digest(self.sign(data), bytes(signature))


class EcdsaRecordSigner:
    """Asymmetric record signing (ECDSA P-256 / SHA-256).

    Needs the ``cryptography`` package; :meth:`available` reports whether
    it is importable so callers can fall back to
    :class:`HmacRecordSigner` on minimal containers.  A verify-only
    instance (public key, no private key) supports audit hosts that must
    check signatures without being able to forge them.
    """

    algorithm = "ecdsa-p256-sha256"

    def __init__(self, private_key=None, public_key=None):
        if private_key is None and public_key is None:
            raise ValueError("need a private key (sign) or public key (verify)")
        self._private = private_key
        self._public = public_key if public_key is not None else private_key.public_key()

    @staticmethod
    def available() -> bool:
        try:
            import cryptography  # noqa: F401
        except ImportError:
            return False
        return True

    @classmethod
    def generate(cls) -> "EcdsaRecordSigner":
        if not cls.available():
            raise JournalError(
                "EcdsaRecordSigner needs the 'cryptography' package; "
                "use HmacRecordSigner on hosts without it"
            )
        from cryptography.hazmat.primitives.asymmetric import ec

        return cls(private_key=ec.generate_private_key(ec.SECP256R1()))

    def sign(self, data: bytes) -> bytes:
        if self._private is None:
            raise JournalError("verify-only signer cannot sign")
        from cryptography.hazmat.primitives import hashes
        from cryptography.hazmat.primitives.asymmetric import ec

        return self._private.sign(data, ec.ECDSA(hashes.SHA256()))

    def verify(self, data: bytes, signature: bytes) -> bool:
        from cryptography.exceptions import InvalidSignature
        from cryptography.hazmat.primitives import hashes
        from cryptography.hazmat.primitives.asymmetric import ec

        try:
            self._public.verify(bytes(signature), data, ec.ECDSA(hashes.SHA256()))
        except InvalidSignature:
            return False
        return True


class CaptureJournal:
    """Append-only WAL store of not-yet-acknowledged capture payloads.

    One journal belongs to one client identity; reopening the same path
    with a different ``client_id`` is refused (two clients sharing a
    sequence space would break the dedup contract).
    """

    def __init__(self, path: str, client_id: str, signer=None):
        if not client_id:
            raise JournalError("journal needs a non-empty client_id")
        self.path = path
        self.client_id = client_id
        self.signer = signer
        directory = os.path.dirname(path)
        if directory and path != ":memory:":
            os.makedirs(directory, exist_ok=True)
        self._conn = sqlite3.connect(path, isolation_level=None)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS journal ("
            " seq INTEGER PRIMARY KEY,"
            " ts REAL NOT NULL,"
            " payload BLOB NOT NULL,"
            " hash TEXT NOT NULL,"
            " sig BLOB,"
            " acked INTEGER NOT NULL DEFAULT 0)"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS meta ("
            " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        self._load_state()

    def _load_state(self) -> None:
        meta = dict(self._conn.execute("SELECT key, value FROM meta"))
        owner = meta.get("client_id")
        if owner is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES ('client_id', ?)",
                (self.client_id,),
            )
        elif owner != self.client_id:
            raise JournalError(
                f"journal {self.path!r} belongs to client {owner!r}, "
                f"not {self.client_id!r}"
            )
        self._anchor_seq = int(meta.get("anchor_seq", 0))
        self._anchor_hash = meta.get("anchor_hash", GENESIS_HASH)
        # the head is derived, not stored: one INSERT per append, and a
        # crash between statements can never desynchronise head and rows
        row = self._conn.execute(
            "SELECT seq, hash FROM journal ORDER BY seq DESC LIMIT 1"
        ).fetchone()
        if row is not None:
            self._head_seq, self._head_hash = int(row[0]), row[1]
        else:
            self._head_seq, self._head_hash = self._anchor_seq, self._anchor_hash

    # ------------------------------------------------------------------ API
    @property
    def head(self) -> Tuple[int, str]:
        """``(seq, hash)`` of the newest entry (anchor when empty)."""
        return self._head_seq, self._head_hash

    @property
    def anchor(self) -> Tuple[int, str]:
        """``(seq, hash)`` of the last truncated (acked) entry."""
        return self._anchor_seq, self._anchor_hash

    def append(self, payload: bytes, ts: float = 0.0) -> int:
        """Append ``payload``; returns its sequence number."""
        seq = self._head_seq + 1
        digest = chain_hash(self._head_hash, seq, payload)
        sig = self.signer.sign(digest.encode("ascii")) if self.signer else None
        self._conn.execute(
            "INSERT INTO journal (seq, ts, payload, hash, sig, acked)"
            " VALUES (?, ?, ?, ?, ?, 0)",
            (seq, ts, sqlite3.Binary(payload), digest, sig),
        )
        self._head_seq, self._head_hash = seq, digest
        return seq

    def ack(self, seq: int) -> None:
        """Mark ``seq`` delivered; truncate the contiguous acked prefix."""
        self._conn.execute("UPDATE journal SET acked=1 WHERE seq=?", (seq,))
        self._truncate_acked_prefix()

    def _truncate_acked_prefix(self) -> None:
        advanced = False
        while True:
            row = self._conn.execute(
                "SELECT seq, hash, acked FROM journal WHERE seq=?",
                (self._anchor_seq + 1,),
            ).fetchone()
            if row is None or not row[2]:
                break
            self._conn.execute("DELETE FROM journal WHERE seq=?", (row[0],))
            self._anchor_seq, self._anchor_hash = int(row[0]), row[1]
            advanced = True
        if advanced:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES ('anchor_seq', ?)"
                " ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                (str(self._anchor_seq),),
            )
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES ('anchor_hash', ?)"
                " ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                (self._anchor_hash,),
            )

    def unacked(self) -> List[Tuple[int, bytes]]:
        """Entries awaiting delivery, oldest first — the replay set."""
        return [
            (int(seq), bytes(payload))
            for seq, payload in self._conn.execute(
                "SELECT seq, payload FROM journal WHERE acked=0 ORDER BY seq"
            )
        ]

    @property
    def pending(self) -> int:
        """Entries not yet acknowledged."""
        row = self._conn.execute(
            "SELECT COUNT(*) FROM journal WHERE acked=0"
        ).fetchone()
        return int(row[0])

    def __len__(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) FROM journal").fetchone()
        return int(row[0])

    def verify_chain(self, verifier=None) -> int:
        """Recompute the hash chain (and signatures, when a signer is
        known); returns the number of verified entries.

        Raises :class:`TamperError` on any payload edit, reordering,
        gap, or signature mismatch.
        """
        verifier = verifier if verifier is not None else self.signer
        prev_seq, prev_hash = self._anchor_seq, self._anchor_hash
        verified = 0
        for seq, payload, digest, sig in self._conn.execute(
            "SELECT seq, payload, hash, sig FROM journal ORDER BY seq"
        ):
            seq = int(seq)
            if seq != prev_seq + 1:
                raise TamperError(
                    f"sequence gap: expected {prev_seq + 1}, found {seq}"
                )
            expected = chain_hash(prev_hash, seq, bytes(payload))
            if expected != digest:
                raise TamperError(f"hash mismatch at seq {seq}")
            if verifier is not None:
                if sig is None:
                    raise TamperError(f"missing signature at seq {seq}")
                if not verifier.verify(digest.encode("ascii"), sig):
                    raise TamperError(f"signature mismatch at seq {seq}")
            prev_seq, prev_hash = seq, digest
            verified += 1
        return verified

    def close(self) -> None:
        self._conn.close()

    def __repr__(self) -> str:
        return (
            f"<CaptureJournal {self.client_id!r} head={self._head_seq} "
            f"pending={self.pending}>"
        )
