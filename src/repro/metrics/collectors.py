"""Per-run metric collection from device models.

One :class:`RunMetrics` snapshot captures everything the paper's Fig. 6
reports for a run: capture-attributed CPU utilization, capture memory as
a fraction of RAM, network bytes/rate on the device, and average power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..device import Device

__all__ = ["RunMetrics", "snapshot_device"]


@dataclass
class RunMetrics:
    """Metrics of one workload run on one device."""

    elapsed_s: float
    capture_cpu_utilization: float
    total_cpu_utilization: float
    capture_memory_fraction: float
    capture_memory_peak_bytes: int
    tx_bytes: int
    rx_bytes: int
    network_rate_bps: float
    average_power_w: Optional[float]
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def network_kb_per_s(self) -> float:
        return self.network_rate_bps / 8.0 / 1024.0


def snapshot_device(device: Device, elapsed_s: float) -> RunMetrics:
    """Read a device's accounting after a run.

    Call after the workflow finished; CPU/energy accounting should have
    been reset at the start of the run (``device.reset_accounting()``).
    """
    cpu = device.cpu
    capture_util = cpu.utilization("capture")
    total_util = cpu.utilization()
    mem = device.memory
    capture_mem_peak = mem.peak("capture-static") + mem.peak("capture-buffers")
    tx = int(device.radio.tx.total)
    rx = int(device.radio.rx.total)
    rate = ((tx + rx) * 8.0 / elapsed_s) if elapsed_s > 0 else 0.0
    power = device.energy.average_power_w() if device.energy is not None else None
    return RunMetrics(
        elapsed_s=elapsed_s,
        capture_cpu_utilization=capture_util,
        total_cpu_utilization=total_util,
        capture_memory_fraction=capture_mem_peak / device.spec.ram_bytes,
        capture_memory_peak_bytes=capture_mem_peak,
        tx_bytes=tx,
        rx_bytes=rx,
        network_rate_bps=rate,
        average_power_w=power,
    )
