"""Plain-text table rendering for the benchmark harness.

The harness prints each reproduced table/figure in the same row/column
arrangement as the paper, with a "paper" reference column next to every
measured value so the comparison is visible in the terminal and in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

__all__ = ["render_table", "fmt_pct", "fmt_ci_pct", "fmt_bytes", "fmt_si"]


def fmt_pct(value: float, digits: int = 2) -> str:
    """0.0154 -> '1.54%'."""
    return f"{value * 100:.{digits}f}%"


def fmt_ci_pct(mean: float, halfwidth: float, digits: int = 2) -> str:
    """Paper-style '1.54% ±0.01'."""
    return f"{mean * 100:.{digits}f}% ±{halfwidth * 100:.{digits}f}"


def fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024 or unit == "GB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{n:.0f}B"
        n /= 1024.0
    return f"{n:.1f}GB"


def fmt_si(value: float, unit: str = "", digits: int = 3) -> str:
    return f"{value:.{digits}g}{unit}"


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    note: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = [f"\n=== {title} ===", sep, line(list(headers)), sep]
    for row in str_rows:
        out.append(line(row))
    out.append(sep)
    if note:
        out.append(note)
    return "\n".join(out)
