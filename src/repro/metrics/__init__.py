"""Measurement: overhead statistics (mean ± 95% CI like the paper),
per-device metric snapshots and ASCII table rendering for the harness."""

from .collectors import RunMetrics, snapshot_device
from .reporting import fmt_bytes, fmt_ci_pct, fmt_pct, fmt_si, render_table
from .stats import MeanCI, mean_ci, relative_overhead, speedup

__all__ = [
    "MeanCI",
    "mean_ci",
    "relative_overhead",
    "speedup",
    "RunMetrics",
    "snapshot_device",
    "render_table",
    "fmt_pct",
    "fmt_ci_pct",
    "fmt_bytes",
    "fmt_si",
]
