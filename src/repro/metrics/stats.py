"""Statistics helpers for the evaluation harness.

The paper reports "the mean followed by the 95% confidence interval" over
10 repetitions of each experiment; :func:`mean_ci` reproduces exactly
that (Student-t interval), and :func:`relative_overhead` is the paper's
capture-time-overhead metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import stats as _scipy_stats

__all__ = ["MeanCI", "mean_ci", "relative_overhead", "speedup"]


@dataclass(frozen=True)
class MeanCI:
    """A mean with a symmetric confidence half-width."""

    mean: float
    halfwidth: float
    n: int
    confidence: float = 0.95

    def __str__(self) -> str:
        return f"{self.mean:.4g} ±{self.halfwidth:.2g}"

    def as_percent(self) -> str:
        return f"{self.mean * 100:.2f}% ±{self.halfwidth * 100:.2f}"

    @property
    def low(self) -> float:
        return self.mean - self.halfwidth

    @property
    def high(self) -> float:
        return self.mean + self.halfwidth


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> MeanCI:
    """Mean and Student-t confidence half-width of ``values``."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("mean_ci of empty sequence")
    mean = float(np.mean(data))
    if data.size == 1:
        return MeanCI(mean=mean, halfwidth=0.0, n=1, confidence=confidence)
    sem = float(_scipy_stats.sem(data))
    if sem == 0.0:
        return MeanCI(mean=mean, halfwidth=0.0, n=int(data.size), confidence=confidence)
    halfwidth = float(
        sem * _scipy_stats.t.ppf((1.0 + confidence) / 2.0, data.size - 1)
    )
    return MeanCI(mean=mean, halfwidth=halfwidth, n=int(data.size), confidence=confidence)


def relative_overhead(with_capture: float, without_capture: float) -> float:
    """The paper's capture-time overhead: relative elapsed-time difference."""
    if without_capture <= 0:
        raise ValueError("baseline duration must be positive")
    return (with_capture - without_capture) / without_capture


def speedup(baseline: float, improved: float) -> float:
    """How many times faster ``improved`` is than ``baseline``."""
    if improved <= 0:
        raise ValueError("improved value must be positive")
    return baseline / improved
