"""Consistent hashing shared by the server's sharded planes.

Both sharded layers of the ProvLight server — the :class:`TranslatorPool`
(topics onto pool workers) and the :class:`BrokerCluster` (client
sessions onto broker shards) — need the same property: the owner of a
key is a pure function of the key, and resizing the layer by one node
remaps only ~1/K of the keys instead of reshuffling everything.

The ring carries ``replicas`` virtual points per node so shares stay
even, and the points of node ``i`` depend only on ``(salt, i)`` — a ring
of K+1 nodes therefore contains the K-node ring's points as a subset,
which is exactly what makes grow/shrink remap only the keys that land on
the new node's arcs (``tests/property/test_invariants.py`` pins this).

Nodes can additionally be **weighted**: a node of weight ``w`` carries
``round(replicas * w)`` virtual points, so its expected key share scales
with ``w``.  Because a node's points depend only on ``(salt, node,
point index)``, raising a weight only *adds* that node's higher-index
points (keys move onto the heavier node, never between bystanders) and
lowering it only removes them — the per-node analogue of the grow/shrink
subset property.  At the default weight of 1.0 the ring is
point-for-point identical to the unweighted one.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Union
from zlib import crc32

__all__ = ["ConsistentHashRing"]


class ConsistentHashRing:
    """A fixed ring mapping string keys onto ``n_nodes`` integer nodes."""

    __slots__ = ("n_nodes", "replicas", "salt", "_points", "_nodes",
                 "_weights", "_removed")

    def __init__(
        self,
        n_nodes: int,
        *,
        replicas: int = 32,
        salt: str = "worker",
        weights: Optional[Union[Sequence[float], Dict[int, float]]] = None,
    ):
        if n_nodes <= 0:
            raise ValueError("hash ring needs at least one node")
        if replicas <= 0:
            raise ValueError("hash ring needs at least one virtual point per node")
        self.n_nodes = n_nodes
        self.replicas = replicas
        self.salt = salt
        self._weights: Dict[int, float] = {i: 1.0 for i in range(n_nodes)}
        self._removed: set = set()
        if weights is not None:
            items = (
                weights.items() if isinstance(weights, dict)
                else enumerate(weights)
            )
            for node, weight in items:
                self._validate_weight(node, weight)
                self._weights[node] = float(weight)
        self._rebuild()

    def _validate_weight(self, node: int, weight: float) -> None:
        if node not in self._weights:
            raise ValueError(f"node {node} is not on the ring")
        if node in self._removed:
            raise ValueError(f"node {node} was removed from the ring")
        if not weight > 0:
            raise ValueError(f"node weight must be > 0, got {weight!r}")

    def _rebuild(self) -> None:
        points: List[tuple] = []
        for i in range(self.n_nodes):
            if i in self._removed:
                continue
            count = max(1, round(self.replicas * self._weights[i]))
            points.extend(
                (crc32(f"{self.salt}-{i}#{v}".encode()), i) for v in range(count)
            )
        points.sort()
        self._points = [p for p, _ in points]
        self._nodes = [n for _, n in points]

    def node_for(self, key: str) -> int:
        """The node owning ``key`` (stable, side-effect free)."""
        point = crc32(key.encode())
        idx = bisect_right(self._points, point) % len(self._points)
        return self._nodes[idx]

    def weight_of(self, node: int) -> float:
        """Current weight of ``node`` (1.0 unless reweighted)."""
        if node not in self._weights:
            raise ValueError(f"node {node} is not on the ring")
        return self._weights[node]

    def set_weight(self, node: int, weight: float) -> None:
        """Scale ``node``'s share of the key space to ``weight``.

        The load-aware placement path uses this to bias ring-fallback
        traffic away from overloaded survivors after a failover.  Only
        the reweighted node's keys move (see module docstring); weight
        1.0 restores the unweighted point set exactly.
        """
        self._validate_weight(node, weight)
        if self._weights[node] == float(weight):
            return
        self._weights[node] = float(weight)
        self._rebuild()

    def remove_node(self, node: int) -> None:
        """Drop ``node``'s virtual points (failover path).

        Keys the dead node owned remap onto whichever survivor holds the
        next point clockwise; every other key keeps its owner — the same
        ~1/K-remap property as shrinking the ring, but applied in place so
        long-lived owners (sticky sessions, pinned endpoints) stay put.
        """
        if node not in self._nodes:
            raise ValueError(f"node {node} is not on the ring")
        if len(self.live_nodes()) <= 1:
            raise ValueError("cannot remove the last live node")
        self._removed.add(node)
        pairs = [(p, n) for p, n in zip(self._points, self._nodes) if n != node]
        self._points = [p for p, _ in pairs]
        self._nodes = [n for _, n in pairs]

    def live_nodes(self) -> List[int]:
        """Sorted node ids still carrying points on the ring."""
        return sorted(set(self._nodes))

    def __len__(self) -> int:
        return self.n_nodes

    def __repr__(self) -> str:
        return (
            f"<ConsistentHashRing nodes={self.n_nodes} "
            f"replicas={self.replicas} salt={self.salt!r}>"
        )
