"""Client-plane fault injection: device crash/restart churn at fleet scale.

:class:`~repro.net.chaos.ServerFaultInjector` covers the server plane and
:class:`~repro.net.faults.LinkFaultInjector` the links; what was missing
is the continuum's dominant failure mode — the *devices themselves*
churning.  A crashed device loses every in-memory buffer instantly; on
restart the durable capture client recovers its WAL journal and replays
the unacknowledged suffix (see :mod:`repro.capture.journal`).

:class:`FleetFaultInjector` drives that cycle on the simulation clock for
a registered fleet of durable capture clients:

* :meth:`crash_device` closes a client mid-anything (dropping in-flight
  state exactly like ``close()`` documents: memory is lost, durable
  state never);
* :meth:`restart_device` builds a *new* client incarnation on the same
  journal via a registered restart callable, retries ``setup()`` under
  backoff until the network lets it through (restarting under an active
  partition must not crash the experiment), and counts a journal
  recovery when the incarnation came up with unacked entries to replay;
* :meth:`churn_at` schedules the fleet-scale version: a deterministic
  sample of the fleet crashes at once and restarts ``down_s`` later —
  the 20%-churn acceptance scenario.

Workloads do not talk to a :class:`~repro.capture.CaptureClient`
directly under churn — a crash can land *inside* any ``capture()`` —
but to a :class:`FleetClientProxy`, which retries the interrupted call
on the next incarnation once it is up.  Only *completed* proxy calls
count toward :attr:`FleetClientProxy.records_completed`, making the
proxy the ground-truth ledger for zero-loss accounting (an interrupted
capture never journaled anything, so the retry cannot double-ingest).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["FleetFaultInjector", "FleetClientProxy"]

#: restart setup() retry backoff: base * factor**attempt, capped
_SETUP_RETRY_BASE_S = 0.2
_SETUP_RETRY_FACTOR = 1.6
_SETUP_RETRY_MAX_S = 2.0


class FleetClientProxy:
    """A stable capture façade over a churning client incarnation.

    Implements the uniform capture interface (``setup`` / ``capture`` /
    ``flush_groups`` / ``drain`` / ``now``) by delegating to the fleet's
    *current* incarnation for the device; when a call blows up because
    the incarnation crashed underneath it, the proxy waits for the
    restart and retries the call on the new one.  Any other exception —
    the client is open and current — is a real error and propagates.
    """

    def __init__(self, fleet: "FleetFaultInjector", name: str):
        self._fleet = fleet
        self._name = name
        #: proxy calls that ran to completion (the zero-loss ledger)
        self.records_completed = 0

    @property
    def name(self) -> str:
        return self._name

    @property
    def client(self):
        """The current incarnation (changes across restarts)."""
        return self._fleet.client_of(self._name)

    @property
    def now(self) -> float:
        return self._fleet.env.now

    def _superseded(self, client) -> bool:
        """True when ``client`` died or was replaced under the call."""
        return client.closed or self.client is not client

    def _retrying(self, call: Callable[[object], object]):
        """Generator: run ``call(client)`` against the current
        incarnation, retrying on the next one after a crash."""
        while True:
            client = self.client
            try:
                result = yield from call(client)
                return result
            except Exception:
                if not self._superseded(client):
                    raise
                yield from self._fleet.wait_up(self._name)

    def setup(self):
        result = yield from self._retrying(lambda c: c.setup())
        return result

    def capture(self, record, groupable: bool = True):
        yield from self._retrying(lambda c: c.capture(record, groupable))
        self.records_completed += 1

    def flush_groups(self):
        yield from self._retrying(lambda c: c.flush_groups())

    def drain(self):
        yield from self._retrying(lambda c: c.drain())

    def __getattr__(self, attr):
        # counters, config, transport knobs: read through to the
        # current incarnation
        return getattr(self.client, attr)

    def __repr__(self) -> str:
        return f"<FleetClientProxy {self._name} completed={self.records_completed}>"


class FleetFaultInjector:
    """Deterministic device churn for a fleet of durable capture clients.

    ``topology`` (a :class:`~repro.net.continuum.ContinuumTopology`) is
    optional and only consulted by :meth:`stats` — tier-level faults are
    scheduled on the topology itself; this class owns the device plane.
    """

    def __init__(self, env, topology=None, seed: int = 0):
        self.env = env
        self.topology = topology
        self._rng = random.Random(seed)
        self._clients: Dict[str, object] = {}
        self._restarts: Dict[str, Callable[[], object]] = {}
        #: devices currently down: name -> gate event restarts succeed
        self._gates: Dict[str, object] = {}
        self._down_at: Dict[str, float] = {}
        #: injected faults as ``(sim time, description)``
        self.events: List[Tuple[float, str]] = []
        #: completed crash/restart cycles: (name, crashed_at, up_at)
        self.recoveries: List[Tuple[str, float, float]] = []
        self.devices_crashed = 0
        self.devices_restarted = 0
        self.journal_recoveries = 0

    # -- registration ------------------------------------------------------
    def register(self, name: str, client, restart: Callable[[], object]) -> None:
        """Track one device: its live client and how to build the next
        incarnation (``restart()`` returns a fresh, not-yet-setup client
        on the *same* journal and client id)."""
        if name in self._clients:
            raise ValueError(f"device {name!r} already registered")
        self._clients[name] = client
        self._restarts[name] = restart

    def proxy(self, name: str) -> FleetClientProxy:
        """The churn-transparent capture façade for one device."""
        self.client_of(name)  # validate
        return FleetClientProxy(self, name)

    def client_of(self, name: str):
        try:
            return self._clients[name]
        except KeyError:
            raise KeyError(
                f"unknown device {name!r}; registered: {self.devices}"
            ) from None

    @property
    def devices(self) -> List[str]:
        return sorted(self._clients)

    @property
    def devices_down(self) -> List[str]:
        return sorted(self._gates)

    def _log(self, what: str) -> None:
        self.events.append((self.env.now, what))

    # -- immediate controls ------------------------------------------------
    def crash_device(self, name: Optional[str] = None) -> str:
        """Crash one device now (close its client); returns its name.

        Without a name a deterministic victim is drawn from the devices
        currently up (the injector's seeded RNG, so a schedule replays
        identically).
        """
        if name is None:
            up = [d for d in self.devices if d not in self._gates]
            if not up:
                raise ValueError("no device is up to crash")
            name = self._rng.choice(up)
        client = self.client_of(name)
        if name in self._gates:
            raise ValueError(f"device {name!r} is already down")
        self._gates[name] = self.env.event()
        self._down_at[name] = self.env.now
        self.devices_crashed += 1
        self._log(f"crash-device:{name}")
        client.close()
        return name

    def restart_device(self, name: str):
        """Bring a crashed device back now; returns the driving process.

        The new incarnation is built immediately; ``setup()`` is retried
        under backoff until it succeeds (a restart during a partition
        parks here until the network heals), then the up-gate releases
        every waiter.
        """
        if name not in self._gates:
            raise ValueError(f"device {name!r} is not down")
        return self.env.process(
            self._restart_body(name), name=f"fleet-restart-{name}"
        )

    def _restart_body(self, name: str):
        client = self._restarts[name]()
        recovering = (
            getattr(client, "journal", None) is not None
            and client.journal.pending > 0
        )
        attempt = 0
        while True:
            try:
                yield from client.setup()
                break
            except Exception:
                attempt += 1
                yield self.env.timeout(
                    min(
                        _SETUP_RETRY_MAX_S,
                        _SETUP_RETRY_BASE_S * _SETUP_RETRY_FACTOR ** attempt,
                    )
                )
        self._clients[name] = client
        if recovering:
            self.journal_recoveries += 1
        self.devices_restarted += 1
        crashed_at = self._down_at.pop(name)
        self.recoveries.append((name, crashed_at, self.env.now))
        self._log(f"device-up:{name}")
        gate = self._gates.pop(name)
        gate.succeed()

    def wait_up(self, name: str):
        """Generator: resolve once the device's restart completed (a
        no-op when it is up)."""
        while name in self._gates:
            yield self._gates[name]

    # -- scheduled faults --------------------------------------------------
    def crash_restart_at(self, after_s: float, down_s: float,
                         name: Optional[str] = None):
        """Schedule one crash at ``now + after_s`` with a restart
        ``down_s`` later; returns the driving process."""
        if after_s < 0 or down_s <= 0:
            raise ValueError("after_s must be >= 0 and down_s > 0")

        def _cycle():
            yield self.env.timeout(after_s)
            victim = self.crash_device(name)
            yield self.env.timeout(down_s)
            yield self.restart_device(victim)

        return self.env.process(_cycle(), name="fleet-crash-restart")

    def churn_at(self, after_s: float, fraction: float, down_s: float):
        """Schedule fleet churn: at ``now + after_s`` a deterministic
        ``fraction`` of the registered fleet crashes at once, each
        restarting ``down_s`` later.  Returns the driving process."""
        if after_s < 0 or down_s <= 0:
            raise ValueError("after_s must be >= 0 and down_s > 0")
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")

        def _churn():
            yield self.env.timeout(after_s)
            up = [d for d in self.devices if d not in self._gates]
            count = max(1, round(fraction * len(self._clients)))
            victims = self._rng.sample(up, min(count, len(up)))
            self._log(f"churn:{len(victims)}")
            restarts = []
            for victim in victims:
                self.crash_device(victim)
            yield self.env.timeout(down_s)
            for victim in victims:
                restarts.append(self.restart_device(victim))
            for proc in restarts:
                yield proc

        return self.env.process(_churn(), name="fleet-churn")

    # -- observability -----------------------------------------------------
    def recovery_times_s(self) -> List[float]:
        """Crash→up durations of every completed cycle (sim seconds)."""
        return [up - crashed for _, crashed, up in self.recoveries]

    def stats(self) -> Dict[str, object]:
        """Cheap point-in-time snapshot of the device plane (merged with
        the topology's tier-level snapshot when one is attached)."""
        snapshot: Dict[str, object] = {
            "devices": len(self._clients),
            "devices_down": len(self._gates),
            "devices_crashed": self.devices_crashed,
            "devices_restarted": self.devices_restarted,
            "journal_recoveries": self.journal_recoveries,
        }
        if self.recoveries:
            times = self.recovery_times_s()
            snapshot["max_recovery_s"] = max(times)
        if self.topology is not None:
            snapshot["topology"] = self.topology.stats()
        return snapshot

    def __repr__(self) -> str:
        return (
            f"<FleetFaultInjector devices={len(self._clients)} "
            f"down={len(self._gates)} events={len(self.events)}>"
        )
