"""Packet model shared by every protocol in the simulated network.

Packets are modelled at the IP level: ``header_bytes`` covers the
network+transport headers (28 B for UDP/IP, 40 B for TCP/IP), and
``payload`` is the real application bytes — protocols build *actual* byte
strings, so wire sizes reported by the harness come from real encoders,
not estimates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

__all__ = ["Endpoint", "Packet", "UDP_HEADER_BYTES", "TCP_HEADER_BYTES"]

#: IPv4 (20) + UDP (8) headers.
UDP_HEADER_BYTES = 28
#: IPv4 (20) + TCP (20) headers (options ignored).
TCP_HEADER_BYTES = 40

#: (host name, port) pair addressing a socket.
Endpoint = Tuple[str, int]

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """One network-layer datagram/segment."""

    src: Endpoint
    dst: Endpoint
    protocol: str  # "udp" | "tcp"
    payload: bytes = b""
    header_bytes: int = UDP_HEADER_BYTES
    #: transport metadata (TCP flags/seq/ack, etc.)
    meta: Dict[str, Any] = field(default_factory=dict)
    pid: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def size(self) -> int:
        """Total on-wire size in bytes."""
        return self.header_bytes + len(self.payload)

    def __repr__(self) -> str:
        flags = self.meta.get("flags", "")
        return (
            f"<Packet#{self.pid} {self.protocol}{('[' + flags + ']') if flags else ''} "
            f"{self.src[0]}:{self.src[1]}->{self.dst[0]}:{self.dst[1]} {self.size}B>"
        )
