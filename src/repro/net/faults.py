"""Deterministic link-fault injection for robustness experiments.

Real edge uplinks flap: NB-IoT modems lose attach, LoRa gateways reboot,
Wi-Fi meshes repartition.  The durable-capture machinery
(:mod:`repro.capture.journal` + replay-on-reconnect) exists to survive
exactly these events, so the test harness needs to produce them on
demand and *deterministically* — the same seed must partition the same
link at the same simulated instant on every run.

:class:`LinkFaultInjector` wraps the two directed :class:`~.link.Link`
objects between a host pair and drives them together: partitions (hard
down), scheduled outages, flapping (periodic down/up cycles) and burst
loss (Gilbert-Elliott parameters).  All scheduling happens on the
simulation clock via ``env.process``; nothing here is random beyond the
links' own RNGs.
"""

from __future__ import annotations

from .link import Link
from .topology import Network

__all__ = ["LinkFaultInjector"]


class LinkFaultInjector:
    """Drive faults into the duplex link between two hosts.

    Immediate controls (:meth:`partition_now`, :meth:`heal_now`,
    :meth:`set_burst_loss`) act synchronously; the scheduled ones
    (:meth:`partition`, :meth:`flap`) register simulation processes and
    take effect as the clock advances.
    """

    def __init__(self, network: Network, a: str, b: str):
        self.env = network.env
        self.a = a
        self.b = b
        self._links: tuple[Link, Link] = (network.link(a, b), network.link(b, a))
        #: completed partition intervals as (start, end) sim times
        self.outages: list[tuple[float, float]] = []
        self._down_since: float | None = None

    # -- state ---------------------------------------------------------------
    @property
    def partitioned(self) -> bool:
        return not all(link.up for link in self._links)

    # -- immediate controls ----------------------------------------------------
    def partition_now(self) -> None:
        """Cut both directions immediately."""
        if not self.partitioned:
            self._down_since = self.env.now
        for link in self._links:
            link.partition()

    def heal_now(self) -> None:
        """Restore both directions immediately."""
        for link in self._links:
            link.heal()
        if self._down_since is not None:
            self.outages.append((self._down_since, self.env.now))
            self._down_since = None

    def set_burst_loss(
        self,
        burst_loss: float,
        p_enter_burst: float,
        p_exit_burst: float = 0.5,
    ) -> None:
        """Enable Gilbert-Elliott burst loss on both directions."""
        for link in self._links:
            link.configure(
                burst_loss=burst_loss,
                p_enter_burst=p_enter_burst,
                p_exit_burst=p_exit_burst,
            )

    def clear_burst_loss(self) -> None:
        """Disable burst loss (back to the links' uniform ``loss``)."""
        for link in self._links:
            link.configure(burst_loss=0.0, p_enter_burst=0.0)
            link._in_burst = False

    # -- scheduled faults ------------------------------------------------------
    def partition_at(self, after_s: float, duration_s: float):
        """Schedule one outage: down at ``now + after_s``, healed
        ``duration_s`` later.  Returns the driving process."""
        if after_s < 0 or duration_s <= 0:
            raise ValueError("after_s must be >= 0 and duration_s > 0")

        def _outage():
            yield self.env.timeout(after_s)
            self.partition_now()
            yield self.env.timeout(duration_s)
            self.heal_now()

        return self.env.process(
            _outage(), name=f"fault-partition-{self.a}<->{self.b}"
        )

    def flap(self, period_s: float, down_s: float, cycles: int):
        """Schedule ``cycles`` periodic outages: every ``period_s`` the
        link goes down for ``down_s``.  Returns the driving process."""
        if down_s <= 0 or period_s <= down_s:
            raise ValueError("need 0 < down_s < period_s")
        if cycles < 1:
            raise ValueError("cycles must be >= 1")

        def _flapper():
            for _ in range(cycles):
                yield self.env.timeout(period_s - down_s)
                self.partition_now()
                yield self.env.timeout(down_s)
                self.heal_now()

        return self.env.process(
            _flapper(), name=f"fault-flap-{self.a}<->{self.b}"
        )

    def __repr__(self) -> str:
        state = "DOWN" if self.partitioned else "up"
        return f"<LinkFaultInjector {self.a}<->{self.b} {state}>"
