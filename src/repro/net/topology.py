"""Network topology: hosts, links and routing.

The experiments use a star (64 edge devices — one cloud server), but the
network supports arbitrary multi-hop topologies: routes are shortest
paths (by hop count, then latency) over a :mod:`networkx` graph, and
forwarding is store-and-forward across each directed link.

Loopback (sending to your own host) bypasses links with a fixed small
kernel delay.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from ..simkernel import Environment
from .host import Host
from .link import Link
from .packet import Packet

__all__ = ["Network", "UnroutableError"]

LOOPBACK_DELAY_S = 50e-6


class UnroutableError(RuntimeError):
    """No path exists between two hosts."""


class Network:
    """The set of hosts and links sharing one simulated medium."""

    def __init__(self, env: Environment, seed: int = 0):
        self.env = env
        self.rng = np.random.default_rng(seed)
        self.hosts: Dict[str, Host] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._graph = nx.DiGraph()
        self._route_cache: Dict[Tuple[str, str], List[str]] = {}

    # -- construction ------------------------------------------------------
    def add_host(self, name: str, device=None) -> Host:
        """Create and register a host (optionally backed by a device)."""
        if name in self.hosts:
            raise ValueError(f"host {name!r} already exists")
        host = Host(self.env, name, self, device)
        self.hosts[name] = host
        self._graph.add_node(name)
        self._route_cache.clear()
        return host

    def connect(
        self,
        a: str,
        b: str,
        bandwidth_bps: float,
        latency_s: float,
        jitter_s: float = 0.0,
        loss: float = 0.0,
    ) -> Tuple[Link, Link]:
        """Create a duplex link between hosts ``a`` and ``b``."""
        for name in (a, b):
            if name not in self.hosts:
                raise KeyError(f"unknown host {name!r}")
        if (a, b) in self._links:
            raise ValueError(f"link {a}<->{b} already exists")
        ab = Link(self.env, a, b, bandwidth_bps, latency_s, jitter_s, loss, rng=self.rng)
        ba = Link(self.env, b, a, bandwidth_bps, latency_s, jitter_s, loss, rng=self.rng)
        self._links[(a, b)] = ab
        self._links[(b, a)] = ba
        self._graph.add_edge(a, b, latency=latency_s)
        self._graph.add_edge(b, a, latency=latency_s)
        self._route_cache.clear()
        return ab, ba

    def link(self, src: str, dst: str) -> Link:
        """The directed link from ``src`` to ``dst`` (adjacent hosts)."""
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src}->{dst}") from None

    def configure_link(self, a: str, b: str, **params) -> None:
        """Reconfigure both directions between ``a`` and ``b`` (netem-style).

        Accepted params: ``bandwidth_bps``, ``latency_s``, ``jitter_s``,
        ``loss``, ``burst_loss``, ``p_enter_burst``, ``p_exit_burst``.
        """
        self.link(a, b).configure(**params)
        self.link(b, a).configure(**params)
        if "latency_s" in params and params["latency_s"] is not None:
            self._graph[a][b]["latency"] = params["latency_s"]
            self._graph[b][a]["latency"] = params["latency_s"]

    # -- routing & transmission ---------------------------------------------
    def route(self, src: str, dst: str) -> List[str]:
        """Host names along the path from ``src`` to ``dst`` (inclusive)."""
        key = (src, dst)
        path = self._route_cache.get(key)
        if path is None:
            try:
                path = nx.shortest_path(self._graph, src, dst, weight="latency")
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                raise UnroutableError(f"no route {src} -> {dst}") from None
            self._route_cache[key] = path
        return path

    def send(self, packet: Packet) -> None:
        """Inject a packet at its source host and forward it to ``dst``."""
        src_name, dst_name = packet.src[0], packet.dst[0]
        if src_name not in self.hosts:
            raise KeyError(f"unknown source host {src_name!r}")
        if dst_name not in self.hosts:
            raise KeyError(f"unknown destination host {dst_name!r}")
        src_host = self.hosts[src_name]
        dst_host = self.hosts[dst_name]

        if src_name == dst_name:  # loopback
            def _loop():
                yield self.env.timeout(LOOPBACK_DELAY_S)
                dst_host.deliver(packet)
            self.env.process(_loop(), name="loopback")
            return

        path = self.route(src_name, dst_name)
        src_host.notify_transmit(packet)
        self._forward(packet, path, 0, dst_host)

    def _forward(self, packet: Packet, path: List[str], hop: int, dst_host: Host) -> None:
        link = self._links[(path[hop], path[hop + 1])]
        last_hop = hop + 2 == len(path)
        if last_hop:
            link.send(packet, dst_host.deliver)
        else:
            link.send(
                packet,
                lambda p, _hop=hop: self._forward(p, path, _hop + 1, dst_host),
            )

    # -- inspection ----------------------------------------------------------
    def total_link_bytes(self) -> int:
        """Bytes serialized across all links (both directions)."""
        return int(sum(l.tx_bytes.total for l in self._links.values()))

    def __repr__(self) -> str:
        return f"<Network hosts={len(self.hosts)} links={len(self._links) // 2}>"
