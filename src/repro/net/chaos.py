"""Server-plane fault injection: shard kills, worker crashes, backend outages.

:mod:`repro.net.faults` injects faults into *links* — the client plane's
threat model.  This module layers the server plane's threat model on
top: a :class:`ServerFaultInjector` drives deterministic faults into a
:class:`~repro.core.server.ProvLightServer` — killing broker shards (the
cluster watchdog must fail them over), crashing translator workers (the
pool supervisor must restart them) and partitioning the uplink to the
HTTP backend (the circuit breaker must open, spill and drain) — so a
Table IX-style run can execute under churn and assert zero loss.

:class:`ChaosProfile` is the reproducible-from-the-CLI face of the same
machinery: a compact spec string (``"kill-shard@2.0,flap-backend@1:0.5:3"``)
parsed into scheduled fault events, threaded through
``ExperimentSetup.chaos`` / ``--chaos`` / ``REPRO_CHAOS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .faults import LinkFaultInjector
from .topology import Network

__all__ = ["ServerFaultInjector", "ChaosProfile", "ChaosEvent"]


class ServerFaultInjector:
    """Inject server-plane faults into one :class:`ProvLightServer`.

    Immediate controls (:meth:`kill_shard`, :meth:`crash_worker`) act
    synchronously; the scheduled ones return driving processes, so all
    timing lives on the simulation clock and a given schedule replays
    identically on every run.  ``network``/``backend_host`` are only
    needed for the backend-fault methods (they partition the server ↔
    backend link through a :class:`LinkFaultInjector`).
    """

    def __init__(
        self,
        server,
        network: Optional[Network] = None,
        backend_host: Optional[str] = None,
    ):
        self.server = server
        self.env = server.env
        self.network = network
        self.backend_host = backend_host
        #: injected faults as ``(sim time, description)``
        self.events: List[Tuple[float, str]] = []
        self._backend_faults: Optional[LinkFaultInjector] = None

    def _log(self, what: str) -> None:
        self.events.append((self.env.now, what))

    # -- broker shards ---------------------------------------------------
    def kill_shard(self, index: Optional[int] = None) -> int:
        """Kill one broker shard now; returns the index killed.

        Without an explicit index the *busiest* alive shard (most
        sessions, ties to the lowest index) dies — the worst case for
        the failover path, and a deterministic one.
        """
        cluster = self.server.broker
        if index is None:
            alive = cluster.alive_shards
            if not alive:
                raise ValueError("no alive shard to kill")
            index = max(alive, key=lambda i: (len(cluster.shards[i].sessions), -i))
        cluster.kill_shard(index)
        self._log(f"kill-shard:{index}")
        return index

    def kill_shard_at(self, after_s: float, index: Optional[int] = None):
        """Schedule :meth:`kill_shard` at ``now + after_s``."""
        if after_s < 0:
            raise ValueError("after_s must be >= 0")

        def _kill():
            yield self.env.timeout(after_s)
            self.kill_shard(index)

        return self.env.process(_kill(), name="chaos-kill-shard")

    # -- translator workers ----------------------------------------------
    def crash_worker(self, index: Optional[int] = None) -> int:
        """Crash one pool worker's work loop now; returns its position.

        Without an explicit index the worker with the deepest inbox
        (ties to the lowest position) crashes — maximizing the
        drained-but-unacked work the supervisor must requeue.
        """
        workers = self.server.pool.workers
        if index is None:
            index = max(
                range(len(workers)), key=lambda i: (workers[i].queued, -i)
            )
        workers[index].crash()
        self._log(f"crash-worker:{index}")
        return index

    def crash_worker_at(self, after_s: float, index: Optional[int] = None):
        """Schedule :meth:`crash_worker` at ``now + after_s``."""
        if after_s < 0:
            raise ValueError("after_s must be >= 0")

        def _crash():
            yield self.env.timeout(after_s)
            self.crash_worker(index)

        return self.env.process(_crash(), name="chaos-crash-worker")

    # -- backend uplink ---------------------------------------------------
    def _backend_injector(self) -> LinkFaultInjector:
        if self.network is None or self.backend_host is None:
            raise ValueError(
                "backend faults need network= and backend_host= (the "
                "injector partitions the server<->backend link)"
            )
        if self._backend_faults is None:
            self._backend_faults = LinkFaultInjector(
                self.network, self.server.host.name, self.backend_host
            )
        return self._backend_faults

    def backend_outage(self, after_s: float, duration_s: float):
        """Partition the backend uplink once: down at ``now + after_s``,
        healed ``duration_s`` later."""
        self._log(f"backend-outage@{after_s}:{duration_s}")
        return self._backend_injector().partition_at(after_s, duration_s)

    def flap_backend(self, period_s: float, down_s: float, cycles: int):
        """Flap the backend uplink: every ``period_s`` it goes down for
        ``down_s``, ``cycles`` times."""
        self._log(f"flap-backend@{period_s}:{down_s}:{cycles}")
        return self._backend_injector().flap(period_s, down_s, cycles)

    @property
    def backend_outages(self) -> List[Tuple[float, float]]:
        """Completed backend outage intervals (empty before any fault)."""
        if self._backend_faults is None:
            return []
        return list(self._backend_faults.outages)

    def __repr__(self) -> str:
        return f"<ServerFaultInjector events={len(self.events)}>"


@dataclass(frozen=True)
class ChaosEvent:
    """One parsed fault from a chaos spec string."""

    kind: str
    index: Optional[int]
    args: Tuple[float, ...]


class ChaosProfile:
    """A reproducible schedule of server-plane faults.

    Spec grammar (comma-separated events, all times in simulated
    seconds)::

        kill-shard@AFTER            kill the busiest shard at AFTER
        kill-shard:2@AFTER          kill shard 2 at AFTER
        crash-worker@AFTER          crash the busiest worker at AFTER
        crash-worker:0@AFTER        crash worker position 0 at AFTER
        backend-outage@AFTER:DUR    partition the backend link once
        flap-backend@PERIOD:DOWN:N  N periodic backend outages

    e.g. ``"kill-shard@2.0,flap-backend@1.0:0.25:3"``.
    """

    _ARITY = {
        "kill-shard": 1,
        "crash-worker": 1,
        "backend-outage": 2,
        "flap-backend": 3,
    }
    _INDEXABLE = {"kill-shard", "crash-worker"}

    def __init__(self, events: List[ChaosEvent]):
        self.events: Tuple[ChaosEvent, ...] = tuple(events)

    @classmethod
    def parse(cls, spec: str) -> "ChaosProfile":
        events: List[ChaosEvent] = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            head, sep, tail = token.partition("@")
            if not sep:
                raise ValueError(
                    f"malformed chaos event {token!r}: expected kind@args"
                )
            kind, _, index_part = head.partition(":")
            if kind not in cls._ARITY:
                raise ValueError(
                    f"unknown chaos event kind {kind!r}; known: "
                    f"{sorted(cls._ARITY)}"
                )
            index: Optional[int] = None
            if index_part:
                if kind not in cls._INDEXABLE:
                    raise ValueError(f"{kind!r} does not take an index")
                try:
                    index = int(index_part)
                except ValueError:
                    raise ValueError(
                        f"bad index {index_part!r} in chaos event {token!r}"
                    ) from None
            try:
                args = tuple(float(a) for a in tail.split(":"))
            except ValueError:
                raise ValueError(
                    f"bad arguments {tail!r} in chaos event {token!r}"
                ) from None
            if len(args) != cls._ARITY[kind]:
                raise ValueError(
                    f"{kind!r} takes {cls._ARITY[kind]} argument(s), "
                    f"got {len(args)} in {token!r}"
                )
            events.append(ChaosEvent(kind=kind, index=index, args=args))
        if not events:
            raise ValueError(f"empty chaos spec {spec!r}")
        return cls(events)

    def requires_backend_link(self) -> bool:
        """True when the profile includes backend-link faults."""
        return any(
            e.kind in ("backend-outage", "flap-backend") for e in self.events
        )

    def apply(self, injector: ServerFaultInjector) -> list:
        """Schedule every event on ``injector``; returns the processes."""
        procs = []
        for event in self.events:
            if event.kind == "kill-shard":
                procs.append(injector.kill_shard_at(event.args[0], event.index))
            elif event.kind == "crash-worker":
                procs.append(
                    injector.crash_worker_at(event.args[0], event.index)
                )
            elif event.kind == "backend-outage":
                procs.append(injector.backend_outage(*event.args))
            elif event.kind == "flap-backend":
                period, down, cycles = event.args
                procs.append(injector.flap_backend(period, down, int(cycles)))
        return procs

    def __repr__(self) -> str:
        return f"<ChaosProfile events={len(self.events)}>"
