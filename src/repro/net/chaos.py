"""Server-plane fault injection: shard kills, worker crashes, backend outages.

:mod:`repro.net.faults` injects faults into *links* — the client plane's
threat model.  This module layers the server plane's threat model on
top: a :class:`ServerFaultInjector` drives deterministic faults into a
:class:`~repro.core.server.ProvLightServer` — killing broker shards (the
cluster watchdog must fail them over), crashing translator workers (the
pool supervisor must restart them) and partitioning the uplink to the
HTTP backend (the circuit breaker must open, spill and drain) — so a
Table IX-style run can execute under churn and assert zero loss.

:class:`ChaosProfile` is the reproducible-from-the-CLI face of the same
machinery: a compact spec string (``"kill-shard@2.0,flap-backend@1:0.5:3"``)
parsed into scheduled fault events, threaded through
``ExperimentSetup.chaos`` / ``--chaos`` / ``REPRO_CHAOS``.  Beyond the
server plane it also schedules *client-plane* chaos — device
crash/restart churn on a :class:`~repro.net.fleet.FleetFaultInjector`
and whole-tier partitions/degradations on a
:class:`~repro.net.continuum.ContinuumTopology` — so a continuum run
(``--topology`` x ``--chaos``) replays identically from its two spec
strings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .faults import LinkFaultInjector
from .topology import Network

__all__ = ["ServerFaultInjector", "ChaosProfile", "ChaosEvent"]


class ServerFaultInjector:
    """Inject server-plane faults into one :class:`ProvLightServer`.

    Immediate controls (:meth:`kill_shard`, :meth:`crash_worker`) act
    synchronously; the scheduled ones return driving processes, so all
    timing lives on the simulation clock and a given schedule replays
    identically on every run.  ``network``/``backend_host`` are only
    needed for the backend-fault methods (they partition the server ↔
    backend link through a :class:`LinkFaultInjector`).
    """

    def __init__(
        self,
        server,
        network: Optional[Network] = None,
        backend_host: Optional[str] = None,
    ):
        self.server = server
        self.env = server.env
        self.network = network
        self.backend_host = backend_host
        #: injected faults as ``(sim time, description)``
        self.events: List[Tuple[float, str]] = []
        self._backend_faults: Optional[LinkFaultInjector] = None

    def _log(self, what: str) -> None:
        self.events.append((self.env.now, what))

    # -- broker shards ---------------------------------------------------
    def kill_shard(self, index: Optional[int] = None) -> int:
        """Kill one broker shard now; returns the index killed.

        Without an explicit index the *busiest* alive shard (most
        sessions, ties to the lowest index) dies — the worst case for
        the failover path, and a deterministic one.
        """
        cluster = self.server.broker
        if index is None:
            alive = cluster.alive_shards
            if not alive:
                raise ValueError("no alive shard to kill")
            index = max(alive, key=lambda i: (len(cluster.shards[i].sessions), -i))
        cluster.kill_shard(index)
        self._log(f"kill-shard:{index}")
        return index

    def kill_shard_at(self, after_s: float, index: Optional[int] = None):
        """Schedule :meth:`kill_shard` at ``now + after_s``."""
        if after_s < 0:
            raise ValueError("after_s must be >= 0")

        def _kill():
            yield self.env.timeout(after_s)
            self.kill_shard(index)

        return self.env.process(_kill(), name="chaos-kill-shard")

    # -- translator workers ----------------------------------------------
    def crash_worker(self, index: Optional[int] = None) -> int:
        """Crash one pool worker's work loop now; returns its position.

        Without an explicit index the worker with the deepest inbox
        (ties to the lowest position) crashes — maximizing the
        drained-but-unacked work the supervisor must requeue.
        """
        workers = self.server.pool.workers
        if index is None:
            index = max(
                range(len(workers)), key=lambda i: (workers[i].queued, -i)
            )
        workers[index].crash()
        self._log(f"crash-worker:{index}")
        return index

    def crash_worker_at(self, after_s: float, index: Optional[int] = None):
        """Schedule :meth:`crash_worker` at ``now + after_s``."""
        if after_s < 0:
            raise ValueError("after_s must be >= 0")

        def _crash():
            yield self.env.timeout(after_s)
            self.crash_worker(index)

        return self.env.process(_crash(), name="chaos-crash-worker")

    # -- backend uplink ---------------------------------------------------
    def _backend_injector(self) -> LinkFaultInjector:
        if self.network is None or self.backend_host is None:
            raise ValueError(
                "backend faults need network= and backend_host= (the "
                "injector partitions the server<->backend link)"
            )
        if self._backend_faults is None:
            self._backend_faults = LinkFaultInjector(
                self.network, self.server.host.name, self.backend_host
            )
        return self._backend_faults

    def backend_outage(self, after_s: float, duration_s: float):
        """Partition the backend uplink once: down at ``now + after_s``,
        healed ``duration_s`` later."""
        self._log(f"backend-outage@{after_s}:{duration_s}")
        return self._backend_injector().partition_at(after_s, duration_s)

    def flap_backend(self, period_s: float, down_s: float, cycles: int):
        """Flap the backend uplink: every ``period_s`` it goes down for
        ``down_s``, ``cycles`` times."""
        self._log(f"flap-backend@{period_s}:{down_s}:{cycles}")
        return self._backend_injector().flap(period_s, down_s, cycles)

    @property
    def backend_outages(self) -> List[Tuple[float, float]]:
        """Completed backend outage intervals (empty before any fault)."""
        if self._backend_faults is None:
            return []
        return list(self._backend_faults.outages)

    def __repr__(self) -> str:
        return f"<ServerFaultInjector events={len(self.events)}>"


@dataclass(frozen=True)
class ChaosEvent:
    """One parsed fault from a chaos spec string."""

    kind: str
    index: Optional[int]
    args: Tuple[float, ...]
    #: non-numeric selector: device name (``crash-device:edge-3``) or
    #: tier pair (``partition-tier:edge-fog``)
    qualifier: Optional[str] = None


#: tier-pair qualifiers split on the dash; tier names are dash-free by
#: TopologySpec's grammar, so ``edge-fog`` parses unambiguously
_TIER_PAIR_RE = re.compile(r"[a-z][a-z0-9_]*-[a-z][a-z0-9_]*")


class ChaosProfile:
    """A reproducible schedule of server-, link- and device-plane faults.

    Spec grammar (comma-separated events, all times in simulated
    seconds)::

        kill-shard@AFTER              kill the busiest shard at AFTER
        kill-shard:2@AFTER            kill shard 2 at AFTER
        crash-worker@AFTER            crash the busiest worker at AFTER
        crash-worker:0@AFTER          crash worker position 0 at AFTER
        backend-outage@AFTER:DUR      partition the backend link once
        flap-backend@PERIOD:DOWN:N    N periodic backend outages
        crash-device@AFTER:DOWN       crash a deterministic device, restart
                                      DOWN seconds later (journal replay)
        crash-device:edge-3@AFTER:DOWN  same, naming the victim
        churn@AFTER:FRACTION:DOWN     crash FRACTION of the fleet at once
        partition-tier:edge-fog@AFTER:DUR   cut every edge<->fog link
        degrade-tier:edge-fog@AFTER:DUR:LOSS  loss storm on a tier pair

    e.g. ``"churn@5:0.2:2,partition-tier:edge-fog@8:3"``.  Device and
    tier events target the *client plane*: :meth:`apply` schedules them
    on a :class:`~repro.net.fleet.FleetFaultInjector` and a
    :class:`~repro.net.continuum.ContinuumTopology` respectively.

    Every malformed or semantically impossible event — unknown kind,
    negative times, zero durations, a churn fraction outside (0, 1], a
    flap whose DOWN exceeds its PERIOD — fails at :meth:`parse` time,
    before anything is provisioned.
    """

    _ARITY = {
        "kill-shard": 1,
        "crash-worker": 1,
        "backend-outage": 2,
        "flap-backend": 3,
        "crash-device": 2,
        "churn": 3,
        "partition-tier": 2,
        "degrade-tier": 3,
    }
    _INDEXABLE = {"kill-shard", "crash-worker"}
    #: kinds whose ``kind:qualifier`` selector is a name, not an index
    _NAMED = {"crash-device"}
    #: kinds that require a ``tier-tier`` qualifier
    _TIER = {"partition-tier", "degrade-tier"}
    _SERVER = {"kill-shard", "crash-worker", "backend-outage", "flap-backend"}
    _FLEET = {"crash-device", "churn"}

    def __init__(self, events: List[ChaosEvent]):
        self.events: Tuple[ChaosEvent, ...] = tuple(events)

    @classmethod
    def parse(cls, spec: str) -> "ChaosProfile":
        events: List[ChaosEvent] = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            head, sep, tail = token.partition("@")
            if not sep:
                raise ValueError(
                    f"malformed chaos event {token!r}: expected kind@args"
                )
            kind, _, selector = head.partition(":")
            if kind not in cls._ARITY:
                raise ValueError(
                    f"unknown chaos event kind {kind!r}; known: "
                    f"{sorted(cls._ARITY)}"
                )
            index: Optional[int] = None
            qualifier: Optional[str] = None
            if selector:
                if kind in cls._INDEXABLE:
                    try:
                        index = int(selector)
                    except ValueError:
                        raise ValueError(
                            f"bad index {selector!r} in chaos event {token!r}"
                        ) from None
                    if index < 0:
                        raise ValueError(
                            f"index must be >= 0 in chaos event {token!r}"
                        )
                elif kind in cls._NAMED or kind in cls._TIER:
                    qualifier = selector
                else:
                    raise ValueError(f"{kind!r} does not take a selector")
            if kind in cls._TIER:
                if qualifier is None:
                    raise ValueError(
                        f"{kind!r} needs a tier-pair selector, e.g. "
                        f"'{kind}:edge-fog@...' (got {token!r})"
                    )
                if not _TIER_PAIR_RE.fullmatch(qualifier):
                    raise ValueError(
                        f"bad tier pair {qualifier!r} in chaos event "
                        f"{token!r}: expected two dash-joined tier names "
                        "(lowercase [a-z][a-z0-9_]*)"
                    )
            try:
                args = tuple(float(a) for a in tail.split(":"))
            except ValueError:
                raise ValueError(
                    f"bad arguments {tail!r} in chaos event {token!r}"
                ) from None
            if len(args) != cls._ARITY[kind]:
                raise ValueError(
                    f"{kind!r} takes {cls._ARITY[kind]} argument(s), "
                    f"got {len(args)} in {token!r}"
                )
            cls._validate_args(kind, args, token)
            events.append(
                ChaosEvent(kind=kind, index=index, args=args,
                           qualifier=qualifier)
            )
        if not events:
            raise ValueError(f"empty chaos spec {spec!r}")
        return cls(events)

    @staticmethod
    def _validate_args(kind: str, args: Tuple[float, ...], token: str) -> None:
        """Per-kind semantic validation; every rejection names the token."""
        def require(condition: bool, what: str) -> None:
            if not condition:
                raise ValueError(f"chaos event {token!r}: {what}")

        if kind in ("kill-shard", "crash-worker"):
            require(args[0] >= 0, f"AFTER must be >= 0, got {args[0]}")
        elif kind == "backend-outage":
            require(args[0] >= 0, f"AFTER must be >= 0, got {args[0]}")
            require(args[1] > 0, f"DUR must be > 0, got {args[1]}")
        elif kind == "flap-backend":
            period, down, cycles = args
            require(down > 0, f"DOWN must be > 0, got {down}")
            require(period > down,
                    f"PERIOD must exceed DOWN, got {period} <= {down}")
            require(cycles >= 1 and cycles == int(cycles),
                    f"N must be a positive integer, got {cycles}")
        elif kind == "crash-device":
            require(args[0] >= 0, f"AFTER must be >= 0, got {args[0]}")
            require(args[1] > 0, f"DOWN must be > 0, got {args[1]}")
        elif kind == "churn":
            after, fraction, down = args
            require(after >= 0, f"AFTER must be >= 0, got {after}")
            require(0.0 < fraction <= 1.0,
                    f"FRACTION must be in (0, 1], got {fraction}")
            require(down > 0, f"DOWN must be > 0, got {down}")
        elif kind == "partition-tier":
            require(args[0] >= 0, f"AFTER must be >= 0, got {args[0]}")
            require(args[1] > 0, f"DUR must be > 0, got {args[1]}")
        elif kind == "degrade-tier":
            after, dur, loss = args
            require(after >= 0, f"AFTER must be >= 0, got {after}")
            require(dur > 0, f"DUR must be > 0, got {dur}")
            require(0.0 < loss < 1.0,
                    f"LOSS must be in (0, 1), got {loss}")

    # -- classification ----------------------------------------------------
    def requires_backend_link(self) -> bool:
        """True when the profile includes backend-link faults."""
        return any(
            e.kind in ("backend-outage", "flap-backend") for e in self.events
        )

    def server_events(self) -> List[ChaosEvent]:
        """Events targeting the server plane (shards/workers/backend)."""
        return [e for e in self.events if e.kind in self._SERVER]

    def fleet_events(self) -> List[ChaosEvent]:
        """Events targeting the device plane (crash-device, churn)."""
        return [e for e in self.events if e.kind in self._FLEET]

    def tier_events(self) -> List[ChaosEvent]:
        """Events targeting tier pairs (partition-tier, degrade-tier)."""
        return [e for e in self.events if e.kind in self._TIER]

    def requires_fleet(self) -> bool:
        """True when the profile needs a FleetFaultInjector to apply."""
        return bool(self.fleet_events())

    def requires_topology(self) -> bool:
        """True when the profile needs a ContinuumTopology to apply."""
        return bool(self.tier_events())

    def apply(self, injector: Optional[ServerFaultInjector] = None,
              fleet=None, topology=None) -> list:
        """Schedule every event on its plane; returns the processes.

        ``injector`` drives the server events, ``fleet`` (a
        :class:`~repro.net.fleet.FleetFaultInjector`) the device events
        and ``topology`` (a
        :class:`~repro.net.continuum.ContinuumTopology`) the tier
        events; omitting a plane the profile needs raises before
        anything is scheduled.
        """
        if self.server_events() and injector is None:
            raise ValueError(
                "this chaos profile has server-plane events but no "
                "ServerFaultInjector was provided"
            )
        if self.requires_fleet() and fleet is None:
            raise ValueError(
                "this chaos profile has device-plane events "
                "(crash-device/churn) but no FleetFaultInjector was "
                "provided"
            )
        if self.requires_topology() and topology is None:
            raise ValueError(
                "this chaos profile has tier-pair events "
                "(partition-tier/degrade-tier) but no ContinuumTopology "
                "was provided"
            )
        procs = []
        for event in self.events:
            if event.kind == "kill-shard":
                procs.append(injector.kill_shard_at(event.args[0], event.index))
            elif event.kind == "crash-worker":
                procs.append(
                    injector.crash_worker_at(event.args[0], event.index)
                )
            elif event.kind == "backend-outage":
                procs.append(injector.backend_outage(*event.args))
            elif event.kind == "flap-backend":
                period, down, cycles = event.args
                procs.append(injector.flap_backend(period, down, int(cycles)))
            elif event.kind == "crash-device":
                after, down = event.args
                procs.append(
                    fleet.crash_restart_at(after, down, event.qualifier)
                )
            elif event.kind == "churn":
                procs.append(fleet.churn_at(*event.args))
            elif event.kind == "partition-tier":
                a, b = event.qualifier.split("-")
                procs.append(
                    topology.partition_tiers_at(a, b, *event.args)
                )
            elif event.kind == "degrade-tier":
                a, b = event.qualifier.split("-")
                after, dur, loss = event.args
                procs.append(
                    topology.degrade_tiers_at(a, b, after, dur, loss)
                )
        return procs

    def __repr__(self) -> str:
        return f"<ChaosProfile events={len(self.events)}>"
