"""TCP over the simulated network.

Implements the pieces of TCP whose costs the paper's analysis hinges on:

* three-way handshake (connection setup latency; HTTP keep-alive exists
  precisely to amortize it);
* MSS segmentation and a fixed-size sliding window with cumulative ACKs —
  every data segment causes a 40 B ACK on the (possibly constrained)
  reverse path;
* timeout-based retransmission with an adaptive RTO, so the reliability
  contract survives lossy links (failure-injection tests exercise this);
* FIN-based half-close: ``recv`` returns ``b""`` at end-of-stream.

Congestion control is deliberately out of scope: the experiments are
either latency-bound (1 Gbit) or plainly bandwidth-bound (25 Kbit), and a
fixed 64 KiB window reproduces both regimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..simkernel import Environment, Store
from .packet import Endpoint, Packet, TCP_HEADER_BYTES

__all__ = ["TcpConnection", "TcpListener", "ConnectionRefused", "ConnectionReset"]

MSS = 1460
DEFAULT_WINDOW = 65535
MAX_RETRIES = 12


class ConnectionRefused(ConnectionError):
    """No listener answered at the destination."""


class ConnectionReset(ConnectionError):
    """The connection failed (reset or retransmission limit exceeded)."""


@dataclass
class _Segment:
    """Sender-side bookkeeping for one in-flight segment."""

    payload: bytes
    is_fin: bool
    sent_at: float
    retries: int

    @property
    def length(self) -> int:
        return 1 if self.is_fin else len(self.payload)


class TcpListener:
    """Passive socket accepting incoming connections on one port."""

    def __init__(self, host: "Host", port: int):  # noqa: F821
        self.host = host
        self.port = port
        self._backlog: Store = Store(host.env)
        self.closed = False

    def accept(self):
        """Event yielding the next established :class:`TcpConnection`."""
        if self.closed:
            raise RuntimeError("listener is closed")
        return self._backlog.get()

    def _on_syn(self, packet: Packet) -> None:
        conn = TcpConnection(
            host=self.host,
            local_port=self.port,
            remote=packet.src,
            initiator=False,
        )
        self.host._register_tcp(conn)
        conn._on_packet(packet)
        conn._established.callbacks.append(
            lambda ev: self._backlog.put(conn) if ev._ok else None
        )

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.host._unbind_tcp_listener(self.port)

    def __repr__(self) -> str:
        return f"<TcpListener {self.host.name}:{self.port}>"


class TcpConnection:
    """One endpoint of an established (or connecting) TCP connection."""

    def __init__(
        self,
        host: "Host",  # noqa: F821
        local_port: int,
        remote: Endpoint,
        initiator: bool,
        window: int = DEFAULT_WINDOW,
    ):
        self.host = host
        self.env: Environment = host.env
        self.local_port = local_port
        self.remote = remote
        self.initiator = initiator
        self.window = window

        self.state = "SYN_SENT" if initiator else "LISTEN"
        self._established = self.env.event()
        self._established.defused = True  # refusal is reported via connect()

        # -- send side
        self._send_buffer = bytearray()
        self._next_seq = 0
        self._last_acked = 0
        self._unacked: Dict[int, _Segment] = {}
        self._send_wakeup = self.env.event()
        self._fin_seq: Optional[int] = None
        self._closing = False

        # -- receive side
        self._expected_seq = 0
        self._ooo: Dict[int, Tuple[bytes, bool]] = {}  # seq -> (payload, is_fin)
        self._recv_buffer = bytearray()
        self._recv_waiters: List = []  # (event, max_bytes)
        self._eof = False

        # -- RTO estimation (RFC 6298 style: one timer per connection)
        self._srtt: Optional[float] = None
        self._rto = 1.0
        self._rtx_backoff = 0
        self._rtx_wakeup = self.env.event()

        self.env.process(
            self._send_pump(), name=f"tcp-pump-{host.name}:{local_port}"
        )
        self.env.process(
            self._retransmit_loop(), name=f"tcp-rtx-{host.name}:{local_port}"
        )

    # ------------------------------------------------------------------ API
    @property
    def established(self) -> bool:
        return self.state == "ESTABLISHED"

    @property
    def closed(self) -> bool:
        return self.state == "CLOSED"

    def send(self, data: bytes):
        """Queue ``data`` for transmission.

        The returned event triggers immediately (send buffering is
        unbounded, like a kernel with a large socket buffer); delivery
        timing is governed by the window/ACK machinery.
        """
        if self.state == "CLOSED":
            raise ConnectionReset("send on closed connection")
        if self._closing:
            raise RuntimeError("send after close()")
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError("TCP payload must be bytes")
        self._send_buffer.extend(data)
        self._wake_sender()
        done = self.env.event()
        done.succeed(len(data))
        return done

    def recv(self, max_bytes: Optional[int] = None):
        """Event yielding available bytes (up to ``max_bytes``).

        Blocks while the stream is empty; yields ``b""`` once the peer
        has closed and the buffer is drained.
        """
        event = self.env.event()
        self._recv_waiters.append((event, max_bytes))
        self._satisfy_receivers()
        return event

    def close(self) -> None:
        """Half-close: flush pending data, then send FIN."""
        if self._closing or self.state == "CLOSED":
            return
        self._closing = True
        self._wake_sender()

    def abort(self) -> None:
        """Hard teardown without FIN (models a reset)."""
        self._teardown(ConnectionReset("connection aborted"))

    # ------------------------------------------------------------- handshake
    def _start_connect(self) -> None:
        """Send the initial SYN (client side)."""
        self._transmit(flags="SYN", seq=0)
        self.env.process(self._handshake_timer(0), name="tcp-handshake-timer")

    def _handshake_timer(self, attempt: int):
        yield self.env.timeout(self._rto * (2 ** attempt))
        if self.state == "SYN_SENT":
            if attempt >= 4:
                self.state = "CLOSED"
                self._established.fail(
                    ConnectionRefused(f"connect to {self.remote} timed out")
                )
            else:
                self._transmit(flags="SYN", seq=0)
                self.env.process(
                    self._handshake_timer(attempt + 1), name="tcp-handshake-timer"
                )

    # ------------------------------------------------------------ packet I/O
    def _transmit(
        self,
        flags: str = "",
        seq: int = 0,
        ack: Optional[int] = None,
        payload: bytes = b"",
    ) -> None:
        packet = Packet(
            src=(self.host.name, self.local_port),
            dst=self.remote,
            protocol="tcp",
            payload=payload,
            header_bytes=TCP_HEADER_BYTES,
            meta={"flags": flags, "seq": seq, "ack": ack},
        )
        self.host.network.send(packet)

    def _on_packet(self, packet: Packet) -> None:
        flags = packet.meta.get("flags", "")
        # --- reset handling -------------------------------------------------
        if flags == "RST":
            if self.state == "SYN_SENT":
                self._teardown(ConnectionRefused("connection refused (RST)"))
            elif self.state != "CLOSED":
                self._teardown(ConnectionReset("connection reset by peer"))
            return
        if self.state == "CLOSED":
            # data to a dead connection: tell the peer (lets blocked HTTP
            # clients detect a crashed server instead of hanging)
            if packet.payload or "FIN" in flags:
                self._transmit(flags="RST")
            return
        # --- handshake ----------------------------------------------------
        if "SYN" in flags and "ACK" not in flags:
            # server side: reply SYN-ACK (idempotent for retransmitted SYNs)
            if self.state == "LISTEN":
                self.state = "SYN_RCVD"
            self._transmit(flags="SYN-ACK", seq=0, ack=0)
            return
        if flags == "SYN-ACK":
            if self.state == "SYN_SENT":
                self.state = "ESTABLISHED"
                self._transmit(flags="ACK", ack=0)
                self._established.succeed(self)
                self._wake_sender()
            else:
                self._transmit(flags="ACK", ack=0)  # duplicate: re-ack
            return
        if (
            flags == "ACK"
            and self.state == "SYN_RCVD"
            and packet.meta.get("ack") == 0
            and not packet.payload
        ):
            self.state = "ESTABLISHED"
            self._established.succeed(self)
            return
        if self.state == "SYN_RCVD" and (packet.payload or "FIN" in flags):
            # The handshake ACK was lost but data arrived: implicitly
            # established (RFC 793 allows data to complete the handshake).
            self.state = "ESTABLISHED"
            self._established.succeed(self)

        # --- data & stream control -----------------------------------------
        if packet.payload or "FIN" in flags:
            self._on_data(packet)
        ack = packet.meta.get("ack")
        if ack is not None and "SYN" not in flags:
            self._on_ack(ack)

    def _on_data(self, packet: Packet) -> None:
        seq = packet.meta.get("seq", 0)
        payload = packet.payload
        fin = "FIN" in packet.meta.get("flags", "")
        if seq == self._expected_seq:
            if payload:
                self._recv_buffer.extend(payload)
                self._expected_seq += len(payload)
            if fin:
                self._eof = True
                self._expected_seq += 1
            # drain out-of-order segments that became contiguous
            while self._expected_seq in self._ooo:
                data, ooo_fin = self._ooo.pop(self._expected_seq)
                self._recv_buffer.extend(data)
                self._expected_seq += len(data)
                if ooo_fin:
                    self._eof = True
                    self._expected_seq += 1
        elif seq > self._expected_seq:
            self._ooo.setdefault(seq, (payload, fin))
        # duplicates (seq < expected) fall through to a re-ACK
        self._transmit(flags="ACK", ack=self._expected_seq)
        self._satisfy_receivers()

    def _on_ack(self, ack: int) -> None:
        if ack <= self._last_acked:
            return
        now = self.env.now
        for seq in sorted(self._unacked):
            segment = self._unacked[seq]
            if seq + segment.length <= ack:
                del self._unacked[seq]
                if segment.retries == 0:  # Karn's rule
                    self._rtt_sample(now - segment.sent_at)
        self._last_acked = ack
        if self._fin_seq is not None and ack >= self._fin_seq + 1:
            self.state = "CLOSED"
        self._wake_sender()

    def _rtt_sample(self, sample: float) -> None:
        if self._srtt is None:
            self._srtt = sample
        else:
            self._srtt = 0.875 * self._srtt + 0.125 * sample
        self._rto = min(max(0.2, 2.5 * self._srtt), 10.0)

    # ------------------------------------------------------------- send pump
    def _wake_sender(self) -> None:
        if not self._send_wakeup.triggered:
            self._send_wakeup.succeed()

    def _wait_wakeup(self):
        if self._send_wakeup.triggered:
            self._send_wakeup = self.env.event()
        return self._send_wakeup

    def _send_pump(self):
        env = self.env
        while True:
            if self.state == "CLOSED":
                return
            if self.state != "ESTABLISHED":
                yield self._wait_wakeup()
                continue
            in_flight = self._next_seq - self._last_acked
            if self._send_buffer and in_flight < self.window:
                chunk_len = min(MSS, len(self._send_buffer), self.window - in_flight)
                chunk = bytes(self._send_buffer[:chunk_len])
                del self._send_buffer[:chunk_len]
                seq = self._next_seq
                self._next_seq += chunk_len
                self._unacked[seq] = _Segment(chunk, False, env.now, 0)
                self._transmit(seq=seq, ack=self._expected_seq, payload=chunk)
                self._wake_rtx()
            elif self._closing and not self._send_buffer and self._fin_seq is None:
                self._fin_seq = self._next_seq
                self._unacked[self._fin_seq] = _Segment(b"", True, env.now, 0)
                self._next_seq += 1
                self._transmit(flags="FIN", seq=self._fin_seq, ack=self._expected_seq)
                self._wake_rtx()
                yield self._wait_wakeup()
            else:
                yield self._wait_wakeup()

    def _wake_rtx(self) -> None:
        if not self._rtx_wakeup.triggered:
            self._rtx_wakeup.succeed()

    def _retransmit_loop(self):
        """One retransmission timer per connection (RFC 6298).

        The timer covers the *oldest* unacked segment and restarts on any
        cumulative-ACK progress, so queueing delay behind a slow link does
        not trigger spurious retransmission storms for segments that are
        still waiting their turn at the bottleneck.
        """
        env = self.env
        while self.state != "CLOSED":
            if not self._unacked:
                if self._rtx_wakeup.triggered:
                    self._rtx_wakeup = env.event()
                yield self._rtx_wakeup
                continue
            acked_snapshot = self._last_acked
            yield env.timeout(self._rto * (2 ** min(self._rtx_backoff, 6)))
            if self.state == "CLOSED" or not self._unacked:
                continue
            if self._last_acked != acked_snapshot:
                self._rtx_backoff = 0  # forward progress: restart the timer
                continue
            oldest = min(self._unacked)
            segment = self._unacked[oldest]
            if segment.retries >= MAX_RETRIES:
                self._teardown(ConnectionReset(f"retransmission limit for seq {oldest}"))
                return
            segment.retries += 1
            segment.sent_at = env.now
            self._rtx_backoff += 1
            if segment.is_fin:
                self._transmit(flags="FIN", seq=oldest, ack=self._expected_seq)
            else:
                self._transmit(seq=oldest, ack=self._expected_seq, payload=segment.payload)

    # ------------------------------------------------------------ teardown
    def _teardown(self, error: Exception) -> None:
        self.state = "CLOSED"
        self._eof = True
        self._satisfy_receivers()
        if not self._established.triggered:
            self._established.fail(error)
        self._wake_sender()

    # ----------------------------------------------------------- receivers
    def _satisfy_receivers(self) -> None:
        while self._recv_waiters:
            if self._recv_buffer:
                event, max_bytes = self._recv_waiters.pop(0)
                take = (
                    len(self._recv_buffer)
                    if max_bytes is None
                    else min(max_bytes, len(self._recv_buffer))
                )
                data = bytes(self._recv_buffer[:take])
                del self._recv_buffer[:take]
                event.succeed(data)
            elif self._eof:
                event, _ = self._recv_waiters.pop(0)
                event.succeed(b"")
            else:
                break

    def __repr__(self) -> str:
        return (
            f"<TcpConnection {self.host.name}:{self.local_port}<->"
            f"{self.remote[0]}:{self.remote[1]} {self.state}>"
        )
