"""Edge-to-cloud continuum topologies: tiered networks from a spec string.

Every scalability experiment so far ran on an ideal star (64 edge hosts,
one cloud host, one perfect link each).  The paper's subject is the
computing *continuum* — devices behind constrained, lossy uplinks, fog
aggregation layers, WAN hops to the cloud — so this module builds tiered
topologies over the existing :class:`~repro.net.topology.Network`
machinery and makes them reproducible from a one-line spec:

``edge:64:lossy-wireless,fog:4:wan-fog,cloud:1``

Each comma-separated element is one *tier*, leaf first, root last:
``name:count[:profile]``.  The optional profile names the
:class:`LinkProfile` shaping every **uplink** from that tier toward the
next one (the root tier has no uplink and takes no profile).  Hosts are
named ``{tier}-{index}`` and each host's uplink goes to parent
``index % parent_count``, giving balanced fan-in without configuration.

:data:`TOPOLOGY_PRESETS` names the four shapes the benchmarks compare
(``ideal``, ``constrained-edge``, ``lossy-wireless``, ``wan-fog``); a
preset name is accepted anywhere a spec string is
(``REPRO_TOPOLOGY=lossy-wireless``, ``--topology lossy-wireless``).

The built :class:`ContinuumTopology` is also the tier-level fault
surface: :meth:`~ContinuumTopology.partition_tiers` cuts every link
between two adjacent tiers at once (a backhaul outage),
:meth:`~ContinuumTopology.degrade_tiers` raises their loss for a window
(a weather storm on the wireless segment), and both have ``*_at``
variants scheduled on the simulation clock so a
:class:`~repro.net.chaos.ChaosProfile` can drive them reproducibly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .faults import LinkFaultInjector
from .netem import parse_delay, parse_rate
from .topology import Network

__all__ = [
    "LinkProfile",
    "LINK_PROFILES",
    "TierSpec",
    "TopologySpec",
    "TOPOLOGY_PRESETS",
    "ContinuumTopology",
]

#: tier names must be dash-free so the ``partition-tier:edge-fog`` chaos
#: qualifier can split unambiguously on the dash
_TIER_NAME_RE = re.compile(r"[a-z][a-z0-9_]*")


@dataclass(frozen=True)
class LinkProfile:
    """Shape of one class of continuum link (a named netem recipe)."""

    name: str
    rate: str = "1Gbit"
    delay: str = "0.5ms"
    jitter: str = "0ms"
    loss: float = 0.0
    burst_loss: float = 0.0
    p_enter_burst: float = 0.0
    p_exit_burst: float = 0.5

    def __post_init__(self):
        # fail at profile definition, not first use
        parse_rate(self.rate)
        parse_delay(self.delay)
        parse_delay(self.jitter)
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(
                f"link profile {self.name!r}: loss must be in [0, 1), "
                f"got {self.loss}"
            )

    def bandwidth_bps(self) -> float:
        return parse_rate(self.rate)

    def delay_s(self) -> float:
        return parse_delay(self.delay)

    def jitter_s(self) -> float:
        return parse_delay(self.jitter)


#: the link classes the continuum benchmarks compare.  ``ideal`` is the
#: pre-existing star's link; ``constrained-edge`` is the paper's worst
#: evaluated uplink (25 Kbit/s, 23 ms — Tables VII/VIII);
#: ``lossy-wireless`` adds jitter plus Gilbert-Elliott burst loss (mean
#: burst 1/p_exit ≈ 3 packets at 60% in-burst drop); ``wan-fog`` is a
#: clean but long fog→cloud WAN hop.
LINK_PROFILES: Dict[str, LinkProfile] = {
    profile.name: profile
    for profile in (
        LinkProfile("ideal", rate="1Gbit", delay="0.5ms"),
        LinkProfile("constrained-edge", rate="25Kbit", delay="23ms"),
        LinkProfile(
            "lossy-wireless",
            rate="10Mbit",
            delay="40ms",
            jitter="5ms",
            loss=0.02,
            burst_loss=0.6,
            p_enter_burst=0.05,
            p_exit_burst=0.3,
        ),
        LinkProfile("wan-fog", rate="100Mbit", delay="80ms", loss=0.001),
    )
}


@dataclass(frozen=True)
class TierSpec:
    """One tier of a :class:`TopologySpec`: ``name:count[:profile]``."""

    name: str
    count: int
    #: profile of this tier's uplinks toward the next tier (None on the
    #: root tier, which has no uplink)
    profile: Optional[str] = None


class TopologySpec:
    """A parsed, validated topology spec (leaf tier first, root last)."""

    def __init__(self, tiers: List[TierSpec]):
        self.tiers: Tuple[TierSpec, ...] = tuple(tiers)

    @classmethod
    def parse(cls, spec: str) -> "TopologySpec":
        """Parse ``name:count[:profile],...`` (or a preset name).

        Every malformed shape fails loudly here — before any host or
        link exists — naming the offending token.
        """
        text = spec.strip()
        if text in TOPOLOGY_PRESETS:
            text = TOPOLOGY_PRESETS[text]
        tiers: List[TierSpec] = []
        seen = set()
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            parts = token.split(":")
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"malformed tier {token!r}: expected name:count[:profile]"
                )
            name = parts[0]
            if not _TIER_NAME_RE.fullmatch(name):
                raise ValueError(
                    f"bad tier name {name!r} in {token!r}: tier names are "
                    "lowercase [a-z][a-z0-9_]* (no dashes — the "
                    "partition-tier:a-b chaos qualifier splits on the dash)"
                )
            if name in seen:
                raise ValueError(f"duplicate tier name {name!r} in {spec!r}")
            seen.add(name)
            try:
                count = int(parts[1])
            except ValueError:
                raise ValueError(
                    f"bad host count {parts[1]!r} in tier {token!r}"
                ) from None
            if count < 1:
                raise ValueError(
                    f"tier {name!r} needs count >= 1, got {count}"
                )
            profile: Optional[str] = None
            if len(parts) == 3:
                profile = parts[2]
                if profile not in LINK_PROFILES:
                    raise ValueError(
                        f"unknown link profile {profile!r} in tier {token!r}; "
                        f"known: {sorted(LINK_PROFILES)}"
                    )
            tiers.append(TierSpec(name=name, count=count, profile=profile))
        if len(tiers) < 2:
            raise ValueError(
                f"topology spec {spec!r} needs at least two tiers "
                "(a leaf tier and a root tier)"
            )
        if tiers[-1].profile is not None:
            raise ValueError(
                f"root tier {tiers[-1].name!r} has no uplink and takes no "
                f"profile (got {tiers[-1].profile!r})"
            )
        return cls(tiers)

    # -- accessors ---------------------------------------------------------
    @property
    def leaf(self) -> TierSpec:
        return self.tiers[0]

    @property
    def root(self) -> TierSpec:
        return self.tiers[-1]

    def tier(self, name: str) -> TierSpec:
        for tier in self.tiers:
            if tier.name == name:
                return tier
        raise KeyError(
            f"unknown tier {name!r}; tiers: {[t.name for t in self.tiers]}"
        )

    def scaled(self, leaf_count: int) -> "TopologySpec":
        """The same spec with the leaf tier resized to ``leaf_count``
        (how the harness fits a preset to ``n_devices``)."""
        if leaf_count < 1:
            raise ValueError(f"leaf_count must be >= 1, got {leaf_count}")
        leaf = TierSpec(self.leaf.name, leaf_count, self.leaf.profile)
        return TopologySpec([leaf, *self.tiers[1:]])

    def describe(self) -> str:
        parts = []
        for tier in self.tiers:
            text = f"{tier.name}:{tier.count}"
            if tier.profile:
                text += f":{tier.profile}"
            parts.append(text)
        return ",".join(parts)

    def __repr__(self) -> str:
        return f"<TopologySpec {self.describe()}>"


#: named shapes the continuum benchmarks compare; a preset name is valid
#: anywhere a spec string is.  All share the 64-device fan-in of the
#: paper's Table IX (``TopologySpec.scaled`` resizes the leaf tier).
TOPOLOGY_PRESETS: Dict[str, str] = {
    "ideal": "edge:64:ideal,fog:4:ideal,cloud:1",
    "constrained-edge": "edge:64:constrained-edge,fog:4:ideal,cloud:1",
    "lossy-wireless": "edge:64:lossy-wireless,fog:4:wan-fog,cloud:1",
    "wan-fog": "edge:64:ideal,fog:4:wan-fog,cloud:1",
}


class ContinuumTopology:
    """A tiered network built from a :class:`TopologySpec`.

    ``root_host`` reuses an existing host (the provenance manager's, or
    the harness's ``cloud``) as the single root-tier host instead of
    creating one — the root tier's count must then be 1.
    ``device_factory(tier_name, index)`` may return a device to attach
    to each created host (return ``None`` for plain forwarding hosts).
    """

    def __init__(
        self,
        network: Network,
        spec: TopologySpec | str,
        root_host: Optional[str] = None,
        device_factory: Optional[Callable[[str, int], object]] = None,
    ):
        if isinstance(spec, str):
            spec = TopologySpec.parse(spec)
        self.network = network
        self.env = network.env
        self.spec = spec
        #: tier name -> host names, leaf tier first
        self._hosts: Dict[str, List[str]] = {}
        #: (lower, upper) adjacent tier pair -> one injector per uplink
        self._injectors: Dict[Tuple[str, str], List[LinkFaultInjector]] = {}
        #: open partitions: pair -> start time
        self._down_since: Dict[Tuple[str, str], float] = {}
        #: completed tier outages: (lower, upper, start, end)
        self.tier_outages: List[Tuple[str, str, float, float]] = []
        #: saved per-link uniform loss while a degradation is active
        self._degraded: Dict[Tuple[str, str], List[float]] = {}
        self._degraded_since: Dict[Tuple[str, str], float] = {}
        #: completed degradation windows
        self.degradations: List[Tuple[str, str, float, float]] = []
        self._build(root_host, device_factory)

    # -- construction ------------------------------------------------------
    def _build(self, root_host, device_factory) -> None:
        spec = self.spec
        if root_host is not None:
            if spec.root.count != 1:
                raise ValueError(
                    f"root_host={root_host!r} reuses one existing host, but "
                    f"root tier {spec.root.name!r} has count {spec.root.count}"
                )
            if root_host not in self.network.hosts:
                raise KeyError(f"unknown root host {root_host!r}")
        for tier in spec.tiers:
            if tier is spec.root and root_host is not None:
                self._hosts[tier.name] = [root_host]
                continue
            names = []
            for i in range(tier.count):
                name = f"{tier.name}-{i}"
                device = device_factory(tier.name, i) if device_factory else None
                self.network.add_host(name, device=device)
                names.append(name)
            self._hosts[tier.name] = names
        for lower, upper in zip(spec.tiers, spec.tiers[1:]):
            profile = LINK_PROFILES[lower.profile or "ideal"]
            injectors = []
            for i, host in enumerate(self._hosts[lower.name]):
                parent = self._hosts[upper.name][i % upper.count]
                self.network.connect(
                    host,
                    parent,
                    bandwidth_bps=profile.bandwidth_bps(),
                    latency_s=profile.delay_s(),
                    jitter_s=profile.jitter_s(),
                    loss=profile.loss,
                )
                if profile.burst_loss > 0.0:
                    self.network.configure_link(
                        host,
                        parent,
                        burst_loss=profile.burst_loss,
                        p_enter_burst=profile.p_enter_burst,
                        p_exit_burst=profile.p_exit_burst,
                    )
                injectors.append(LinkFaultInjector(self.network, host, parent))
            self._injectors[(lower.name, upper.name)] = injectors

    # -- accessors ---------------------------------------------------------
    def hosts_in(self, tier: str) -> List[str]:
        """Host names of one tier (validates the tier name)."""
        self.spec.tier(tier)
        return list(self._hosts[tier])

    @property
    def edge_hosts(self) -> List[str]:
        """Hosts of the leaf tier."""
        return self.hosts_in(self.spec.leaf.name)

    @property
    def root(self) -> str:
        """The single root host (raises if the root tier has several)."""
        hosts = self._hosts[self.spec.root.name]
        if len(hosts) != 1:
            raise ValueError(
                f"root tier {self.spec.root.name!r} has {len(hosts)} hosts"
            )
        return hosts[0]

    def uplink_of(self, host: str) -> LinkFaultInjector:
        """The fault injector of one host's uplink toward its parent."""
        for injectors in self._injectors.values():
            for injector in injectors:
                if injector.a == host:
                    return injector
        raise KeyError(f"host {host!r} has no uplink in this topology")

    def pair(self, a: str, b: str) -> Tuple[str, str]:
        """Normalize two tier names to the (lower, upper) adjacent pair."""
        self.spec.tier(a)
        self.spec.tier(b)
        if (a, b) in self._injectors:
            return (a, b)
        if (b, a) in self._injectors:
            return (b, a)
        raise ValueError(
            f"tiers {a!r} and {b!r} are not adjacent; adjacent pairs: "
            f"{sorted(self._injectors)}"
        )

    def injectors(self, a: str, b: str) -> List[LinkFaultInjector]:
        """The per-uplink fault injectors between two adjacent tiers."""
        return list(self._injectors[self.pair(a, b)])

    def tier_partitioned(self, a: str, b: str) -> bool:
        """True while the tier pair is administratively partitioned."""
        return self.pair(a, b) in self._down_since

    # -- tier-level faults -------------------------------------------------
    def partition_tiers(self, a: str, b: str) -> None:
        """Cut every link between two adjacent tiers now (idempotent)."""
        pair = self.pair(a, b)
        if pair in self._down_since:
            return
        self._down_since[pair] = self.env.now
        for injector in self._injectors[pair]:
            injector.partition_now()

    def heal_tiers(self, a: str, b: str) -> None:
        """Restore every link between two adjacent tiers (idempotent)."""
        pair = self.pair(a, b)
        for injector in self._injectors[pair]:
            injector.heal_now()
        start = self._down_since.pop(pair, None)
        if start is not None:
            self.tier_outages.append((*pair, start, self.env.now))

    def partition_tiers_at(self, a: str, b: str, after_s: float,
                           duration_s: float):
        """Schedule one whole-tier outage; returns the driving process."""
        pair = self.pair(a, b)
        if after_s < 0 or duration_s <= 0:
            raise ValueError("after_s must be >= 0 and duration_s > 0")

        def _outage():
            yield self.env.timeout(after_s)
            self.partition_tiers(*pair)
            yield self.env.timeout(duration_s)
            self.heal_tiers(*pair)

        return self.env.process(
            _outage(), name=f"chaos-partition-tier-{pair[0]}-{pair[1]}"
        )

    def degrade_tiers(self, a: str, b: str, loss: float) -> None:
        """Raise uniform loss on every link of the pair (a storm).

        The links' configured loss is saved and restored by
        :meth:`clear_degradation`; degrading an already-degraded pair
        re-degrades relative to the *original* loss, not the storm's.
        """
        if not 0.0 < loss < 1.0:
            raise ValueError(f"storm loss must be in (0, 1), got {loss}")
        pair = self.pair(a, b)
        injectors = self._injectors[pair]
        if pair not in self._degraded:
            self._degraded[pair] = [
                injector._links[0].loss for injector in injectors
            ]
            self._degraded_since[pair] = self.env.now
        for injector in injectors:
            for link in injector._links:
                link.configure(loss=loss)

    def clear_degradation(self, a: str, b: str) -> None:
        """End a storm: restore the pair's configured loss (idempotent)."""
        pair = self.pair(a, b)
        saved = self._degraded.pop(pair, None)
        if saved is None:
            return
        start = self._degraded_since.pop(pair, None)
        for injector, loss in zip(self._injectors[pair], saved):
            for link in injector._links:
                link.configure(loss=loss)
        if start is not None:
            self.degradations.append((*pair, start, self.env.now))

    def degrade_tiers_at(self, a: str, b: str, after_s: float,
                         duration_s: float, loss: float):
        """Schedule one degradation storm; returns the driving process."""
        pair = self.pair(a, b)
        if after_s < 0 or duration_s <= 0:
            raise ValueError("after_s must be >= 0 and duration_s > 0")
        if not 0.0 < loss < 1.0:
            raise ValueError(f"storm loss must be in (0, 1), got {loss}")

        def _storm():
            yield self.env.timeout(after_s)
            self.degrade_tiers(*pair, loss=loss)
            yield self.env.timeout(duration_s)
            self.clear_degradation(*pair)

        return self.env.process(
            _storm(), name=f"chaos-degrade-tier-{pair[0]}-{pair[1]}"
        )

    # -- observability -----------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Cheap point-in-time snapshot of the topology's fault state."""
        return {
            "spec": self.spec.describe(),
            "tiers": {t.name: t.count for t in self.spec.tiers},
            "hosts": sum(len(h) for h in self._hosts.values()),
            "partitioned_pairs": sorted(
                f"{a}-{b}" for a, b in self._down_since
            ),
            "tier_outages": len(self.tier_outages),
            "degradations": len(self.degradations),
        }

    def __repr__(self) -> str:
        return f"<ContinuumTopology {self.spec.describe()}>"
