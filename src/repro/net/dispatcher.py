"""Front-end UDP dispatcher: one public endpoint fanning out to N shards.

A horizontally sharded server still has to present a single address to
its clients (devices configure *one* broker endpoint).  The dispatcher
owns that public UDP port and forwards every arriving datagram to the
backend shard that owns its sender.  Forwarding is *bundled*: each
wakeup drains a batch off the socket and hands each destination shard
one bundle, charging a calibrated fixed cost per bundle (queue push +
shard wakeup) plus a marginal cost per datagram (epoll-return +
header-peek) — the work a real SO_REUSEPORT-style front process pays,
an order of magnitude cheaper than full protocol servicing, and
amortized so the serial front plane stops being the Amdahl bound.

Shards receive through :class:`VirtualSocket` facades and *send through
the dispatcher's front socket*, so every reply originates from the
public endpoint: on the wire, the sharded plane is indistinguishable
from one big server.

Sticky routing: the shard choice is pinned per source endpoint on first
contact.  The ``classify`` callback (owned by the protocol layer, which
knows how to peek into its own packets) is consulted on every datagram
with the current pin and may re-pin — e.g. when a client re-identifies
itself with a different client id; ``on_repin`` lets the owner purge
state the old shard held for that endpoint.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..simkernel import Counter, Store
from .packet import Endpoint

__all__ = ["UdpShardDispatcher", "VirtualSocket"]

#: classify(payload, source, current_pin) -> shard index
Classifier = Callable[[bytes, Endpoint, Optional[int]], int]


class VirtualSocket:
    """Socket facade for one backend shard behind a dispatcher.

    Receives whatever the dispatcher forwards to this shard; sends go out
    through the dispatcher's front socket so replies carry the public
    endpoint as their source.  Implements the subset of the
    :class:`~repro.net.udp.UdpSocket` surface servers use (``sendto`` /
    ``recv`` / ``recv_pending`` / ``pending``).
    """

    def __init__(self, dispatcher: "UdpShardDispatcher", index: int):
        self._dispatcher = dispatcher
        self.index = index
        self._inbox: Store = Store(dispatcher.env)
        self.closed = False

    @property
    def host(self):
        return self._dispatcher.host

    @property
    def port(self) -> int:
        return self._dispatcher.port

    def sendto(self, payload: bytes, dest: Endpoint):
        """Send through the shared front socket (public source endpoint)."""
        if self.closed:
            raise RuntimeError("socket is closed")
        return self._dispatcher.sock.sendto(payload, dest)

    def recv(self):
        """Event yielding ``(payload, source)`` for one forwarded datagram."""
        if self.closed:
            raise RuntimeError("socket is closed")
        return self._inbox.get()

    def recv_pending(self, limit: Optional[int] = None):
        """Forwarded datagrams already buffered (non-blocking)."""
        if self.closed:
            raise RuntimeError("socket is closed")
        return self._inbox.drain_pending(limit)

    @property
    def pending(self) -> int:
        return len(self._inbox.items)

    def _deliver(self, payload: bytes, source: Endpoint) -> None:
        if not self.closed:
            self._inbox.put((payload, source))

    def close(self) -> None:
        self.closed = True

    def __repr__(self) -> str:
        return (
            f"<VirtualSocket shard={self.index} of "
            f"{self.host.name}:{self.port} pending={self.pending}>"
        )


class UdpShardDispatcher:
    """Owns the public UDP port and routes datagrams to shard sockets."""

    def __init__(
        self,
        host,
        port: int,
        shards: int,
        classify: Classifier,
        dispatch_fixed_s: float = 0.0,
        dispatch_per_datagram_s: float = 0.0,
        max_batch: int = 64,
        on_repin: Optional[Callable[[Endpoint, int, int], None]] = None,
    ):
        if shards <= 0:
            raise ValueError("dispatcher needs at least one shard")
        self.host = host
        self.env = host.env
        self.port = port
        self.classify = classify
        self.dispatch_fixed_s = dispatch_fixed_s
        self.dispatch_per_datagram_s = dispatch_per_datagram_s
        self.max_batch = max(1, max_batch)
        self.on_repin = on_repin
        self.sock = host.udp_socket(port)
        self.sockets: List[VirtualSocket] = [
            VirtualSocket(self, i) for i in range(shards)
        ]
        #: sticky source-endpoint -> shard-index routing decisions
        self.pins: Dict[Endpoint, int] = {}
        self.dispatched = Counter("dispatched-datagrams")
        self.bundles = Counter("dispatched-bundles")
        self.env.process(
            self._recv_loop(), name=f"udp-dispatcher-{host.name}:{port}"
        )

    def _recv_loop(self):
        # Per wakeup: drain a batch off the socket, classify it in arrival
        # order (pins may change mid-batch), then forward one *bundle* per
        # destination shard.  The fixed dispatch cost is paid per bundle,
        # not per datagram, so fan-in from many devices to few shards
        # amortizes to ``K * fixed + N * per_datagram``.
        while True:
            batch = [(yield self.sock.recv())]
            if self.max_batch > 1:
                batch.extend(self.sock.recv_pending(self.max_batch - 1))
            bundles: Dict[int, List] = {}
            for payload, source in batch:
                current = self.pins.get(source)
                index = self.classify(payload, source, current)
                if index != current:
                    if current is not None and self.on_repin is not None:
                        self.on_repin(source, current, index)
                    self.pins[source] = index
                bundles.setdefault(index, []).append((payload, source))
            cost = (
                self.dispatch_fixed_s * len(bundles)
                + self.dispatch_per_datagram_s * len(batch)
            )
            if cost > 0:
                yield self.env.timeout(cost)
            for index, bundle in bundles.items():
                self.bundles.record()
                shard_socket = self.sockets[index]
                for payload, source in bundle:
                    self.dispatched.record()
                    shard_socket._deliver(payload, source)

    @property
    def datagrams_per_bundle(self) -> float:
        """Measured amortization: datagrams forwarded per shard bundle."""
        if self.bundles.count == 0:
            return 0.0
        return self.dispatched.count / self.bundles.count

    def pin_counts(self) -> Dict[int, int]:
        """Pinned endpoints per shard index (observability snapshot)."""
        counts: Dict[int, int] = {}
        for pin in self.pins.values():
            counts[pin] = counts.get(pin, 0) + 1
        return counts

    def unpin(self, source: Endpoint) -> None:
        """Forget the sticky routing decision for ``source``."""
        self.pins.pop(source, None)

    def invalidate_shard(self, index: int) -> List[Endpoint]:
        """Drop every pin targeting shard ``index`` and close its socket.

        Failover path: once a shard is dead, its pins are lies — traffic
        from those endpoints must reclassify (CONNECTs by client id on the
        shrunk ring, the rest by source hash) instead of being forwarded
        into a void.  Returns the endpoints that were unpinned so the
        caller can account for the displaced sessions.
        """
        stale = [source for source, pin in self.pins.items() if pin == index]
        for source in stale:
            del self.pins[source]
        self.sockets[index].close()
        return stale

    def __repr__(self) -> str:
        return (
            f"<UdpShardDispatcher {self.host.name}:{self.port} "
            f"shards={len(self.sockets)} pins={len(self.pins)}>"
        )
