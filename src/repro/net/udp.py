"""UDP datagram sockets over the simulated network.

Faithful to the properties the paper's design exploits: ``sendto`` never
blocks on the network (fire-and-forget — the reason ProvLight's publish
path stays off the workflow's critical path), datagrams may be lost or
reordered, and there is no connection state.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..simkernel import Store
from .packet import Endpoint, Packet, UDP_HEADER_BYTES

__all__ = ["UdpSocket"]


class UdpSocket:
    """A bound UDP socket on one host."""

    def __init__(self, host: "Host", port: int):  # noqa: F821
        self.host = host
        self.port = port
        self._inbox: Store = Store(host.env)
        self.closed = False

    # -- sending ---------------------------------------------------------------
    def sendto(self, payload: bytes, dest: Endpoint) -> Packet:
        """Send a datagram; returns the packet (already on its way)."""
        if self.closed:
            raise RuntimeError("socket is closed")
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("UDP payload must be bytes")
        packet = Packet(
            src=(self.host.name, self.port),
            dst=dest,
            protocol="udp",
            payload=bytes(payload),
            header_bytes=UDP_HEADER_BYTES,
        )
        self.host.network.send(packet)
        return packet

    # -- receiving -----------------------------------------------------------
    def recv(self):
        """Event yielding ``(payload, source_endpoint)`` for one datagram."""
        if self.closed:
            raise RuntimeError("socket is closed")
        return self._inbox.get()

    def recv_pending(self, limit: Optional[int] = None):
        """Datagrams already buffered, as ``[(payload, source), ...]``.

        Non-blocking: returns at most ``limit`` entries (all when None),
        possibly none.  Lets a server drain every datagram that queued
        while it was servicing the previous one — one wakeup, one batch.
        """
        if self.closed:
            raise RuntimeError("socket is closed")
        return self._inbox.drain_pending(limit)

    @property
    def pending(self) -> int:
        """Datagrams waiting in the receive buffer."""
        return len(self._inbox.items)

    def _deliver(self, packet: Packet) -> None:
        if not self.closed:
            self._inbox.put((packet.payload, packet.src))

    def close(self) -> None:
        """Unbind the socket; further sends/recvs raise."""
        if not self.closed:
            self.closed = True
            self.host._unbind_udp(self.port)

    def __repr__(self) -> str:
        return f"<UdpSocket {self.host.name}:{self.port}>"
