"""Host: a named network endpoint with UDP/TCP socket tables.

A host belongs to exactly one :class:`~repro.net.topology.Network` and may
be backed by a :class:`~repro.device.Device` whose radio/energy accounting
it feeds.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..simkernel import Environment
from .packet import Endpoint, Packet
from .tcp import ConnectionRefused, TcpConnection, TcpListener
from .udp import UdpSocket

__all__ = ["Host", "PortInUse"]

EPHEMERAL_BASE = 49152


class PortInUse(OSError):
    """Binding to a port that already has a socket."""


class Host:
    """A machine attached to the simulated network."""

    def __init__(self, env: Environment, name: str, network, device=None):
        self.env = env
        self.name = name
        self.network = network
        self.device = device
        if device is not None:
            device.host = self
        self._udp_ports: Dict[int, UdpSocket] = {}
        self._tcp_listeners: Dict[int, TcpListener] = {}
        self._tcp_conns: Dict[Tuple[int, Endpoint], TcpConnection] = {}
        self._next_ephemeral = EPHEMERAL_BASE

    # -- port management ----------------------------------------------------
    def _alloc_port(self) -> int:
        while (
            self._next_ephemeral in self._udp_ports
            or self._next_ephemeral in self._tcp_listeners
        ):
            self._next_ephemeral += 1
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    # -- UDP -------------------------------------------------------------------
    def udp_socket(self, port: Optional[int] = None) -> UdpSocket:
        """Bind a UDP socket (ephemeral port when ``port`` is None)."""
        if port is None:
            port = self._alloc_port()
        if port in self._udp_ports:
            raise PortInUse(f"{self.name}: UDP port {port} in use")
        sock = UdpSocket(self, port)
        self._udp_ports[port] = sock
        return sock

    def _unbind_udp(self, port: int) -> None:
        self._udp_ports.pop(port, None)

    # -- TCP -------------------------------------------------------------------
    def tcp_listen(self, port: int) -> TcpListener:
        """Open a passive TCP socket on ``port``."""
        if port in self._tcp_listeners:
            raise PortInUse(f"{self.name}: TCP port {port} in use")
        listener = TcpListener(self, port)
        self._tcp_listeners[port] = listener
        return listener

    def _unbind_tcp_listener(self, port: int) -> None:
        self._tcp_listeners.pop(port, None)

    def tcp_connect(self, dest: Endpoint):
        """Generator establishing a connection (use with ``yield from``).

        Returns the established :class:`TcpConnection`; raises
        :class:`ConnectionRefused` when nobody answers.
        """
        port = self._alloc_port()
        conn = TcpConnection(self, port, dest, initiator=True)
        self._register_tcp(conn)
        conn._start_connect()
        established = yield conn._established
        return established

    def _register_tcp(self, conn: TcpConnection) -> None:
        self._tcp_conns[(conn.local_port, conn.remote)] = conn

    def _drop_tcp(self, conn: TcpConnection) -> None:
        self._tcp_conns.pop((conn.local_port, conn.remote), None)

    # -- delivery (called by the network) ---------------------------------------
    def deliver(self, packet: Packet) -> None:
        """Dispatch an arriving packet to the right socket."""
        if self.device is not None:
            self.device.radio.on_receive(packet.size)
        if packet.protocol == "udp":
            sock = self._udp_ports.get(packet.dst[1])
            if sock is not None:
                sock._deliver(packet)
            # no socket: datagram silently dropped (ICMP not modelled)
            return
        if packet.protocol == "tcp":
            key = (packet.dst[1], packet.src)
            conn = self._tcp_conns.get(key)
            if conn is not None:
                conn._on_packet(packet)
                return
            flags = packet.meta.get("flags", "")
            listener = self._tcp_listeners.get(packet.dst[1])
            if listener is not None and "SYN" in flags and "ACK" not in flags:
                listener._on_syn(packet)
                return
            if "RST" not in flags:
                # no listener / unknown connection: reset the sender
                self.network.send(
                    Packet(
                        src=packet.dst,
                        dst=packet.src,
                        protocol="tcp",
                        header_bytes=packet.header_bytes,
                        meta={"flags": "RST", "seq": 0, "ack": None},
                    )
                )
            return
        raise ValueError(f"unknown protocol {packet.protocol!r}")

    def notify_transmit(self, packet: Packet) -> None:
        """Radio/energy accounting for an outgoing packet."""
        if self.device is not None:
            self.device.radio.on_transmit(packet.size)

    def __repr__(self) -> str:
        return f"<Host {self.name}>"
