"""Simulated network substrate: links, hosts, UDP and TCP.

Byte-accurate packets over store-and-forward links with configurable
bandwidth/latency/jitter/loss; hosts dispatch to UDP and TCP sockets.
Protocol layers (:mod:`repro.mqttsn`, :mod:`repro.http`) build on these
sockets exactly like their real counterparts build on the OS.

:mod:`repro.net.continuum` assembles hosts and links into tiered
edge/fog/cloud topologies from a spec string, and the fault-injection
stack (:mod:`~repro.net.faults`, :mod:`~repro.net.chaos`,
:mod:`~repro.net.fleet`) drives reproducible link-, server- and
device-plane chaos over them.
"""

from .chaos import ChaosEvent, ChaosProfile, ServerFaultInjector
from .continuum import (
    LINK_PROFILES,
    TOPOLOGY_PRESETS,
    ContinuumTopology,
    LinkProfile,
    TierSpec,
    TopologySpec,
)
from .dispatcher import UdpShardDispatcher, VirtualSocket
from .faults import LinkFaultInjector
from .fleet import FleetClientProxy, FleetFaultInjector
from .host import Host, PortInUse
from .link import Link
from .netem import NetworkConstraint, apply_constraints, parse_delay, parse_rate
from .packet import TCP_HEADER_BYTES, UDP_HEADER_BYTES, Endpoint, Packet
from .tcp import ConnectionRefused, ConnectionReset, TcpConnection, TcpListener
from .topology import Network, UnroutableError
from .udp import UdpSocket

__all__ = [
    "Host",
    "PortInUse",
    "Link",
    "LinkFaultInjector",
    "ServerFaultInjector",
    "FleetFaultInjector",
    "FleetClientProxy",
    "ChaosProfile",
    "ChaosEvent",
    "ContinuumTopology",
    "TopologySpec",
    "TierSpec",
    "LinkProfile",
    "LINK_PROFILES",
    "TOPOLOGY_PRESETS",
    "Network",
    "UnroutableError",
    "NetworkConstraint",
    "apply_constraints",
    "parse_rate",
    "parse_delay",
    "Packet",
    "Endpoint",
    "UDP_HEADER_BYTES",
    "TCP_HEADER_BYTES",
    "UdpSocket",
    "UdpShardDispatcher",
    "VirtualSocket",
    "TcpConnection",
    "TcpListener",
    "ConnectionRefused",
    "ConnectionReset",
]
