"""Point-to-point unidirectional link with bandwidth, latency and loss.

The timing model is classic store-and-forward:

* *serialization*: a packet of ``size`` bytes occupies the transmitter for
  ``size * 8 / bandwidth_bps`` seconds; packets queue FIFO behind it
  (this queue is what makes the 25 Kbit/s experiments interesting);
* *propagation*: after serialization the packet travels for
  ``latency_s (+ jitter)`` seconds; propagation is pipelined, so multiple
  packets can be in flight;
* *loss*: each packet is dropped independently with probability
  ``loss`` after serialization (the transmitter still paid the time).

Beyond uniform loss, the link models the two failure shapes edge
uplinks actually exhibit:

* *burst loss* (Gilbert-Elliott): a two-state Markov chain advanced per
  packet — in the *good* state packets see the uniform ``loss``; in the
  *bad* state they are dropped with ``burst_loss``.  Transitions happen
  with ``p_enter_burst`` / ``p_exit_burst``, so mean burst length is
  ``1 / p_exit_burst`` packets.
* *partition*: :meth:`partition` takes the link down entirely — every
  packet reaching the head of the queue is dropped until :meth:`heal`.
  Fault injectors flap this to exercise reconnect/replay machinery.

Parameters may be changed at runtime (the E2Clab network manager does
this to emulate ``tc netem`` reconfiguration); queued packets pick up the
new values when they reach the head of the queue.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..simkernel import Counter, Environment, Store
from .packet import Packet

__all__ = ["Link"]

DeliverFn = Callable[[Packet], None]


class Link:
    """One direction of a connection between two hosts."""

    def __init__(
        self,
        env: Environment,
        src: str,
        dst: str,
        bandwidth_bps: float,
        latency_s: float,
        jitter_s: float = 0.0,
        loss: float = 0.0,
        burst_loss: float = 0.0,
        p_enter_burst: float = 0.0,
        p_exit_burst: float = 0.5,
        rng: Optional[np.random.Generator] = None,
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be > 0")
        if latency_s < 0:
            raise ValueError("latency must be >= 0")
        if not 0.0 <= loss < 1.0:
            raise ValueError("loss must be in [0, 1)")
        if not 0.0 <= burst_loss <= 1.0:
            raise ValueError("burst_loss must be in [0, 1]")
        if not 0.0 <= p_enter_burst <= 1.0:
            raise ValueError("p_enter_burst must be in [0, 1]")
        if not 0.0 < p_exit_burst <= 1.0:
            raise ValueError("p_exit_burst must be in (0, 1]")
        self.env = env
        self.src = src
        self.dst = dst
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self.jitter_s = float(jitter_s)
        self.loss = float(loss)
        self.burst_loss = float(burst_loss)
        self.p_enter_burst = float(p_enter_burst)
        self.p_exit_burst = float(p_exit_burst)
        #: Gilbert-Elliott state: True while in the lossy burst state
        self._in_burst = False
        #: administratively up; False drops everything (partition)
        self.up = True
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._queue: Store = Store(env)
        self.tx_bytes = Counter(f"{src}->{dst}")
        self.dropped = Counter(f"{src}->{dst} drops")
        env.process(self._pump(), name=f"link-{src}->{dst}")

    # -- configuration (netem-style) ----------------------------------------
    def configure(
        self,
        bandwidth_bps: Optional[float] = None,
        latency_s: Optional[float] = None,
        jitter_s: Optional[float] = None,
        loss: Optional[float] = None,
        burst_loss: Optional[float] = None,
        p_enter_burst: Optional[float] = None,
        p_exit_burst: Optional[float] = None,
    ) -> None:
        """Change link parameters at runtime."""
        if bandwidth_bps is not None:
            if bandwidth_bps <= 0:
                raise ValueError("bandwidth must be > 0")
            self.bandwidth_bps = float(bandwidth_bps)
        if latency_s is not None:
            if latency_s < 0:
                raise ValueError("latency must be >= 0")
            self.latency_s = float(latency_s)
        if jitter_s is not None:
            self.jitter_s = float(jitter_s)
        if loss is not None:
            if not 0.0 <= loss < 1.0:
                raise ValueError("loss must be in [0, 1)")
            self.loss = float(loss)
        if burst_loss is not None:
            if not 0.0 <= burst_loss <= 1.0:
                raise ValueError("burst_loss must be in [0, 1]")
            self.burst_loss = float(burst_loss)
        if p_enter_burst is not None:
            if not 0.0 <= p_enter_burst <= 1.0:
                raise ValueError("p_enter_burst must be in [0, 1]")
            self.p_enter_burst = float(p_enter_burst)
        if p_exit_burst is not None:
            if not 0.0 < p_exit_burst <= 1.0:
                raise ValueError("p_exit_burst must be in (0, 1]")
            self.p_exit_burst = float(p_exit_burst)

    # -- partition (administrative up/down) ---------------------------------
    def partition(self) -> None:
        """Take the link down: drop every packet until :meth:`heal`.

        Packets already propagating keep flying (they left the wire before
        the cut); packets in or behind serialization are dropped.
        """
        self.up = False

    def heal(self) -> None:
        """Bring a partitioned link back up."""
        self.up = True

    # -- transmission -----------------------------------------------------------
    def send(self, packet: Packet, deliver: DeliverFn) -> None:
        """Enqueue ``packet``; call ``deliver(packet)`` at the far end."""
        self._queue.put((packet, deliver))

    @property
    def queued_packets(self) -> int:
        """Packets waiting for (or in) serialization."""
        return len(self._queue.items)

    def _pump(self):
        env = self.env
        while True:
            packet, deliver = yield self._queue.get()
            # serialization (transmitter occupied)
            yield env.timeout(packet.size * 8.0 / self.bandwidth_bps)
            self.tx_bytes.record(packet.size)
            if not self.up or self._drop(packet):
                self.dropped.record(packet.size)
                continue
            delay = self.latency_s
            if self.jitter_s > 0.0:
                delay = max(0.0, delay + float(self.rng.normal(0.0, self.jitter_s)))
            env.process(self._propagate(delay, packet, deliver), name="link-propagate")

    def _drop(self, packet: Packet) -> bool:
        """Sample the loss model for one packet (advances burst state)."""
        if self.p_enter_burst > 0.0 or self._in_burst:
            # Gilbert-Elliott: transition first, then sample the state's
            # loss rate, so a burst's first packet already sees burst_loss
            if self._in_burst:
                if self.rng.random() < self.p_exit_burst:
                    self._in_burst = False
            elif self.rng.random() < self.p_enter_burst:
                self._in_burst = True
            rate = self.burst_loss if self._in_burst else self.loss
        else:
            rate = self.loss
        return rate > 0.0 and self.rng.random() < rate

    def _propagate(self, delay: float, packet: Packet, deliver: DeliverFn):
        yield self.env.timeout(delay)
        deliver(packet)

    def __repr__(self) -> str:
        state = "" if self.up else " DOWN"
        return (
            f"<Link {self.src}->{self.dst} {self.bandwidth_bps:.0f}bps "
            f"{self.latency_s * 1000:.1f}ms loss={self.loss}{state}>"
        )
