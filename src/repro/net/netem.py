"""Declarative network constraints, in the spirit of E2Clab's network
manager (which drives ``tc netem``/``tbf`` on real testbeds).

A :class:`NetworkConstraint` names two host groups and the link shape
between them; :func:`apply_constraints` maps them onto simulated links.
Bandwidth strings use the paper's notation (``"1Gbit"``, ``"25Kbit"``)
and delays accept ``"23ms"``-style values.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from .topology import Network

__all__ = ["NetworkConstraint", "parse_rate", "parse_delay", "apply_constraints"]

# tc's rate grammar, and tc's trap: the ``*bit`` family is bits/s, the
# ``*bps`` family is BYTES/s (x8).  Units are case-insensitive, like tc.
_RATE_UNITS = {
    "bit": 1.0,
    "kbit": 1e3,
    "mbit": 1e6,
    "gbit": 1e9,
    "bps": 8.0,
    "kbps": 8e3,
    "mbps": 8e6,
    "gbps": 8e9,
}

_DELAY_UNITS = {"s": 1.0, "ms": 1e-3, "us": 1e-6}

#: NUMBER then UNIT; the number part must be a single well-formed
#: decimal (``1.2.3`` must not slip through to ``float()``)
_QUANTITY_RE = re.compile(r"\s*([0-9]+(?:\.[0-9]+)?|\.[0-9]+)\s*([A-Za-z]+)\s*")


def _parse_quantity(text: str, units: dict, what: str, example: str) -> float:
    """Shared NUMBER+UNIT parser; every rejection names the bad token."""
    match = _QUANTITY_RE.fullmatch(text)
    if not match:
        raise ValueError(
            f"cannot parse {what} {text!r}: expected NUMBER followed by a "
            f"unit, e.g. {example!r}"
        )
    number, unit_token = match.group(1), match.group(2)
    unit = unit_token.lower()
    if unit not in units:
        raise ValueError(
            f"unknown {what} unit {unit_token!r} in {text!r}; known "
            f"(case-insensitive): {', '.join(sorted(units))}"
        )
    return float(number) * units[unit]


def parse_rate(rate: str | float | int) -> float:
    """Parse ``"25Kbit"``/``"1Gbit"``-style rates into bits/s.

    Follows ``tc``'s unit semantics, including its famous ambiguity:
    ``kbit``/``mbit``/``gbit`` are kilo/mega/giga\\ *bits* per second,
    while ``kbps``/``mbps``/``gbps`` are kilo/mega/giga\\ *bytes* per
    second (x8).  Units are case-insensitive (``25Kbit`` == ``25kbit``).
    A bare number is taken as bits/s.
    """
    if isinstance(rate, (int, float)):
        return float(rate)
    return _parse_quantity(rate, _RATE_UNITS, "rate", "25Kbit")


def parse_delay(delay: str | float | int) -> float:
    """Parse ``"23ms"``-style delays into seconds (units: s, ms, us;
    case-insensitive).  A bare number is taken as seconds."""
    if isinstance(delay, (int, float)):
        return float(delay)
    return _parse_quantity(delay, _DELAY_UNITS, "delay", "23ms")


@dataclass
class NetworkConstraint:
    """Shape of the path between two groups of hosts.

    Mirrors the fields of an E2Clab ``network.yaml`` entry: source group,
    destination group, rate, delay, jitter and loss.
    """

    src: Sequence[str]
    dst: Sequence[str]
    rate: str | float = "1Gbit"
    delay: str | float = "0ms"
    jitter: str | float = "0ms"
    loss: float = 0.0

    def bandwidth_bps(self) -> float:
        return parse_rate(self.rate)

    def delay_s(self) -> float:
        return parse_delay(self.delay)

    def jitter_s(self) -> float:
        return parse_delay(self.jitter)


def apply_constraints(
    network: Network,
    constraints: Iterable[NetworkConstraint],
    create_missing: bool = True,
) -> List[tuple]:
    """Apply constraints to a network, creating links where needed.

    Returns the list of ``(src, dst)`` pairs that were configured.
    """
    configured = []
    for constraint in constraints:
        for src in constraint.src:
            for dst in constraint.dst:
                if src == dst:
                    continue
                params = dict(
                    bandwidth_bps=constraint.bandwidth_bps(),
                    latency_s=constraint.delay_s(),
                    jitter_s=constraint.jitter_s(),
                    loss=constraint.loss,
                )
                try:
                    network.configure_link(src, dst, **params)
                except KeyError:
                    if not create_missing:
                        raise
                    network.connect(src, dst, **params)
                configured.append((src, dst))
    return configured
