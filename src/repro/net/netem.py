"""Declarative network constraints, in the spirit of E2Clab's network
manager (which drives ``tc netem``/``tbf`` on real testbeds).

A :class:`NetworkConstraint` names two host groups and the link shape
between them; :func:`apply_constraints` maps them onto simulated links.
Bandwidth strings use the paper's notation (``"1Gbit"``, ``"25Kbit"``)
and delays accept ``"23ms"``-style values.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from .topology import Network

__all__ = ["NetworkConstraint", "parse_rate", "parse_delay", "apply_constraints"]

_RATE_UNITS = {
    "bit": 1.0,
    "kbit": 1e3,
    "mbit": 1e6,
    "gbit": 1e9,
    "bps": 8.0,
    "kbps": 8e3,
    "mbps": 8e6,
    "gbps": 8e9,
}

_DELAY_UNITS = {"s": 1.0, "ms": 1e-3, "us": 1e-6}


def parse_rate(rate: str | float | int) -> float:
    """Parse ``"25Kbit"``/``"1Gbit"``-style rates into bits/s."""
    if isinstance(rate, (int, float)):
        return float(rate)
    match = re.fullmatch(r"\s*([0-9.]+)\s*([A-Za-z]+)\s*", rate)
    if not match:
        raise ValueError(f"cannot parse rate {rate!r}")
    value, unit = float(match.group(1)), match.group(2).lower()
    if unit not in _RATE_UNITS:
        raise ValueError(f"unknown rate unit {unit!r} in {rate!r}")
    return value * _RATE_UNITS[unit]


def parse_delay(delay: str | float | int) -> float:
    """Parse ``"23ms"``-style delays into seconds."""
    if isinstance(delay, (int, float)):
        return float(delay)
    match = re.fullmatch(r"\s*([0-9.]+)\s*([A-Za-z]+)\s*", delay)
    if not match:
        raise ValueError(f"cannot parse delay {delay!r}")
    value, unit = float(match.group(1)), match.group(2).lower()
    if unit not in _DELAY_UNITS:
        raise ValueError(f"unknown delay unit {unit!r} in {delay!r}")
    return value * _DELAY_UNITS[unit]


@dataclass
class NetworkConstraint:
    """Shape of the path between two groups of hosts.

    Mirrors the fields of an E2Clab ``network.yaml`` entry: source group,
    destination group, rate, delay, jitter and loss.
    """

    src: Sequence[str]
    dst: Sequence[str]
    rate: str | float = "1Gbit"
    delay: str | float = "0ms"
    jitter: str | float = "0ms"
    loss: float = 0.0

    def bandwidth_bps(self) -> float:
        return parse_rate(self.rate)

    def delay_s(self) -> float:
        return parse_delay(self.delay)

    def jitter_s(self) -> float:
        return parse_delay(self.jitter)


def apply_constraints(
    network: Network,
    constraints: Iterable[NetworkConstraint],
    create_missing: bool = True,
) -> List[tuple]:
    """Apply constraints to a network, creating links where needed.

    Returns the list of ``(src, dst)`` pairs that were configured.
    """
    configured = []
    for constraint in constraints:
        for src in constraint.src:
            for dst in constraint.dst:
                if src == dst:
                    continue
                params = dict(
                    bandwidth_bps=constraint.bandwidth_bps(),
                    latency_s=constraint.delay_s(),
                    jitter_s=constraint.jitter_s(),
                    loss=constraint.loss,
                )
                try:
                    network.configure_link(src, dst, **params)
                except KeyError:
                    if not create_missing:
                        raise
                    network.connect(src, dst, **params)
                configured.append((src, dst))
    return configured
