"""Synthetic workloads (paper Table I and Listing 1).

The workload is the paper's instrumented loop: 5 chained transformations,
100 tasks total, {10, 100} attributes per task and task durations of
{0.5, 1, 3.5, 5} seconds.  Attribute values default to the constant
integers of Listing 1 (``[1] * attrs`` in, ``[2] * attrs`` out); the
``float`` attribute kind produces random metrics instead (closer to the
FL use case, and the worst case for ProvLight's compression).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

import numpy as np

from ..core import Data, Task, Workflow

__all__ = [
    "SyntheticWorkloadConfig",
    "PAPER_TASK_DURATIONS",
    "PAPER_ATTRIBUTE_COUNTS",
    "paper_workload_grid",
    "synthetic_workload",
]

#: Task durations of the paper's workload grid (Table I), in seconds.
PAPER_TASK_DURATIONS = (0.5, 1.0, 3.5, 5.0)
#: Attributes-per-task values of the paper's workload grid (Table I).
PAPER_ATTRIBUTE_COUNTS = (10, 100)


@dataclass(frozen=True)
class SyntheticWorkloadConfig:
    """One cell of the Table I configuration space."""

    chained_transformations: int = 5
    number_of_tasks: int = 100
    attributes_per_task: int = 10
    task_duration_s: float = 0.5
    workflow_id: Any = 1
    #: relative stddev of per-task duration jitter (repetition noise)
    duration_jitter: float = 0.003
    #: "int" reproduces Listing 1 exactly; "float" uses random metrics
    attribute_kind: str = "int"

    def with_(self, **changes) -> "SyntheticWorkloadConfig":
        return replace(self, **changes)

    @property
    def tasks_per_transformation(self) -> int:
        return self.number_of_tasks // self.chained_transformations

    def nominal_duration_s(self) -> float:
        """Total work time without any capture."""
        return self.number_of_tasks * self.task_duration_s


def paper_workload_grid() -> List[SyntheticWorkloadConfig]:
    """The 8 synthetic workload configurations of Table I."""
    return [
        SyntheticWorkloadConfig(attributes_per_task=attrs, task_duration_s=duration)
        for attrs in PAPER_ATTRIBUTE_COUNTS
        for duration in PAPER_TASK_DURATIONS
    ]


def synthetic_workload(
    env,
    client,
    config: SyntheticWorkloadConfig,
    rng: Optional[np.random.Generator] = None,
    result: Optional[Dict[str, Any]] = None,
):
    """Generator running the instrumented loop of the paper's Listing 1.

    ``client`` is any capture client implementing the uniform interface
    (build one with :func:`repro.capture.create_client` for any
    registered transport; baselines and the null client conform too).
    ``result`` (if given) is filled with:

    * ``elapsed`` — workflow duration including capture calls,
    * ``tasks`` — number of tasks executed,
    * ``records`` — capture calls issued.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if result is None:
        result = {}

    def make_attrs(prefix: str, base_value: int) -> Dict[str, Any]:
        n = config.attributes_per_task
        if config.attribute_kind == "int":
            return {prefix: [base_value] * n}
        return {prefix: [float(x) for x in rng.random(n)]}

    yield from client.setup()
    workflow = Workflow(config.workflow_id, client)
    start = env.now
    yield from workflow.begin()

    data_id = 0
    records = 2  # workflow begin/end
    previous_task: List[Any] = []
    for transf_id in range(config.chained_transformations):
        for _ in range(config.tasks_per_transformation):
            data_id += 1
            task = Task(
                f"{transf_id}-{data_id}",
                workflow,
                transformation_id=transf_id,
                dependencies=previous_task,
            )
            data_in = Data(
                f"in{data_id}", workflow.id, make_attrs("in", 1),
                derivations=[f"out{data_id - 1}"] if data_id > 1 else [],
            )
            yield from task.begin([data_in])
            duration = config.task_duration_s
            if config.duration_jitter > 0:
                duration = max(
                    0.0,
                    duration * (1.0 + float(rng.normal(0.0, config.duration_jitter))),
                )
            # #### the actual task work happens here ####
            yield env.timeout(duration)
            data_out = Data(
                f"out{data_id}", workflow.id, make_attrs("out", 2),
                derivations=[f"in{data_id}"],
            )
            yield from task.end([data_out])
            records += 2
            previous_task = [task.id]

    yield from workflow.end()
    result["elapsed"] = env.now - start
    result["tasks"] = data_id
    result["records"] = records
    return result
