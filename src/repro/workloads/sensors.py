"""Sensor data aggregation workload.

One of the IoT/Edge application classes motivating the paper's workload
grid ("sensor data aggregation").  A device samples a synthetic signal,
then runs a 5-transformation pipeline per window: sample -> clean ->
aggregate -> detect -> report, each step an instrumented task whose
inputs/outputs are the window data and derived statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from ..core import Data, Task, Workflow

__all__ = ["SensorConfig", "sensor_pipeline"]


@dataclass(frozen=True)
class SensorConfig:
    """Shape of the sensor-aggregation run."""

    windows: int = 10
    window_size: int = 32
    sample_period_s: float = 0.05
    anomaly_threshold: float = 2.5
    seed: int = 13
    workflow_id: str = "sensors"


def sensor_pipeline(
    env,
    capture_client,
    config: SensorConfig = SensorConfig(),
    result: Optional[Dict[str, Any]] = None,
):
    """Generator running the instrumented sensor pipeline."""
    if result is None:
        result = {}
    rng = np.random.default_rng(config.seed)

    yield from capture_client.setup()
    workflow = Workflow(config.workflow_id, capture_client)
    yield from workflow.begin()

    anomalies: List[int] = []
    reports: List[Dict[str, float]] = []
    previous: List[Any] = []

    for w in range(config.windows):
        # 1. sample ------------------------------------------------------
        task = Task(f"sample-{w}", workflow, "sample", dependencies=previous)
        yield from task.begin([])
        raw = rng.normal(loc=20.0, scale=1.0, size=config.window_size)
        if rng.random() < 0.3:  # occasional sensor glitch
            raw[rng.integers(config.window_size)] += rng.choice([-8.0, 8.0])
        yield env.timeout(config.sample_period_s * config.window_size)
        raw_data = Data(f"raw-{w}", workflow.id, {"samples": [float(x) for x in raw]})
        yield from task.end([raw_data])

        # 2. clean (clip outliers to the median) ------------------------------
        task2 = Task(f"clean-{w}", workflow, "clean", dependencies=[task.id])
        yield from task2.begin([raw_data])
        median = float(np.median(raw))
        mad = float(np.median(np.abs(raw - median))) or 1e-9
        clipped = np.where(np.abs(raw - median) > 5 * mad, median, raw)
        yield env.timeout(0.02)
        clean_data = Data(
            f"clean-{w}", workflow.id,
            {"samples": [float(x) for x in clipped]},
            derivations=[f"raw-{w}"],
        )
        yield from task2.end([clean_data])

        # 3. aggregate ----------------------------------------------------------
        task3 = Task(f"aggregate-{w}", workflow, "aggregate", dependencies=[task2.id])
        yield from task3.begin([clean_data])
        stats = {
            "mean": float(np.mean(clipped)),
            "std": float(np.std(clipped)),
            "min": float(np.min(clipped)),
            "max": float(np.max(clipped)),
            "window": w,
        }
        yield env.timeout(0.01)
        agg_data = Data(
            f"agg-{w}", workflow.id, stats, derivations=[f"clean-{w}"]
        )
        yield from task3.end([agg_data])

        # 4. detect ------------------------------------------------------------
        task4 = Task(f"detect-{w}", workflow, "detect", dependencies=[task3.id])
        yield from task4.begin([agg_data])
        zscore = abs(stats["mean"] - 20.0) / (stats["std"] or 1e-9)
        is_anomaly = bool(
            zscore > config.anomaly_threshold or stats["std"] > 2.0
        )
        if is_anomaly:
            anomalies.append(w)
        yield env.timeout(0.005)
        det_data = Data(
            f"det-{w}", workflow.id,
            {"window": w, "zscore": float(zscore), "anomaly": is_anomaly},
            derivations=[f"agg-{w}"],
        )
        yield from task4.end([det_data])

        # 5. report -------------------------------------------------------------
        task5 = Task(f"report-{w}", workflow, "report", dependencies=[task4.id])
        yield from task5.begin([det_data])
        report = {"window": w, "mean": stats["mean"], "anomaly": is_anomaly}
        reports.append(report)
        yield env.timeout(0.005)
        rep_data = Data(
            f"rep-{w}", workflow.id, report, derivations=[f"det-{w}"]
        )
        yield from task5.end([rep_data])
        previous = [task5.id]

    yield from workflow.end()
    result["anomalous_windows"] = anomalies
    result["reports"] = reports
    result["windows"] = config.windows
    return result
