"""Instrumented workloads: the paper's synthetic grid (Table I) plus the
three application classes it mimics — federated learning training,
sensor data aggregation and image pre-processing.

Every workload takes any capture client through the uniform capture
interface (``setup()`` / ``capture()`` / ``flush_groups()`` /
``drain()`` generators + ``close()``): a
:class:`repro.capture.CaptureClient` built by
:func:`repro.capture.create_client` for any registered transport, one of
its compatibility shims (``ProvLightClient``, ``ProvLightCoapClient``),
a blocking baseline, or the null client.  Swapping the capture system is
therefore a one-line config change, never a workload change.
"""

from .federated import (
    FederatedConfig,
    LogisticModel,
    federated_training,
    make_client_datasets,
)
from .imaging import ImagingConfig, imaging_pipeline, mean_filter
from .sensors import SensorConfig, sensor_pipeline
from .synthetic import (
    PAPER_ATTRIBUTE_COUNTS,
    PAPER_TASK_DURATIONS,
    SyntheticWorkloadConfig,
    paper_workload_grid,
    synthetic_workload,
)

__all__ = [
    "SyntheticWorkloadConfig",
    "synthetic_workload",
    "paper_workload_grid",
    "PAPER_TASK_DURATIONS",
    "PAPER_ATTRIBUTE_COUNTS",
    "FederatedConfig",
    "LogisticModel",
    "federated_training",
    "make_client_datasets",
    "SensorConfig",
    "sensor_pipeline",
    "ImagingConfig",
    "imaging_pipeline",
    "mean_filter",
]
