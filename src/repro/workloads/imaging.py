"""Image pre-processing workload.

The paper's third motivating application class ("image pre-processing").
A 5-transformation pipeline over synthetic images: acquire -> denoise ->
normalize -> extract features -> score, all real NumPy operations, each
step an instrumented task with image statistics as provenance attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from ..core import Data, Task, Workflow

__all__ = ["ImagingConfig", "imaging_pipeline", "mean_filter"]


@dataclass(frozen=True)
class ImagingConfig:
    """Shape of the imaging run."""

    n_images: int = 6
    image_size: int = 32
    noise_sigma: float = 0.15
    step_duration_s: float = 0.04
    seed: int = 21
    workflow_id: str = "imaging"


def mean_filter(image: np.ndarray) -> np.ndarray:
    """3x3 box filter with edge replication (vectorized, no loops)."""
    padded = np.pad(image, 1, mode="edge")
    out = np.zeros_like(image, dtype=float)
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            out += padded[1 + dy : 1 + dy + image.shape[0],
                          1 + dx : 1 + dx + image.shape[1]]
    return out / 9.0


def _image_stats(image: np.ndarray) -> Dict[str, float]:
    return {
        "mean": float(np.mean(image)),
        "std": float(np.std(image)),
        "min": float(np.min(image)),
        "max": float(np.max(image)),
    }


def imaging_pipeline(
    env,
    capture_client,
    config: ImagingConfig = ImagingConfig(),
    result: Optional[Dict[str, Any]] = None,
):
    """Generator running the instrumented imaging pipeline."""
    if result is None:
        result = {}
    rng = np.random.default_rng(config.seed)

    yield from capture_client.setup()
    workflow = Workflow(config.workflow_id, capture_client)
    yield from workflow.begin()

    scores: List[float] = []
    for i in range(config.n_images):
        # 1. acquire: a blob on a gradient background plus noise
        task = Task(f"acquire-{i}", workflow, "acquire")
        yield from task.begin([])
        yy, xx = np.mgrid[0:config.image_size, 0:config.image_size]
        cx, cy = rng.integers(8, config.image_size - 8, size=2)
        blob = np.exp(-((xx - cx) ** 2 + (yy - cy) ** 2) / 30.0)
        image = 0.2 * (xx / config.image_size) + blob
        image += rng.normal(scale=config.noise_sigma, size=image.shape)
        yield env.timeout(config.step_duration_s)
        d_raw = Data(f"img-{i}", workflow.id, _image_stats(image))
        yield from task.end([d_raw])

        # 2. denoise
        task2 = Task(f"denoise-{i}", workflow, "denoise", dependencies=[task.id])
        yield from task2.begin([d_raw])
        denoised = mean_filter(image)
        yield env.timeout(config.step_duration_s)
        d_den = Data(f"den-{i}", workflow.id, _image_stats(denoised),
                     derivations=[f"img-{i}"])
        yield from task2.end([d_den])

        # 3. normalize to [0, 1]
        task3 = Task(f"normalize-{i}", workflow, "normalize", dependencies=[task2.id])
        yield from task3.begin([d_den])
        lo, hi = float(denoised.min()), float(denoised.max())
        normalized = (denoised - lo) / ((hi - lo) or 1.0)
        yield env.timeout(config.step_duration_s)
        d_norm = Data(f"norm-{i}", workflow.id, _image_stats(normalized),
                      derivations=[f"den-{i}"])
        yield from task3.end([d_norm])

        # 4. features: intensity histogram
        task4 = Task(f"features-{i}", workflow, "features", dependencies=[task3.id])
        yield from task4.begin([d_norm])
        hist, _ = np.histogram(normalized, bins=8, range=(0.0, 1.0))
        yield env.timeout(config.step_duration_s)
        d_feat = Data(
            f"feat-{i}", workflow.id,
            {"histogram": [int(h) for h in hist]},
            derivations=[f"norm-{i}"],
        )
        yield from task4.end([d_feat])

        # 5. score: how blob-like is the image (mass in the bright tail)
        task5 = Task(f"score-{i}", workflow, "score", dependencies=[task4.id])
        yield from task5.begin([d_feat])
        score = float(hist[-2:].sum() / hist.sum())
        scores.append(score)
        yield env.timeout(config.step_duration_s)
        d_score = Data(f"score-{i}", workflow.id,
                       {"image": i, "blob_score": score},
                       derivations=[f"feat-{i}"])
        yield from task5.end([d_score])

    yield from workflow.end()
    result["scores"] = scores
    result["images"] = config.n_images
    return result
