"""Federated Learning training workload (the paper's running use case).

A real (small) FedAvg setup in NumPy: a logistic-regression model is
trained on decentralized synthetic data by K edge clients; each round,
clients download the global weights, run local epochs, and the server
aggregates the updates weighted by sample counts.

Provenance instrumentation follows the paper's Section II-B2: each local
epoch is one Task of the "model training" transformation; inputs are the
hyperparameters, outputs are the epoch's loss/accuracy/elapsed time.
The captured data answers the paper's Section I queries (see
:mod:`repro.dfanalyzer.queries`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core import Data, Task, Workflow

__all__ = [
    "FederatedConfig",
    "LogisticModel",
    "make_client_datasets",
    "federated_training",
]


@dataclass(frozen=True)
class FederatedConfig:
    """Hyperparameters of a federated training run."""

    n_clients: int = 4
    rounds: int = 3
    local_epochs: int = 2
    learning_rate: float = 0.5
    samples_per_client: int = 60
    n_features: int = 8
    #: simulated wall time one local epoch takes on the device
    epoch_duration_s: float = 0.5
    seed: int = 7


class LogisticModel:
    """Binary logistic regression trained by full-batch gradient descent."""

    def __init__(self, n_features: int, weights: Optional[np.ndarray] = None):
        self.n_features = n_features
        self.weights = (
            np.zeros(n_features + 1) if weights is None else np.asarray(weights, float).copy()
        )

    @staticmethod
    def _with_bias(X: np.ndarray) -> np.ndarray:
        return np.hstack([X, np.ones((X.shape[0], 1))])

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        z = self._with_bias(X) @ self.weights
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))

    def loss(self, X: np.ndarray, y: np.ndarray) -> float:
        p = np.clip(self.predict_proba(X), 1e-12, 1 - 1e-12)
        return float(-np.mean(y * np.log(p) + (1 - y) * np.log(1 - p)))

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean((self.predict_proba(X) >= 0.5) == (y >= 0.5)))

    def gradient_step(self, X: np.ndarray, y: np.ndarray, lr: float) -> None:
        Xb = self._with_bias(X)
        p = self.predict_proba(X)
        grad = Xb.T @ (p - y) / len(y)
        self.weights -= lr * grad

    def clone(self) -> "LogisticModel":
        return LogisticModel(self.n_features, self.weights)


def make_client_datasets(config: FederatedConfig):
    """Linearly separable-ish synthetic data, partitioned per client.

    Each client gets a slightly shifted distribution (non-IID flavour).
    """
    rng = np.random.default_rng(config.seed)
    true_w = rng.normal(size=config.n_features)
    datasets = []
    for c in range(config.n_clients):
        shift = rng.normal(scale=0.3, size=config.n_features)
        X = rng.normal(size=(config.samples_per_client, config.n_features)) + shift
        logits = X @ true_w + 0.5 * rng.normal(size=config.samples_per_client)
        y = (logits > 0).astype(float)
        datasets.append((X, y))
    return datasets


def _fedavg(updates: Sequence[np.ndarray], weights: Sequence[int]) -> np.ndarray:
    total = float(sum(weights))
    return sum(w * (n / total) for w, n in zip(updates, weights))


def federated_training(
    env,
    capture_clients: Sequence,
    config: FederatedConfig = FederatedConfig(),
    history: Optional[Dict[str, Any]] = None,
):
    """Generator running instrumented FedAvg over ``capture_clients``.

    One capture client per FL client (device).  Returns (via ``history``)
    the global model and the per-round evaluation trace.
    """
    if len(capture_clients) != config.n_clients:
        raise ValueError(
            f"need {config.n_clients} capture clients, got {len(capture_clients)}"
        )
    if history is None:
        history = {}

    datasets = make_client_datasets(config)
    global_model = LogisticModel(config.n_features)
    rounds_trace: List[Dict[str, Any]] = []

    # one provenance workflow per FL client, as each device captures locally
    workflows = []
    for i, capture in enumerate(capture_clients):
        yield from capture.setup()
        wf = Workflow(f"fl-client-{i}", capture)
        yield from wf.begin()
        workflows.append(wf)

    for round_id in range(config.rounds):
        updates, sizes = [], []
        for i, (capture, wf) in enumerate(zip(capture_clients, workflows)):
            X, y = datasets[i]
            local = global_model.clone()
            previous: List[Any] = []
            for epoch in range(config.local_epochs):
                task = Task(
                    f"r{round_id}-c{i}-e{epoch}", wf,
                    transformation_id="model_training",
                    dependencies=previous,
                )
                hyper = Data(
                    f"hyper-r{round_id}-c{i}-e{epoch}", wf.id,
                    {
                        "round": round_id,
                        "epoch": epoch,
                        "lr": config.learning_rate,
                        "local_epochs": config.local_epochs,
                        "n_features": config.n_features,
                    },
                )
                yield from task.begin([hyper])
                t0 = env.now
                local.gradient_step(X, y, config.learning_rate)
                yield env.timeout(config.epoch_duration_s)
                metrics = Data(
                    f"metrics-r{round_id}-c{i}-e{epoch}", wf.id,
                    {
                        "round": round_id,
                        "epoch": epoch,
                        "lr": config.learning_rate,
                        "local_epochs": config.local_epochs,
                        "loss": local.loss(X, y),
                        "accuracy": local.accuracy(X, y),
                        "elapsed_time": env.now - t0,
                    },
                    derivations=[f"hyper-r{round_id}-c{i}-e{epoch}"],
                )
                yield from task.end([metrics])
                previous = [task.id]
            updates.append(local.weights)
            sizes.append(len(y))
        global_model.weights = _fedavg(updates, sizes)
        all_X = np.vstack([X for X, _ in datasets])
        all_y = np.hstack([y for _, y in datasets])
        rounds_trace.append(
            {
                "round": round_id,
                "loss": global_model.loss(all_X, all_y),
                "accuracy": global_model.accuracy(all_X, all_y),
            }
        )

    for wf in workflows:
        yield from wf.end()

    history["model"] = global_model
    history["rounds"] = rounds_trace
    history["final_accuracy"] = rounds_trace[-1]["accuracy"]
    return history
