"""The harness wall-clock shim — the ONE sanctioned host-clock site.

Simulation code must never read the host clock: simulated components
take time exclusively from ``env.now``, which is what makes every
acceptance run bit-for-bit reproducible (and what the ``wall-clock``
lint rule enforces across ``src/repro``).  The harness, however,
legitimately reports how long regenerating a table or figure takes in
*real* seconds — that is host-side tooling telemetry, not simulated
behaviour, and it must be explicit about it.

This module is the explicit route: it is allowlisted by the lint rule,
so a wall-clock read anywhere else in the library is a violation by
construction.  ``time.perf_counter()`` is used instead of
``time.time()`` — it is monotonic (immune to NTP steps) and the
highest-resolution clock available for measuring elapsed durations.
"""

from __future__ import annotations

import time

__all__ = ["wall_clock", "WallClockTimer"]


def wall_clock() -> float:
    """A monotonic host-clock reading in seconds (for durations only).

    The absolute value is meaningless; only differences between two
    readings are.
    """
    return time.perf_counter()


class WallClockTimer:
    """Context manager measuring elapsed host seconds.

    Example::

        with WallClockTimer() as timer:
            regenerate_table()
        print(f"took {timer.elapsed:.1f}s")

    ``elapsed`` reads live while the block is still running.
    """

    __slots__ = ("_started", "_elapsed")

    def __enter__(self) -> "WallClockTimer":
        self._elapsed = None
        self._started = wall_clock()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._elapsed = wall_clock() - self._started
        return False

    @property
    def elapsed(self) -> float:
        """Elapsed host seconds (final after the block, live inside it)."""
        if self._elapsed is not None:
            return self._elapsed
        return wall_clock() - self._started
