"""Reproduction drivers for the paper's Fig. 6 (a-d).

All four panels share the same experimental condition — 0.5 s tasks,
100 attributes per task, 1 Gbit + 23 ms — and report resource overheads
of capture on the edge device: CPU utilization, memory, network usage
and power.  :func:`figure6_runs` executes the condition once per system
and the four panel functions read different metrics from those runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..metrics import fmt_pct, render_table
from ..workloads import SyntheticWorkloadConfig
from . import paper_reference as paper
from .experiments import SYSTEMS, ExperimentSetup, OverheadResult, measure_overhead
from .tables import TableResult, default_repetitions

__all__ = [
    "figure6_runs",
    "fig6a_cpu",
    "fig6b_memory",
    "fig6c_network",
    "fig6d_power",
    "ALL_FIGURES",
]

_CONFIG = SyntheticWorkloadConfig(attributes_per_task=100, task_duration_s=0.5)


def figure6_runs(
    repetitions: Optional[int] = None,
    attribute_kind: str = "int",
) -> Dict[str, OverheadResult]:
    """Run the Fig. 6 condition for all three systems."""
    reps = repetitions or default_repetitions(fallback=5)
    config = _CONFIG.with_(attribute_kind=attribute_kind)
    return {
        system: measure_overhead(
            ExperimentSetup(system=system), config, repetitions=reps
        )
        for system in SYSTEMS
    }


def _factor_rows(
    values: Dict[str, float], paper_values: Dict[str, float],
    paper_factors: Dict[str, float], unit_fmt,
) -> Tuple[List[List[str]], List[Dict]]:
    rendered, rows = [], []
    base = values["provlight"]
    for system in SYSTEMS:
        value = values[system]
        factor = value / base if base else float("nan")
        paper_v = paper_values.get(system)
        rows.append(
            {
                "system": system, "value": value, "factor_vs_provlight": factor,
                "paper": paper_v,
            }
        )
        rendered.append(
            [
                system,
                unit_fmt(value),
                f"{factor:.1f}x" if system != "provlight" else "1x (reference)",
                unit_fmt(paper_v) if paper_v is not None else "-",
                f"{paper_factors[system]:.1f}x" if system in paper_factors else "-",
            ]
        )
    return rendered, rows


_HEADERS = ["system", "measured", "vs provlight", "paper value", "paper factor"]


def fig6a_cpu(runs: Optional[Dict[str, OverheadResult]] = None,
              repetitions: Optional[int] = None) -> TableResult:
    """Fig. 6a: capture CPU utilization (5x/7x claims)."""
    runs = runs or figure6_runs(repetitions)
    values = {
        s: runs[s].mean_metric(lambda m: m.capture_cpu_utilization) for s in SYSTEMS
    }
    rendered, rows = _factor_rows(
        values, paper.FIG6["cpu_utilization"],
        paper.FIG6["cpu_factor_vs_provlight"], fmt_pct,
    )
    checks = [
        ("provlight CPU utilization ~1.7-2%", 0.012 <= values["provlight"] <= 0.025),
        ("provlake uses ~7x more CPU (4x..10x)",
         4.0 < values["provlake"] / values["provlight"] < 10.0),
        ("dfanalyzer uses ~5x more CPU (3x..8x)",
         3.0 < values["dfanalyzer"] / values["provlight"] < 8.0),
    ]
    text = render_table("Fig. 6a - CPU overhead of capture", _HEADERS, rendered,
                        note="paper: ProvLight 1.7-2%; 7x/5x less than ProvLake/DfAnalyzer")
    return TableResult("fig6a", "Fig. 6a CPU", text, rows, checks)


def fig6b_memory(runs: Optional[Dict[str, OverheadResult]] = None,
                 repetitions: Optional[int] = None) -> TableResult:
    """Fig. 6b: capture memory as a fraction of device RAM (~2x claim)."""
    runs = runs or figure6_runs(repetitions)
    values = {
        s: runs[s].mean_metric(lambda m: m.capture_memory_fraction) for s in SYSTEMS
    }
    rendered, rows = _factor_rows(
        values, paper.FIG6["memory_fraction"],
        paper.FIG6["memory_factor_vs_provlight"], fmt_pct,
    )
    checks = [
        ("provlight memory <4% of RAM", values["provlight"] < 0.04),
        ("provlake uses ~2x more memory (1.5x..3x)",
         1.5 < values["provlake"] / values["provlight"] < 3.0),
        ("dfanalyzer uses ~1.9x more memory (1.4x..3x)",
         1.4 < values["dfanalyzer"] / values["provlight"] < 3.0),
    ]
    text = render_table("Fig. 6b - memory overhead of capture", _HEADERS, rendered,
                        note="paper: ProvLight <4%; ~2x less than the baselines")
    return TableResult("fig6b", "Fig. 6b memory", text, rows, checks)


def fig6c_network(runs: Optional[Dict[str, OverheadResult]] = None,
                  repetitions: Optional[int] = None) -> TableResult:
    """Fig. 6c: network usage during capture (~2x-fewer-data claim).

    Measured twice: with the paper's constant-integer attributes
    (Listing 1), where zlib is at its best and ProvLight's advantage is
    *larger* than the paper's 2x, and with random-float attributes (the
    FL metrics case), which matches the paper's ~2x.
    """
    runs = runs or figure6_runs(repetitions)
    values = {s: runs[s].mean_metric(lambda m: m.network_kb_per_s) for s in SYSTEMS}
    rendered, rows = _factor_rows(
        values, paper.FIG6["network_kb_per_s"],
        paper.FIG6["network_factor_vs_provlight"],
        lambda v: f"{v:.2f} KB/s" if v is not None else "-",
    )
    float_runs = figure6_runs(repetitions=2, attribute_kind="float")
    float_values = {
        s: float_runs[s].mean_metric(lambda m: m.network_kb_per_s) for s in SYSTEMS
    }
    for system in SYSTEMS:
        factor = float_values[system] / float_values["provlight"]
        rendered.append(
            [
                f"{system} (float attrs)",
                f"{float_values[system]:.2f} KB/s",
                f"{factor:.1f}x" if system != "provlight" else "1x (reference)",
                "-", "-",
            ]
        )
        rows.append(
            {
                "system": f"{system}-float", "value": float_values[system],
                "factor_vs_provlight": factor, "paper": None,
            }
        )
    checks = [
        ("provlight transmits the least data",
         values["provlight"] < min(values["provlake"], values["dfanalyzer"])),
        ("baselines transmit at least ~2x more (int attrs)",
         min(values["provlake"], values["dfanalyzer"]) / values["provlight"] > 1.8),
        ("float attrs land near the paper's ~2x (1.5x..4x)",
         1.5 < float_values["provlake"] / float_values["provlight"] < 4.0),
    ]
    text = render_table(
        "Fig. 6c - network usage during capture", _HEADERS, rendered,
        note=(
            "paper: ProvLight ~3.7KB/s, ~1.9x/1.8x fewer data. With Listing-1 "
            "integer attributes compression is near-ideal, so the measured "
            "factor exceeds the paper's; float attributes reproduce ~2x."
        ),
    )
    return TableResult("fig6c", "Fig. 6c network", text, rows, checks)


def fig6d_power(runs: Optional[Dict[str, OverheadResult]] = None,
                repetitions: Optional[int] = None) -> TableResult:
    """Fig. 6d: power consumption overhead (2.1x/2.6x claims)."""
    runs = runs or figure6_runs(repetitions)
    base_w = None
    values_w = {}
    for s in SYSTEMS:
        values_w[s] = runs[s].mean_metric(lambda m: m.average_power_w)
        base_w = runs[s].setup.device_spec.energy.base_w
    overheads = {s: values_w[s] / base_w - 1.0 for s in SYSTEMS}
    rendered, rows = _factor_rows(
        overheads, paper.FIG6["power_overhead"],
        paper.FIG6["power_factor_vs_provlight"], fmt_pct,
    )
    for row, system in zip(rendered, SYSTEMS):
        row[1] += f" ({values_w[system]:.3f}W)"
    checks = [
        ("provlight power overhead <3%", overheads["provlight"] < 0.03),
        ("baselines cost ~2-2.6x more power overhead (1.5x..3.5x)",
         all(1.5 < overheads[s] / overheads["provlight"] < 3.5
             for s in ("provlake", "dfanalyzer"))),
        ("average watts in the paper's band (1.40-1.52W)",
         all(1.40 < values_w[s] < 1.52 for s in SYSTEMS)),
    ]
    text = render_table(
        "Fig. 6d - power consumption overhead", _HEADERS, rendered,
        note=(
            "paper: 2.58%/5.46%/6.82% at 1.43/1.47/1.49W. The paper's "
            "DfAnalyzer>ProvLake inversion (despite less CPU+network) is "
            "within max-power measurement noise; our model yields them near-tied."
        ),
    )
    return TableResult("fig6d", "Fig. 6d power", text, rows, checks)


ALL_FIGURES = {
    "fig6a": fig6a_cpu,
    "fig6b": fig6b_memory,
    "fig6c": fig6c_network,
    "fig6d": fig6d_power,
}
